//! The paper's §IV-A validation story: configure the DUT as a Cerebras
//! WSE-like wafer (single chiplet, 48 KiB of SRAM per tile, 32-bit mesh,
//! no DRAM) and run the wafer-scale FFT workload: an n³ tensor across n²
//! tiles.
//!
//! ```sh
//! cargo run --release --example wse_validation
//! ```

use muchisim::apps::Fft3d;
use muchisim::config::SystemConfig;
use muchisim::core::Simulation;
use muchisim::energy::{AreaBreakdown, Report};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("WSE-like DUT: monolithic die, 48 KiB/tile SRAM, 32-bit 2D mesh, no DRAM\n");
    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "n", "tiles", "cycles", "runtime", "GFLOP/s", "power W"
    );
    for n in [8u32, 16, 32] {
        let cfg = SystemConfig::builder()
            .chiplet_tiles(n, n)
            .sram_kib_per_tile(48)
            .noc_width_bits(32)
            .scratchpad()
            .build()?;
        let result = Simulation::new(cfg.clone(), Fft3d::new(n as usize, 7))?.run_parallel(8)?;
        assert!(result.check_error.is_none(), "{:?}", result.check_error);
        let report = Report::from_counters(&cfg, &result.counters);
        println!(
            "{:<6} {:>10} {:>12} {:>12} {:>10.2} {:>10.2}",
            n,
            cfg.total_tiles(),
            result.runtime_cycles,
            result.runtime.to_string(),
            report.flops / 1e9,
            report.average_power_w
        );
    }

    // Area model at full wafer scale: the paper reports the simulator's
    // area is 8.8% above the real 46,225 mm^2 WSE.
    let wafer = SystemConfig::builder()
        .chiplet_tiles(922, 922) // ~850,000 tiles
        .sram_kib_per_tile(48) // ~40 GB of SRAM
        .noc_width_bits(32)
        .scratchpad()
        .build()?;
    let area = AreaBreakdown::from_config(&wafer);
    println!(
        "\nfull-wafer area model: {:.0} mm^2 vs real 46,225 mm^2 (+{:.1}%; paper: +8.8%)",
        area.total_compute_mm2,
        (area.total_compute_mm2 / 46_225.0 - 1.0) * 100.0
    );
    println!(
        "per-tile breakdown: PU {:.4} + SRAM {:.4} + router {:.4} + TSU {:.4} = {:.4} mm^2",
        area.pu_mm2, area.sram_mm2, area.router_mm2, area.tsu_mm2, area.tile_mm2
    );
    Ok(())
}
