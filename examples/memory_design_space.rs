//! Design-space exploration: the paper's §IV-C memory-integration case
//! study in miniature. Sweeps SRAM size and tiles-per-HBM-channel and
//! compares performance, performance-per-watt and performance-per-dollar
//! across applications, including re-pricing the *same* simulations under
//! a different HBM cost scenario without re-simulating.
//!
//! ```sh
//! cargo run --release --example memory_design_space
//! ```

use muchisim::apps::{run_benchmark, Benchmark};
use muchisim::config::{DramConfig, SystemConfig};
use muchisim::data::rmat::RmatConfig;
use muchisim::energy::Report;
use muchisim::viz::{ReportRow, ReportTable};

fn config(chiplet_side: u32, sram_kib: u32) -> SystemConfig {
    let per_side = 16 / chiplet_side;
    SystemConfig::builder()
        .chiplet_tiles(chiplet_side, chiplet_side)
        .package_chiplets(per_side, per_side)
        .sram_kib_per_tile(sram_kib)
        .dram(DramConfig::default())
        .build()
        .expect("valid configuration")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = RmatConfig::scale(11).generate(7);
    let apps = [Benchmark::Bfs, Benchmark::Spmv, Benchmark::Spmm];
    let sweep = [(16u32, 1u32), (16, 2), (16, 4), (8, 4)];

    let mut table = ReportTable::new();
    let mut saved = Vec::new();
    for (chiplet, sram) in sweep {
        let cfg = config(chiplet, sram);
        let label = format!("{}T/Ch {sram}KiB", chiplet * chiplet / 8);
        for app in apps {
            let result = run_benchmark(app, cfg.clone(), &graph, 8)?;
            assert!(
                result.check_error.is_none(),
                "{app}: {:?}",
                result.check_error
            );
            let report = Report::from_counters(&cfg, &result.counters);
            table.push(ReportRow::new(
                &label,
                app.label(),
                "RMAT-11",
                &result,
                &report,
            ));
            saved.push((cfg.clone(), label.clone(), app, result));
        }
    }

    println!("{}", table.to_text());
    println!("perf/$ improvement over the 32T/Ch 1KiB baseline:");
    for (cfg_label, app, _, factor) in
        table.normalized_to("32T/Ch 1KiB", |r| r.app_throughput / r.cost_usd)
    {
        println!("  {cfg_label:<14} {app:<6} {factor:5.2}x");
    }

    // The decoupled cost model: re-price the same runs if HBM drops to
    // $3/GB (paper §III-E: "evaluating the performance-per-dollar of a
    // given simulation in the light of different DRAM cost scenarios").
    println!("\nre-pricing with HBM at $3/GB (no re-simulation):");
    for (mut cfg, label, app, result) in saved {
        cfg.params.cost.hbm_usd_per_gb = 3.0;
        let report = Report::from_counters(&cfg, &result.counters);
        println!(
            "  {label:<14} {:<6} ${:>7.0} -> {:.2} kTEPS/$",
            app.label(),
            report.cost.total_usd,
            report.app_throughput / report.cost.total_usd / 1e3
        );
    }
    Ok(())
}
