//! Design-space exploration: the paper's §IV-C memory-integration case
//! study in miniature, driven through the `muchisim-dse` subsystem. The
//! whole experiment — SRAM size × tiles-per-HBM-channel, three apps, one
//! dataset — lives in `specs/memory_design_space.json`; this file only
//! runs the spec and prints the study's three views: the comparison
//! table, perf/$ normalized to the baseline, and a re-pricing of the
//! *same* simulations under a different HBM cost scenario without
//! re-simulating (paper §III-E).
//!
//! ```sh
//! cargo run --release --example memory_design_space
//! # or, equivalently, through the CLI:
//! muchisim sweep --spec specs/memory_design_space.json
//! ```

use muchisim::dse::{
    parse_assignment, repriced_report_for, table_from_store, BatchRunner, ExperimentSpec,
    JsonlStore,
};

const SPEC: &str = include_str!("../specs/memory_design_space.json");

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ExperimentSpec::from_json(SPEC)?;

    // A fresh store each run: the example always re-simulates. Point the
    // CLI at a persistent store to get resumable sweeps instead.
    let store_path = std::path::Path::new("target/dse/memory_design_space_example.jsonl");
    let _ = std::fs::remove_file(store_path);
    let mut store = JsonlStore::open(store_path)?;

    let budget = std::thread::available_parallelism().map_or(8, |n| n.get());
    BatchRunner::new(budget).run_spec(&spec, &mut store)?;
    for record in store.sorted_records() {
        assert!(
            record.result.check_error.is_none(),
            "{}: {:?}",
            record.run_id,
            record.result.check_error
        );
    }

    let table = table_from_store(&store, &[])?;
    println!("{}", table.to_text());
    println!("perf/$ improvement over the 32T/Ch 1KiB baseline:");
    for (cfg_label, app, _, factor) in
        table.normalized_to("32T/Ch 1KiB", |r| r.app_throughput / r.cost_usd)
    {
        println!("  {cfg_label:<14} {app:<6} {factor:5.2}x");
    }

    // The decoupled cost model: re-price the same runs if HBM drops to
    // $3/GB (paper §III-E: "evaluating the performance-per-dollar of a
    // given simulation in the light of different DRAM cost scenarios").
    println!("\nre-pricing with HBM at $3/GB (no re-simulation):");
    let cheaper_hbm = [parse_assignment("params.cost.hbm_usd_per_gb=3.0")?];
    for record in store.sorted_records() {
        let report = repriced_report_for(record, &cheaper_hbm)?;
        println!(
            "  {:<14} {:<6} ${:>7.0} -> {:.2} kTEPS/$",
            record.config_label,
            record.app,
            report.cost.total_usd,
            report.app_throughput / report.cost.total_usd / 1e3
        );
    }
    Ok(())
}
