//! A minimal command-line front end: run any suite benchmark on a chosen
//! grid and dataset scale, print the report, and write the counters file
//! for later energy/cost post-processing.
//!
//! ```sh
//! cargo run --release --example muchisim_cli -- bfs 12 16 8
//! #                                             app scale side threads
//! ```

use muchisim::apps::{run_benchmark, Benchmark};
use muchisim::config::SystemConfig;
use muchisim::data::rmat::RmatConfig;
use muchisim::energy::Report;

fn parse_app(name: &str) -> Option<Benchmark> {
    Benchmark::ALL
        .into_iter()
        .find(|b| b.label().eq_ignore_ascii_case(name))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app_name = args.first().map(String::as_str).unwrap_or("bfs");
    let scale: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(11);
    let side: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let threads: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(8);
    let Some(app) = parse_app(app_name) else {
        eprintln!(
            "unknown app `{app_name}`; choose one of: {}",
            Benchmark::ALL.map(|b| b.label().to_lowercase()).join(", ")
        );
        std::process::exit(2);
    };

    let cfg = SystemConfig::builder().chiplet_tiles(side, side).build()?;
    let graph = RmatConfig::scale(scale).generate(42);
    println!(
        "running {} on RMAT-{scale} over {}x{side} tiles with {threads} host threads...",
        app.label(),
        side
    );
    let result = run_benchmark(app, cfg.clone(), &graph, threads)?;
    match &result.check_error {
        None => println!("check: PASSED"),
        Some(e) => println!("check: FAILED ({e})"),
    }
    let report = Report::from_counters(&cfg, &result.counters);
    println!("{}", report.to_json());

    // the counters file: rerun post-processing later with new parameters
    let counters_path = std::path::Path::new("target").join("counters.json");
    std::fs::write(
        &counters_path,
        serde_json::to_string_pretty(&result.counters)?,
    )?;
    println!("counters file written to {}", counters_path.display());
    Ok(())
}
