//! Visualization tour (paper §III-F / Fig. 2): run barrier-synchronized
//! BFS, dump router- and PU-activity heat-map frames (ASCII to stdout,
//! PPM sequence to disk — the "GIF"), and print the per-frame time-series
//! statistics the GUI tool plots.
//!
//! ```sh
//! cargo run --release --example heatmap_tour
//! ```

use muchisim::apps::{Bfs, SyncMode};
use muchisim::config::{SystemConfig, Verbosity};
use muchisim::core::Simulation;
use muchisim::data::rmat::RmatConfig;
use muchisim::viz::{Counter, Heatmap, TimeSeries};

const SIDE: u32 = 16;
const FRAME_CYCLES: u64 = 4000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SystemConfig::builder()
        .chiplet_tiles(SIDE, SIDE)
        .noc_width_bits(32)
        .verbosity(Verbosity::V2) // per-tile frames for heat maps
        .frame_interval_cycles(FRAME_CYCLES)
        .build()?;
    let graph = std::sync::Arc::new(RmatConfig::scale(12).generate(3));
    let app = Bfs::new(graph, cfg.total_tiles() as u32, 0, SyncMode::Barrier);
    let result = Simulation::new(cfg, app)?.run_parallel(8)?;
    assert!(result.check_error.is_none(), "{:?}", result.check_error);
    println!(
        "BFS finished in {} cycles, {} frames of {} cycles",
        result.runtime_cycles,
        result.frames.len(),
        FRAME_CYCLES
    );

    let hm = Heatmap::new(SIDE, SIDE);
    let tiles = SIDE * SIDE;

    // ASCII router + PU activity, side by side, for three sample frames
    let n = result.frames.len();
    for idx in [n / 4, n / 2, 3 * n / 4] {
        let frame = &result.frames.frames[idx];
        let router = hm.ascii(&frame.router_grid(tiles), FRAME_CYCLES as u32 / 2);
        let pu = hm.ascii(&frame.pu_grid(tiles), FRAME_CYCLES as u32 / 2);
        println!("\nframe {idx}: router activity | PU activity");
        for (l, r) in router.lines().zip(pu.lines()) {
            println!("{l}   |   {r}");
        }
    }

    // PPM "GIF" frames
    let dir = std::path::Path::new("target").join("heatmap_tour");
    let grids: Vec<Vec<u32>> = result
        .frames
        .frames
        .iter()
        .map(|f| f.router_grid(tiles))
        .collect();
    hm.write_sequence(&dir, &grids, FRAME_CYCLES as u32)?;
    println!("\nwrote {} PPM frames to {}", grids.len(), dir.display());

    // GUI-style time series with tail diagnosis
    let series = TimeSeries::from_frames(&result.frames, Counter::PuBusy, tiles);
    println!("\nPU-activity time series (CSV):\n{}", series.to_csv());
    println!(
        "tail imbalance (max/median across frames): {:.1}",
        series.tail_imbalance()
    );
    Ok(())
}
