//! Quickstart: simulate BFS on an RMAT graph over a 16×16-tile chip and
//! print the performance / energy / area / cost report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use muchisim::apps::{Bfs, SyncMode};
use muchisim::config::{NocTopology, SystemConfig};
use muchisim::core::Simulation;
use muchisim::data::rmat::RmatConfig;
use muchisim::energy::Report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the design under test: one 16x16-tile chiplet, 128 KiB
    //    of SRAM per tile used as a scratchpad, 64-bit folded-torus NoC.
    let cfg = SystemConfig::builder()
        .chiplet_tiles(16, 16)
        .sram_kib_per_tile(128)
        .noc_topology(NocTopology::FoldedTorus)
        .build()?;

    // 2. Generate a dataset: RMAT-12 (4,096 vertices, 65,536 edges).
    let graph = std::sync::Arc::new(RmatConfig::scale(12).generate(42));
    println!(
        "dataset: RMAT-12, {} vertices, {} edges ({} KiB footprint)",
        graph.num_vertices(),
        graph.num_edges(),
        graph.footprint_bytes() / 1024
    );

    // 3. Build the application: asynchronous BFS from vertex 0, the
    //    dataset scattered equally over all 256 tiles.
    let app = Bfs::new(graph, cfg.total_tiles() as u32, 0, SyncMode::Async);

    // 4. Simulate (use as many host threads as grid columns).
    let result = Simulation::new(cfg.clone(), app)?.run_parallel(8)?;
    match &result.check_error {
        None => println!("result check: PASSED (matches host reference BFS)"),
        Some(e) => println!("result check: FAILED: {e}"),
    }

    // 5. Report.
    let report = Report::from_counters(&cfg, &result.counters);
    println!("\n-- performance --");
    println!(
        "DUT runtime:        {} ({} NoC cycles)",
        result.runtime, result.runtime_cycles
    );
    println!(
        "throughput:         {:.2} MTEPS",
        report.app_throughput / 1e6
    );
    println!("tasks executed:     {}", result.counters.pu.tasks_executed);
    println!("NoC message hops:   {}", result.counters.noc.msg_hops);
    println!(
        "host time:          {:.3} s on {} threads",
        result.host_seconds, result.host_threads
    );
    println!(
        "sim/DUT slowdown:   {:.0}x",
        result.slowdown_vs_dut() / cfg.total_tiles() as f64
    );

    println!("\n-- energy / area / cost --");
    println!(
        "total energy:       {:.3} uJ",
        report.energy.total_pj() / 1e6
    );
    println!("average power:      {:.2} W", report.average_power_w);
    println!(
        "power density:      {:.3} W/mm^2",
        report.power_density_w_mm2
    );
    println!(
        "chip area:          {:.1} mm^2",
        report.area.total_compute_mm2
    );
    println!("system cost:        ${:.0}", report.cost.total_usd);
    println!(
        "perf per watt:      {:.2} MTEPS/W",
        report.app_throughput / report.average_power_w / 1e6
    );
    println!(
        "perf per dollar:    {:.2} kTEPS/$",
        report.app_throughput / report.cost.total_usd / 1e3
    );
    Ok(())
}
