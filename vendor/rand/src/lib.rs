//! Offline shim for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of the `rand 0.8` API it uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] and [`Rng::gen_bool`]. `SmallRng` is xoshiro256++
//! (the same family the real crate uses on 64-bit targets), seeded with
//! splitmix64, so streams are deterministic and well distributed — but
//! not bit-compatible with the real crate.

/// Low-level random-number generation: raw word output.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (splitmix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the type for integers/bool, uniform in `[0, 1)` for
    /// floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// The standard distribution for a type (see [`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one sample uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // full u64 domain
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Uniform sample in `[0, span)` via 128-bit multiply (Lemire reduction,
/// without the rejection step — bias is < 2^-64 * span, irrelevant here).
fn bounded_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 key expansion, as recommended by the xoshiro authors
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let (xa, xb, xc) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn float_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }
}
