//! The self-describing value tree all (de)serialization goes through.

/// A JSON-shaped value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any numeric value.
    Number(Number),
    /// A UTF-8 string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A key/value mapping that preserves insertion order.
    Object(Map),
}

/// A numeric value, kept in its widest lossless representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point value.
    Float(f64),
}

impl Value {
    /// A short name for error messages ("object", "number", ...).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer (floats with
    /// zero fraction included).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            Value::Number(Number::Float(f))
                if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 =>
            {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::NegInt(n)) => Some(*n),
            Value::Number(Number::Float(f))
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The value as `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            Value::Number(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }
}

/// An insertion-ordered string-keyed map (so serialized objects keep the
/// field order of the Rust declaration).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `value` under `key`, replacing any previous entry.
    pub fn insert(&mut self, key: String, value: Value) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up `key`, returning a mutable reference.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}
