//! Offline shim for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal serde replacement. Instead of serde's
//! generic `Serializer`/`Deserializer` visitors, everything converts
//! through one self-describing [`Value`] tree (the `serde_json` shim then
//! renders/parses JSON text). The `derive` feature re-exports
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` proc-macros that
//! target these traits, so downstream code is source-compatible for the
//! patterns this workspace uses (plain structs and enums, no field
//! attributes).

pub mod de;
pub mod value;

pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Builds `Self` from `value`, or reports why it cannot.
    fn from_value(value: &Value) -> Result<Self, de::DeError>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

use de::DeError;

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| DeError::expected(stringify!($t), value))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!(
                        "{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| DeError::expected(stringify!($t), value))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!(
                        "{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::expected("f64", value))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(value)? as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", value)),
        }
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", value)),
        }
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = String::from_value(value)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-char string", value)),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(value).map(Vec::into_boxed_slice)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", value)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    _ => Err(DeError::expected(
                        concat!("array of length ", stringify!($len)), value)),
                }
            }
        }
    )*};
}
impl_de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", value)),
        }
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", value)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}
