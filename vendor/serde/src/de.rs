//! Deserialization errors.

use crate::Value;

/// Why a [`Value`] could not be turned into the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with a free-form message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// "expected X, got Y" for a mismatched value shape.
    pub fn expected(what: &str, got: &Value) -> Self {
        Self::custom(format!("expected {what}, got {}", got.kind()))
    }

    /// A required field was absent from the serialized object.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Self::custom(format!("missing field `{field}` for {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}
