//! Offline shim for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` shim's `Value`-based traits. The input item is
//! parsed directly from the `proc_macro` token stream (no `syn`/`quote`
//! in an offline build), which is sufficient for the shapes this
//! workspace derives on: non-generic structs (named, tuple, unit) and
//! enums (unit, newtype, tuple, struct variants). The only `#[serde]`
//! attribute understood is `#[serde(default)]` — on a named field or on
//! a whole struct — which makes deserialization fill missing keys with
//! `Default::default()` instead of erroring, so configs written before a
//! field existed keep loading.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (shim) for a non-generic struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives `serde::Deserialize` (shim) for a non-generic struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    /// struct S;
    UnitStruct,
    /// struct S(T0, T1, ...);  (field count)
    TupleStruct(usize),
    /// struct S { f0: T0, ... }
    NamedStruct(Vec<Field>),
    Enum(Vec<Variant>),
}

/// A named field plus whether `#[serde(default)]` applies to it (from its
/// own attribute or a container-level one).
struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let container_default = skip_attrs_and_vis(&tokens, &mut i);

    let kind_kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types (`{name}`)");
    }

    let kind = match kind_kw.as_str() {
        "struct" => match tokens.get(i) {
            None | Some(TokenTree::Punct(_)) => ItemKind::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream(), container_default))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            other => panic!("serde shim derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

/// Advances past outer attributes (`#[...]`) and a visibility qualifier
/// (`pub`, `pub(crate)`, ...), reporting whether a `#[serde(default)]`
/// attribute was among them.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut serde_default = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the `[...]` group
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    serde_default |= is_serde_default(g.stream());
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `(crate)` / `(super)` / `(in ...)`
                }
            }
            _ => return serde_default,
        }
    }
}

/// True when the attribute body (the tokens inside `#[...]`) is
/// `serde(default)`.
fn is_serde_default(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            matches!(inner.first(),
                Some(TokenTree::Ident(id)) if id.to_string() == "default")
        }
        _ => false,
    }
}

/// Parses `f0: T0, f1: T1, ...`, returning the field names plus their
/// `#[serde(default)]` markers. Types are skipped with angle-bracket
/// depth tracking so commas inside generics don't split fields.
fn parse_named_fields(stream: TokenStream, container_default: bool) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let field_default = skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(Field {
            name: id.to_string(),
            default: container_default || field_default,
        });
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field, got {other:?}"),
        }
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Skips one type, stopping at a top-level `,` (or end of stream).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tt) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Counts the fields of a tuple struct / tuple variant payload.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                VariantFields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream(), false);
                i += 1;
                VariantFields::Named(names)
            }
            _ => VariantFields::Unit,
        };
        // skip an explicit discriminant `= expr`
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_type(&tokens, &mut i);
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::UnitStruct => "::serde::value::Value::Null".to_string(),
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
        }
        ItemKind::NamedStruct(fields) => ser_named_body(fields, "self."),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(ser_variant_arm).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
}

/// Builds an object value from `prefix`-qualified field accesses
/// (`self.f` for structs, bare bindings for enum struct variants).
fn ser_named_body(fields: &[Field], prefix: &str) -> String {
    let mut s = String::from("{ let mut m = ::serde::value::Map::new(); ");
    for f in fields {
        let f = &f.name;
        s.push_str(&format!(
            "m.insert(\"{f}\".to_string(), ::serde::Serialize::to_value(&{prefix}{f})); "
        ));
    }
    s.push_str("::serde::value::Value::Object(m) }");
    s
}

fn ser_variant_arm(v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        VariantFields::Unit => {
            format!("Self::{vname} => ::serde::value::Value::String(\"{vname}\".to_string()),")
        }
        VariantFields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let payload = if *n == 1 {
                "::serde::Serialize::to_value(f0)".to_string()
            } else {
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "Self::{vname}({}) => {{ let mut m = ::serde::value::Map::new(); \
                 m.insert(\"{vname}\".to_string(), {payload}); \
                 ::serde::value::Value::Object(m) }},",
                binds.join(", ")
            )
        }
        VariantFields::Named(fields) => {
            let inner = ser_named_body(fields, "");
            let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
            format!(
                "Self::{vname} {{ {} }} => {{ let payload = {inner}; \
                 let mut m = ::serde::value::Map::new(); \
                 m.insert(\"{vname}\".to_string(), payload); \
                 ::serde::value::Value::Object(m) }},",
                binds.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::UnitStruct => format!(
            "match value {{ ::serde::value::Value::Null => Ok({name}), \
             _ => Err(::serde::de::DeError::expected(\"null\", value)) }}"
        ),
        ItemKind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match value {{ ::serde::value::Value::Array(items) if items.len() == {n} => \
                 Ok({name}({})), \
                 _ => Err(::serde::de::DeError::expected(\"array of length {n}\", value)) }}",
                items.join(", ")
            )
        }
        ItemKind::NamedStruct(fields) => de_named_body(name, name, fields, "value"),
        ItemKind::Enum(variants) => de_enum_body(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::value::Value) \
                 -> ::core::result::Result<Self, ::serde::de::DeError> {{ {body} }}\n\
         }}"
    )
}

/// `Ok(Ctor { f: ..., ... })` from the object in expression `src`.
fn de_named_body(ty: &str, ctor: &str, fields: &[Field], src: &str) -> String {
    let mut s = format!(
        "{{ let obj = {src}.as_object()\
           .ok_or_else(|| ::serde::de::DeError::expected(\"object\", {src}))?; Ok({ctor} {{ "
    );
    for f in fields {
        let missing = if f.default {
            "::core::default::Default::default()".to_string()
        } else {
            format!(
                "return Err(::serde::de::DeError::missing_field(\"{ty}\", \"{0}\"))",
                f.name
            )
        };
        let f = &f.name;
        s.push_str(&format!(
            "{f}: match obj.get(\"{f}\") {{ \
               Some(v) => ::serde::Deserialize::from_value(v)?, \
               None => {missing}, \
             }}, "
        ));
    }
    s.push_str("}) }");
    s
}

fn de_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, VariantFields::Unit))
        .map(|v| format!("\"{0}\" => Ok(Self::{0}),", v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.fields {
                VariantFields::Unit => None,
                VariantFields::Tuple(1) => Some(format!(
                    "\"{vname}\" => Ok(Self::{vname}(::serde::Deserialize::from_value(payload)?)),"
                )),
                VariantFields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    Some(format!(
                        "\"{vname}\" => match payload {{ \
                           ::serde::value::Value::Array(items) if items.len() == {n} => \
                             Ok(Self::{vname}({})), \
                           _ => Err(::serde::de::DeError::expected(\
                                \"array of length {n}\", payload)) }},",
                        items.join(", ")
                    ))
                }
                VariantFields::Named(fields) => Some(format!(
                    "\"{vname}\" => {},",
                    de_named_body(name, &format!("Self::{vname}"), fields, "payload")
                )),
            }
        })
        .collect();

    format!(
        "match value {{ \
           ::serde::value::Value::String(s) => match s.as_str() {{ \
             {} \
             other => Err(::serde::de::DeError::custom(format!(\
                 \"unknown variant `{{other}}` for {name}\"))), \
           }}, \
           ::serde::value::Value::Object(m) if m.len() == 1 => {{ \
             let (tag, payload) = m.iter().next().expect(\"len checked\"); \
             match tag.as_str() {{ \
               {} \
               other => Err(::serde::de::DeError::custom(format!(\
                   \"unknown variant `{{other}}` for {name}\"))), \
             }} \
           }}, \
           _ => Err(::serde::de::DeError::expected(\"enum variant\", value)), \
         }}",
        unit_arms.join(" "),
        data_arms.join(" ")
    )
}
