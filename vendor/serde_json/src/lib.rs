//! Offline shim for the `serde_json` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of the `serde_json` API it uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`] and [`Error`],
//! implemented over the vendored `serde` shim's [`Value`] tree.

use serde::{Deserialize, Number, Serialize, Value};

pub use serde::Value as JsonValue;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::DeError> for Error {
    fn from(e: serde::de::DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as an indented (2-space) JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON document into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(f) if f.is_finite() => {
            // keep a decimal point / exponent so the value re-parses as a
            // float, matching serde_json's round-trip behaviour
            let s = format!("{f}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        // serde_json rejects NaN/inf; emitting null keeps writers total
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at {}", self.pos)))
                }
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                c as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = serde::Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // fast path: run of plain bytes
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number slice is ASCII");
        let n = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::new(format!("invalid number `{text}`")))?,
            )
        } else if text.starts_with('-') {
            Number::NegInt(
                text.parse::<i64>()
                    .map_err(|_| Error::new(format!("invalid number `{text}`")))?,
            )
        } else {
            match text.parse::<u64>() {
                Ok(v) => Number::PosInt(v),
                Err(_) => Number::Float(
                    text.parse::<f64>()
                        .map_err(|_| Error::new(format!("invalid number `{text}`")))?,
                ),
            }
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);
        let o = Some(7u8);
        assert_eq!(from_str::<Option<u8>>(&to_string(&o).unwrap()).unwrap(), o);
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_output_shape() {
        let v = vec![1u32];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1\n]");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("4x").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn nested_whitespace_and_unicode() {
        let v: Vec<String> = from_str(" [ \"α\\u00e9\" , \"b\" ] ").unwrap();
        assert_eq!(v, vec!["αé".to_string(), "b".to_string()]);
    }
}
