//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of the `parking_lot` API it uses,
//! backed by `std::sync`. Poisoning is swallowed (a poisoned lock yields
//! its inner guard), matching `parking_lot`'s no-poisoning semantics.

use std::sync::TryLockError;

/// A mutual-exclusion primitive, API-compatible with `parking_lot::Mutex`
/// for the operations this workspace uses.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
