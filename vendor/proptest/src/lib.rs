//! Offline shim for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of the proptest API its tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), range / tuple / `collection::vec` / `any()` strategies, and
//! the `prop_assert*` macros. Inputs are sampled deterministically (the
//! RNG is seeded from the test name), and there is **no shrinking** — a
//! failing case reports the raw sampled inputs via the panic message of
//! the underlying assertion.

pub mod strategy;

/// Deterministic test RNG (splitmix64 over a seed derived from the test
/// name, so every test gets a stable but distinct stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Runtime configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Strategies for collections, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Defines property tests: each `fn` body is run [`ProptestConfig::cases`]
/// times with fresh sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// `assert!` inside a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` inside a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` inside a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let mut c = crate::TestRng::for_test("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, f in 0.25f64..0.75, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            let _: bool = b;
        }

        #[test]
        fn vec_of_tuples_in_bounds(
            edges in crate::collection::vec((0u32..50, 0u32..50), 0..200)
        ) {
            prop_assert!(edges.len() < 200);
            for (a, z) in edges {
                prop_assert!(a < 50 && z < 50);
            }
        }
    }

    #[test]
    fn samples_cover_the_range() {
        let mut rng = crate::TestRng::for_test("coverage");
        let strat = 0u32..4;
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
