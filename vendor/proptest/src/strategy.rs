//! Input-generation strategies.

use crate::TestRng;
use std::ops::Range;

/// A recipe for sampling values of [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(off as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// See [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.clone().sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// The standard strategy for `T` (`any::<bool>()`, `any::<u64>()`, ...).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
