//! Offline shim for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of the criterion API its micro-benches
//! use: [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], [`BatchSize`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple wall-clock mean over `sample_size` samples — good enough to
//! spot order-of-magnitude regressions, with none of criterion's
//! statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let mean = if b.samples.is_empty() {
            Duration::ZERO
        } else {
            b.samples.iter().sum::<Duration>() / b.samples.len() as u32
        };
        println!(
            "bench: {name:<40} {mean:>12.2?}/iter ({} samples)",
            b.samples.len()
        );
        self
    }
}

/// Per-benchmark timing driver handed to the closure of
/// [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` (its output is black-boxed so the optimizer keeps
    /// the computation).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on inputs built by `setup`; only the routine is
    /// timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Batch sizing hint (ignored by this shim; inputs are built per
/// iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: criterion would batch many per allocation.
    SmallInput,
    /// Large inputs: criterion would batch few per allocation.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Declares a group of benchmark functions, mirroring criterion's
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("smoke_iter", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default().sample_size(4);
        let mut sum = 0u64;
        c.bench_function("smoke_batched", |b| {
            b.iter_batched(|| 2u64, |x| sum += x, BatchSize::SmallInput)
        });
        assert_eq!(sum, 8);
    }

    criterion_group! {
        name = shim_group;
        config = Criterion::default().sample_size(1);
        targets = noop_bench
    }

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        shim_group();
    }
}
