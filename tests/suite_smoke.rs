//! Workspace-level smoke test: every application of the paper's 8-app
//! suite runs end to end — engine, NoC, memory, dataset, verifier — on a
//! tiny 2×2-tile DUT, so CI exercises the whole stack on every push, not
//! just per-crate unit tests.

use muchisim::apps::{run_benchmark, Benchmark};
use muchisim::config::SystemConfig;
use muchisim::data::rmat::RmatConfig;
use std::sync::Arc;

#[test]
fn all_eight_apps_verify_on_2x2() {
    let graph = Arc::new(RmatConfig::scale(5).generate(7)); // 32 vertices, 512 edges
    for bench in Benchmark::ALL {
        let cfg = SystemConfig::builder()
            .chiplet_tiles(2, 2)
            .build()
            .expect("2x2 config is valid");
        let result = run_benchmark(bench, cfg, &graph, 1)
            .unwrap_or_else(|e| panic!("{bench} failed to run: {e}"));
        assert!(
            result.check_error.is_none(),
            "{bench} verifier failed: {:?}",
            result.check_error
        );
        assert!(result.runtime_cycles > 0, "{bench} reported zero runtime");
    }
}

#[test]
fn suite_is_deterministic_across_thread_counts() {
    // the paper's parallel driver promises bit-identical counters for any
    // shard split; spot-check one app end to end through the umbrella crate
    let graph = Arc::new(RmatConfig::scale(5).generate(11));
    let run = |threads: usize| {
        let cfg = SystemConfig::builder()
            .chiplet_tiles(2, 2)
            .build()
            .expect("2x2 config is valid");
        run_benchmark(Benchmark::Bfs, cfg, &graph, threads).expect("bfs runs")
    };
    let (seq, par) = (run(1), run(2));
    assert_eq!(seq.runtime_cycles, par.runtime_cycles);
}
