//! Cross-crate integration tests: the full pipeline from dataset
//! generation through simulation to energy/cost reporting and
//! visualization artifacts.

use muchisim::apps::{run_benchmark, Benchmark, PageRank};
use muchisim::config::{DramConfig, NocTopology, SystemConfig, Verbosity};
use muchisim::core::{SimCounters, Simulation};
use muchisim::data::rmat::RmatConfig;
use muchisim::energy::Report;
use muchisim::viz::{Counter, Heatmap, ReportRow, ReportTable, TimeSeries};
use std::sync::Arc;

#[test]
fn dataset_to_report_pipeline() {
    let cfg = SystemConfig::builder()
        .chiplet_tiles(8, 8)
        .verbosity(Verbosity::V2)
        .frame_interval_cycles(500)
        .build()
        .unwrap();
    let graph = Arc::new(RmatConfig::scale(9).generate(1));
    let result = run_benchmark(Benchmark::Bfs, cfg.clone(), &graph, 4).unwrap();
    assert!(result.check_error.is_none());

    // energy/area/cost report
    let report = Report::from_counters(&cfg, &result.counters);
    assert!(report.average_power_w > 0.0);
    assert!(report.cost.total_usd > 0.0);
    assert!(report.area.total_compute_mm2 > 0.0);

    // visualization artifacts
    let tiles = cfg.total_tiles() as u32;
    let series = TimeSeries::from_frames(&result.frames, Counter::RouterBusy, tiles);
    assert_eq!(series.rows.len(), result.frames.len());
    let hm = Heatmap::new(cfg.width(), cfg.height());
    let ascii = hm.ascii(&result.frames.frames[0].router_grid(tiles), 500);
    assert_eq!(ascii.lines().count(), cfg.height() as usize);

    // comparison table
    let mut table = ReportTable::new();
    table.push(ReportRow::new("base", "BFS", "RMAT-9", &result, &report));
    assert!(table.to_csv().contains("base,BFS,RMAT-9"));
}

#[test]
fn counters_file_round_trip_and_repricing() {
    let cfg = SystemConfig::builder()
        .chiplet_tiles(8, 8)
        .dram(DramConfig::default())
        .sram_kib_per_tile(2)
        .build()
        .unwrap();
    let graph = Arc::new(RmatConfig::scale(9).generate(2));
    let result = run_benchmark(Benchmark::Spmv, cfg.clone(), &graph, 2).unwrap();
    assert!(result.check_error.is_none());

    // the counters file workflow: serialize, reload, post-process with
    // modified parameters
    let json = serde_json::to_string(&result.counters).unwrap();
    let counters: SimCounters = serde_json::from_str(&json).unwrap();
    assert_eq!(counters, result.counters);

    let before = Report::from_counters(&cfg, &counters);
    let mut repriced_cfg = cfg.clone();
    repriced_cfg.params.cost.hbm_usd_per_gb = 15.0;
    let after = Report::from_counters(&repriced_cfg, &counters);
    assert!(after.cost.hbm_usd > before.cost.hbm_usd);
    assert_eq!(after.energy, before.energy);
    assert!(after.flops_per_dollar < before.flops_per_dollar);
}

#[test]
fn topology_changes_traffic_not_results() {
    let graph = Arc::new(RmatConfig::scale(9).generate(3));
    let mut hops = Vec::new();
    for topo in [NocTopology::Mesh, NocTopology::FoldedTorus] {
        let cfg = SystemConfig::builder()
            .chiplet_tiles(8, 8)
            .noc_topology(topo)
            .build()
            .unwrap();
        let result = run_benchmark(Benchmark::Histogram, cfg, &graph, 4).unwrap();
        assert!(result.check_error.is_none(), "{topo:?}");
        hops.push(result.counters.noc.msg_hops);
    }
    assert!(
        hops[1] < hops[0],
        "torus ({}) should need fewer hops than mesh ({})",
        hops[1],
        hops[0]
    );
}

#[test]
fn multi_chiplet_hierarchy_counts_boundary_crossings() {
    let graph = Arc::new(RmatConfig::scale(9).generate(4));
    let cfg = SystemConfig::builder()
        .chiplet_tiles(4, 4)
        .package_chiplets(2, 2)
        .build()
        .unwrap();
    let result = run_benchmark(Benchmark::Bfs, cfg.clone(), &graph, 4).unwrap();
    assert!(result.check_error.is_none());
    let d2d = result
        .counters
        .noc
        .flit_hops(muchisim::config::LinkClass::DieToDie);
    assert!(d2d > 0, "cross-chiplet traffic must cross die-to-die PHYs");
    let report = Report::from_counters(&cfg, &result.counters);
    assert!(report.energy.d2d_pj > 0.0);
    assert!(report.area.phy_mm2 > 0.0);
}

#[test]
fn pagerank_multi_kernel_with_reduction_network() {
    let cfg = SystemConfig::builder().chiplet_tiles(8, 8).build().unwrap();
    let graph = Arc::new(RmatConfig::scale(9).generate(5));
    let app = PageRank::new(graph, 64, 3).with_reduction(true);
    let result = Simulation::new(cfg, app).unwrap().run_parallel(4).unwrap();
    assert!(result.check_error.is_none(), "{:?}", result.check_error);
    assert!(result.counters.noc.reduce_combines > 0);
}

#[test]
fn frequency_ratio_between_domains() {
    use muchisim::config::{ClockDomain, Frequency};
    let graph = Arc::new(RmatConfig::scale(8).generate(6));
    // slow NoC at half the PU frequency: same functional result, longer
    // runtime in wall time
    let run = |noc_ghz: f64| {
        let mut b = SystemConfig::builder();
        b.chiplet_tiles(8, 8)
            .noc_clock(ClockDomain::at(Frequency::ghz(noc_ghz)));
        let cfg = b.build().unwrap();
        let r = run_benchmark(Benchmark::Bfs, cfg, &graph, 1).unwrap();
        assert!(r.check_error.is_none());
        r.runtime.as_secs()
    };
    let fast = run(1.0);
    let slow = run(0.5);
    assert!(
        slow > fast,
        "halving the NoC frequency should increase runtime ({slow:.3e} vs {fast:.3e})"
    );
}
