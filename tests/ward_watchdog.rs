//! The stall watchdog catches a deliberately wedged run.
//!
//! The app below sends one message to a task type whose input-queue
//! capacity is overridden to zero: the packet crosses the NoC, can never
//! eject into the full queue, and parks at the destination router
//! forever. No task executes and no flit moves from then on — the run is
//! wedged, not quiescent (a parked packet is pending work), so without a
//! watchdog it would spin to the cycle limit. The stall ward must trip
//! with a diagnostic report that names the wedged tile.

use muchisim::config::SystemConfig;
use muchisim::core::{
    Application, GridInfo, MemorySubscriber, SimError, Simulation, SoftwareConfig, TaskCtx,
};

/// One message to an unservable task type; see the module docs.
struct WedgedApp;

impl Application for WedgedApp {
    type Tile = u32;
    fn name(&self) -> &'static str {
        "wedged"
    }
    fn task_types(&self) -> u8 {
        2
    }
    fn configure(&self, sw: &mut SoftwareConfig) {
        // task 1 can never be delivered anywhere
        sw.iq_capacity_override.push((1, 0));
    }
    fn make_tile(&self, _tile: u32, _grid: &GridInfo) -> u32 {
        0
    }
    fn init(&self, _state: &mut u32, ctx: &mut TaskCtx<'_>) {
        if ctx.tile == 0 {
            ctx.int_ops(1);
            let last = ctx.grid().total_tiles - 1;
            ctx.send(1, last, &[42]);
        }
    }
    fn handle(&self, state: &mut u32, _task: u8, msg: &[u32], ctx: &mut TaskCtx<'_>) {
        *state += msg[0];
        ctx.int_ops(1);
    }
}

fn wedged_config(stall_cycles: u64, sample_every: u64) -> SystemConfig {
    let mut cfg = SystemConfig::builder()
        .chiplet_tiles(4, 4)
        .build()
        .expect("valid config");
    cfg.telemetry.sample_every = Some(sample_every);
    cfg.telemetry.wards.stall_cycles = Some(stall_cycles);
    cfg
}

#[test]
fn stall_watchdog_trips_on_a_wedged_run_with_diagnostics() {
    let cfg = wedged_config(1_000, 32);
    let wedged_tile = cfg.total_tiles() as u32 - 1;
    let err = Simulation::new(cfg, WedgedApp)
        .expect("simulation builds")
        .run_parallel(2)
        .expect_err("a wedged run must not finish");
    let SimError::Ward(report) = err else {
        panic!("expected SimError::Ward, got: {err}");
    };
    assert_eq!(report.ward, "stall");
    assert!(
        report.cycle >= 1_000,
        "the watchdog cannot trip before its span elapses (tripped at {})",
        report.cycle
    );
    assert!(
        report.detail.contains("stall") || !report.detail.is_empty(),
        "trip detail must say what happened: {:?}",
        report.detail
    );
    // the diagnostic names the wedged tile: the undeliverable packet is
    // parked in its router
    let diag = report
        .tiles
        .iter()
        .find(|d| d.tile == wedged_tile)
        .unwrap_or_else(|| {
            panic!(
                "diagnostics must include wedged tile {wedged_tile}, got: {:?}",
                report.tiles
            )
        });
    assert!(
        diag.parked_packets > 0,
        "the parked packet is the backlog: {diag:?}"
    );
    // the partial result is attached and labeled
    let partial = report.partial.as_ref().expect("partial result attached");
    assert_eq!(partial.termination, "ward:stall");
    assert_eq!(partial.termination_label(), "ward:stall");
    assert!(partial.runtime_cycles >= 1_000);
    // no snapshot was configured, so none may be claimed
    assert!(report.snapshot_path.is_none());
    assert!(report.snapshot_error.is_none());
    // the report renders human-readably (this is what the CLI prints)
    let text = report.to_string();
    assert!(text.contains("stall"), "{text}");
    assert!(text.contains(&format!("tile {wedged_tile}")), "{text}");
}

/// The same wedge trips at the same simulated cycle regardless of host
/// thread count, leap mode, and cadence-aligned subscriber presence —
/// ward decisions read only deterministic sample fields.
#[test]
fn stall_trip_cycle_is_deterministic() {
    let mut trips = Vec::new();
    for (threads, leap) in [(1usize, true), (2, true), (1, false)] {
        let mut cfg = wedged_config(500, 25);
        cfg.time_leap = leap;
        let memory = MemorySubscriber::new();
        let samples = memory.samples();
        let err = Simulation::new(cfg, WedgedApp)
            .expect("simulation builds")
            .with_subscriber(Box::new(memory))
            .run_parallel(threads)
            .expect_err("wedged");
        let SimError::Ward(report) = err else {
            panic!("expected ward trip");
        };
        assert_eq!(report.ward, "stall");
        let n_samples = samples.lock().expect("samples lock").len();
        assert!(n_samples > 0, "the stream ran up to the trip");
        trips.push((threads, leap, report.cycle));
    }
    let first = trips[0].2;
    assert!(
        trips.iter().all(|&(_, _, c)| c == first),
        "trip cycles diverged across hosts: {trips:?}"
    );
}
