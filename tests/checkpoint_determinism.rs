//! Checkpoint/restore bit-identity harness.
//!
//! The contract under test: a run that snapshots at some cycle and a
//! second process that resumes from that snapshot together reproduce the
//! uninterrupted run *bit-for-bit* — every counter, every statistics
//! frame, every activity grid, the NoC latency histogram, the runtime.
//! The committed golden traces (`tests/golden/traces.json`) are the
//! reference: both the checkpointed half and the resumed half must land
//! on the committed checksum for all 72 suite keys.
//!
//! Snapshots are also host-configuration agnostic: a file written under
//! one (thread count x time-leap x active-list) setting resumes
//! identically under any other, because none of those knobs touch
//! simulated behavior. The default run covers a representative subset;
//! set `MUCHISIM_FULL_MATRIX=1` to sweep every suite key through the
//! cross-host-configuration matrix as well.

use muchisim::apps::{run_benchmark, Benchmark};
use muchisim::config::{NocTopology, SystemConfig, Verbosity};
use muchisim::core::digest::{schedule_checksum, trace_checksum};
use muchisim::core::SimResult;
use muchisim::data::rmat::RmatConfig;
use muchisim::data::Csr;
use serde_json::JsonValue;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/traces.json");
const GRAPH_SEED: u64 = 0xC0FF_EE00;
const GRAPH_SCALE: u32 = 5;

/// A unique snapshot path per call, collision-free across parallel tests.
fn snap_path(tag: &str) -> String {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let tag: String = tag
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    std::env::temp_dir()
        .join(format!("muchisim-{}-{tag}-{n}.snap", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

fn config(side: u32, topo: NocTopology, ruche: Option<u32>) -> SystemConfig {
    let mut b = SystemConfig::builder();
    b.chiplet_tiles(side, side)
        .noc_topology(topo)
        .verbosity(Verbosity::V3)
        .frame_interval_cycles(256);
    if let Some(r) = ruche {
        b.ruche_factor(r);
    }
    b.build().expect("valid golden config")
}

fn cases() -> Vec<(String, SystemConfig)> {
    let mut out = Vec::new();
    for side in [2u32, 4, 8] {
        for (name, topo, ruche) in [
            ("mesh", NocTopology::Mesh, None),
            ("torus", NocTopology::FoldedTorus, None),
            ("ruche", NocTopology::Mesh, Some(2)),
        ] {
            out.push((format!("{side}x{side}-{name}"), config(side, topo, ruche)));
        }
    }
    out
}

fn load_golden() -> JsonValue {
    let text = std::fs::read_to_string(GOLDEN_PATH)
        .unwrap_or_else(|e| panic!("missing golden file {GOLDEN_PATH} ({e})"));
    serde_json::from_str(&text).expect("golden file parses")
}

/// The committed (checksum, runtime_cycles) for a suite key.
fn golden_entry(golden: &JsonValue, key: &str) -> (String, u64) {
    let entry = golden
        .as_object()
        .and_then(|m| m.get(key))
        .and_then(JsonValue::as_object)
        .unwrap_or_else(|| panic!("{key} missing from {GOLDEN_PATH}"));
    let hash = entry
        .get("hash")
        .and_then(JsonValue::as_str)
        .expect("hash field")
        .to_string();
    let runtime = entry
        .get("runtime_cycles")
        .and_then(JsonValue::as_u64)
        .expect("runtime_cycles field");
    (hash, runtime)
}

fn run(bench: Benchmark, cfg: SystemConfig, graph: &Arc<Csr>, threads: usize) -> SimResult {
    let label = bench.label();
    let r = run_benchmark(bench, cfg, graph, threads)
        .unwrap_or_else(|e| panic!("{label} failed to run: {e}"));
    assert!(
        r.check_error.is_none(),
        "{label} verifier failed: {:?}",
        r.check_error
    );
    r
}

/// Runs `bench` with periodic checkpointing at `every`, asserting the
/// snapshot file got written, then resumes from it; returns both results
/// (checkpointed full run, resumed run). Cleans up the file.
fn split_and_resume(
    bench: Benchmark,
    cfg: &SystemConfig,
    graph: &Arc<Csr>,
    every: u64,
    tag: &str,
    write_threads: usize,
    resume_threads: usize,
) -> (SimResult, SimResult) {
    let path = snap_path(tag);
    let mut with_ckpt = cfg.clone();
    with_ckpt.checkpoint_path = Some(path.clone());
    with_ckpt.checkpoint_every = Some(every);
    let full = run(bench, with_ckpt, graph, write_threads);
    assert!(
        std::path::Path::new(&path).exists(),
        "{tag}: no snapshot written at cadence {every} (runtime {})",
        full.runtime_cycles
    );
    let mut resumed_cfg = cfg.clone();
    resumed_cfg.checkpoint_path = Some(path.clone());
    resumed_cfg.checkpoint_resume = true;
    let resumed = run(bench, resumed_cfg, graph, resume_threads);
    let _ = std::fs::remove_file(&path);
    (full, resumed)
}

/// The headline matrix: all 72 golden suite keys, split at half the
/// committed runtime and resumed. Three independent equalities per key:
/// the checkpointing run itself, and the resumed run, must both land on
/// the committed golden checksum (and therefore on each other).
#[test]
fn checkpoint_split_and_resume_reproduces_all_golden_traces() {
    let graph = Arc::new(RmatConfig::scale(GRAPH_SCALE).generate(GRAPH_SEED));
    let golden = load_golden();
    let mut mismatches = Vec::new();
    let mut n = 0usize;
    for (cfg_name, cfg) in cases() {
        let tiles = cfg.width() * cfg.height();
        for bench in Benchmark::ALL {
            let key = format!("{}-{cfg_name}", bench.label());
            let (want, runtime) = golden_entry(&golden, &key);
            let every = (runtime / 2).max(1);
            let (full, resumed) = split_and_resume(bench, &cfg, &graph, every, &key, 1, 1);
            for (what, result) in [("checkpointing run", &full), ("resumed run", &resumed)] {
                let got = format!("{:#018x}", trace_checksum(result, tiles));
                if got != want {
                    mismatches.push(format!("{key}: {what} got {got}, committed {want}"));
                }
            }
            n += 1;
        }
    }
    assert_eq!(n, 72, "8 apps x 3 grids x 3 topologies");
    assert!(
        mismatches.is_empty(),
        "{} of {n} split-and-resume traces diverged from the committed goldens:\n{}",
        mismatches.len(),
        mismatches.join("\n")
    );
}

/// A snapshot written under one host configuration resumes identically
/// under any other: thread count, time leaping, and the active-element
/// worklists are host-side shortcuts with no simulated-behavior footprint,
/// and the snapshot format never encodes them (chunks are re-merged on
/// read, so even the writer's thread count is invisible).
///
/// Comparisons across shard splits use [`schedule_checksum`] — the same
/// split-invariance contract the worklist-determinism suite documents
/// (one float accumulator follows worker summation order). Within a fixed
/// split (the 1-thread resume vs the committed golden) the comparison is
/// the full [`trace_checksum`].
#[test]
fn resume_is_host_configuration_agnostic() {
    let full_matrix = std::env::var_os("MUCHISIM_FULL_MATRIX").is_some();
    let graph = Arc::new(RmatConfig::scale(GRAPH_SCALE).generate(GRAPH_SEED));
    let golden = load_golden();
    let keys: Vec<(String, SystemConfig, Benchmark)> = cases()
        .into_iter()
        .flat_map(|(cfg_name, cfg)| {
            Benchmark::ALL.map(|b| (format!("{}-{cfg_name}", b.label()), cfg.clone(), b))
        })
        .filter(|(key, _, _)| full_matrix || key == "bfs-8x8-mesh" || key == "spmv-4x4-torus")
        .collect();
    for (key, cfg, bench) in keys {
        let tiles = cfg.width() * cfg.height();
        let (want, runtime) = golden_entry(&golden, &key);
        let every = (runtime / 2).max(1);
        // write the snapshot under the golden host configuration (1
        // thread); the writer run must land on the committed checksum
        let path = snap_path(&key);
        let mut with_ckpt = cfg.clone();
        with_ckpt.checkpoint_path = Some(path.clone());
        with_ckpt.checkpoint_every = Some(every);
        let writer = run(bench, with_ckpt, &graph, 1);
        assert!(std::path::Path::new(&path).exists(), "{key}: no snapshot");
        assert_eq!(
            format!("{:#018x}", trace_checksum(&writer, tiles)),
            want,
            "{key}: checkpointing run diverged from the committed golden"
        );
        let schedule = schedule_checksum(&writer, tiles);
        // resume it under every other corner of the host-config cube
        for (threads, leap, active) in [
            (1, true, true),
            (4, true, true),
            (8, true, true),
            (4, false, true),
            (4, true, false),
            (2, false, false),
        ] {
            let mut resumed_cfg = cfg.clone();
            resumed_cfg.time_leap = leap;
            resumed_cfg.active_list = active;
            resumed_cfg.checkpoint_path = Some(path.clone());
            resumed_cfg.checkpoint_resume = true;
            let r = run(bench, resumed_cfg, &graph, threads);
            if threads == 1 && leap && active {
                assert_eq!(
                    format!("{:#018x}", trace_checksum(&r, tiles)),
                    want,
                    "{key}: 1-thread resume diverged from the committed golden"
                );
            }
            assert_eq!(
                schedule_checksum(&r, tiles),
                schedule,
                "{key}: resume at {threads} threads (leap={leap}, active={active}) \
                 diverged from the uninterrupted schedule"
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// CI smoke: one fast split-and-resume identity (BFS on the 8x8 mesh)
/// selectable by name, for the workflow's `checkpoint-smoke` job. The
/// 1-thread resume must be bit-identical; a 2-thread resume of the same
/// file must reproduce the schedule (split-invariant checksum).
#[test]
fn checkpoint_smoke_bfs_split_resume_is_bit_identical() {
    let graph = Arc::new(RmatConfig::scale(GRAPH_SCALE).generate(GRAPH_SEED));
    let cfg = config(8, NocTopology::Mesh, None);
    let tiles = cfg.width() * cfg.height();
    let reference = run(Benchmark::Bfs, cfg.clone(), &graph, 1);
    let want = trace_checksum(&reference, tiles);
    let every = (reference.runtime_cycles / 2).max(1);
    let (full, resumed) = split_and_resume(Benchmark::Bfs, &cfg, &graph, every, "smoke-bfs", 1, 1);
    assert_eq!(
        trace_checksum(&full, tiles),
        want,
        "checkpointing perturbed the run"
    );
    assert_eq!(
        trace_checksum(&resumed, tiles),
        want,
        "resume diverged from the uninterrupted run"
    );
    let (_, threaded) = split_and_resume(Benchmark::Bfs, &cfg, &graph, every, "smoke-bfs-mt", 1, 2);
    assert_eq!(
        schedule_checksum(&threaded, tiles),
        schedule_checksum(&reference, tiles),
        "2-thread resume diverged from the uninterrupted schedule"
    );
}

/// Property: for a *random* (benchmark, grid side, graph seed, snapshot
/// fraction), splitting at that fraction of the measured runtime and
/// resuming reproduces the uninterrupted run's checksum — counters,
/// frame grids, and the NoC latency histogram included.
mod random_split_points {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn resume_matches_uninterrupted_run(
            bench_idx in 0usize..8,
            side_idx in 0usize..3,
            seed in 0u64..1_000_000,
            tenths in 1u64..10,
        ) {
            let bench = Benchmark::ALL[bench_idx];
            let side = [2u32, 4, 8][side_idx];
            let cfg = config(side, NocTopology::Mesh, None);
            let tiles = cfg.width() * cfg.height();
            let graph = Arc::new(RmatConfig::scale(GRAPH_SCALE).generate(seed));
            let reference = run(bench, cfg.clone(), &graph, 1);
            let every = (reference.runtime_cycles * tenths / 10).max(1);
            let (full, resumed) = split_and_resume(
                bench, &cfg, &graph, every,
                &format!("prop-{}-{side}", bench.label()),
                1, 1,
            );
            let want = trace_checksum(&reference, tiles);
            prop_assert_eq!(
                trace_checksum(&full, tiles), want,
                "checkpointing perturbed the run"
            );
            prop_assert_eq!(
                trace_checksum(&resumed, tiles), want,
                "resume diverged"
            );
        }
    }
}
