//! Property test: the active-tile worklists are an invisible optimization.
//!
//! For random small DUTs (grid size, thread count, memory mode, time-leap
//! mode) and two suite apps, a run with the worklists enabled must produce
//! exactly the same `runtime_cycles`, counters, and frame log as a run
//! that sweeps every tile and router each cycle — the worklists may only
//! skip tiles and routers that provably have nothing to do.
//!
//! The SoA hot-state split (dense `pu_clock`/`cq_msgs`/`busy_until`/...
//! arrays, see ARCHITECTURE.md "Hot-loop memory layout") deliberately has
//! no AoS fallback to compare against — it is a memory layout, not an
//! execution mode, so there is no second code path whose results could
//! diverge. Its behavioral invisibility is pinned the same way as every
//! layout change: by the golden traces and the mode matrix here staying
//! bit-identical. The pooled router boxes do have a property suite of
//! their own (`crates/noc/tests/prop_pool.rs`: recycled vs fresh buffers
//! are indistinguishable).

use muchisim::apps::{run_benchmark, Benchmark};
use muchisim::config::{DramConfig, SystemConfig, Verbosity};
use muchisim::core::SimResult;
use muchisim::data::rmat::RmatConfig;
use proptest::prelude::*;
use std::sync::Arc;

#[allow(clippy::fn_params_excessive_bools)]
fn run(
    bench: Benchmark,
    side: u32,
    dram: bool,
    threads: usize,
    leap: bool,
    active_list: bool,
    graph: &Arc<muchisim::data::Csr>,
) -> SimResult {
    let mut b = SystemConfig::builder();
    b.chiplet_tiles(side, side)
        .verbosity(Verbosity::V3)
        .frame_interval_cycles(32)
        .time_leap(leap)
        .active_list(active_list);
    if dram {
        b.sram_kib_per_tile(4).dram(DramConfig::default());
    }
    let cfg = b.build().expect("valid config");
    let result = run_benchmark(bench, cfg, graph, threads).expect("benchmark runs");
    assert!(
        result.check_error.is_none(),
        "{bench} verifier failed: {:?}",
        result.check_error
    );
    result
}

/// The tentpole's explicit matrix: one fixed workload at 1/4/8 host
/// threads, worklists on vs off at each count — bit-identical pairs.
/// (Comparisons are within a thread count: across counts the integer
/// schedule is identical too, but one float accumulator and the order
/// of sparse per-frame pairs follow worker summation order, so exact
/// `PartialEq` only holds for a fixed shard split. The proptest below
/// covers random grids/threads; this pins the counts the scale bench
/// sweeps.)
#[test]
fn worklists_bit_identical_at_1_4_8_threads() {
    let graph = Arc::new(RmatConfig::scale(5).generate(7));
    let x1 = run(Benchmark::Bfs, 8, false, 1, true, false, &graph);
    for threads in [1usize, 4, 8] {
        let off = run(Benchmark::Bfs, 8, false, threads, true, false, &graph);
        let on = run(Benchmark::Bfs, 8, false, threads, true, true, &graph);
        assert_eq!(on.runtime_cycles, x1.runtime_cycles, "x{threads}");
        assert_eq!(on.counters, off.counters, "x{threads}");
        assert_eq!(on.frames, off.frames, "x{threads}");
        assert_eq!(
            on.counters.pu.tasks_executed, x1.counters.pu.tasks_executed,
            "x{threads}"
        );
    }
}

/// Empty-worklist leap: after a BFS frontier drains, every tile retires
/// from the worklist while the idleness-based termination window
/// (2 x network diameter) still has to elapse. The leap driver must jump
/// that window with *empty* worklists and land on the same runtime as
/// the lockstep full sweep.
#[test]
fn empty_worklist_termination_window_leaps_exactly() {
    let graph = Arc::new(RmatConfig::scale(4).generate(11));
    let full = run(Benchmark::Bfs, 4, false, 1, false, false, &graph);
    let leaping = run(Benchmark::Bfs, 4, false, 1, true, true, &graph);
    assert_eq!(leaping.runtime_cycles, full.runtime_cycles);
    assert_eq!(leaping.counters, full.counters);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn prop_worklists_match_full_sweep(
        side in 2u32..5,
        threads in 1usize..5,
        seed in 0u64..1_000,
        dram in any::<bool>(),
        leap in any::<bool>(),
        use_spmv in any::<bool>(),
    ) {
        let bench = if use_spmv { Benchmark::Spmv } else { Benchmark::Bfs };
        let graph = Arc::new(RmatConfig::scale(5).generate(seed));
        let off = run(bench, side, dram, threads, leap, false, &graph);
        let on = run(bench, side, dram, threads, leap, true, &graph);
        prop_assert_eq!(on.runtime_cycles, off.runtime_cycles);
        prop_assert_eq!(on.counters, off.counters);
        prop_assert_eq!(on.frames, off.frames);
        prop_assert_eq!(on.column_activity, off.column_activity);
    }
}
