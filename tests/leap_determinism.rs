//! Property test: the time-leaping driver is an invisible optimization.
//!
//! For random small DUTs (grid size, thread count, memory mode) and two
//! suite apps, a run with leaping enabled must produce exactly the same
//! `runtime_cycles`, counters, and frame log as the lockstep driver —
//! the driver may only skip cycles in which provably nothing happens.

use muchisim::apps::{run_benchmark, Benchmark};
use muchisim::config::{DramConfig, SystemConfig, Verbosity};
use muchisim::core::SimResult;
use muchisim::data::rmat::RmatConfig;
use proptest::prelude::*;
use std::sync::Arc;

fn run(
    bench: Benchmark,
    side: u32,
    dram: bool,
    threads: usize,
    leap: bool,
    graph: &Arc<muchisim::data::Csr>,
) -> SimResult {
    let mut b = SystemConfig::builder();
    b.chiplet_tiles(side, side)
        .verbosity(Verbosity::V3)
        .frame_interval_cycles(32)
        .time_leap(leap);
    if dram {
        b.sram_kib_per_tile(4).dram(DramConfig::default());
    }
    let cfg = b.build().expect("valid config");
    let result = run_benchmark(bench, cfg, graph, threads).expect("benchmark runs");
    assert!(
        result.check_error.is_none(),
        "{bench} verifier failed: {:?}",
        result.check_error
    );
    result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn prop_leaping_matches_lockstep(
        side in 2u32..5,
        threads in 1usize..5,
        seed in 0u64..1_000,
        dram in any::<bool>(),
        use_spmv in any::<bool>(),
    ) {
        let bench = if use_spmv { Benchmark::Spmv } else { Benchmark::Bfs };
        let graph = Arc::new(RmatConfig::scale(5).generate(seed));
        let off = run(bench, side, dram, threads, false, &graph);
        let on = run(bench, side, dram, threads, true, &graph);
        prop_assert_eq!(on.runtime_cycles, off.runtime_cycles);
        prop_assert_eq!(on.counters, off.counters);
        prop_assert_eq!(on.frames, off.frames);
    }
}
