//! The `MUCHISIM_NO_ACTIVE_LIST` kill switch forces full per-cycle
//! sweeps over every tile and router.
//!
//! Kept in its own integration-test binary because it mutates the
//! process environment: cargo gives each test file its own process, so
//! this cannot race other tests that construct simulations.

use muchisim::apps::{run_benchmark, Benchmark};
use muchisim::config::SystemConfig;
use muchisim::data::rmat::RmatConfig;
use std::sync::Arc;

#[test]
fn no_active_list_env_var_forces_full_sweeps_with_identical_results() {
    let graph = Arc::new(RmatConfig::scale(5).generate(3));
    let cfg = || {
        SystemConfig::builder()
            .chiplet_tiles(4, 4)
            .build()
            .expect("valid config")
    };
    let worklist = run_benchmark(Benchmark::Bfs, cfg(), &graph, 1).expect("runs");
    std::env::set_var("MUCHISIM_NO_ACTIVE_LIST", "1");
    let full_sweep = run_benchmark(Benchmark::Bfs, cfg(), &graph, 1).expect("runs");
    std::env::remove_var("MUCHISIM_NO_ACTIVE_LIST");
    assert_eq!(worklist.runtime_cycles, full_sweep.runtime_cycles);
    assert_eq!(worklist.counters, full_sweep.counters);
    assert_eq!(worklist.frames, full_sweep.frames);
}
