//! Checkpoint/resume under the `MUCHISIM_NO_LEAP` x
//! `MUCHISIM_NO_ACTIVE_LIST` kill-switch matrix.
//!
//! A snapshot written under the default (leaping, worklist-enabled)
//! driver must resume bit-identically under every kill-switch
//! combination, and vice versa: the snapshot captures *simulated* state
//! only, and the env switches only select host-side execution shortcuts.
//!
//! Kept in its own integration-test binary with a single `#[test]`
//! because it mutates the process environment: cargo gives each test
//! file its own process, and a single test function cannot race itself.

use muchisim::apps::{run_benchmark, Benchmark};
use muchisim::config::{SystemConfig, Verbosity};
use muchisim::core::digest::trace_checksum;
use muchisim::core::SimResult;
use muchisim::data::rmat::RmatConfig;
use muchisim::data::Csr;
use std::sync::Arc;

fn cfg() -> SystemConfig {
    SystemConfig::builder()
        .chiplet_tiles(8, 8)
        .verbosity(Verbosity::V3)
        .frame_interval_cycles(256)
        .build()
        .expect("valid config")
}

fn run(c: SystemConfig, graph: &Arc<Csr>) -> SimResult {
    let r = run_benchmark(Benchmark::Bfs, c, graph, 1).expect("runs");
    assert!(r.check_error.is_none(), "{:?}", r.check_error);
    r
}

/// Sets/unsets the two kill switches to match `(leap_off, active_off)`.
fn set_switches(leap_off: bool, active_off: bool) {
    for (name, off) in [
        ("MUCHISIM_NO_LEAP", leap_off),
        ("MUCHISIM_NO_ACTIVE_LIST", active_off),
    ] {
        if off {
            std::env::set_var(name, "1");
        } else {
            std::env::remove_var(name);
        }
    }
}

#[test]
fn checkpoint_resume_is_invariant_under_kill_switches() {
    let graph = Arc::new(RmatConfig::scale(5).generate(0xC0FF_EE00));
    let base = cfg();
    let tiles = base.width() * base.height();
    set_switches(false, false);
    let reference = run(base.clone(), &graph);
    let want = trace_checksum(&reference, tiles);
    let every = (reference.runtime_cycles / 2).max(1);
    let combos = [(false, false), (true, false), (false, true), (true, true)];
    // every writer combo x every resumer combo: 16 split pairs, all
    // landing on the uninterrupted run's checksum
    for (w_leap, w_active) in combos {
        let path = std::env::temp_dir()
            .join(format!(
                "muchisim-killswitch-{}-{w_leap}-{w_active}.snap",
                std::process::id()
            ))
            .to_string_lossy()
            .into_owned();
        set_switches(w_leap, w_active);
        let mut with_ckpt = base.clone();
        with_ckpt.checkpoint_path = Some(path.clone());
        with_ckpt.checkpoint_every = Some(every);
        let writer = run(with_ckpt, &graph);
        assert_eq!(
            trace_checksum(&writer, tiles),
            want,
            "checkpointing under (no_leap={w_leap}, no_active={w_active}) perturbed the run"
        );
        assert!(
            std::path::Path::new(&path).exists(),
            "no snapshot written under (no_leap={w_leap}, no_active={w_active})"
        );
        for (r_leap, r_active) in combos {
            set_switches(r_leap, r_active);
            let mut resume = base.clone();
            resume.checkpoint_path = Some(path.clone());
            resume.checkpoint_resume = true;
            let resumed = run(resume, &graph);
            assert_eq!(
                trace_checksum(&resumed, tiles),
                want,
                "write under (no_leap={w_leap}, no_active={w_active}), resume under \
                 (no_leap={r_leap}, no_active={r_active}) diverged"
            );
        }
        let _ = std::fs::remove_file(&path);
    }
    set_switches(false, false);
}
