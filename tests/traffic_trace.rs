//! Trace record → replay round trip.
//!
//! Records the NoC injection trace of a real BFS run, replays it
//! app-free on the *same* configuration, and asserts the network saw the
//! exact same thing: every NoC counter bit-identical. The replay then
//! runs on a *different* topology (folded torus) to show app-free
//! re-simulation of a real communication pattern under a new `noc.*`
//! configuration — the NoC-only design-exploration workflow.
//!
//! Bit-identity needs one precondition: ejection must never be refused,
//! because replay handlers drain input queues at a different speed than
//! BFS handlers. The config gives the input queues enough headroom that
//! neither run ever refuses an ejection (asserted via `eject_stalls`).

use muchisim::apps::{run_benchmark, Benchmark};
use muchisim::config::{NocTopology, SystemConfig};
use muchisim::core::Simulation;
use muchisim::data::rmat::RmatConfig;
use muchisim::noc::read_trace_jsonl;
use muchisim::traffic::TraceReplayApp;
use std::sync::Arc;

fn trace_path(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("muchisim-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_string()
}

fn recording_config(path: &str) -> SystemConfig {
    SystemConfig::builder()
        .chiplet_tiles(4, 4)
        // eject headroom: see the module comment
        .queues(4096, 32)
        .noc_trace(path)
        .build()
        .unwrap()
}

#[test]
fn bfs_trace_replays_bit_identically_on_the_same_config() {
    let path = trace_path("bfs44.jsonl");
    let graph = Arc::new(RmatConfig::scale(5).generate(0xBF5));
    let recorded = run_benchmark(Benchmark::Bfs, recording_config(&path), &graph, 2)
        .expect("recording run completes");
    assert!(recorded.check_error.is_none());
    assert_eq!(
        recorded.counters.noc.eject_stalls, 0,
        "precondition: the recording run never refused an ejection"
    );
    assert!(
        recorded.counters.noc.injected > 100,
        "enough traffic to be meaningful"
    );

    let events = read_trace_jsonl(&path).expect("trace parses");
    assert_eq!(
        events.len() as u64,
        recorded.counters.noc.injected,
        "one event per injected packet"
    );
    assert!(
        events.windows(2).all(|w| w[0].cycle <= w[1].cycle),
        "trace is written cycle-sorted"
    );

    // replay on the identical configuration (recording disabled)
    let mut cfg = recording_config(&path);
    cfg.noc_trace = None;
    let app = TraceReplayApp::from_file(&path, 16).expect("replay builds");
    assert_eq!(app.total_packets(), events.len() as u64);
    let replayed = Simulation::new(cfg, app)
        .unwrap()
        .run_parallel(2)
        .expect("replay completes");
    assert!(replayed.check_error.is_none(), "{:?}", replayed.check_error);
    assert_eq!(
        replayed.counters.noc, recorded.counters.noc,
        "replay must reproduce the recorded NoC counters bit for bit"
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn bfs_trace_replays_clean_on_a_different_topology() {
    let path = trace_path("bfs44_torus.jsonl");
    let graph = Arc::new(RmatConfig::scale(5).generate(0xBF5));
    let recorded = run_benchmark(Benchmark::Bfs, recording_config(&path), &graph, 1)
        .expect("recording run completes");

    // same trace, new network: a folded torus (different routing, wrap
    // links, dateline VCs) — the packet count must be conserved even
    // though every path and every counter changes
    let cfg = SystemConfig::builder()
        .chiplet_tiles(4, 4)
        .queues(4096, 32)
        .noc_topology(NocTopology::FoldedTorus)
        .build()
        .unwrap();
    let app = TraceReplayApp::from_file(&path, 16).expect("replay builds");
    let replayed = Simulation::new(cfg, app)
        .unwrap()
        .run()
        .expect("torus replay completes");
    assert!(replayed.check_error.is_none(), "{:?}", replayed.check_error);
    assert_eq!(
        replayed.counters.noc.injected, recorded.counters.noc.injected,
        "total injected packets preserved across topologies"
    );
    assert_eq!(
        replayed.counters.noc.injected,
        replayed.counters.noc.ejected + replayed.counters.noc.reduce_combines,
        "every injected packet is delivered or merged"
    );
    assert_ne!(
        replayed.counters.noc.msg_hops, recorded.counters.noc.msg_hops,
        "a different topology routes differently"
    );

    let _ = std::fs::remove_file(&path);
}
