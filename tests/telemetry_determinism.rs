//! Sampling is observation, never perturbation: the full golden-trace
//! suite re-run with telemetry sampling enabled must reproduce every
//! committed checksum bit-for-bit, across the time-leap x active-list
//! matrix, and sampled multi-threaded runs must match their unsampled
//! twins. The sample cadence folds into the time-leap horizon (a leap
//! never skips a sample boundary), so this suite is what pins that
//! clamping as behavior-free.
//!
//! The committed goldens are single-threaded artifacts (the trace
//! checksum covers per-worker frame streams, which depend on the shard
//! split), so the thread axis is pinned differentially: at each thread
//! count, sampled == unsampled.

use muchisim::apps::{run_benchmark, Benchmark};
use muchisim::config::{NocTopology, SystemConfig, Verbosity};
use muchisim::core::digest::trace_checksum as checksum;
use muchisim::core::{MemorySubscriber, Simulation};
use muchisim::data::rmat::RmatConfig;
use serde_json::JsonValue;
use std::sync::Arc;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/traces.json");
const GRAPH_SEED: u64 = 0xC0FF_EE00;
const GRAPH_SCALE: u32 = 5;

/// A stall watchdog far beyond these runs' lifetimes: it activates the
/// whole sampling pipeline (samples are taken, merged and ward-evaluated
/// every cadence) without any file I/O and without ever tripping.
const NEVER_TRIPS: u64 = 1_000_000_000;

fn config(side: u32, topo: NocTopology, ruche: Option<u32>) -> SystemConfig {
    let mut b = SystemConfig::builder();
    b.chiplet_tiles(side, side)
        .noc_topology(topo)
        .verbosity(Verbosity::V3)
        .frame_interval_cycles(256);
    if let Some(r) = ruche {
        b.ruche_factor(r);
    }
    b.build().expect("valid golden config")
}

/// Arms sampling at a deliberately odd cadence so sample boundaries
/// almost never coincide with frame boundaries or power-of-two leap
/// horizons.
fn sampled(mut cfg: SystemConfig) -> SystemConfig {
    cfg.telemetry.sample_every = Some(97);
    cfg.telemetry.wards.stall_cycles = Some(NEVER_TRIPS);
    cfg
}

fn cases() -> Vec<(String, SystemConfig)> {
    let mut out = Vec::new();
    for side in [2u32, 4, 8] {
        for (name, topo, ruche) in [
            ("mesh", NocTopology::Mesh, None),
            ("torus", NocTopology::FoldedTorus, None),
            ("ruche", NocTopology::Mesh, Some(2)),
        ] {
            out.push((format!("{side}x{side}-{name}"), config(side, topo, ruche)));
        }
    }
    out
}

/// All 72 golden keys with sampling enabled, across the four
/// (time-leap x active-list) combinations, against the committed
/// checksums.
#[test]
fn sampling_reproduces_all_golden_checksums() {
    let text = std::fs::read_to_string(GOLDEN_PATH)
        .unwrap_or_else(|e| panic!("missing golden file {GOLDEN_PATH} ({e})"));
    let committed: JsonValue = serde_json::from_str(&text).expect("golden file parses");
    let graph = Arc::new(RmatConfig::scale(GRAPH_SCALE).generate(GRAPH_SEED));

    let mut mismatches = Vec::new();
    let mut n = 0usize;
    for (cfg_name, cfg) in cases() {
        let tiles = cfg.width() * cfg.height();
        for bench in Benchmark::ALL {
            let key = format!("{}-{}", bench.label(), cfg_name);
            let want = committed
                .as_object()
                .and_then(|m| m.get(&key))
                .and_then(JsonValue::as_object)
                .and_then(|m| m.get("hash"))
                .and_then(JsonValue::as_str)
                .unwrap_or_else(|| panic!("{key} missing from {GOLDEN_PATH}"))
                .to_string();
            // sampled runs across the speed-layer matrix; every one must
            // land on the committed (unsampled) checksum
            for (combo, leap, active) in [
                ("leap+active", true, true),
                ("leap only", true, false),
                ("active only", false, true),
                ("lockstep", false, false),
            ] {
                let mut c = sampled(cfg.clone());
                c.time_leap = leap;
                c.active_list = active;
                let r = run_benchmark(bench, c, &graph, 1)
                    .unwrap_or_else(|e| panic!("{key} [{combo}] failed to run: {e}"));
                assert!(
                    r.check_error.is_none(),
                    "{key} [{combo}] verifier failed: {:?}",
                    r.check_error
                );
                assert_eq!(r.termination_label(), "finished");
                let got = format!("{:#018x}", checksum(&r, tiles));
                if got != want {
                    mismatches.push(format!("{key} [{combo}]: got {got}, committed {want}"));
                }
            }
            n += 1;
        }
    }
    assert_eq!(n, 72, "8 apps x 3 grids x 3 topologies");
    assert!(
        mismatches.is_empty(),
        "{} of {n} sampled golden traces diverged (sampling perturbed the simulation!):\n{}",
        mismatches.len(),
        mismatches.join("\n")
    );
}

/// The thread axis: at 2 host threads (leader + follower exercise the
/// cross-worker sample deposit and merge), a sampled run must match its
/// unsampled twin bit-for-bit, for every suite app.
#[test]
fn sampling_is_invisible_across_thread_counts() {
    let graph = Arc::new(RmatConfig::scale(GRAPH_SCALE).generate(GRAPH_SEED));
    let cfg = config(4, NocTopology::Mesh, None);
    let tiles = cfg.width() * cfg.height();
    for bench in Benchmark::ALL {
        let plain = run_benchmark(bench, cfg.clone(), &graph, 2)
            .unwrap_or_else(|e| panic!("{bench:?} unsampled failed: {e}"));
        let probed = run_benchmark(bench, sampled(cfg.clone()), &graph, 2)
            .unwrap_or_else(|e| panic!("{bench:?} sampled failed: {e}"));
        assert_eq!(
            checksum(&probed, tiles),
            checksum(&plain, tiles),
            "{bench:?}: sampling changed the 2-thread trace"
        );
        assert_eq!(probed.runtime_cycles, plain.runtime_cycles);
        assert_eq!(probed.counters, plain.counters);
    }
}

/// The in-memory subscriber sees the stream the driver promises: one
/// sample per cadence boundary, cycles strictly increasing, deltas
/// summing to the final counters.
#[test]
fn memory_subscriber_sees_a_well_formed_stream() {
    let graph = Arc::new(RmatConfig::scale(GRAPH_SCALE).generate(GRAPH_SEED));
    let mut cfg = SystemConfig::builder()
        .chiplet_tiles(4, 4)
        .build()
        .expect("valid config");
    let every = 64;
    cfg.telemetry.sample_every = Some(every);

    let app = muchisim::apps::Bfs::new(
        Arc::clone(&graph),
        cfg.total_tiles() as u32,
        0,
        muchisim::apps::SyncMode::Async,
    );
    let memory = MemorySubscriber::new();
    let samples = memory.samples();
    let result = Simulation::new(cfg, app)
        .expect("simulation builds")
        .with_subscriber(Box::new(memory))
        .run_parallel(2)
        .expect("run succeeds");

    let samples = samples.lock().expect("samples lock");
    assert!(
        !samples.is_empty(),
        "a run of {} cycles at cadence {every} must sample",
        result.runtime_cycles
    );
    for s in samples.iter() {
        assert_eq!(s.v, 1, "schema version is stamped on every sample");
        assert_eq!(
            (s.cycle + 1) % every,
            0,
            "samples land exactly on cadence boundaries"
        );
        assert!(s.active_tiles <= s.total_tiles);
    }
    for pair in samples.windows(2) {
        assert!(pair[0].cycle < pair[1].cycle, "cycles must increase");
        assert!(pair[0].seq + 1 == pair[1].seq, "stream gaps are visible");
    }
    // deltas never overshoot the cumulative totals the run reported
    let tasks: u64 = samples.iter().map(|s| s.tasks_delta).sum();
    assert!(tasks <= result.counters.pu.tasks_executed);
    let injected: u64 = samples.iter().map(|s| s.injected_delta).sum();
    assert!(injected <= result.counters.noc.injected);
}
