//! The `MUCHISIM_NO_LEAP` kill switch forces the lockstep driver.
//!
//! Kept in its own integration-test binary because it mutates the
//! process environment: cargo gives each test file its own process, so
//! this cannot race other tests that construct simulations.

use muchisim::apps::{run_benchmark, Benchmark};
use muchisim::config::SystemConfig;
use muchisim::data::rmat::RmatConfig;
use std::sync::Arc;

#[test]
fn no_leap_env_var_forces_lockstep_with_identical_results() {
    let graph = Arc::new(RmatConfig::scale(5).generate(3));
    let cfg = || {
        SystemConfig::builder()
            .chiplet_tiles(2, 2)
            .build()
            .expect("valid config")
    };
    let leaping = run_benchmark(Benchmark::Bfs, cfg(), &graph, 1).expect("runs");
    std::env::set_var("MUCHISIM_NO_LEAP", "1");
    let lockstep = run_benchmark(Benchmark::Bfs, cfg(), &graph, 1).expect("runs");
    std::env::remove_var("MUCHISIM_NO_LEAP");
    assert_eq!(leaping.runtime_cycles, lockstep.runtime_cycles);
    assert_eq!(leaping.counters, lockstep.counters);
    assert_eq!(leaping.frames, lockstep.frames);
}
