//! Golden-trace regression tests: fixed-seed checksums of the full
//! counter set and the per-frame activity grids for the 8-app suite on
//! small grids across all three topologies (mesh, folded torus, Ruche).
//!
//! These pin the *simulated behavior* bit-for-bit, so host-side state
//! refactors (lazy router queues, pooled tile state, streaming frame
//! aggregation) are provably behavior-preserving: any change to a
//! counter, a frame delta, or an activity grid changes a checksum.
//! Every key is additionally re-run under the other three
//! (time-leap x active-list) combinations, which must all reproduce the
//! committed checksum — the speed layers are pure host-side shortcuts.
//!
//! To regenerate after an *intentional* model change:
//!
//! ```text
//! MUCHISIM_BLESS=1 cargo test --test golden_traces
//! ```

use muchisim::apps::{run_benchmark, Benchmark};
use muchisim::config::{NocTopology, SystemConfig, Verbosity};
use muchisim::core::digest::trace_checksum as checksum;
use muchisim::data::rmat::RmatConfig;
use serde_json::JsonValue;
use std::fmt::Write as _;
use std::sync::Arc;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/traces.json");
const GRAPH_SEED: u64 = 0xC0FF_EE00;
const GRAPH_SCALE: u32 = 5; // 32 vertices, enough traffic on 8x8

fn config(side: u32, topo: NocTopology, ruche: Option<u32>) -> SystemConfig {
    let mut b = SystemConfig::builder();
    b.chiplet_tiles(side, side)
        .noc_topology(topo)
        .verbosity(Verbosity::V3)
        .frame_interval_cycles(256);
    if let Some(r) = ruche {
        b.ruche_factor(r);
    }
    b.build().expect("valid golden config")
}

fn cases() -> Vec<(String, SystemConfig)> {
    let mut out = Vec::new();
    for side in [2u32, 4, 8] {
        for (name, topo, ruche) in [
            ("mesh", NocTopology::Mesh, None),
            ("torus", NocTopology::FoldedTorus, None),
            ("ruche", NocTopology::Mesh, Some(2)),
        ] {
            out.push((format!("{side}x{side}-{name}"), config(side, topo, ruche)));
        }
    }
    out
}

#[test]
fn golden_traces_match_committed_checksums() {
    let bless = std::env::var_os("MUCHISIM_BLESS").is_some();
    let graph = Arc::new(RmatConfig::scale(GRAPH_SCALE).generate(GRAPH_SEED));
    let committed: Option<JsonValue> = if bless {
        None
    } else {
        let text = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
            panic!("missing golden file {GOLDEN_PATH} ({e}); bless with MUCHISIM_BLESS=1")
        });
        Some(serde_json::from_str(&text).expect("golden file parses"))
    };

    let mut blessed = String::from("{\n");
    let mut mismatches = Vec::new();
    let mut n = 0usize;
    for (cfg_name, cfg) in cases() {
        let tiles = cfg.width() * cfg.height();
        for bench in Benchmark::ALL {
            let key = format!("{}-{}", bench.label(), cfg_name);
            // single-threaded: results are bit-identical for any thread
            // count (pinned by the leap/suite/worklist determinism tests),
            // and the spin-barrier driver thrashes on single-CPU CI hosts
            let result = run_benchmark(bench, cfg.clone(), &graph, 1)
                .unwrap_or_else(|e| panic!("{key} failed to run: {e}"));
            assert!(
                result.check_error.is_none(),
                "{key} verifier failed: {:?}",
                result.check_error
            );
            let hash = checksum(&result, tiles);
            if !bless {
                // time leaping and the active-tile worklists are host-side
                // shortcuts: every (leap x active-list) combination must
                // reproduce the committed trace bit-for-bit
                for (combo, leap, active) in [
                    ("leap only", true, false),
                    ("active-list only", false, true),
                    ("lockstep full-sweep", false, false),
                ] {
                    let mut c = cfg.clone();
                    c.time_leap = leap;
                    c.active_list = active;
                    let r = run_benchmark(bench, c, &graph, 1)
                        .unwrap_or_else(|e| panic!("{key} [{combo}] failed to run: {e}"));
                    let h = checksum(&r, tiles);
                    assert_eq!(
                        h, hash,
                        "{key}: {combo} diverged from the default leap+active-list run"
                    );
                }
            }
            if bless {
                if n > 0 {
                    blessed.push_str(",\n");
                }
                write!(
                    blessed,
                    "  \"{key}\": {{\"hash\": \"{hash:#018x}\", \"runtime_cycles\": {}, \"frames\": {}}}",
                    result.runtime_cycles,
                    result.frames.len()
                )
                .unwrap();
            } else {
                let want = committed
                    .as_ref()
                    .and_then(JsonValue::as_object)
                    .and_then(|m| m.get(&key))
                    .and_then(JsonValue::as_object)
                    .unwrap_or_else(|| panic!("{key} missing from {GOLDEN_PATH}; re-bless"));
                let want_hash = want
                    .get("hash")
                    .and_then(JsonValue::as_str)
                    .expect("hash field");
                let got = format!("{hash:#018x}");
                if got != want_hash {
                    mismatches.push(format!(
                        "{key}: got {got}, committed {want_hash} \
                         (runtime {} vs committed {})",
                        result.runtime_cycles,
                        want.get("runtime_cycles")
                            .and_then(JsonValue::as_u64)
                            .unwrap_or(0),
                    ));
                }
            }
            n += 1;
        }
    }
    assert_eq!(n, 72, "8 apps x 3 grids x 3 topologies");
    if bless {
        blessed.push_str("\n}\n");
        std::fs::write(GOLDEN_PATH, blessed).expect("write golden file");
        eprintln!("blessed {n} golden traces into {GOLDEN_PATH}");
        return;
    }
    assert!(
        mismatches.is_empty(),
        "{} of {n} golden traces diverged (behavior change!):\n{}\n\
         If the model change is intentional, re-bless with MUCHISIM_BLESS=1.",
        mismatches.len(),
        mismatches.join("\n")
    );
}
