//! Negative-path coverage for the snapshot format: corrupt, truncated,
//! or incompatible checkpoint files must fail with a clean
//! [`SimError::Snapshot`] — never a panic, never a silently-wrong resume.
//!
//! [`SimError::Snapshot`]: muchisim::core::SimError

use muchisim::apps::{run_benchmark, Benchmark};
use muchisim::config::{SystemConfig, Verbosity};
use muchisim::core::snapshot::SnapshotHasher;
use muchisim::data::rmat::RmatConfig;
use muchisim::data::Csr;
use std::sync::Arc;

fn cfg(side: u32) -> SystemConfig {
    SystemConfig::builder()
        .chiplet_tiles(side, side)
        .verbosity(Verbosity::V3)
        .frame_interval_cycles(256)
        .build()
        .expect("valid config")
}

/// Writes a valid BFS snapshot to `path` and returns its bytes.
fn write_valid_snapshot(path: &str, graph: &Arc<Csr>) -> Vec<u8> {
    let probe = run_benchmark(Benchmark::Bfs, cfg(4), graph, 1).expect("probe runs");
    let mut c = cfg(4);
    c.checkpoint_path = Some(path.to_string());
    c.checkpoint_every = Some((probe.runtime_cycles / 2).max(1));
    run_benchmark(Benchmark::Bfs, c, graph, 1).expect("checkpointing run");
    std::fs::read(path).expect("snapshot file exists")
}

/// Re-stamps the trailing checksum (the last 8 bytes cover every
/// preceding byte), so mutations ahead of it reach their own validation
/// step instead of tripping the checksum first.
fn restamp_checksum(bytes: &mut [u8]) {
    let n = bytes.len();
    let mut h = SnapshotHasher::new();
    h.update(&bytes[..n - 8]);
    bytes[n - 8..].copy_from_slice(&h.finish().to_le_bytes());
}

/// Resumes from `path` and returns the error message (panics on success).
fn resume_error(path: &str, graph: &Arc<Csr>, config: SystemConfig) -> String {
    let mut c = config;
    c.checkpoint_path = Some(path.to_string());
    c.checkpoint_resume = true;
    match run_benchmark(Benchmark::Bfs, c, graph, 1) {
        Ok(_) => panic!("resume from a damaged snapshot succeeded"),
        Err(e) => e.to_string(),
    }
}

#[test]
fn damaged_snapshots_fail_with_clean_errors() {
    let graph = Arc::new(RmatConfig::scale(5).generate(0xC0FF_EE00));
    let dir = std::env::temp_dir();
    let valid_path = dir
        .join(format!("muchisim-robust-{}-valid.snap", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let valid = write_valid_snapshot(&valid_path, &graph);
    assert!(valid.len() > 40, "snapshot suspiciously small");

    type Mutate = fn(&mut Vec<u8>);
    let table: [(&str, Mutate, &str); 8] = [
        ("empty file", |b| b.clear(), "snapshot failed"),
        ("truncated header", |b| b.truncate(10), "snapshot failed"),
        (
            "truncated body",
            |b| {
                let half = b.len() / 2;
                b.truncate(half);
            },
            "snapshot failed",
        ),
        (
            "one byte short",
            |b| {
                b.pop();
            },
            "snapshot failed",
        ),
        (
            "flipped payload bit",
            |b| {
                let mid = b.len() / 2;
                b[mid] ^= 0x40;
            },
            "checksum",
        ),
        (
            "bad magic",
            |b| {
                b[0] ^= 0xFF;
                restamp_checksum(b);
            },
            "not a MuchiSim snapshot",
        ),
        (
            "future version",
            |b| {
                // version is the u32 right after the 8-byte magic; the
                // checksum must be re-stamped or it fires first
                b[8] = b[8].wrapping_add(1);
                restamp_checksum(b);
            },
            "version",
        ),
        (
            "trailing garbage",
            |b| b.extend_from_slice(&[0xAB; 16]),
            "snapshot failed",
        ),
    ];

    for (name, mutate, want) in table {
        let mut bytes = valid.clone();
        mutate(&mut bytes);
        let path = dir
            .join(format!(
                "muchisim-robust-{}-{}.snap",
                std::process::id(),
                name.replace(' ', "-")
            ))
            .to_string_lossy()
            .into_owned();
        std::fs::write(&path, &bytes).expect("write mutated snapshot");
        let err = resume_error(&path, &graph, cfg(4));
        assert!(
            err.contains("snapshot failed"),
            "{name}: error is not a clean SimError::Snapshot: {err}"
        );
        assert!(err.contains(want), "{name}: error lacks `{want}`: {err}");
        let _ = std::fs::remove_file(&path);
    }

    // a pristine file under the wrong configuration is rejected by the
    // identity header, with the mismatch spelled out
    let err = resume_error(&valid_path, &graph, cfg(8));
    assert!(
        err.contains("snapshot failed"),
        "config mismatch is not a clean SimError::Snapshot: {err}"
    );
    assert!(
        err.contains("configuration") || err.contains("grid"),
        "config mismatch error is unhelpful: {err}"
    );

    // and a different application on the same grid is rejected by name
    let mut c = cfg(4);
    c.checkpoint_path = Some(valid_path.clone());
    c.checkpoint_resume = true;
    let err = match run_benchmark(Benchmark::Spmv, c, &graph, 1) {
        Ok(_) => panic!("resume under the wrong application succeeded"),
        Err(e) => e.to_string(),
    };
    assert!(
        err.contains("application") || err.contains("bfs"),
        "app mismatch error is unhelpful: {err}"
    );
    let _ = std::fs::remove_file(&valid_path);
}
