//! End-to-end tests of the design-space exploration subsystem: a JSON
//! spec swept through the batch runner matches direct `run_benchmark`
//! calls bit-identically, resumes with skips, and re-prices from the
//! store without re-simulating.

use muchisim::apps::{run_benchmark, Benchmark};
use muchisim::config::SystemConfig;
use muchisim::data::rmat::RmatConfig;
use muchisim::dse::{
    parse_assignment, repriced_report_for, table_from_store, BatchRunner, ExperimentSpec,
    JsonlStore,
};
use muchisim::energy::Report;
use std::path::PathBuf;
use std::sync::Arc;

const SPEC: &str = r#"{
    "name": "sweep_test",
    "threads_per_run": 2,
    "base": ["hierarchy.chiplet.x=4", "hierarchy.chiplet.y=4"],
    "axes": [{"name": "sram", "points": [
        {"label": "64KiB", "set": ["sram_kib_per_tile=64"]},
        {"label": "128KiB", "set": ["sram_kib_per_tile=128"]}
    ]}],
    "apps": ["bfs"],
    "datasets": [{"rmat": {"scale": 6, "seed": 9}}]
}"#;

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("muchisim-dse-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn sweep_matches_direct_runs_and_resumes_with_skips() {
    let spec = ExperimentSpec::from_json(SPEC).unwrap();
    let mut store = JsonlStore::open(temp_store("sweep.jsonl")).unwrap();
    let outcome = BatchRunner::new(4).run_spec(&spec, &mut store).unwrap();
    assert_eq!((outcome.executed, outcome.skipped), (2, 0));
    assert_eq!(outcome.check_failures, 0);

    // bit-identical to driving the stack by hand
    let graph = Arc::new(RmatConfig::scale(6).generate(9));
    for (record, sram) in store.sorted_records().iter().zip([64u32, 128]) {
        let cfg = SystemConfig::builder()
            .chiplet_tiles(4, 4)
            .sram_kib_per_tile(sram)
            .build()
            .unwrap();
        assert_eq!(record.config, cfg, "spec overrides != builder config");
        // same host-thread count as the sweep: every counter matches to
        // the bit, including the float flit-millimeter accumulators
        let direct = run_benchmark(Benchmark::Bfs, cfg, &graph, 2).unwrap();
        assert_eq!(record.result.runtime_cycles, direct.runtime_cycles);
        assert_eq!(record.result.counters, direct.counters);
        assert_eq!(record.result.frames, direct.frames);
    }

    // a second invocation skips everything, even through a fresh reload
    let mut reloaded = JsonlStore::open(store.path()).unwrap();
    let again = BatchRunner::new(4).run_spec(&spec, &mut reloaded).unwrap();
    assert_eq!((again.executed, again.skipped), (0, 2));

    // ...and the reloaded store reports the same table text
    let fresh = table_from_store(&store, &[]).unwrap();
    let resumed = table_from_store(&reloaded, &[]).unwrap();
    assert_eq!(fresh.to_text(), resumed.to_text());
    assert_eq!(fresh.to_csv(), resumed.to_csv());
}

#[test]
fn partial_store_only_runs_the_missing_points() {
    let spec = ExperimentSpec::from_json(SPEC).unwrap();
    let points = spec.expand().unwrap();

    // complete only the first point
    let mut store = JsonlStore::open(temp_store("partial.jsonl")).unwrap();
    let first = BatchRunner::new(2)
        .run_points(&points[..1], spec.threads_per_run, &mut store)
        .unwrap();
    assert_eq!((first.executed, first.skipped), (1, 0));

    // the full sweep now only executes the second point
    let rest = BatchRunner::new(2).run_spec(&spec, &mut store).unwrap();
    assert_eq!((rest.executed, rest.skipped), (1, 1));
    assert_eq!(store.records().len(), 2);
    let ids: Vec<&str> = store
        .sorted_records()
        .iter()
        .map(|r| r.run_id.as_str())
        .collect();
    assert_eq!(ids, ["64KiB__BFS__RMAT-6-s9", "128KiB__BFS__RMAT-6-s9"]);
}

/// The shipped memory_design_space spec expands to exactly the configs
/// the pre-refactor example built by hand — same hierarchy, SRAM, DRAM
/// mode, labels, apps, dataset and order. With the engine's determinism
/// (equal thread counts ⇒ bit-identical counters, proven above and in
/// the leap/parallel tests), identical configs make the sweep's table
/// bit-identical to the old bespoke loop by construction.
#[test]
fn memory_design_space_spec_expands_to_the_papers_configs() {
    use muchisim::config::DramConfig;

    let text = std::fs::read_to_string("specs/memory_design_space.json").unwrap();
    let spec = ExperimentSpec::from_json(&text).unwrap();
    assert_eq!(
        spec.threads_per_run, 8,
        "the original example ran 8 threads"
    );
    let points = spec.expand().unwrap();

    // the original example's config() helper, verbatim
    let config = |chiplet_side: u32, sram_kib: u32| {
        let per_side = 16 / chiplet_side;
        SystemConfig::builder()
            .chiplet_tiles(chiplet_side, chiplet_side)
            .package_chiplets(per_side, per_side)
            .sram_kib_per_tile(sram_kib)
            .dram(DramConfig::default())
            .build()
            .expect("valid configuration")
    };
    let sweep = [(16u32, 1u32), (16, 2), (16, 4), (8, 4)];
    let apps = ["BFS", "SPMV", "SPMM"];

    assert_eq!(points.len(), sweep.len() * apps.len());
    let mut expected = Vec::new();
    for (chiplet, sram) in sweep {
        let label = format!("{}T/Ch {sram}KiB", chiplet * chiplet / 8);
        for app in apps {
            expected.push((config(chiplet, sram), label.clone(), app));
        }
    }
    for (point, (cfg, label, app)) in points.iter().zip(&expected) {
        assert_eq!(&point.config, cfg, "{}", point.run_id);
        assert_eq!(&point.config_label, label);
        assert_eq!(point.app.label(), *app);
        assert_eq!(point.dataset.label(), "RMAT-11");
        assert_eq!(
            point.dataset,
            muchisim::dse::DatasetSpec::Rmat { scale: 11, seed: 7 },
            "same graph generator inputs as the original example"
        );
    }
}

#[test]
fn repricing_from_the_store_needs_no_simulation() {
    let spec = ExperimentSpec::from_json(SPEC).unwrap();
    let mut store = JsonlStore::open(temp_store("reprice.jsonl")).unwrap();
    BatchRunner::new(2).run_spec(&spec, &mut store).unwrap();
    let record = &store.sorted_records()[0];

    // baseline report equals a from-counters recomputation
    let base = Report::from_counters(&record.config, &record.result.counters);
    let repriced = repriced_report_for(record, &[]).unwrap();
    assert_eq!(base.to_json(), repriced.to_json());

    // cheaper wafers: performance identical, cost strictly lower
    let cheaper = repriced_report_for(
        record,
        &[parse_assignment("params.cost.wafer_cost_usd=3000.0").unwrap()],
    )
    .unwrap();
    assert_eq!(cheaper.flops, base.flops);
    assert!(cheaper.cost.total_usd < base.cost.total_usd);
}
