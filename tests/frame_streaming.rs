//! End-to-end tests of the streaming frame telemetry: bounded in-memory
//! retention (`frame_budget`) with delta conservation, and the
//! full-resolution JSONL spill (`frame_spill`) reconstructing exactly
//! the frames an unbounded run records — including across workers.

use muchisim::apps::{run_benchmark, Benchmark};
use muchisim::config::{SystemConfig, SystemConfigBuilder, Verbosity};
use muchisim::core::read_spill_jsonl;
use muchisim::data::rmat::RmatConfig;
use std::sync::Arc;

fn base() -> SystemConfigBuilder {
    let mut b = SystemConfig::builder();
    b.chiplet_tiles(4, 4)
        .verbosity(Verbosity::V2)
        .frame_interval_cycles(64);
    b
}

fn graph() -> Arc<muchisim::data::Csr> {
    Arc::new(RmatConfig::scale(5).generate(99))
}

#[test]
fn frame_budget_bounds_retention_and_conserves_totals() {
    let g = graph();
    let full = run_benchmark(Benchmark::Bfs, base().build().unwrap(), &g, 1).unwrap();
    let capped = run_benchmark(
        Benchmark::Bfs,
        base().frame_budget(4).build().unwrap(),
        &g,
        1,
    )
    .unwrap();
    assert!(
        full.frames.len() > 4,
        "test needs enough frames to overflow the budget (got {})",
        full.frames.len()
    );
    assert!(capped.frames.len() <= 4);
    assert!(capped.frames.interval_cycles > full.frames.interval_cycles);
    // counters are untouched by frame downsampling
    assert_eq!(full.counters, capped.counters);
    // frame deltas are merged, never dropped
    let sum = |frames: &muchisim::core::FrameLog, f: fn(&muchisim::core::Frame) -> u64| {
        frames.frames.iter().map(f).sum::<u64>()
    };
    assert_eq!(
        sum(&full.frames, |f| f.tasks_delta),
        sum(&capped.frames, |f| f.tasks_delta)
    );
    assert_eq!(
        sum(&full.frames, |f| f.injected_delta),
        sum(&capped.frames, |f| f.injected_delta)
    );
    assert_eq!(
        sum(&full.frames, |f| f.ejected_delta),
        sum(&capped.frames, |f| f.ejected_delta)
    );
    // per-tile activity grids are conserved too
    let grid_total = |frames: &muchisim::core::FrameLog| {
        let mut g = vec![0u64; 16];
        for f in &frames.frames {
            for (t, v) in f.pu_grid(16).into_iter().enumerate() {
                g[t] += v as u64;
            }
        }
        g
    };
    assert_eq!(grid_total(&full.frames), grid_total(&capped.frames));
}

#[test]
fn frame_spill_reconstructs_full_resolution_across_workers() {
    let g = graph();
    let full = run_benchmark(Benchmark::Bfs, base().build().unwrap(), &g, 1).unwrap();

    let dir = std::env::temp_dir().join("muchisim_frame_spill_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("frames.jsonl");
    let path_str = path.to_str().unwrap().to_string();

    // aggressive budget + spill, two workers: memory holds a downsampled
    // log while the spill keeps full resolution
    let spilled = run_benchmark(
        Benchmark::Bfs,
        base()
            .frame_budget(2)
            .frame_spill(path_str.clone())
            .build()
            .unwrap(),
        &g,
        2,
    )
    .unwrap();
    assert!(spilled.frames.len() <= 2);

    let text = std::fs::read_to_string(&path).unwrap();
    let restored = read_spill_jsonl(&text).expect("spill parses");
    std::fs::remove_file(&path).ok();

    assert_eq!(restored.interval_cycles, full.frames.interval_cycles);
    assert_eq!(restored.len(), full.frames.len());
    for (r, f) in restored.frames.iter().zip(&full.frames.frames) {
        assert_eq!(r.index, f.index);
        assert_eq!(r.start_cycle, f.start_cycle);
        assert_eq!(r.tasks_delta, f.tasks_delta, "frame {}", f.index);
        assert_eq!(r.injected_delta, f.injected_delta, "frame {}", f.index);
        assert_eq!(r.ejected_delta, f.ejected_delta, "frame {}", f.index);
        // sparse pair order differs across worker counts; the grids are
        // the simulated quantity
        assert_eq!(r.router_grid(16), f.router_grid(16), "frame {}", f.index);
        assert_eq!(r.pu_grid(16), f.pu_grid(16), "frame {}", f.index);
    }
}

#[test]
fn unwritable_spill_path_is_a_clean_error() {
    let g = graph();
    let err = run_benchmark(
        Benchmark::Bfs,
        base()
            .frame_spill("/nonexistent-dir/frames.jsonl")
            .build()
            .unwrap(),
        &g,
        1,
    )
    .unwrap_err();
    assert!(
        err.to_string().contains("frame spill"),
        "unexpected error: {err}"
    );
}
