//! Synthetic traffic through the full stack: the suite harness, both
//! cycle drivers, and the latency telemetry.

use muchisim::apps::{run_benchmark, Benchmark};
use muchisim::config::{SystemConfig, TrafficPattern};
use muchisim::data::synthetic::grid_2d;
use std::sync::Arc;

fn cfg(leap: bool) -> SystemConfig {
    let mut cfg = SystemConfig::builder()
        .chiplet_tiles(4, 4)
        .time_leap(leap)
        .build()
        .unwrap();
    cfg.traffic.cycles = 250;
    cfg.traffic.rate = 0.1;
    cfg
}

#[test]
fn all_traffic_benchmarks_run_clean_through_the_suite() {
    let graph = Arc::new(grid_2d(2, 2)); // ignored, like FFT's
    assert_eq!(Benchmark::TRAFFIC.len(), 6);
    for bench in Benchmark::TRAFFIC {
        let result = run_benchmark(bench, cfg(true), &graph, 2)
            .unwrap_or_else(|e| panic!("{bench} failed: {e}"));
        assert!(
            result.check_error.is_none(),
            "{bench}: {:?}",
            result.check_error
        );
        assert!(
            result.counters.noc.injected > 200,
            "{bench} injected too little"
        );
        assert_eq!(
            result.noc_latency.count, result.counters.noc.ejected,
            "{bench}: one latency sample per delivery"
        );
        assert!(result.noc_latency.mean() > 0.0, "{bench}");
    }
}

#[test]
fn traffic_is_bit_identical_across_the_leap_ablation() {
    // the time-leaping driver jumps between scheduled injections; the
    // result must not change (same guarantee the app suite has)
    let graph = Arc::new(grid_2d(2, 2));
    let bench = Benchmark::Traffic(TrafficPattern::Hotspot);
    let leaped = run_benchmark(bench, cfg(true), &graph, 1).unwrap();
    let lockstep = run_benchmark(bench, cfg(false), &graph, 1).unwrap();
    assert_eq!(leaped.runtime_cycles, lockstep.runtime_cycles);
    assert_eq!(leaped.counters, lockstep.counters);
    assert_eq!(leaped.noc_latency, lockstep.noc_latency);
}
