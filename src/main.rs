//! The `muchisim` command line.
//!
//! Three subcommands cover the paper's workflow end to end:
//!
//! * `muchisim run <app> [scale [side [threads]]]` — one simulation,
//!   report printed, counters file written for later post-processing.
//! * `muchisim sweep --spec FILE` — a declarative design-space sweep
//!   (see [`muchisim::dse`]): points run concurrently, results stream
//!   into a resumable JSONL store, completed run IDs are skipped.
//! * `muchisim report --store FILE` — aggregate a store into the
//!   comparison table, optionally re-priced with `--set` overrides
//!   (energy/cost post-processing without re-simulation).
//!
//! Argument parsing is strict: unparseable numbers and unknown flags are
//! errors (exit code 2), never silently replaced with defaults.

use muchisim::apps::{run_benchmark, Benchmark};
use muchisim::config::SystemConfig;
use muchisim::data::rmat::RmatConfig;
use muchisim::dse::{
    apply_to_config, parse_assignment, table_from_store, BatchRunner, ExperimentSpec, JsonlStore,
    Override,
};
use muchisim::energy::Report;
use std::fmt::Display;
use std::str::FromStr;
use std::sync::Arc;

const USAGE: &str = "\
muchisim — MuchiSim: design exploration for multi-chip manycore systems

USAGE:
    muchisim run <app> [scale [side [threads]]] [--telemetry] [--set KEY=VALUE]...
    muchisim sweep --spec FILE [--store FILE] [--host-threads N] [--csv]
    muchisim report --store FILE [--set KEY=VALUE]... [--csv]

SUBCOMMANDS:
    run      Run one benchmark on an RMAT graph and print its report.
             <app> is one of the suite labels (bfs, sssp, page, wcc,
             spmv, spmm, histo, fft); scale is the RMAT scale
             (default 11), side the square grid side in tiles
             (default 16), threads the host threads (default 8).
             --telemetry additionally prints simulator throughput
             (simulated cycles/s, packets/s) and the host memory
             footprint (bytes/tile). Frame streaming is reachable via
             --set frame_budget=N and --set frame_spill=PATH.
    sweep    Expand a JSON experiment spec into run points, execute the
             ones missing from the store concurrently, and print the
             comparison table. Re-invoking skips completed run IDs.
    report   Rebuild the comparison table from a result store without
             re-simulating; --set re-prices the stored runs under
             different model parameters.

COMMON OPTIONS:
    --set KEY=VALUE   Configuration override (repeatable), e.g.
                      --set sram_kib_per_tile=64 --set noc.width_bits=32
    --csv             Print the table as CSV instead of aligned text.
    -h, --help        Show this help.
";

fn usage_error(msg: impl Display) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run `muchisim --help` for usage");
    std::process::exit(2);
}

fn parse_num<T: FromStr>(what: &str, text: &str) -> T
where
    T::Err: Display,
{
    text.parse()
        .unwrap_or_else(|e| usage_error(format!("invalid {what} `{text}`: {e}")))
}

fn parse_set(args: &mut std::iter::Peekable<std::vec::IntoIter<String>>) -> Override {
    let Some(assignment) = args.next() else {
        usage_error("--set needs a KEY=VALUE argument");
    };
    parse_assignment(&assignment).unwrap_or_else(|e| usage_error(e))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        print!("{USAGE}");
        return;
    }
    if args.is_empty() {
        usage_error("missing subcommand (run, sweep, or report)");
    }
    let sub = args.remove(0);
    let code = match sub.as_str() {
        "run" => cmd_run(args),
        "sweep" => cmd_sweep(args),
        "report" => cmd_report(args),
        other => usage_error(format!("unknown subcommand `{other}`")),
    };
    std::process::exit(code);
}

fn cmd_run(args: Vec<String>) -> i32 {
    let mut positional: Vec<String> = Vec::new();
    let mut overrides: Vec<Override> = Vec::new();
    let mut telemetry = false;
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--set" => overrides.push(parse_set(&mut args)),
            "--telemetry" => telemetry = true,
            flag if flag.starts_with('-') => usage_error(format!("unknown flag `{flag}`")),
            _ => positional.push(arg),
        }
    }
    if positional.len() > 4 {
        usage_error(format!("unexpected argument `{}`", positional[4]));
    }
    let Some(app_name) = positional.first() else {
        usage_error("run needs an <app> argument");
    };
    let Some(app) = Benchmark::from_label(app_name) else {
        usage_error(format!(
            "unknown app `{app_name}`; choose one of: {}",
            Benchmark::ALL.map(|b| b.label().to_lowercase()).join(", ")
        ));
    };
    let scale: u32 = positional.get(1).map_or(11, |s| parse_num("RMAT scale", s));
    let side: u32 = positional.get(2).map_or(16, |s| parse_num("grid side", s));
    let threads: usize = positional
        .get(3)
        .map_or(8, |s| parse_num("thread count", s));

    let base = SystemConfig::builder()
        .chiplet_tiles(side, side)
        .build()
        .unwrap_or_else(|e| usage_error(e));
    let cfg = apply_to_config(&base, &overrides).unwrap_or_else(|e| usage_error(e));

    let graph = Arc::new(RmatConfig::scale(scale).generate(42));
    println!(
        "running {} on RMAT-{scale} over {side}x{side} tiles with {threads} host threads...",
        app.label()
    );
    let result = match run_benchmark(app, cfg.clone(), &graph, threads) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("error: simulation failed: {e}");
            return 1;
        }
    };
    let failed = match &result.check_error {
        None => {
            println!("check: PASSED");
            false
        }
        Some(e) => {
            println!("check: FAILED ({e})");
            true
        }
    };
    if telemetry {
        println!(
            "telemetry: {} tiles | {:.3} Msimcycles/s | {:.3} Mpackets/s | \
             {:.0} bytes/tile ({:.1} MiB simulation state) | host {:.2}s x{} threads",
            result.total_tiles,
            result.sim_cycles_per_sec() / 1e6,
            result.packets_per_sec() / 1e6,
            result.bytes_per_tile(),
            result.host_state_bytes as f64 / (1u64 << 20) as f64,
            result.host_seconds,
            result.host_threads,
        );
    }
    let report = Report::from_counters(&cfg, &result.counters);
    emit(&format!("{}\n", report.to_json()));

    // the counters file: rerun post-processing later with new parameters
    let counters_path = std::path::Path::new("target").join("counters.json");
    let write = serde_json::to_string_pretty(&result.counters)
        .map_err(|e| e.to_string())
        .and_then(|json| std::fs::write(&counters_path, json).map_err(|e| e.to_string()));
    match write {
        Ok(()) => println!("counters file written to {}", counters_path.display()),
        Err(e) => {
            eprintln!("error: writing {}: {e}", counters_path.display());
            return 1;
        }
    }
    i32::from(failed)
}

fn cmd_sweep(args: Vec<String>) -> i32 {
    let mut spec_path: Option<String> = None;
    let mut store_path: Option<String> = None;
    let mut host_threads: Option<usize> = None;
    let mut csv = false;
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--spec" => {
                spec_path = Some(
                    args.next()
                        .unwrap_or_else(|| usage_error("--spec needs a FILE")),
                )
            }
            "--store" => {
                store_path = Some(
                    args.next()
                        .unwrap_or_else(|| usage_error("--store needs a FILE")),
                )
            }
            "--host-threads" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage_error("--host-threads needs a number"));
                host_threads = Some(parse_num("host-thread count", &v));
            }
            "--csv" => csv = true,
            other => usage_error(format!("unknown argument `{other}`")),
        }
    }
    let Some(spec_path) = spec_path else {
        usage_error("sweep needs --spec FILE");
    };
    let text = match std::fs::read_to_string(&spec_path) {
        Ok(text) => text,
        Err(e) => usage_error(format!("reading {spec_path}: {e}")),
    };
    let spec = ExperimentSpec::from_json(&text).unwrap_or_else(|e| usage_error(e));
    let store_path = store_path
        .unwrap_or_else(|| format!("target/dse/{}.jsonl", muchisim::dse::slug(&spec.name)));
    let host_threads =
        host_threads.unwrap_or_else(|| std::thread::available_parallelism().map_or(8, |n| n.get()));

    let points = match spec.expand() {
        Ok(points) => points,
        Err(e) => usage_error(e),
    };
    println!(
        "sweep `{}`: {} points ({} axes, {} apps, {} datasets), {} host threads x {} per run",
        spec.name,
        points.len(),
        spec.axes.len(),
        spec.apps.len(),
        spec.datasets.len(),
        host_threads,
        spec.threads_per_run,
    );
    let mut store = match JsonlStore::open(&store_path) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let outcome = match BatchRunner::new(host_threads).run_points(
        &points,
        spec.threads_per_run,
        &mut store,
    ) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    println!(
        "executed {} points, skipped {} already-completed points ({})",
        outcome.executed,
        outcome.skipped,
        store.path().display()
    );
    if outcome.check_failures > 0 {
        eprintln!(
            "warning: {} run(s) failed their result check",
            outcome.check_failures
        );
    }
    match print_table(&store, &[], csv) {
        Ok(()) if outcome.check_failures == 0 => 0,
        Ok(()) => 1,
        Err(code) => code,
    }
}

fn cmd_report(args: Vec<String>) -> i32 {
    let mut store_path: Option<String> = None;
    let mut overrides: Vec<Override> = Vec::new();
    let mut csv = false;
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => {
                store_path = Some(
                    args.next()
                        .unwrap_or_else(|| usage_error("--store needs a FILE")),
                )
            }
            "--set" => overrides.push(parse_set(&mut args)),
            "--csv" => csv = true,
            other => usage_error(format!("unknown argument `{other}`")),
        }
    }
    let Some(store_path) = store_path else {
        usage_error("report needs --store FILE");
    };
    let store = match JsonlStore::open(&store_path) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    if store.records().is_empty() {
        eprintln!("error: {store_path} holds no records");
        return 1;
    }
    let failed: Vec<&str> = store
        .records()
        .iter()
        .filter(|r| r.result.check_error.is_some())
        .map(|r| r.run_id.as_str())
        .collect();
    if !failed.is_empty() {
        eprintln!(
            "warning: {} stored run(s) failed their result check: {}",
            failed.len(),
            failed.join(", ")
        );
    }
    match print_table(&store, &overrides, csv) {
        Ok(()) if failed.is_empty() => 0,
        Ok(()) => 1,
        Err(code) => code,
    }
}

fn print_table(store: &JsonlStore, overrides: &[Override], csv: bool) -> Result<(), i32> {
    let table = table_from_store(store, overrides).map_err(|e| {
        eprintln!("error: {e}");
        1
    })?;
    if csv {
        emit(&table.to_csv());
    } else {
        emit(&format!("{}\n", table.to_text()));
    }
    Ok(())
}

/// Writes to stdout, exiting quietly when the consumer closed the pipe
/// (`muchisim report | head` must not panic with a backtrace).
fn emit(text: &str) {
    use std::io::Write;
    if std::io::stdout().write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}
