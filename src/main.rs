//! The `muchisim` command line.
//!
//! Four subcommands cover the paper's workflow end to end:
//!
//! * `muchisim run <app> [scale [side [threads]]]` — one simulation,
//!   report printed, counters file written for later post-processing;
//!   `--trace FILE` additionally records the NoC injection trace.
//! * `muchisim sweep --spec FILE` — a declarative design-space sweep
//!   (see [`muchisim::dse`]): points run concurrently, results stream
//!   into a resumable JSONL store, completed run IDs are skipped.
//! * `muchisim report --store FILE` — aggregate a store into the
//!   comparison table, optionally re-priced with `--set` overrides
//!   (energy/cost post-processing without re-simulation).
//! * `muchisim traffic sweep|replay` — NoC characterization: synthetic
//!   latency-vs-load saturation sweeps and app-free replay of a
//!   recorded communication trace (see [`muchisim::traffic`]).
//!
//! Argument parsing is strict: unparseable numbers and unknown flags are
//! errors (exit code 2), never silently replaced with defaults.

use muchisim::apps::{run_benchmark, Benchmark};
use muchisim::config::{
    ConvergedWard, NocTopology, SystemConfig, TelemetryParams, TrafficPattern, WardMetric,
};
use muchisim::core::SimError;
use muchisim::data::rmat::RmatConfig;
use muchisim::dse::{
    apply_to_config, parse_assignment, parse_json_or_string, table_from_store, BatchRunner,
    ExperimentSpec, JsonlStore, Override,
};
use muchisim::energy::Report;
use muchisim::traffic::{saturation_sweep, SaturationCurve, TraceReplayApp};
use muchisim::viz::{LoadLatencyRow, LoadLatencyTable};
use std::fmt::Display;
use std::str::FromStr;
use std::sync::Arc;

const USAGE: &str = "\
muchisim — MuchiSim: design exploration for multi-chip manycore systems

USAGE:
    muchisim run <app> [scale [side [threads]]] [--telemetry] [--seed N]
                 [--threads N] [--no-active-list] [--trace FILE]
                 [--checkpoint FILE] [--checkpoint-every N] [--resume]
                 [--metrics FILE] [--metrics-csv FILE] [--sample-every N]
                 [--progress] [--ward KEY=VALUE]...
                 [--set KEY=VALUE]...
    muchisim sweep --spec FILE [--store FILE] [--host-threads N] [--seed N]
                 [--sample-every N] [--csv]
    muchisim report --store FILE [--set KEY=VALUE]... [--csv]
    muchisim traffic sweep [--pattern P] [--rates R,R,...] [--side N]
                 [--topo mesh|torus|ruche] [--threads N] [--seed N]
                 [--csv] [--set KEY=VALUE]...
    muchisim traffic replay --trace FILE [--side N] [--threads N]
                 [--set KEY=VALUE]...

SUBCOMMANDS:
    run      Run one benchmark on an RMAT graph and print its report.
             <app> is a suite label (bfs, sssp, page, wcc, spmv, spmm,
             histo, fft) or a synthetic-traffic workload (traf-uniform,
             traf-bitcomp, traf-transpose, traf-shuffle, traf-neighbor,
             traf-hotspot); scale is the RMAT scale (default 11), side
             the square grid side in tiles (default 16), threads the
             host threads (default 8). --seed seeds both the dataset
             generator and traffic.seed; --trace records every NoC
             injection to FILE (JSONL) for later replay. --telemetry
             additionally prints simulator throughput and the host
             memory footprint. --threads N overrides the positional
             thread count; --no-active-list disables the active-tile
             worklists (full per-cycle sweeps, bit-identical results,
             shorthand for --set active_list=false).
             --checkpoint FILE snapshots the full simulation state to
             FILE periodically (--checkpoint-every N cycles, default
             10000); with --resume the run restores FILE first, if it
             exists, and continues bit-identically from its cycle (see
             docs/CHECKPOINT.md). Incompatible with --trace.
             --metrics FILE streams a schema-versioned JSONL metrics
             sample every --sample-every N cycles (default 1024);
             --metrics-csv FILE streams the same samples as CSV;
             --progress rewrites a live stdout line
             (cycle / sim-cyc/s / active% / ETA). --ward KEY=VALUE
             (repeatable) arms a declarative stop-condition on the
             sample stream (see docs/OBSERVABILITY.md):
               max_cycles=N        stop at cycle N
               stall=N             stall watchdog: no task executes and
                                   no flit moves for N cycles
               converged=M:EPS[:W] metric M delta within EPS for W
                                   samples (M: tasks, injected, pending,
                                   latency_mean; W default 3)
               diverged_queue=F    pending work grew past F x baseline
               diverged_latency=F  interval latency past F x baseline
               snapshot=BOOL       write a post-mortem snapshot to the
                                   --checkpoint FILE on any trip
             A tripped ward prints its diagnostic report and exits 3.
    sweep    Expand a JSON experiment spec into run points, execute the
             ones missing from the store concurrently, and print the
             comparison table. Re-invoking skips completed run IDs.
             --seed appends a traffic.seed override to the spec's base.
             --sample-every N streams live per-point metrics into
             <store>.metrics/<run_id>.jsonl while the sweep runs. Specs
             may arm telemetry wards (telemetry.wards.* overrides); a
             tripped point is recorded with termination ward:<name>, not
             treated as a batch failure.
    report   Rebuild the comparison table from a result store without
             re-simulating; --set re-prices the stored runs under
             different model parameters.
    traffic  NoC characterization. `traffic sweep` runs a synthetic
             pattern (default uniform) across ascending offered loads
             (--rates, packets/tile/cycle) on a side×side grid
             (default 8, 4 PUs/tile) and prints the latency-vs-load
             table plus the detected saturation rate. `traffic replay`
             re-injects a trace recorded with `run --trace`, app-free,
             under the configuration given by --side/--set.

COMMON OPTIONS:
    --set KEY=VALUE   Configuration override (repeatable), e.g.
                      --set sram_kib_per_tile=64 --set traffic.rate=0.08
    --csv             Print the table as CSV instead of aligned text.
    -h, --help        Show this help.
";

fn usage_error(msg: impl Display) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run `muchisim --help` for usage");
    std::process::exit(2);
}

fn parse_num<T: FromStr>(what: &str, text: &str) -> T
where
    T::Err: Display,
{
    text.parse()
        .unwrap_or_else(|e| usage_error(format!("invalid {what} `{text}`: {e}")))
}

fn parse_set(args: &mut std::iter::Peekable<std::vec::IntoIter<String>>) -> Override {
    let Some(assignment) = args.next() else {
        usage_error("--set needs a KEY=VALUE argument");
    };
    parse_assignment(&assignment).unwrap_or_else(|e| usage_error(e))
}

/// Applies one `--ward KEY=VALUE` assignment to the telemetry params.
fn apply_ward(assignment: &str, t: &mut TelemetryParams) {
    let Some((key, value)) = assignment.split_once('=') else {
        usage_error(format!("--ward needs KEY=VALUE, got `{assignment}`"));
    };
    match key {
        "max_cycles" => t.wards.max_cycles = Some(parse_num("max_cycles ward", value)),
        "stall" => t.wards.stall_cycles = Some(parse_num("stall ward span", value)),
        "converged" => {
            let mut parts = value.split(':');
            let name = parts.next().unwrap_or("");
            let metric = WardMetric::from_label(name).unwrap_or_else(|| {
                usage_error(format!(
                    "unknown converged metric `{name}`; choose one of: {}",
                    WardMetric::ALL.map(WardMetric::label).join(", ")
                ))
            });
            let Some(eps) = parts.next() else {
                usage_error("converged ward needs METRIC:EPSILON[:WINDOW]");
            };
            let epsilon: f64 = parse_num("converged epsilon", eps);
            let window: u32 = parts.next().map_or(3, |w| parse_num("converged window", w));
            if parts.next().is_some() {
                usage_error(format!("converged ward `{value}` has too many `:` parts"));
            }
            t.wards.converged = Some(ConvergedWard {
                metric,
                epsilon,
                window,
            });
        }
        "diverged_queue" => {
            t.wards.diverged_queue_factor = Some(parse_num("diverged_queue factor", value))
        }
        "diverged_latency" => {
            t.wards.diverged_latency_factor = Some(parse_num("diverged_latency factor", value))
        }
        "snapshot" => t.snapshot_on_trip = parse_num("snapshot flag", value),
        other => usage_error(format!(
            "unknown ward `{other}`; choose one of: max_cycles, stall, converged, \
             diverged_queue, diverged_latency, snapshot"
        )),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        print!("{USAGE}");
        return;
    }
    if args.is_empty() {
        usage_error("missing subcommand (run, sweep, or report)");
    }
    let sub = args.remove(0);
    let code = match sub.as_str() {
        "run" => cmd_run(args),
        "sweep" => cmd_sweep(args),
        "report" => cmd_report(args),
        "traffic" => cmd_traffic(args),
        other => usage_error(format!("unknown subcommand `{other}`")),
    };
    std::process::exit(code);
}

fn cmd_run(args: Vec<String>) -> i32 {
    let mut positional: Vec<String> = Vec::new();
    let mut overrides: Vec<Override> = Vec::new();
    let mut telemetry = false;
    let mut seed: Option<u64> = None;
    let mut trace_path: Option<String> = None;
    let mut threads_flag: Option<usize> = None;
    let mut no_active_list = false;
    let mut checkpoint_path: Option<String> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut resume = false;
    let mut metrics_path: Option<String> = None;
    let mut metrics_csv: Option<String> = None;
    let mut sample_every: Option<u64> = None;
    let mut progress = false;
    let mut ward_args: Vec<String> = Vec::new();
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--set" => overrides.push(parse_set(&mut args)),
            "--metrics" => {
                metrics_path = Some(
                    args.next()
                        .unwrap_or_else(|| usage_error("--metrics needs a FILE")),
                )
            }
            "--metrics-csv" => {
                metrics_csv = Some(
                    args.next()
                        .unwrap_or_else(|| usage_error("--metrics-csv needs a FILE")),
                )
            }
            "--sample-every" => {
                sample_every = Some(parse_flag_value(
                    &mut args,
                    "--sample-every",
                    "sample cadence",
                ))
            }
            "--progress" => progress = true,
            "--ward" => ward_args.push(
                args.next()
                    .unwrap_or_else(|| usage_error("--ward needs a KEY=VALUE argument")),
            ),
            "--telemetry" => telemetry = true,
            "--seed" => seed = Some(parse_flag_value(&mut args, "--seed", "seed")),
            "--threads" => {
                threads_flag = Some(parse_flag_value(&mut args, "--threads", "thread count"))
            }
            "--no-active-list" => no_active_list = true,
            "--trace" => {
                trace_path = Some(
                    args.next()
                        .unwrap_or_else(|| usage_error("--trace needs a FILE")),
                )
            }
            "--checkpoint" => {
                checkpoint_path = Some(
                    args.next()
                        .unwrap_or_else(|| usage_error("--checkpoint needs a FILE")),
                )
            }
            "--checkpoint-every" => {
                checkpoint_every = Some(parse_flag_value(
                    &mut args,
                    "--checkpoint-every",
                    "checkpoint cadence",
                ))
            }
            "--resume" => resume = true,
            flag if flag.starts_with('-') => usage_error(format!("unknown flag `{flag}`")),
            _ => positional.push(arg),
        }
    }
    if positional.len() > 4 {
        usage_error(format!("unexpected argument `{}`", positional[4]));
    }
    let Some(app_name) = positional.first() else {
        usage_error("run needs an <app> argument");
    };
    let Some(app) = Benchmark::from_label(app_name) else {
        usage_error(format!(
            "unknown app `{app_name}`; choose one of: {}",
            Benchmark::ALL.map(|b| b.label().to_lowercase()).join(", ")
        ));
    };
    let scale: u32 = positional.get(1).map_or(11, |s| parse_num("RMAT scale", s));
    let side: u32 = positional.get(2).map_or(16, |s| parse_num("grid side", s));
    let threads: usize = threads_flag.unwrap_or_else(|| {
        positional
            .get(3)
            .map_or(8, |s| parse_num("thread count", s))
    });

    let mut builder = SystemConfig::builder();
    builder.chiplet_tiles(side, side);
    if let Some(path) = &trace_path {
        builder.noc_trace(path.clone());
    }
    let base = builder.build().unwrap_or_else(|e| usage_error(e));
    let mut cfg = apply_to_config(&base, &overrides).unwrap_or_else(|e| usage_error(e));
    if no_active_list {
        cfg.active_list = false;
    }
    // telemetry flags layer on top of any --set telemetry.* overrides
    // (explicit flags win); an unset cadence defaults to 1024 cycles
    let telemetry_flags = metrics_path.is_some()
        || metrics_csv.is_some()
        || sample_every.is_some()
        || progress
        || !ward_args.is_empty();
    if telemetry_flags {
        let t = &mut cfg.telemetry;
        if metrics_path.is_some() {
            t.metrics_path = metrics_path.clone();
        }
        if metrics_csv.is_some() {
            t.metrics_csv = metrics_csv.clone();
        }
        if progress {
            t.progress = true;
        }
        for w in &ward_args {
            apply_ward(w, t);
        }
        match sample_every {
            Some(n) => t.sample_every = Some(n),
            None => t.sample_every = t.sample_every.or(Some(1024)),
        }
    }
    // checkpoint flags land after the builder, so re-validate: the
    // checkpoint rules (path required, incompatible with --trace) must
    // fail at the command line, not one snapshot cadence into the run
    if checkpoint_path.is_some() || checkpoint_every.is_some() || resume {
        cfg.checkpoint_path = checkpoint_path;
        if cfg.checkpoint_path.is_some() {
            cfg.checkpoint_every = Some(checkpoint_every.unwrap_or(10_000));
        } else if checkpoint_every.is_some() {
            usage_error("--checkpoint-every needs --checkpoint FILE");
        }
        cfg.checkpoint_resume = resume;
        if let Err(e) = cfg.validate() {
            usage_error(e);
        }
    } else if telemetry_flags {
        // the telemetry rules (cadence non-zero, snapshot ward needs a
        // checkpoint path) must also fail at the command line
        if let Err(e) = cfg.validate() {
            usage_error(e);
        }
    }
    // --seed drives both generators so one flag makes the whole run
    // reproducible; an explicit --set traffic.seed still wins
    let graph_seed = seed.unwrap_or(42);
    if let Some(s) = seed {
        if !overrides.iter().any(|(k, _)| k == "traffic.seed") {
            cfg.traffic.seed = s;
        }
    }

    let graph = Arc::new(RmatConfig::scale(scale).generate(graph_seed));
    println!(
        "running {} on RMAT-{scale} (seed {graph_seed}) over {side}x{side} tiles \
         with {threads} host threads...",
        app.label()
    );
    let result = match run_benchmark(app, cfg.clone(), &graph, threads) {
        Ok(result) => result,
        Err(SimError::Ward(report)) => {
            // a tripped ward is a structured diagnostic, not a crash:
            // print the report (with its per-tile backlogs) and use a
            // distinct exit code so scripts can branch on it
            eprintln!("{report}");
            if let Some(partial) = &report.partial {
                eprintln!(
                    "partial result: {} cycles simulated, {} tasks executed",
                    partial.runtime_cycles, partial.counters.pu.tasks_executed
                );
            }
            return 3;
        }
        Err(e) => {
            eprintln!("error: simulation failed: {e}");
            return 1;
        }
    };
    let failed = match &result.check_error {
        None => {
            println!("check: PASSED");
            false
        }
        Some(e) => {
            println!("check: FAILED ({e})");
            true
        }
    };
    if telemetry {
        println!(
            "telemetry: {} tiles | {:.3} Msimcycles/s | {:.3} Mpackets/s | \
             {:.0} bytes/tile ({:.1} MiB simulation state) | host {:.2}s x{} threads",
            result.total_tiles,
            result.sim_cycles_per_sec() / 1e6,
            result.packets_per_sec() / 1e6,
            result.bytes_per_tile(),
            result.host_state_bytes as f64 / (1u64 << 20) as f64,
            result.host_seconds,
            result.host_threads,
        );
        let ph = &result.host_phase_ns;
        println!(
            "telemetry: host phases pu {:.3}s | inject {:.3}s | net {:.3}s | \
             worklist {:.3}s ({:.1}% of attributed time)",
            ph.pu as f64 / 1e9,
            ph.inject as f64 / 1e9,
            ph.net as f64 / 1e9,
            ph.worklist as f64 / 1e9,
            ph.worklist_share() * 100.0,
        );
        let lat = &result.noc_latency;
        println!(
            "telemetry: noc latency mean {:.1} | p50 {} | p95 {} | p99 {} | \
             max {} cycles over {} packets",
            lat.mean(),
            lat.percentile(0.50),
            lat.percentile(0.95),
            lat.percentile(0.99),
            lat.max_cycles,
            lat.count,
        );
    }
    let report = Report::from_counters(&cfg, &result.counters);
    emit(&format!("{}\n", report.to_json()));

    // the counters file: rerun post-processing later with new parameters
    let counters_path = std::path::Path::new("target").join("counters.json");
    let write = serde_json::to_string_pretty(&result.counters)
        .map_err(|e| e.to_string())
        .and_then(|json| std::fs::write(&counters_path, json).map_err(|e| e.to_string()));
    match write {
        Ok(()) => println!("counters file written to {}", counters_path.display()),
        Err(e) => {
            eprintln!("error: writing {}: {e}", counters_path.display());
            return 1;
        }
    }
    if let Some(path) = &trace_path {
        println!(
            "NoC trace written to {path} (replay with `muchisim traffic replay --trace {path}`)"
        );
    }
    if let Some(path) = &metrics_path {
        println!("metrics stream written to {path}");
    }
    if let Some(path) = &metrics_csv {
        println!("metrics CSV written to {path}");
    }
    i32::from(failed)
}

/// Parses the value of `flag` from the next argument, exiting 2 when it
/// is missing or malformed.
fn parse_flag_value<T: FromStr>(
    args: &mut std::iter::Peekable<std::vec::IntoIter<String>>,
    flag: &str,
    what: &str,
) -> T
where
    T::Err: Display,
{
    let Some(text) = args.next() else {
        usage_error(format!("{flag} needs a value"));
    };
    parse_num(what, &text)
}

fn cmd_sweep(args: Vec<String>) -> i32 {
    let mut spec_path: Option<String> = None;
    let mut store_path: Option<String> = None;
    let mut host_threads: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut sample_every: Option<u64> = None;
    let mut csv = false;
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => seed = Some(parse_flag_value(&mut args, "--seed", "seed")),
            "--sample-every" => {
                sample_every = Some(parse_flag_value(
                    &mut args,
                    "--sample-every",
                    "sample cadence",
                ))
            }
            "--spec" => {
                spec_path = Some(
                    args.next()
                        .unwrap_or_else(|| usage_error("--spec needs a FILE")),
                )
            }
            "--store" => {
                store_path = Some(
                    args.next()
                        .unwrap_or_else(|| usage_error("--store needs a FILE")),
                )
            }
            "--host-threads" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage_error("--host-threads needs a number"));
                host_threads = Some(parse_num("host-thread count", &v));
            }
            "--csv" => csv = true,
            other => usage_error(format!("unknown argument `{other}`")),
        }
    }
    let Some(spec_path) = spec_path else {
        usage_error("sweep needs --spec FILE");
    };
    let text = match std::fs::read_to_string(&spec_path) {
        Ok(text) => text,
        Err(e) => usage_error(format!("reading {spec_path}: {e}")),
    };
    let mut spec = ExperimentSpec::from_json(&text).unwrap_or_else(|e| usage_error(e));
    if let Some(s) = seed {
        // one flag reseeds the whole sweep's synthetic traffic; applied
        // to the base so every axis point inherits it
        spec.base.push((
            "traffic.seed".to_string(),
            parse_json_or_string(&s.to_string()),
        ));
        // run IDs don't encode base overrides, so a differently-seeded
        // sweep must not resume a same-named store and skip everything;
        // renaming the spec gives each seed its own default store (an
        // explicit --store is the caller's responsibility and is warned)
        spec.name = format!("{}-seed{s}", spec.name);
        if store_path.is_some() {
            eprintln!(
                "warning: --seed changes results but not run IDs; \
                 use a fresh --store per seed or completed IDs will be skipped"
            );
        }
    }
    let store_path = store_path
        .unwrap_or_else(|| format!("target/dse/{}.jsonl", muchisim::dse::slug(&spec.name)));
    let host_threads =
        host_threads.unwrap_or_else(|| std::thread::available_parallelism().map_or(8, |n| n.get()));

    let points = match spec.expand() {
        Ok(points) => points,
        Err(e) => usage_error(e),
    };
    println!(
        "sweep `{}`: {} points ({} axes, {} apps, {} datasets), {} host threads x {} per run",
        spec.name,
        points.len(),
        spec.axes.len(),
        spec.apps.len(),
        spec.datasets.len(),
        host_threads,
        spec.threads_per_run,
    );
    let mut store = match JsonlStore::open(&store_path) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let mut runner = BatchRunner::new(host_threads);
    if let Some(every) = sample_every {
        if every == 0 {
            usage_error("--sample-every must be >= 1");
        }
        runner = runner.with_sample_every(every);
        println!(
            "live metrics: one stream per point under {store_path}.metrics/ \
             (every {every} cycles)"
        );
    }
    let outcome = match runner.run_points(&points, spec.threads_per_run, &mut store) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    println!(
        "executed {} points, skipped {} already-completed points ({})",
        outcome.executed,
        outcome.skipped,
        store.path().display()
    );
    if outcome.ward_trips > 0 {
        println!(
            "{} point(s) were terminated by a telemetry ward (see the `term` column)",
            outcome.ward_trips
        );
    }
    if outcome.check_failures > 0 {
        eprintln!(
            "warning: {} run(s) failed their result check",
            outcome.check_failures
        );
    }
    match print_table(&store, &[], csv) {
        Ok(()) if outcome.check_failures == 0 => 0,
        Ok(()) => 1,
        Err(code) => code,
    }
}

fn cmd_report(args: Vec<String>) -> i32 {
    let mut store_path: Option<String> = None;
    let mut overrides: Vec<Override> = Vec::new();
    let mut csv = false;
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => {
                store_path = Some(
                    args.next()
                        .unwrap_or_else(|| usage_error("--store needs a FILE")),
                )
            }
            "--set" => overrides.push(parse_set(&mut args)),
            "--csv" => csv = true,
            other => usage_error(format!("unknown argument `{other}`")),
        }
    }
    let Some(store_path) = store_path else {
        usage_error("report needs --store FILE");
    };
    let store = match JsonlStore::open(&store_path) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    if store.records().is_empty() {
        eprintln!("error: {store_path} holds no records");
        return 1;
    }
    let failed: Vec<&str> = store
        .records()
        .iter()
        .filter(|r| r.result.check_error.is_some())
        .map(|r| r.run_id.as_str())
        .collect();
    if !failed.is_empty() {
        eprintln!(
            "warning: {} stored run(s) failed their result check: {}",
            failed.len(),
            failed.join(", ")
        );
    }
    match print_table(&store, &overrides, csv) {
        Ok(()) if failed.is_empty() => 0,
        Ok(()) => 1,
        Err(code) => code,
    }
}

fn cmd_traffic(mut args: Vec<String>) -> i32 {
    if args.is_empty() {
        usage_error("traffic needs a subcommand (sweep or replay)");
    }
    let sub = args.remove(0);
    match sub.as_str() {
        "sweep" => cmd_traffic_sweep(args),
        "replay" => cmd_traffic_replay(args),
        other => usage_error(format!("unknown traffic subcommand `{other}`")),
    }
}

/// Builds the traffic base configuration: a square grid with 4 PUs per
/// tile (so receive handlers never bottleneck ahead of the network) and
/// the requested topology, then user overrides on top.
fn traffic_config(side: u32, topo: &str, overrides: &[Override]) -> SystemConfig {
    let mut builder = SystemConfig::builder();
    builder.chiplet_tiles(side, side).pus_per_tile(4);
    match topo {
        "mesh" => builder.noc_topology(NocTopology::Mesh),
        "torus" => builder.noc_topology(NocTopology::FoldedTorus),
        "ruche" => builder.noc_topology(NocTopology::Mesh).ruche_factor(2),
        other => usage_error(format!(
            "unknown topology `{other}`; expected mesh, torus, or ruche"
        )),
    };
    let base = builder.build().unwrap_or_else(|e| usage_error(e));
    apply_to_config(&base, overrides).unwrap_or_else(|e| usage_error(e))
}

fn cmd_traffic_sweep(args: Vec<String>) -> i32 {
    let mut pattern = TrafficPattern::UniformRandom;
    let mut rates: Vec<f64> = vec![0.02, 0.05, 0.1, 0.2, 0.35, 0.5];
    let mut side = 8u32;
    let mut topo = "mesh".to_string();
    let mut threads = 4usize;
    let mut seed: Option<u64> = None;
    let mut overrides: Vec<Override> = Vec::new();
    let mut csv = false;
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--pattern" => {
                let name: String = args
                    .next()
                    .unwrap_or_else(|| usage_error("--pattern needs a name"));
                pattern = TrafficPattern::from_label(&name).unwrap_or_else(|| {
                    usage_error(format!(
                        "unknown pattern `{name}`; choose one of: {}",
                        TrafficPattern::ALL.map(TrafficPattern::label).join(", ")
                    ))
                });
            }
            "--rates" => {
                let list: String = args
                    .next()
                    .unwrap_or_else(|| usage_error("--rates needs a comma-separated list"));
                rates = list
                    .split(',')
                    .map(|r| parse_num("offered rate", r.trim()))
                    .collect();
                if rates.is_empty() {
                    usage_error("--rates lists no rates");
                }
                // saturation detection baselines on the first point, so
                // the list must really be ascending offered load
                if rates.windows(2).any(|w| w[0] >= w[1]) {
                    usage_error(format!("--rates must be strictly ascending (got {list})"));
                }
            }
            "--side" => side = parse_flag_value(&mut args, "--side", "grid side"),
            "--topo" => {
                topo = args
                    .next()
                    .unwrap_or_else(|| usage_error("--topo needs a name"))
            }
            "--threads" => threads = parse_flag_value(&mut args, "--threads", "thread count"),
            "--seed" => seed = Some(parse_flag_value(&mut args, "--seed", "seed")),
            "--csv" => csv = true,
            "--set" => overrides.push(parse_set(&mut args)),
            other => usage_error(format!("unknown argument `{other}`")),
        }
    }
    let mut cfg = traffic_config(side, &topo, &overrides);
    // an explicit --set traffic.seed wins, matching `run`'s precedence
    if let Some(s) = seed {
        if !overrides.iter().any(|(k, _)| k == "traffic.seed") {
            cfg.traffic.seed = s;
        }
    }
    println!(
        "traffic sweep: {} on {side}x{side} {topo}, {} rates, window {} cycles, seed {}",
        pattern.label(),
        rates.len(),
        cfg.traffic.cycles,
        cfg.traffic.seed,
    );
    let curve = match saturation_sweep(&cfg, pattern, &rates, threads) {
        Ok(curve) => curve,
        Err(e) => {
            eprintln!("error: traffic sweep failed: {e}");
            return 1;
        }
    };
    let label = format!("{topo}/{}", pattern.label());
    let table = curve_table(&label, &curve);
    if csv {
        emit(&table.to_csv());
    } else {
        emit(&table.to_text());
    }
    match curve.saturation_point(3.0) {
        Some(p) => println!(
            "saturation: offered {:.3} packets/tile/cycle (accepted {:.3}, \
             mean latency {:.1} cycles vs {:.1} at zero load)",
            p.offered,
            p.achieved,
            p.avg_latency,
            curve.base_latency().unwrap_or(0.0),
        ),
        None => println!("saturation: not reached within the swept rates"),
    }
    0
}

/// Converts a saturation curve into the viz latency-vs-load table.
fn curve_table(label: &str, curve: &SaturationCurve) -> LoadLatencyTable {
    let mut table = LoadLatencyTable::default();
    for p in &curve.points {
        table.push(LoadLatencyRow {
            series: label.to_string(),
            offered: p.offered,
            achieved: p.achieved,
            avg_latency: p.avg_latency,
            p50_latency: p.p50_latency,
            p95_latency: p.p95_latency,
            p99_latency: p.p99_latency,
            max_latency: p.max_latency,
        });
    }
    table
}

fn cmd_traffic_replay(args: Vec<String>) -> i32 {
    let mut trace_path: Option<String> = None;
    let mut side = 16u32;
    let mut threads = 4usize;
    let mut overrides: Vec<Override> = Vec::new();
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => {
                trace_path = Some(
                    args.next()
                        .unwrap_or_else(|| usage_error("--trace needs a FILE")),
                )
            }
            "--side" => side = parse_flag_value(&mut args, "--side", "grid side"),
            "--threads" => threads = parse_flag_value(&mut args, "--threads", "thread count"),
            "--set" => overrides.push(parse_set(&mut args)),
            other => usage_error(format!("unknown argument `{other}`")),
        }
    }
    let Some(trace_path) = trace_path else {
        usage_error("replay needs --trace FILE");
    };
    let base = SystemConfig::builder()
        .chiplet_tiles(side, side)
        .build()
        .unwrap_or_else(|e| usage_error(e));
    let cfg = apply_to_config(&base, &overrides).unwrap_or_else(|e| usage_error(e));
    let tiles = cfg.total_tiles() as u32;
    let app = match TraceReplayApp::from_file(&trace_path, tiles) {
        Ok(app) => app,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    println!(
        "replaying {} packets (last injection at cycle {}) on {side}x{side} \
         with {threads} host threads...",
        app.total_packets(),
        app.last_cycle(),
    );
    let result = match muchisim::core::Simulation::new(cfg, app) {
        Ok(sim) => match sim.run_parallel(threads) {
            Ok(result) => result,
            Err(e) => {
                eprintln!("error: replay failed: {e}");
                return 1;
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    if let Some(why) = &result.check_error {
        eprintln!("error: replay check failed: {why}");
        return 1;
    }
    let noc = &result.counters.noc;
    println!(
        "replay done: {} injected | {} ejected | {} combines | {} msg hops | \
         runtime {} cycles | latency mean {:.1} p95 {} max {}",
        noc.injected,
        noc.ejected,
        noc.reduce_combines,
        noc.msg_hops,
        result.runtime_cycles,
        result.noc_latency.mean(),
        result.noc_latency.percentile(0.95),
        result.noc_latency.max_cycles,
    );
    0
}

fn print_table(store: &JsonlStore, overrides: &[Override], csv: bool) -> Result<(), i32> {
    let table = table_from_store(store, overrides).map_err(|e| {
        eprintln!("error: {e}");
        1
    })?;
    if csv {
        emit(&table.to_csv());
    } else {
        emit(&format!("{}\n", table.to_text()));
    }
    Ok(())
}

/// Writes to stdout, exiting quietly when the consumer closed the pipe
/// (`muchisim report | head` must not panic with a backtrace).
fn emit(text: &str) {
    use std::io::Write;
    if std::io::stdout().write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}
