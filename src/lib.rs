//! # MuchiSim (Rust)
//!
//! A from-scratch Rust reproduction of **MuchiSim: A Simulation Framework
//! for Design Exploration of Multi-Chip Manycore Systems** (ISPASS 2024).
//!
//! MuchiSim is a parallel, application-level simulator for tiled,
//! distributed manycore architectures running data-dependent
//! communication-intensive applications (graph analytics, sparse linear
//! algebra, HPC kernels). It models the NoC cycle by cycle at flit
//! granularity, the memory system including PLM-as-cache and HBM channel
//! contention, executes application tasks functionally on the host with
//! user-instrumented latencies, and reports performance, energy, area,
//! and fabrication cost.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`config`] | `muchisim-config` | DUT configuration, Table I parameter defaults |
//! | [`data`] | `muchisim-data` | RMAT/Kronecker datasets, CSR, partitioning |
//! | [`noc`] | `muchisim-noc` | cycle-level mesh/torus/Ruche NoC with reduction trees |
//! | [`mem`] | `muchisim-mem` | PLM scratchpad/cache, SRAM scaling, HBM channels |
//! | [`core`] | `muchisim-core` | the engine: MTT API, TSU, kernels, parallel driver |
//! | [`energy`] | `muchisim-energy` | energy / area / cost / yield models, post-processing |
//! | [`apps`] | `muchisim-apps` | the 8-application benchmark suite |
//! | [`telemetry`] | `muchisim-telemetry` | live metric streams, subscribers, ward engine |
//! | [`traffic`] | `muchisim-traffic` | synthetic traffic patterns, trace replay, saturation sweeps |
//! | [`viz`] | `muchisim-viz` | report tables, time series, heat-map frames |
//! | [`dse`] | `muchisim-dse` | declarative sweeps, parallel batch runner, resumable stores |
//!
//! # Quickstart
//!
//! ```
//! use muchisim::config::SystemConfig;
//! use muchisim::core::Simulation;
//! use muchisim::apps::{Bfs, SyncMode};
//! use muchisim::data::rmat::RmatConfig;
//! use muchisim::energy::Report;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = SystemConfig::builder().chiplet_tiles(8, 8).build()?;
//! let graph = std::sync::Arc::new(RmatConfig::scale(8).generate(42));
//! let app = Bfs::new(graph, cfg.total_tiles() as u32, 0, SyncMode::Async);
//! let result = Simulation::new(cfg.clone(), app)?.run()?;
//! assert!(result.check_error.is_none());
//! let report = Report::from_counters(&cfg, &result.counters);
//! println!("runtime {} power {:.1} W", result.runtime, report.average_power_w);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use muchisim_apps as apps;
pub use muchisim_config as config;
pub use muchisim_core as core;
pub use muchisim_data as data;
pub use muchisim_dse as dse;
pub use muchisim_energy as energy;
pub use muchisim_mem as mem;
pub use muchisim_noc as noc;
pub use muchisim_telemetry as telemetry;
pub use muchisim_traffic as traffic;
pub use muchisim_viz as viz;
