#!/usr/bin/env bash
# Checks that every relative markdown link and every backtick-quoted
# repo path mentioned in README.md and docs/*.md points at a file or
# directory that actually exists. Keeps the documentation honest as the
# tree moves: a renamed crate, test, or spec fails CI instead of
# leaving a dangling reference.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

check() {
    local doc="$1" target="$2"
    # strip anchors and trailing punctuation
    target="${target%%#*}"
    [ -z "$target" ] && return 0
    case "$target" in
        http://*|https://*|mailto:*) return 0 ;;
    esac
    local base
    base="$(dirname "$doc")"
    if [ ! -e "$target" ] && [ ! -e "$base/$target" ]; then
        echo "BROKEN: $doc -> $target"
        fail=1
    fi
}

for doc in README.md docs/*.md; do
    # 1. markdown links: [text](target)
    while IFS= read -r target; do
        check "$doc" "$target"
    done < <(grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//')

    # 2. backtick-quoted repo paths: `crates/...`, `tests/...`, etc.
    while IFS= read -r target; do
        check "$doc" "$target"
    done < <(grep -o '`\(crates\|tests\|docs\|specs\|scripts\|src\|vendor\)/[A-Za-z0-9_./-]*`' "$doc" \
             | tr -d '\`' | sed 's|/$||')
done

if [ "$fail" -ne 0 ]; then
    echo "documentation references broken paths (see above)"
    exit 1
fi
echo "all documentation links and repo paths resolve"
