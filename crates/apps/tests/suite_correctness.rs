//! End-to-end functional correctness of every suite application: each
//! kernel runs on the cycle-level simulator and must reproduce the
//! host-computed reference result.

use muchisim_apps::{run_benchmark, Benchmark, Bfs, Sssp, SyncMode, Wcc};
use muchisim_config::{DramConfig, NocTopology, SystemConfig};
use muchisim_core::Simulation;
use muchisim_data::rmat::RmatConfig;
use muchisim_data::synthetic::{grid_2d, uniform_random};
use muchisim_data::Csr;
use std::sync::Arc;

fn cfg_8x8() -> SystemConfig {
    SystemConfig::builder().chiplet_tiles(8, 8).build().unwrap()
}

fn rmat8() -> Arc<Csr> {
    Arc::new(RmatConfig::scale(8).generate(11))
}

#[test]
fn all_graph_benchmarks_pass_their_checks() {
    let graph = rmat8();
    for bench in Benchmark::GRAPH_DRIVEN {
        let result = run_benchmark(bench, cfg_8x8(), &graph, 1)
            .unwrap_or_else(|e| panic!("{bench} failed to run: {e}"));
        assert!(
            result.check_error.is_none(),
            "{bench} check failed: {:?}",
            result.check_error
        );
        assert!(result.runtime_cycles > 0, "{bench}");
        assert!(result.counters.pu.tasks_executed > 0, "{bench}");
    }
}

#[test]
fn fft_passes_on_square_grid() {
    let graph = rmat8(); // ignored by FFT
    let result = run_benchmark(Benchmark::Fft, cfg_8x8(), &graph, 1).unwrap();
    assert!(result.check_error.is_none(), "{:?}", result.check_error);
    // 3 sweeps x 64 pencil FFTs of length 8: 12 butterflies x 10 flops
    assert_eq!(result.counters.pu.fp_ops, 3 * 64 * 12 * 10);
}

#[test]
fn bfs_barrier_matches_async() {
    let graph = Arc::new(grid_2d(16, 16));
    let a = Simulation::new(cfg_8x8(), Bfs::new(graph.clone(), 64, 0, SyncMode::Async))
        .unwrap()
        .run()
        .unwrap();
    let b = Simulation::new(cfg_8x8(), Bfs::new(graph, 64, 0, SyncMode::Barrier))
        .unwrap()
        .run()
        .unwrap();
    assert!(a.check_error.is_none(), "{:?}", a.check_error);
    assert!(b.check_error.is_none(), "{:?}", b.check_error);
    // barrier variant runs one kernel per BFS level
    assert!(b.runtime_cycles > 0);
}

#[test]
fn sssp_barrier_variant_converges() {
    let graph = Arc::new(uniform_random(128, 1024, 5));
    let app = Sssp::new(graph, 64, 0, SyncMode::Barrier);
    let result = Simulation::new(cfg_8x8(), app).unwrap().run().unwrap();
    assert!(result.check_error.is_none(), "{:?}", result.check_error);
}

#[test]
fn wcc_barrier_variant_converges() {
    let graph = Arc::new(uniform_random(96, 300, 9));
    let app = Wcc::new(graph, 64, SyncMode::Barrier);
    let result = Simulation::new(cfg_8x8(), app).unwrap().run().unwrap();
    assert!(result.check_error.is_none(), "{:?}", result.check_error);
}

#[test]
fn reduction_tagged_bfs_still_correct_and_saves_messages() {
    let graph = rmat8();
    let plain = Simulation::new(cfg_8x8(), Bfs::new(graph.clone(), 64, 0, SyncMode::Async))
        .unwrap()
        .run()
        .unwrap();
    let reduced = Simulation::new(
        cfg_8x8(),
        Bfs::new(graph, 64, 0, SyncMode::Async).with_reduction(true),
    )
    .unwrap()
    .run()
    .unwrap();
    assert!(plain.check_error.is_none());
    assert!(reduced.check_error.is_none(), "{:?}", reduced.check_error);
    assert!(plain.counters.noc.reduce_combines == 0);
    assert!(
        reduced.counters.noc.reduce_combines > 0,
        "reducible messages should combine in flight"
    );
}

#[test]
fn benchmarks_correct_with_dram_cache_mode() {
    let cfg = SystemConfig::builder()
        .chiplet_tiles(8, 8)
        .sram_kib_per_tile(64)
        .dram(DramConfig::default())
        .build()
        .unwrap();
    let graph = rmat8();
    for bench in [Benchmark::Bfs, Benchmark::Spmv, Benchmark::Histogram] {
        let result = run_benchmark(bench, cfg.clone(), &graph, 1).unwrap();
        assert!(
            result.check_error.is_none(),
            "{bench}: {:?}",
            result.check_error
        );
        assert!(result.counters.mem.cache_misses > 0, "{bench}");
    }
}

#[test]
fn benchmarks_correct_on_torus_with_threads() {
    let cfg = SystemConfig::builder()
        .chiplet_tiles(8, 8)
        .noc_topology(NocTopology::FoldedTorus)
        .build()
        .unwrap();
    let graph = rmat8();
    for bench in [Benchmark::Sssp, Benchmark::PageRank, Benchmark::Spmm] {
        let result = run_benchmark(bench, cfg.clone(), &graph, 4).unwrap();
        assert!(
            result.check_error.is_none(),
            "{bench}: {:?}",
            result.check_error
        );
    }
}

#[test]
fn parallel_threads_bit_identical_for_apps() {
    let graph = rmat8();
    for bench in [Benchmark::Bfs, Benchmark::Histogram] {
        let r1 = run_benchmark(bench, cfg_8x8(), &graph, 1).unwrap();
        let r4 = run_benchmark(bench, cfg_8x8(), &graph, 4).unwrap();
        assert_eq!(r1.runtime_cycles, r4.runtime_cycles, "{bench}");
        assert_eq!(
            r1.counters.noc.msg_hops, r4.counters.noc.msg_hops,
            "{bench}"
        );
        assert_eq!(
            r1.counters.pu.busy_cycles, r4.counters.pu.busy_cycles,
            "{bench}"
        );
    }
}

#[test]
fn teps_counted_for_graph_kernels() {
    let graph = rmat8();
    let result = run_benchmark(Benchmark::Bfs, cfg_8x8(), &graph, 1).unwrap();
    // async BFS relaxes at least the edges of the reachable component
    assert!(result.counters.pu.app_ops > 0);
    assert!(result.counters.app_throughput() > 0.0);
}

#[test]
fn pointer_indirection_prefetch_reduces_latency() {
    // BFS with TSU pointer-indirection prefetch: correctness preserved,
    // prefetch fills issued, and prefetched lines get demand hits
    let mut dram = DramConfig::default();
    dram.prefetch.pointer_indirection = true;
    let cfg = SystemConfig::builder()
        .chiplet_tiles(8, 8)
        .sram_kib_per_tile(2)
        .dram(dram)
        .build()
        .unwrap();
    let graph = rmat8();
    let result = run_benchmark(Benchmark::Bfs, cfg, &graph, 1).unwrap();
    assert!(result.check_error.is_none(), "{:?}", result.check_error);
    assert!(
        result.counters.mem.prefetch_fills > 0,
        "TSU should issue pointer prefetches"
    );
    assert!(
        result.counters.mem.prefetch_hits > 0,
        "some prefetched lines should be demanded"
    );

    // without the flag, no prefetch traffic
    let plain_cfg = SystemConfig::builder()
        .chiplet_tiles(8, 8)
        .sram_kib_per_tile(2)
        .dram(DramConfig::default())
        .build()
        .unwrap();
    let plain = run_benchmark(Benchmark::Bfs, plain_cfg, &graph, 1).unwrap();
    assert_eq!(plain.counters.mem.prefetch_fills, 0);
}

#[test]
fn prefetch_identical_across_threads() {
    let mut dram = DramConfig::default();
    dram.prefetch.pointer_indirection = true;
    let mk = || {
        SystemConfig::builder()
            .chiplet_tiles(8, 8)
            .sram_kib_per_tile(2)
            .dram(dram.clone())
            .build()
            .unwrap()
    };
    let graph = rmat8();
    let r1 = run_benchmark(Benchmark::Spmv, mk(), &graph, 1).unwrap();
    let r4 = run_benchmark(Benchmark::Spmv, mk(), &graph, 4).unwrap();
    assert!(r1.check_error.is_none());
    assert_eq!(r1.runtime_cycles, r4.runtime_cycles);
    assert_eq!(
        r1.counters.mem.prefetch_fills,
        r4.counters.mem.prefetch_fills
    );
}
