//! Sparse Matrix–Vector multiplication `y = A·x` (paper §III-G).
//!
//! The sparse matrix is the graph in CSR; rows, `x` and `y` are
//! partitioned over tiles by the same equal-chunk scatter. The kernel is
//! two-phase message passing: for each non-zero `A[i][j]` the row owner
//! sends `(j, i, a)` to the *column* owner (task 0), which multiplies by
//! its local `x[j]` and forwards the product to the row owner of `y[i]`
//! (task 1) for accumulation. The task chain 0 → 1 is acyclic, as the
//! paper's deadlock rule requires.

use crate::common::{arrays, f2w, w2f, GraphData};
use muchisim_core::snapshot as snap;
use muchisim_core::{Application, GridInfo, TaskCtx};
use muchisim_data::Csr;
use std::sync::Arc;

/// The deterministic dense input vector: `x[j] = 1 / (1 + (j mod 17))`.
pub fn input_x(j: u32) -> f32 {
    1.0 / (1.0 + (j % 17) as f32)
}

/// Sparse matrix–vector multiply.
#[derive(Debug)]
pub struct Spmv {
    graph: GraphData,
    reference: Vec<f32>,
}

/// Per-tile SPMV state: the local chunk of `y`.
#[derive(Debug)]
pub struct SpmvTile {
    y: Vec<f32>,
}

impl Spmv {
    /// Builds `y = A·x` over `graph` as the matrix, on `tiles`.
    pub fn new(graph: Arc<Csr>, tiles: u32) -> Self {
        let reference = host_spmv(&graph);
        Spmv {
            graph: GraphData::new(graph, tiles),
            reference,
        }
    }

    /// Non-zeros in the matrix (the TEPS-equivalent work unit).
    pub fn num_nonzeros(&self) -> u64 {
        self.graph.csr.num_edges()
    }
}

impl Application for Spmv {
    type Tile = SpmvTile;

    fn name(&self) -> &'static str {
        "spmv"
    }

    fn task_types(&self) -> u8 {
        2
    }

    fn task_graph(&self) -> Vec<(u8, u8)> {
        vec![(0, 1)]
    }

    fn make_tile(&self, tile: u32, _grid: &GridInfo) -> SpmvTile {
        let range = self.graph.range_of(tile);
        SpmvTile {
            y: vec![0.0; (range.end - range.start) as usize],
        }
    }

    fn init(&self, _state: &mut SpmvTile, ctx: &mut TaskCtx<'_>) {
        let range = self.graph.range_of(ctx.tile);
        let base = self.graph.edge_base(ctx.tile);
        for local in 0..(range.end - range.start) {
            let i = (range.start + local) as u32;
            let (lo, hi) = self.graph.read_row(ctx, local);
            for k in lo..hi {
                let j = self.graph.read_edge(ctx, k, base);
                let a = self.graph.read_weight(ctx, k, base);
                ctx.int_ops(1);
                ctx.send(0, self.graph.owner(j), &[j, i, f2w(a)]);
            }
        }
    }

    fn handle(&self, state: &mut SpmvTile, task: u8, msg: &[u32], ctx: &mut TaskCtx<'_>) {
        match task {
            0 => {
                // multiply by the local x[j], forward to y[i]'s owner
                let (j, i, a) = (msg[0], msg[1], w2f(msg[2]));
                let local = self.graph.local(j);
                ctx.load(ctx.local_addr(arrays::VERT, local, 4));
                ctx.fp_ops(1);
                ctx.app_ops(1);
                let p = a * input_x(j);
                ctx.send(1, self.graph.owner(i), &[i, f2w(p)]);
            }
            _ => {
                // accumulate into the local y[i]
                let (i, p) = (msg[0], w2f(msg[1]));
                let local = self.graph.local(i) as usize;
                ctx.load(ctx.local_addr(arrays::OUT, local as u64, 4));
                ctx.fp_ops(1);
                state.y[local] += p;
                ctx.store(ctx.local_addr(arrays::OUT, local as u64, 4));
            }
        }
    }

    fn prefetch_addr(&self, task: u8, msg: &[u32], _tile: u32, grid: &GridInfo) -> Option<u64> {
        let target = *msg.first()?;
        let array = if task == 0 { arrays::VERT } else { arrays::OUT };
        Some(grid.array_addr(self.graph.owner(target), array, self.graph.local(target), 4))
    }

    fn tile_state_bytes(&self, state: &SpmvTile) -> u64 {
        state.y.capacity() as u64 * 4
    }

    fn snapshot_tile(&self, state: &SpmvTile, out: &mut Vec<u8>) -> Result<(), String> {
        snap::put_f32s(out, &state.y);
        Ok(())
    }

    fn restore_tile(&self, state: &mut SpmvTile, bytes: &[u8]) -> Result<(), String> {
        let mut r = snap::ByteReader::new(bytes);
        let y = r.f32s()?;
        if y.len() != state.y.len() {
            return Err("spmv tile: snapshot partition does not match dataset".into());
        }
        state.y = y;
        r.expect_end()
    }

    fn check(&self, tiles: &[SpmvTile]) -> Result<(), String> {
        let mut got = Vec::with_capacity(self.reference.len());
        for t in tiles {
            got.extend_from_slice(&t.y);
        }
        for (i, (&g, &r)) in got.iter().zip(&self.reference).enumerate() {
            if (g - r).abs() > 1e-3 * r.abs().max(1e-3) {
                return Err(format!("spmv: y[{i}] = {g} != reference {r}"));
            }
        }
        Ok(())
    }
}

/// Host reference SpMV.
fn host_spmv(g: &Csr) -> Vec<f32> {
    let mut y = vec![0.0f32; g.num_vertices() as usize];
    for (i, j, a) in g.iter_edges() {
        y[i as usize] += a * input_x(j);
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_spmv_small() {
        // A = [[0, 2], [3, 0]], x = [x0, x1]
        let g = Csr::from_edges(2, &[(0, 1, 2.0), (1, 0, 3.0)]);
        let y = host_spmv(&g);
        assert!((y[0] - 2.0 * input_x(1)).abs() < 1e-6);
        assert!((y[1] - 3.0 * input_x(0)).abs() < 1e-6);
    }

    #[test]
    fn input_vector_deterministic_and_bounded() {
        for j in 0..100 {
            let x = input_x(j);
            assert!(x > 0.0 && x <= 1.0);
            assert_eq!(x, input_x(j));
        }
    }
}
