//! Sparse Matrix–dense Matrix multiplication `Y = A·X` (paper §III-G).
//!
//! `X` is a dense `V × K` matrix; the result `Y` is dense `V × K`. The
//! message pattern matches SPMV but each phase-1 message carries a K-wide
//! row of products, giving SPMM an order of magnitude more arithmetic
//! intensity than the other kernels (the effect the paper's Fig. 5
//! highlights for performance-per-dollar).

use crate::common::{arrays, f2w, w2f, GraphData};
use muchisim_core::snapshot as snap;
use muchisim_core::{Application, GridInfo, TaskCtx};
use muchisim_data::Csr;
use std::sync::Arc;

/// The deterministic dense input `X[j][c]`.
pub fn input_x(j: u32, c: u32) -> f32 {
    1.0 / (1.0 + ((j + 3 * c) % 13) as f32)
}

/// Sparse matrix × dense matrix.
#[derive(Debug)]
pub struct Spmm {
    graph: GraphData,
    k: u32,
    reference: Vec<f32>,
}

/// Per-tile SPMM state: the local rows of `Y`, row-major `K` wide.
#[derive(Debug)]
pub struct SpmmTile {
    y: Vec<f32>,
}

impl Spmm {
    /// Builds `Y = A·X` with `k` dense columns.
    pub fn new(graph: Arc<Csr>, tiles: u32, k: u32) -> Self {
        assert!(k >= 1, "SPMM needs at least one dense column");
        let reference = host_spmm(&graph, k);
        Spmm {
            graph: GraphData::new(graph, tiles),
            k,
            reference,
        }
    }

    /// Dense width K.
    pub fn k(&self) -> u32 {
        self.k
    }
}

impl Application for Spmm {
    type Tile = SpmmTile;

    fn name(&self) -> &'static str {
        "spmm"
    }

    fn task_types(&self) -> u8 {
        2
    }

    fn task_graph(&self) -> Vec<(u8, u8)> {
        vec![(0, 1)]
    }

    fn make_tile(&self, tile: u32, _grid: &GridInfo) -> SpmmTile {
        let range = self.graph.range_of(tile);
        SpmmTile {
            y: vec![0.0; (range.end - range.start) as usize * self.k as usize],
        }
    }

    fn init(&self, _state: &mut SpmmTile, ctx: &mut TaskCtx<'_>) {
        let range = self.graph.range_of(ctx.tile);
        let base = self.graph.edge_base(ctx.tile);
        for local in 0..(range.end - range.start) {
            let i = (range.start + local) as u32;
            let (lo, hi) = self.graph.read_row(ctx, local);
            for k in lo..hi {
                let j = self.graph.read_edge(ctx, k, base);
                let a = self.graph.read_weight(ctx, k, base);
                ctx.int_ops(1);
                ctx.send(0, self.graph.owner(j), &[j, i, f2w(a)]);
            }
        }
    }

    fn handle(&self, state: &mut SpmmTile, task: u8, msg: &[u32], ctx: &mut TaskCtx<'_>) {
        match task {
            0 => {
                // multiply the K-wide X row, forward the product row
                let (j, i, a) = (msg[0], msg[1], w2f(msg[2]));
                let local = self.graph.local(j);
                let mut out = Vec::with_capacity(self.k as usize + 1);
                out.push(i);
                for c in 0..self.k {
                    ctx.load(ctx.local_addr(arrays::VERT, local * self.k as u64 + c as u64, 4));
                    ctx.fp_ops(1);
                    out.push(f2w(a * input_x(j, c)));
                }
                ctx.app_ops(1);
                ctx.send(1, self.graph.owner(i), &out);
            }
            _ => {
                // accumulate the K products into Y[i]
                let i = msg[0];
                let local = self.graph.local(i);
                for c in 0..self.k as usize {
                    ctx.load(ctx.local_addr(arrays::OUT, local * self.k as u64 + c as u64, 4));
                    ctx.fp_ops(1);
                    state.y[local as usize * self.k as usize + c] += w2f(msg[c + 1]);
                    ctx.store(ctx.local_addr(arrays::OUT, local * self.k as u64 + c as u64, 4));
                }
            }
        }
    }

    fn tile_state_bytes(&self, state: &SpmmTile) -> u64 {
        state.y.capacity() as u64 * 4
    }

    fn snapshot_tile(&self, state: &SpmmTile, out: &mut Vec<u8>) -> Result<(), String> {
        snap::put_f32s(out, &state.y);
        Ok(())
    }

    fn restore_tile(&self, state: &mut SpmmTile, bytes: &[u8]) -> Result<(), String> {
        let mut r = snap::ByteReader::new(bytes);
        let y = r.f32s()?;
        if y.len() != state.y.len() {
            return Err("spmm tile: snapshot partition does not match dataset".into());
        }
        state.y = y;
        r.expect_end()
    }

    fn check(&self, tiles: &[SpmmTile]) -> Result<(), String> {
        let mut got = Vec::with_capacity(self.reference.len());
        for t in tiles {
            got.extend_from_slice(&t.y);
        }
        for (idx, (&g, &r)) in got.iter().zip(&self.reference).enumerate() {
            if (g - r).abs() > 1e-3 * r.abs().max(1e-3) {
                return Err(format!("spmm: Y[{idx}] = {g} != reference {r}"));
            }
        }
        Ok(())
    }
}

/// Host reference SpMM.
fn host_spmm(g: &Csr, k: u32) -> Vec<f32> {
    let mut y = vec![0.0f32; g.num_vertices() as usize * k as usize];
    for (i, j, a) in g.iter_edges() {
        for c in 0..k {
            y[i as usize * k as usize + c as usize] += a * input_x(j, c);
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_spmm_matches_spmv_column_zero_shape() {
        let g = Csr::from_edges(3, &[(0, 1, 2.0), (1, 2, 1.5), (2, 0, 0.5)]);
        let y = host_spmm(&g, 4);
        assert_eq!(y.len(), 12);
        assert!((y[0] - 2.0 * input_x(1, 0)).abs() < 1e-6);
        assert!((y[1] - 2.0 * input_x(1, 1)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_k_rejected() {
        let g = Csr::from_edges(2, &[(0, 1, 1.0)]);
        let _ = Spmm::new(g.into(), 2, 0);
    }
}
