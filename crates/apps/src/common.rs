//! Shared helpers for the benchmark applications.

use muchisim_core::TaskCtx;
use muchisim_data::{Csr, Partition};
use std::sync::Arc;

/// Logical per-tile array ids in the tile's address-space chunk.
pub(crate) mod arrays {
    /// CSR row pointers.
    pub const ROW_PTR: u32 = 0;
    /// CSR column indices.
    pub const COL_IDX: u32 = 1;
    /// CSR non-zero values.
    pub const VALUES: u32 = 2;
    /// Per-vertex state (distances, ranks, labels, input vector).
    pub const VERT: u32 = 3;
    /// Per-vertex output (accumulators, results).
    pub const OUT: u32 = 4;
    /// Auxiliary (frontiers, counters, pencil buffers).
    pub const AUX: u32 = 5;
}

/// Synchronization variant for the iterative graph kernels (paper §III-G:
/// BFS, SSSP and WCC support running with or without barrier
/// synchronization at the end of each epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Fully asynchronous: updates propagate as soon as they happen.
    Async,
    /// Level-synchronous: a global barrier ends each epoch; the next
    /// epoch's frontier is replayed from per-tile state.
    Barrier,
}

/// A graph scattered across tiles: shared read-only CSR plus the
/// equal-chunk vertex partition (paper §III-B).
#[derive(Debug, Clone)]
pub struct GraphData {
    /// The graph (shared, read-only).
    pub csr: Arc<Csr>,
    /// Vertex → tile partition.
    pub part: Partition,
}

impl GraphData {
    /// Scatters `csr` over `tiles` tiles.
    ///
    /// The graph arrives behind an [`Arc`] so that batch runs (many sweep
    /// points over the same dataset) share one host copy instead of
    /// deep-cloning the CSR per simulation.
    pub fn new(csr: Arc<Csr>, tiles: u32) -> Self {
        let part = Partition::new(csr.num_vertices() as u64, tiles);
        GraphData { csr, part }
    }

    /// The tile owning vertex `v`.
    pub fn owner(&self, v: u32) -> u32 {
        self.part.owner_of(v as u64)
    }

    /// The local index of `v` within its owner's chunk.
    pub fn local(&self, v: u32) -> u64 {
        self.part.local_offset(v as u64)
    }

    /// The vertex range owned by `tile`.
    pub fn range_of(&self, tile: u32) -> std::ops::Range<u64> {
        self.part.range_of(tile)
    }

    /// Instrumented read of vertex `v`'s CSR row bounds on the executing
    /// tile (two row-pointer loads plus address arithmetic).
    pub fn read_row(&self, ctx: &mut TaskCtx<'_>, local_v: u64) -> (usize, usize) {
        ctx.load(ctx.local_addr(arrays::ROW_PTR, local_v, 8));
        ctx.load(ctx.local_addr(arrays::ROW_PTR, local_v + 1, 8));
        ctx.int_ops(2);
        let range = self.range_of(ctx.tile);
        let v = (range.start + local_v) as u32;
        (
            self.csr.row_ptr()[v as usize] as usize,
            self.csr.row_ptr()[v as usize + 1] as usize,
        )
    }

    /// Instrumented read of edge slot `k` (column index) on the executing
    /// tile. `row_base` is the first edge slot of the tile's chunk, used
    /// to form the local address.
    pub fn read_edge(&self, ctx: &mut TaskCtx<'_>, k: usize, row_base: usize) -> u32 {
        ctx.load(ctx.local_addr(arrays::COL_IDX, (k - row_base) as u64, 4));
        self.csr.col_idx()[k]
    }

    /// Instrumented read of edge weight `k`.
    pub fn read_weight(&self, ctx: &mut TaskCtx<'_>, k: usize, row_base: usize) -> f32 {
        ctx.load(ctx.local_addr(arrays::VALUES, (k - row_base) as u64, 4));
        self.csr.values()[k]
    }

    /// First edge slot of `tile`'s vertex chunk (its CSR arrays start
    /// here, so edge addresses are tile-local).
    pub fn edge_base(&self, tile: u32) -> usize {
        let range = self.range_of(tile);
        self.csr.row_ptr()[range.start as usize] as usize
    }
}

/// `f32` ↔ `u32` payload word helpers.
pub(crate) fn f2w(x: f32) -> u32 {
    x.to_bits()
}

pub(crate) fn w2f(w: u32) -> f32 {
    f32::from_bits(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muchisim_data::rmat::RmatConfig;

    #[test]
    fn graph_data_partitions_vertices() {
        let g = GraphData::new(Arc::new(RmatConfig::scale(6).generate(1)), 16);
        assert_eq!(g.part.parts(), 16);
        let mut total = 0;
        for t in 0..16 {
            total += g.range_of(t).end - g.range_of(t).start;
        }
        assert_eq!(total, 64);
        assert_eq!(g.owner(0), 0);
        assert_eq!(g.owner(63), 15);
    }

    #[test]
    fn word_conversions() {
        assert_eq!(w2f(f2w(3.25)), 3.25);
        assert_eq!(w2f(f2w(-0.0)), 0.0);
    }
}
