//! The benchmark registry: run any suite application by name on a
//! configuration + dataset (the harness entry point used by the
//! figure-regeneration benches).

use crate::{Bfs, Fft3d, Histogram, PageRank, Spmm, Spmv, Sssp, SyncMode, Wcc};
use muchisim_config::SystemConfig;
use muchisim_core::{SimError, SimResult, Simulation};
use muchisim_data::Csr;
use std::fmt;
use std::sync::Arc;

/// Picks a benchmark root vertex: the highest-degree vertex, which is
/// guaranteed non-isolated (Graph500 similarly samples roots with edges).
pub fn high_degree_root(graph: &Csr) -> u32 {
    (0..graph.num_vertices())
        .max_by_key(|&v| graph.degree(v))
        .unwrap_or(0)
}

/// One of the eight suite applications (paper §III-G).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Breadth-First Search (asynchronous variant).
    Bfs,
    /// Single-Source Shortest Path.
    Sssp,
    /// PageRank (5 power iterations).
    PageRank,
    /// Weakly Connected Components.
    Wcc,
    /// Sparse matrix–vector multiply.
    Spmv,
    /// Sparse matrix–dense matrix multiply (K = 8).
    Spmm,
    /// Histogram of the element array.
    Histogram,
    /// 3D FFT (n³ elements over the n×n grid; ignores the graph).
    Fft,
}

impl Benchmark {
    /// All benchmarks, in the paper's order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Bfs,
        Benchmark::Sssp,
        Benchmark::PageRank,
        Benchmark::Wcc,
        Benchmark::Spmv,
        Benchmark::Spmm,
        Benchmark::Histogram,
        Benchmark::Fft,
    ];

    /// The graph-driven benchmarks (everything but FFT).
    pub const GRAPH_DRIVEN: [Benchmark; 7] = [
        Benchmark::Bfs,
        Benchmark::Sssp,
        Benchmark::PageRank,
        Benchmark::Wcc,
        Benchmark::Spmv,
        Benchmark::Spmm,
        Benchmark::Histogram,
    ];

    /// Parses a benchmark from its label, case-insensitively (`"bfs"`,
    /// `"BFS"`, `"histo"`, ...). The inverse of [`Benchmark::label`].
    pub fn from_label(name: &str) -> Option<Benchmark> {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.label().eq_ignore_ascii_case(name))
    }

    /// Short uppercase label as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Benchmark::Bfs => "BFS",
            Benchmark::Sssp => "SSSP",
            Benchmark::PageRank => "PAGE",
            Benchmark::Wcc => "WCC",
            Benchmark::Spmv => "SPMV",
            Benchmark::Spmm => "SPMM",
            Benchmark::Histogram => "HISTO",
            Benchmark::Fft => "FFT",
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Runs `bench` on `cfg` over `graph` with `threads` host threads,
/// verifying the functional result.
///
/// The graph is taken behind an [`Arc`] and shared read-only with the
/// simulation: batch sweeps over the same dataset pay for one host copy,
/// not one per sweep point.
///
/// For [`Benchmark::Fft`] the problem size follows the grid (`n = width`,
/// which must equal the height) and `graph` is ignored, matching the
/// paper's weak-scaling treatment of FFT.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine; a failed result check is
/// reported inside the returned [`SimResult`].
pub fn run_benchmark(
    bench: Benchmark,
    cfg: SystemConfig,
    graph: &Arc<Csr>,
    threads: usize,
) -> Result<SimResult, SimError> {
    let tiles = cfg.total_tiles() as u32;
    match bench {
        Benchmark::Bfs => {
            let root = high_degree_root(graph);
            Simulation::new(
                cfg,
                Bfs::new(Arc::clone(graph), tiles, root, SyncMode::Async),
            )?
            .run_parallel(threads)
        }
        Benchmark::Sssp => {
            let root = high_degree_root(graph);
            Simulation::new(
                cfg,
                Sssp::new(Arc::clone(graph), tiles, root, SyncMode::Async),
            )?
            .run_parallel(threads)
        }
        Benchmark::PageRank => {
            Simulation::new(cfg, PageRank::new(Arc::clone(graph), tiles, 5))?.run_parallel(threads)
        }
        Benchmark::Wcc => {
            Simulation::new(cfg, Wcc::new(Arc::clone(graph), tiles, SyncMode::Async))?
                .run_parallel(threads)
        }
        Benchmark::Spmv => {
            Simulation::new(cfg, Spmv::new(Arc::clone(graph), tiles))?.run_parallel(threads)
        }
        Benchmark::Spmm => {
            Simulation::new(cfg, Spmm::new(Arc::clone(graph), tiles, 8))?.run_parallel(threads)
        }
        Benchmark::Histogram => {
            let bins = graph.num_vertices();
            Simulation::new(cfg, Histogram::new(Arc::clone(graph), tiles, bins))?
                .run_parallel(threads)
        }
        Benchmark::Fft => {
            let n = cfg.width() as usize;
            assert_eq!(cfg.width(), cfg.height(), "FFT needs a square grid");
            Simulation::new(cfg, Fft3d::new(n, 7))?.run_parallel(threads)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_label_round_trips_case_insensitively() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_label(b.label()), Some(b));
            assert_eq!(Benchmark::from_label(&b.label().to_lowercase()), Some(b));
        }
        assert_eq!(Benchmark::from_label("nope"), None);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Benchmark::PageRank.label(), "PAGE");
        assert_eq!(Benchmark::Histogram.label(), "HISTO");
        assert_eq!(Benchmark::ALL.len(), 8);
        assert_eq!(Benchmark::GRAPH_DRIVEN.len(), 7);
        assert!(!Benchmark::GRAPH_DRIVEN.contains(&Benchmark::Fft));
    }
}
