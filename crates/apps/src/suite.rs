//! The benchmark registry: run any suite application by name on a
//! configuration + dataset (the harness entry point used by the
//! figure-regeneration benches).

use crate::{Bfs, Fft3d, Histogram, PageRank, Spmm, Spmv, Sssp, SyncMode, Wcc};
use muchisim_config::{SystemConfig, TrafficPattern};
use muchisim_core::{SimError, SimResult, Simulation};
use muchisim_data::Csr;
use muchisim_traffic::TrafficApp;
use std::fmt;
use std::sync::Arc;

/// Picks a benchmark root vertex: the highest-degree vertex, which is
/// guaranteed non-isolated (Graph500 similarly samples roots with edges).
pub fn high_degree_root(graph: &Csr) -> u32 {
    (0..graph.num_vertices())
        .max_by_key(|&v| graph.degree(v))
        .unwrap_or(0)
}

/// One of the eight suite applications (paper §III-G), or a synthetic
/// NoC-characterization workload (`muchisim-traffic`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Breadth-First Search (asynchronous variant).
    Bfs,
    /// Single-Source Shortest Path.
    Sssp,
    /// PageRank (5 power iterations).
    PageRank,
    /// Weakly Connected Components.
    Wcc,
    /// Sparse matrix–vector multiply.
    Spmv,
    /// Sparse matrix–dense matrix multiply (K = 8).
    Spmm,
    /// Histogram of the element array.
    Histogram,
    /// 3D FFT (n³ elements over the n×n grid; ignores the graph).
    Fft,
    /// Synthetic traffic with the given spatial pattern; offered load,
    /// window, sizes and seed come from `SystemConfig::traffic` and the
    /// graph is ignored.
    Traffic(TrafficPattern),
}

impl Benchmark {
    /// All benchmarks, in the paper's order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Bfs,
        Benchmark::Sssp,
        Benchmark::PageRank,
        Benchmark::Wcc,
        Benchmark::Spmv,
        Benchmark::Spmm,
        Benchmark::Histogram,
        Benchmark::Fft,
    ];

    /// The graph-driven benchmarks (everything but FFT).
    pub const GRAPH_DRIVEN: [Benchmark; 7] = [
        Benchmark::Bfs,
        Benchmark::Sssp,
        Benchmark::PageRank,
        Benchmark::Wcc,
        Benchmark::Spmv,
        Benchmark::Spmm,
        Benchmark::Histogram,
    ];

    /// The synthetic-traffic workloads, one per spatial pattern.
    pub const TRAFFIC: [Benchmark; 6] = [
        Benchmark::Traffic(TrafficPattern::UniformRandom),
        Benchmark::Traffic(TrafficPattern::BitComplement),
        Benchmark::Traffic(TrafficPattern::Transpose),
        Benchmark::Traffic(TrafficPattern::Shuffle),
        Benchmark::Traffic(TrafficPattern::NearestNeighbor),
        Benchmark::Traffic(TrafficPattern::Hotspot),
    ];

    /// Parses a benchmark from its label, case-insensitively (`"bfs"`,
    /// `"BFS"`, `"histo"`, `"traf-uniform"`, ...). The inverse of
    /// [`Benchmark::label`].
    pub fn from_label(name: &str) -> Option<Benchmark> {
        Benchmark::ALL
            .into_iter()
            .chain(Benchmark::TRAFFIC)
            .find(|b| b.label().eq_ignore_ascii_case(name))
    }

    /// Short uppercase label as used in the paper's figures (traffic
    /// workloads: `TRAF-` plus the pattern).
    pub fn label(self) -> &'static str {
        match self {
            Benchmark::Bfs => "BFS",
            Benchmark::Sssp => "SSSP",
            Benchmark::PageRank => "PAGE",
            Benchmark::Wcc => "WCC",
            Benchmark::Spmv => "SPMV",
            Benchmark::Spmm => "SPMM",
            Benchmark::Histogram => "HISTO",
            Benchmark::Fft => "FFT",
            Benchmark::Traffic(TrafficPattern::UniformRandom) => "TRAF-UNIFORM",
            Benchmark::Traffic(TrafficPattern::BitComplement) => "TRAF-BITCOMP",
            Benchmark::Traffic(TrafficPattern::Transpose) => "TRAF-TRANSPOSE",
            Benchmark::Traffic(TrafficPattern::Shuffle) => "TRAF-SHUFFLE",
            Benchmark::Traffic(TrafficPattern::NearestNeighbor) => "TRAF-NEIGHBOR",
            Benchmark::Traffic(TrafficPattern::Hotspot) => "TRAF-HOTSPOT",
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Builds the [`Simulation`] for `bench` and applies `$run` to it.
///
/// The app type differs per arm, so the runner is expanded textually into
/// each arm (a closure could not be generic over the app type); every
/// expansion must produce the same `Result<SimResult, SimError>`. This is
/// the single place that knows how to instantiate a suite application —
/// [`run_benchmark`] and [`run_benchmark_balanced`] both go through it.
macro_rules! with_suite_app {
    ($bench:expr, $cfg:expr, $graph:expr, |$sim:ident| $run:expr) => {{
        let cfg = $cfg;
        let graph: &Arc<Csr> = $graph;
        let tiles = cfg.total_tiles() as u32;
        match $bench {
            Benchmark::Bfs => {
                let root = high_degree_root(graph);
                let $sim = Simulation::new(
                    cfg,
                    Bfs::new(Arc::clone(graph), tiles, root, SyncMode::Async),
                )?;
                $run
            }
            Benchmark::Sssp => {
                let root = high_degree_root(graph);
                let $sim = Simulation::new(
                    cfg,
                    Sssp::new(Arc::clone(graph), tiles, root, SyncMode::Async),
                )?;
                $run
            }
            Benchmark::PageRank => {
                let $sim = Simulation::new(cfg, PageRank::new(Arc::clone(graph), tiles, 5))?;
                $run
            }
            Benchmark::Wcc => {
                let $sim =
                    Simulation::new(cfg, Wcc::new(Arc::clone(graph), tiles, SyncMode::Async))?;
                $run
            }
            Benchmark::Spmv => {
                let $sim = Simulation::new(cfg, Spmv::new(Arc::clone(graph), tiles))?;
                $run
            }
            Benchmark::Spmm => {
                let $sim = Simulation::new(cfg, Spmm::new(Arc::clone(graph), tiles, 8))?;
                $run
            }
            Benchmark::Histogram => {
                let bins = graph.num_vertices();
                let $sim = Simulation::new(cfg, Histogram::new(Arc::clone(graph), tiles, bins))?;
                $run
            }
            Benchmark::Fft => {
                let n = cfg.width() as usize;
                assert_eq!(cfg.width(), cfg.height(), "FFT needs a square grid");
                let $sim = Simulation::new(cfg, Fft3d::new(n, 7))?;
                $run
            }
            Benchmark::Traffic(pattern) => {
                let app = TrafficApp::new(&cfg, pattern)?;
                let $sim = Simulation::new(cfg, app)?;
                $run
            }
        }
    }};
}

/// Runs `bench` on `cfg` over `graph` with `threads` host threads,
/// verifying the functional result.
///
/// The graph is taken behind an [`Arc`] and shared read-only with the
/// simulation: batch sweeps over the same dataset pay for one host copy,
/// not one per sweep point.
///
/// For [`Benchmark::Fft`] the problem size follows the grid (`n = width`,
/// which must equal the height) and `graph` is ignored, matching the
/// paper's weak-scaling treatment of FFT.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine; a failed result check is
/// reported inside the returned [`SimResult`].
pub fn run_benchmark(
    bench: Benchmark,
    cfg: SystemConfig,
    graph: &Arc<Csr>,
    threads: usize,
) -> Result<SimResult, SimError> {
    with_suite_app!(bench, cfg, graph, |sim| sim.run_parallel(threads))
}

/// Like [`run_benchmark`], but places shard boundaries by *measured*
/// activity instead of splitting columns evenly: a short calibration
/// window of `calibration_cycles` NoC cycles runs first (same benchmark,
/// same seed, NoC tracing disabled), its per-column task counts become
/// the weights for `split_by_activity`, and the full run then uses the
/// balanced boundaries.
///
/// The balanced run is bit-identical to [`run_benchmark`] — shard
/// boundaries only change which host thread steps a column, never the
/// simulated schedule — so this is purely a host-load-balance knob for
/// spatially skewed workloads.
///
/// # Errors
///
/// Propagates [`SimError`] from either phase; the calibration window
/// treats hitting its cycle limit as a normal stop.
pub fn run_benchmark_balanced(
    bench: Benchmark,
    cfg: SystemConfig,
    graph: &Arc<Csr>,
    threads: usize,
    calibration_cycles: u64,
) -> Result<SimResult, SimError> {
    let mut probe_cfg = cfg.clone();
    probe_cfg.noc_trace = None;
    let probe = with_suite_app!(bench, probe_cfg, graph, |sim| sim
        .run_window(threads, calibration_cycles))?;
    let weights = probe.column_activity;
    with_suite_app!(bench, cfg, graph, |sim| sim.run_balanced(threads, &weights))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_label_round_trips_case_insensitively() {
        for b in Benchmark::ALL.into_iter().chain(Benchmark::TRAFFIC) {
            assert_eq!(Benchmark::from_label(b.label()), Some(b));
            assert_eq!(Benchmark::from_label(&b.label().to_lowercase()), Some(b));
        }
        assert_eq!(Benchmark::from_label("nope"), None);
        assert_eq!(
            Benchmark::from_label("traf-transpose"),
            Some(Benchmark::Traffic(TrafficPattern::Transpose))
        );
    }

    #[test]
    fn traffic_benchmarks_run_through_the_suite_harness() {
        let mut cfg = SystemConfig::builder().chiplet_tiles(4, 4).build().unwrap();
        cfg.traffic.cycles = 200;
        // traffic ignores the graph, like FFT
        let graph = Arc::new(muchisim_data::synthetic::grid_2d(2, 2));
        let result = run_benchmark(
            Benchmark::Traffic(TrafficPattern::Transpose),
            cfg,
            &graph,
            1,
        )
        .unwrap();
        assert!(result.check_error.is_none(), "{:?}", result.check_error);
        assert!(result.counters.noc.injected > 0);
        assert_eq!(result.noc_latency.count, result.counters.noc.ejected);
    }

    #[test]
    fn balanced_run_is_bit_identical_to_even_split() {
        let cfg = SystemConfig::builder().chiplet_tiles(8, 8).build().unwrap();
        let graph = Arc::new(muchisim_data::synthetic::uniform_random(64, 256, 42));
        let even = run_benchmark(Benchmark::Bfs, cfg.clone(), &graph, 2).unwrap();
        let balanced = run_benchmark_balanced(Benchmark::Bfs, cfg, &graph, 2, 200).unwrap();
        assert_eq!(balanced.runtime_cycles, even.runtime_cycles);
        assert_eq!(balanced.counters, even.counters);
        assert_eq!(balanced.frames, even.frames);
        assert_eq!(balanced.column_activity, even.column_activity);
        assert!(balanced.check_error.is_none(), "{:?}", balanced.check_error);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Benchmark::PageRank.label(), "PAGE");
        assert_eq!(Benchmark::Histogram.label(), "HISTO");
        assert_eq!(Benchmark::ALL.len(), 8);
        assert_eq!(Benchmark::GRAPH_DRIVEN.len(), 7);
        assert!(!Benchmark::GRAPH_DRIVEN.contains(&Benchmark::Fft));
    }
}
