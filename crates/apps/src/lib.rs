//! # muchisim-apps
//!
//! The MuchiSim benchmark suite (paper §III-G): four graph algorithms
//! (BFS, SSSP, PageRank, WCC), two sparse linear algebra kernels (SPMV,
//! SPMM), and two HPC kernels (3D FFT, Histogram), all programmed for
//! distributed scale-out systems against the message-triggered-task API
//! of [`muchisim_core`].
//!
//! Every application is *functional*: handlers compute real results
//! against the tile's partition of the dataset and each app's `check`
//! compares against a host-computed reference (paper §III-B
//! "Result-check function"). Datasets are scattered so every tile owns an
//! equal chunk of each array, and graphs are stored in CSR.
//!
//! # Example
//!
//! ```
//! use muchisim_apps::{Bfs, SyncMode};
//! use muchisim_config::SystemConfig;
//! use muchisim_core::Simulation;
//! use muchisim_data::rmat::RmatConfig;
//!
//! let graph = std::sync::Arc::new(RmatConfig::scale(6).generate(1));
//! let cfg = SystemConfig::builder().chiplet_tiles(4, 4).build().unwrap();
//! let app = Bfs::new(graph, 16, 0, SyncMode::Async);
//! let result = Simulation::new(cfg, app).unwrap().run().unwrap();
//! assert!(result.check_error.is_none());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bfs;
mod common;
mod fft;
mod histogram;
mod pagerank;
mod spmm;
mod spmv;
mod suite;
mod wcc;

pub use bfs::Bfs;
pub use bfs::Sssp;
pub use common::{GraphData, SyncMode};
pub use fft::Fft3d;
pub use histogram::Histogram;
pub use pagerank::PageRank;
pub use spmm::Spmm;
pub use spmv::Spmv;
pub use suite::{high_degree_root, run_benchmark, run_benchmark_balanced, Benchmark};
pub use wcc::Wcc;
