//! Breadth-First Search and Single-Source Shortest Path (paper §III-G).
//!
//! Both are push-style vertex-centric kernels: an update message
//! `(vertex, distance)` triggers a task on the vertex's owner tile, which
//! relaxes the distance and propagates to neighbors. Both support the
//! asynchronous variant (updates propagate immediately; convergence
//! follows from monotonically decreasing distances) and the
//! barrier-synchronized variant, where each epoch ends with a global
//! barrier and the next frontier is replayed from per-tile state.

use crate::common::{arrays, f2w, w2f, GraphData, SyncMode};
use muchisim_core::snapshot as snap;
use muchisim_core::{Application, GridInfo, ReduceOp, TaskCtx};
use muchisim_data::Csr;
use std::sync::Arc;

/// Infinity marker for unreached vertices.
pub const INF: u32 = u32::MAX;

/// Breadth-First Search from a root vertex.
#[derive(Debug)]
pub struct Bfs {
    graph: GraphData,
    root: u32,
    mode: SyncMode,
    reference: Vec<u32>,
    levels: u32,
    reduction: bool,
}

/// Per-tile BFS state: the local chunk of the distance array.
#[derive(Debug)]
pub struct BfsTile {
    dist: Vec<u32>,
}

impl Bfs {
    /// Builds a BFS of `graph` scattered over `tiles`, from `root`.
    pub fn new(graph: Arc<Csr>, tiles: u32, root: u32, mode: SyncMode) -> Self {
        let reference = host_bfs(&graph, root);
        let levels = reference
            .iter()
            .filter(|&&d| d != INF)
            .max()
            .map_or(1, |&m| m + 1);
        Bfs {
            graph: GraphData::new(graph, tiles),
            root,
            mode,
            reference,
            levels,
            reduction: false,
        }
    }

    /// Tags update messages as in-network reducible (MinU32), for
    /// reduction-tree studies (consuming builder step).
    pub fn with_reduction(mut self, enable: bool) -> Self {
        self.reduction = enable;
        self
    }

    /// The host-computed reference distances.
    pub fn reference(&self) -> &[u32] {
        &self.reference
    }

    fn expand(&self, ctx: &mut TaskCtx<'_>, v: u32, next_depth: u32) {
        let local = self.graph.local(v);
        let (lo, hi) = self.graph.read_row(ctx, local);
        let base = self.graph.edge_base(ctx.tile);
        for k in lo..hi {
            let w = self.graph.read_edge(ctx, k, base);
            ctx.int_ops(1);
            ctx.app_ops(1);
            let dst = self.graph.owner(w);
            if self.reduction {
                ctx.send_reduce(0, dst, &[w, next_depth], ReduceOp::MinU32);
            } else {
                ctx.send(0, dst, &[w, next_depth]);
            }
        }
    }
}

impl Application for Bfs {
    type Tile = BfsTile;

    fn name(&self) -> &'static str {
        "bfs"
    }

    fn task_types(&self) -> u8 {
        1
    }

    fn kernels(&self) -> u32 {
        match self.mode {
            SyncMode::Async => 1,
            SyncMode::Barrier => self.levels,
        }
    }

    fn make_tile(&self, tile: u32, _grid: &GridInfo) -> BfsTile {
        let range = self.graph.range_of(tile);
        let mut dist = vec![INF; (range.end - range.start) as usize];
        if self.mode == SyncMode::Barrier && range.contains(&(self.root as u64)) {
            dist[self.graph.local(self.root) as usize] = 0;
        }
        BfsTile { dist }
    }

    fn init(&self, state: &mut BfsTile, ctx: &mut TaskCtx<'_>) {
        match self.mode {
            SyncMode::Async => {
                if ctx.kernel == 0 && self.graph.owner(self.root) == ctx.tile {
                    ctx.int_ops(1);
                    ctx.send(0, ctx.tile, &[self.root, 0]);
                }
            }
            SyncMode::Barrier => {
                // expand the frontier at depth == kernel
                let depth = ctx.kernel;
                for local in 0..state.dist.len() {
                    ctx.load(ctx.local_addr(arrays::VERT, local as u64, 4));
                    ctx.int_ops(1);
                    if state.dist[local] == depth {
                        let v = (self.graph.range_of(ctx.tile).start + local as u64) as u32;
                        self.expand(ctx, v, depth + 1);
                    }
                }
            }
        }
    }

    fn handle(&self, state: &mut BfsTile, _task: u8, msg: &[u32], ctx: &mut TaskCtx<'_>) {
        let (v, depth) = (msg[0], msg[1]);
        let local = self.graph.local(v) as usize;
        ctx.load(ctx.local_addr(arrays::VERT, local as u64, 4));
        ctx.int_ops(1); // compare
        if depth < state.dist[local] {
            state.dist[local] = depth;
            ctx.store(ctx.local_addr(arrays::VERT, local as u64, 4));
            if self.mode == SyncMode::Async {
                self.expand(ctx, v, depth + 1);
            }
        }
    }

    fn prefetch_addr(&self, _task: u8, msg: &[u32], _tile: u32, grid: &GridInfo) -> Option<u64> {
        // a queued update (v, depth) will first load dist[v]
        let v = *msg.first()?;
        Some(grid.array_addr(self.graph.owner(v), arrays::VERT, self.graph.local(v), 4))
    }

    fn tile_state_bytes(&self, state: &BfsTile) -> u64 {
        state.dist.capacity() as u64 * 4
    }

    fn snapshot_tile(&self, state: &BfsTile, out: &mut Vec<u8>) -> Result<(), String> {
        snap::put_u32s(out, &state.dist);
        Ok(())
    }

    fn restore_tile(&self, state: &mut BfsTile, bytes: &[u8]) -> Result<(), String> {
        let mut r = snap::ByteReader::new(bytes);
        let dist = r.u32s()?;
        if dist.len() != state.dist.len() {
            return Err(format!(
                "bfs tile: snapshot has {} vertices, dataset has {}",
                dist.len(),
                state.dist.len()
            ));
        }
        state.dist = dist;
        r.expect_end()
    }

    fn check(&self, tiles: &[BfsTile]) -> Result<(), String> {
        let mut got = Vec::with_capacity(self.reference.len());
        for t in tiles {
            got.extend_from_slice(&t.dist);
        }
        for (v, (&g, &r)) in got.iter().zip(&self.reference).enumerate() {
            if g != r {
                return Err(format!("bfs: vertex {v} depth {g} != reference {r}"));
            }
        }
        Ok(())
    }
}

/// Single-Source Shortest Path (push-based Bellman-Ford).
#[derive(Debug)]
pub struct Sssp {
    graph: GraphData,
    root: u32,
    mode: SyncMode,
    reference: Vec<f32>,
    rounds: u32,
    reduction: bool,
}

/// Per-tile SSSP state: local distances plus a changed-flag frontier for
/// the barrier variant.
#[derive(Debug)]
pub struct SsspTile {
    dist: Vec<f32>,
    changed: Vec<bool>,
}

impl Sssp {
    /// Builds an SSSP of `graph` over `tiles`, from `root`.
    pub fn new(graph: Arc<Csr>, tiles: u32, root: u32, mode: SyncMode) -> Self {
        let (reference, rounds) = host_sssp(&graph, root);
        Sssp {
            graph: GraphData::new(graph, tiles),
            root,
            mode,
            reference,
            rounds,
            reduction: false,
        }
    }

    /// Tags update messages as in-network reducible (MinF32).
    pub fn with_reduction(mut self, enable: bool) -> Self {
        self.reduction = enable;
        self
    }

    fn expand(&self, ctx: &mut TaskCtx<'_>, v: u32, dist_v: f32) {
        let local = self.graph.local(v);
        let (lo, hi) = self.graph.read_row(ctx, local);
        let base = self.graph.edge_base(ctx.tile);
        for k in lo..hi {
            let w = self.graph.read_edge(ctx, k, base);
            let wt = self.graph.read_weight(ctx, k, base);
            ctx.fp_ops(1); // dist + weight
            ctx.app_ops(1);
            let cand = dist_v + wt;
            let dst = self.graph.owner(w);
            if self.reduction {
                ctx.send_reduce(0, dst, &[w, f2w(cand)], ReduceOp::MinF32);
            } else {
                ctx.send(0, dst, &[w, f2w(cand)]);
            }
        }
    }
}

impl Application for Sssp {
    type Tile = SsspTile;

    fn name(&self) -> &'static str {
        "sssp"
    }

    fn task_types(&self) -> u8 {
        1
    }

    fn kernels(&self) -> u32 {
        match self.mode {
            SyncMode::Async => 1,
            SyncMode::Barrier => self.rounds + 1,
        }
    }

    fn make_tile(&self, tile: u32, _grid: &GridInfo) -> SsspTile {
        let range = self.graph.range_of(tile);
        let n = (range.end - range.start) as usize;
        let mut dist = vec![f32::INFINITY; n];
        let mut changed = vec![false; n];
        if self.mode == SyncMode::Barrier && range.contains(&(self.root as u64)) {
            let local = self.graph.local(self.root) as usize;
            dist[local] = 0.0;
            changed[local] = true;
        }
        SsspTile { dist, changed }
    }

    fn init(&self, state: &mut SsspTile, ctx: &mut TaskCtx<'_>) {
        match self.mode {
            SyncMode::Async => {
                if ctx.kernel == 0 && self.graph.owner(self.root) == ctx.tile {
                    ctx.int_ops(1);
                    ctx.send(0, ctx.tile, &[self.root, f2w(0.0)]);
                }
            }
            SyncMode::Barrier => {
                for local in 0..state.dist.len() {
                    ctx.load(ctx.local_addr(arrays::AUX, local as u64, 1));
                    ctx.int_ops(1);
                    if state.changed[local] {
                        state.changed[local] = false;
                        let v = (self.graph.range_of(ctx.tile).start + local as u64) as u32;
                        self.expand(ctx, v, state.dist[local]);
                    }
                }
            }
        }
    }

    fn handle(&self, state: &mut SsspTile, _task: u8, msg: &[u32], ctx: &mut TaskCtx<'_>) {
        let (v, cand) = (msg[0], w2f(msg[1]));
        let local = self.graph.local(v) as usize;
        ctx.load(ctx.local_addr(arrays::VERT, local as u64, 4));
        ctx.fp_ops(1); // compare
        if cand < state.dist[local] {
            state.dist[local] = cand;
            ctx.store(ctx.local_addr(arrays::VERT, local as u64, 4));
            match self.mode {
                SyncMode::Async => self.expand(ctx, v, cand),
                SyncMode::Barrier => {
                    state.changed[local] = true;
                    ctx.store(ctx.local_addr(arrays::AUX, local as u64, 1));
                }
            }
        }
    }

    fn tile_state_bytes(&self, state: &SsspTile) -> u64 {
        state.dist.capacity() as u64 * 4 + state.changed.capacity() as u64
    }

    fn snapshot_tile(&self, state: &SsspTile, out: &mut Vec<u8>) -> Result<(), String> {
        snap::put_f32s(out, &state.dist);
        snap::put_bools(out, &state.changed);
        Ok(())
    }

    fn restore_tile(&self, state: &mut SsspTile, bytes: &[u8]) -> Result<(), String> {
        let mut r = snap::ByteReader::new(bytes);
        let dist = r.f32s()?;
        let changed = r.bools()?;
        if dist.len() != state.dist.len() || changed.len() != state.changed.len() {
            return Err("sssp tile: snapshot partition does not match dataset".into());
        }
        state.dist = dist;
        state.changed = changed;
        r.expect_end()
    }

    fn check(&self, tiles: &[SsspTile]) -> Result<(), String> {
        let mut got = Vec::with_capacity(self.reference.len());
        for t in tiles {
            got.extend_from_slice(&t.dist);
        }
        for (v, (&g, &r)) in got.iter().zip(&self.reference).enumerate() {
            let ok = if r.is_infinite() {
                g.is_infinite()
            } else {
                (g - r).abs() <= 1e-4 * r.max(1.0)
            };
            if !ok {
                return Err(format!("sssp: vertex {v} dist {g} != reference {r}"));
            }
        }
        Ok(())
    }
}

/// Host reference BFS.
fn host_bfs(g: &Csr, root: u32) -> Vec<u32> {
    let mut dist = vec![INF; g.num_vertices() as usize];
    let mut frontier = vec![root];
    dist[root as usize] = 0;
    let mut depth = 0;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &w in g.neighbors(v) {
                if dist[w as usize] == INF {
                    dist[w as usize] = depth;
                    next.push(w);
                }
            }
        }
        frontier = next;
    }
    dist
}

/// Host reference Bellman-Ford; returns distances and the number of
/// *Jacobi* rounds with changes (matching the barrier-synchronized
/// schedule, where a round only sees the previous round's updates).
fn host_sssp(g: &Csr, root: u32) -> (Vec<f32>, u32) {
    let mut dist = vec![f32::INFINITY; g.num_vertices() as usize];
    dist[root as usize] = 0.0;
    let mut changing_rounds = 0;
    loop {
        let snapshot = dist.clone();
        let mut changed = false;
        for v in 0..g.num_vertices() {
            if snapshot[v as usize].is_finite() {
                let dv = snapshot[v as usize];
                for (&w, &wt) in g.neighbors(v).iter().zip(g.weights(v)) {
                    if dv + wt < dist[w as usize] {
                        dist[w as usize] = dv + wt;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
        changing_rounds += 1;
    }
    (dist, changing_rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muchisim_data::rmat::RmatConfig;
    use muchisim_data::synthetic::grid_2d;

    #[test]
    fn host_bfs_on_path() {
        let mut edges = Vec::new();
        for i in 0..4u32 {
            edges.push((i, i + 1, 1.0));
        }
        let g = Csr::from_edges(5, &edges);
        assert_eq!(host_bfs(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(host_bfs(&g, 4), vec![INF, INF, INF, INF, 0]);
    }

    #[test]
    fn host_sssp_prefers_cheap_detour() {
        // 0->1 (10.0), 0->2 (1.0), 2->1 (1.0)
        let g = Csr::from_edges(3, &[(0, 1, 10.0), (0, 2, 1.0), (2, 1, 1.0)]);
        let (d, _) = host_sssp(&g, 0);
        assert_eq!(d, vec![0.0, 2.0, 1.0]);
    }

    #[test]
    fn levels_match_reference_depth() {
        let g = grid_2d(8, 8);
        let bfs = Bfs::new(g.into(), 16, 0, SyncMode::Barrier);
        // corner-to-corner grid depth is 14 -> 15 levels
        assert_eq!(bfs.kernels(), 15);
    }

    #[test]
    fn reference_reaches_most_of_rmat() {
        let g = RmatConfig::scale(8).generate(3);
        let bfs = Bfs::new(g.into(), 16, 0, SyncMode::Async);
        let reached = bfs.reference().iter().filter(|&&d| d != INF).count();
        assert!(
            reached > 64,
            "root should reach a large component, got {reached}"
        );
    }
}
