//! Histogram (paper §III-G): counts the values falling within a series
//! of intervals.
//!
//! The input is the graph's column-index array, scattered over tiles; the
//! output array of bin counts is partitioned the same way. Each element
//! produces one increment message to its bin's owner — the all-to-all,
//! zero-arithmetic-intensity extreme of the suite. Increments are
//! natural candidates for in-network SumU32 reduction.

use crate::common::{arrays, GraphData};
use muchisim_core::snapshot as snap;
use muchisim_core::{Application, GridInfo, ReduceOp, TaskCtx};
use muchisim_data::{Csr, Partition};
use std::sync::Arc;

/// Histogram of the dataset's column indices into `bins` intervals.
#[derive(Debug)]
pub struct Histogram {
    graph: GraphData,
    bins: u32,
    bin_part: Partition,
    reference: Vec<u32>,
    reduction: bool,
}

/// Per-tile histogram state: the local chunk of bin counts.
#[derive(Debug)]
pub struct HistogramTile {
    counts: Vec<u32>,
}

impl Histogram {
    /// Builds a histogram of `graph`'s column indices into `bins` bins on
    /// `tiles` tiles.
    pub fn new(graph: Arc<Csr>, tiles: u32, bins: u32) -> Self {
        assert!(bins >= 1, "histogram needs at least one bin");
        let n = graph.num_vertices();
        let mut reference = vec![0u32; bins as usize];
        for &j in graph.col_idx() {
            reference[(j as u64 * bins as u64 / n as u64) as usize] += 1;
        }
        Histogram {
            graph: GraphData::new(graph, tiles),
            bins,
            bin_part: Partition::new(bins as u64, tiles),
            reference,
            reduction: false,
        }
    }

    /// Sends increments as in-network SumU32 reductions.
    pub fn with_reduction(mut self, enable: bool) -> Self {
        self.reduction = enable;
        self
    }

    fn bin_of(&self, value: u32) -> u32 {
        (value as u64 * self.bins as u64 / self.graph.csr.num_vertices() as u64) as u32
    }
}

impl Application for Histogram {
    type Tile = HistogramTile;

    fn name(&self) -> &'static str {
        "histogram"
    }

    fn task_types(&self) -> u8 {
        1
    }

    fn make_tile(&self, tile: u32, _grid: &GridInfo) -> HistogramTile {
        let r = self.bin_part.range_of(tile);
        HistogramTile {
            counts: vec![0; (r.end - r.start) as usize],
        }
    }

    fn init(&self, _state: &mut HistogramTile, ctx: &mut TaskCtx<'_>) {
        // each tile scans its chunk of the element (col_idx) array
        let elems = Partition::new(self.graph.csr.num_edges(), self.bin_part.parts());
        let range = elems.range_of(ctx.tile);
        for (local, k) in (range.start..range.end).enumerate() {
            ctx.load(ctx.local_addr(arrays::COL_IDX, local as u64, 4));
            ctx.int_ops(2); // bin computation
            ctx.app_ops(1);
            let value = self.graph.csr.col_idx()[k as usize];
            let bin = self.bin_of(value);
            let dst = self.bin_part.owner_of(bin as u64);
            if self.reduction {
                ctx.send_reduce(0, dst, &[bin, 1], ReduceOp::SumU32);
            } else {
                ctx.send(0, dst, &[bin, 1]);
            }
        }
    }

    fn handle(&self, state: &mut HistogramTile, _task: u8, msg: &[u32], ctx: &mut TaskCtx<'_>) {
        let (bin, count) = (msg[0], msg[1]);
        let local = self.bin_part.local_offset(bin as u64) as usize;
        ctx.load(ctx.local_addr(arrays::OUT, local as u64, 4));
        ctx.int_ops(1);
        state.counts[local] += count;
        ctx.store(ctx.local_addr(arrays::OUT, local as u64, 4));
    }

    fn tile_state_bytes(&self, state: &HistogramTile) -> u64 {
        state.counts.capacity() as u64 * 4
    }

    fn snapshot_tile(&self, state: &HistogramTile, out: &mut Vec<u8>) -> Result<(), String> {
        snap::put_u32s(out, &state.counts);
        Ok(())
    }

    fn restore_tile(&self, state: &mut HistogramTile, bytes: &[u8]) -> Result<(), String> {
        let mut r = snap::ByteReader::new(bytes);
        let counts = r.u32s()?;
        if counts.len() != state.counts.len() {
            return Err("histogram tile: snapshot partition does not match dataset".into());
        }
        state.counts = counts;
        r.expect_end()
    }

    fn check(&self, tiles: &[HistogramTile]) -> Result<(), String> {
        let mut got = Vec::with_capacity(self.reference.len());
        for t in tiles {
            got.extend_from_slice(&t.counts);
        }
        for (bin, (&g, &r)) in got.iter().zip(&self.reference).enumerate() {
            if g != r {
                return Err(format!("histogram: bin {bin} count {g} != reference {r}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muchisim_data::rmat::RmatConfig;

    #[test]
    fn reference_counts_all_elements() {
        let g = RmatConfig::scale(6).generate(2);
        let edges = g.num_edges();
        let h = Histogram::new(g.into(), 4, 16);
        let total: u64 = h.reference.iter().map(|&c| c as u64).sum();
        assert_eq!(total, edges);
    }

    #[test]
    fn bin_mapping_covers_range() {
        let g = RmatConfig::scale(6).generate(2);
        let h = Histogram::new(g.into(), 4, 16);
        assert_eq!(h.bin_of(0), 0);
        assert_eq!(h.bin_of(63), 15);
    }
}
