//! Weakly Connected Components by label propagation / graph coloring
//! (paper §III-G, citing the coloring approach of Slota et al.).
//!
//! Each vertex starts with its own id as label; the minimum label floods
//! each component. The input graph is symmetrized at construction so
//! weak connectivity is computed for directed inputs.

use crate::common::{arrays, GraphData, SyncMode};
use muchisim_core::snapshot as snap;
use muchisim_core::{Application, GridInfo, ReduceOp, TaskCtx};
use muchisim_data::Csr;
use std::sync::Arc;

/// Weakly Connected Components.
#[derive(Debug)]
pub struct Wcc {
    graph: GraphData,
    mode: SyncMode,
    reference: Vec<u32>,
    rounds: u32,
    reduction: bool,
}

/// Per-tile WCC state: local labels plus the changed-flag frontier.
#[derive(Debug)]
pub struct WccTile {
    label: Vec<u32>,
    changed: Vec<bool>,
}

impl Wcc {
    /// Builds WCC over the symmetrized `graph` scattered on `tiles`.
    pub fn new(graph: Arc<Csr>, tiles: u32, mode: SyncMode) -> Self {
        let sym = Arc::new(graph.symmetrize());
        let (reference, rounds) = host_wcc(&sym);
        Wcc {
            graph: GraphData::new(sym, tiles),
            mode,
            reference,
            rounds,
            reduction: false,
        }
    }

    /// Tags label messages as in-network reducible (MinU32).
    pub fn with_reduction(mut self, enable: bool) -> Self {
        self.reduction = enable;
        self
    }

    /// Number of distinct components in the reference.
    pub fn component_count(&self) -> usize {
        let mut roots: Vec<u32> = self.reference.clone();
        roots.sort_unstable();
        roots.dedup();
        roots.len()
    }

    fn propagate(&self, ctx: &mut TaskCtx<'_>, v: u32, label: u32) {
        let local = self.graph.local(v);
        let (lo, hi) = self.graph.read_row(ctx, local);
        let base = self.graph.edge_base(ctx.tile);
        for k in lo..hi {
            let w = self.graph.read_edge(ctx, k, base);
            ctx.int_ops(1);
            ctx.app_ops(1);
            let dst = self.graph.owner(w);
            if self.reduction {
                ctx.send_reduce(0, dst, &[w, label], ReduceOp::MinU32);
            } else {
                ctx.send(0, dst, &[w, label]);
            }
        }
    }
}

impl Application for Wcc {
    type Tile = WccTile;

    fn name(&self) -> &'static str {
        "wcc"
    }

    fn task_types(&self) -> u8 {
        1
    }

    fn kernels(&self) -> u32 {
        match self.mode {
            SyncMode::Async => 1,
            SyncMode::Barrier => self.rounds + 1,
        }
    }

    fn make_tile(&self, tile: u32, _grid: &GridInfo) -> WccTile {
        let range = self.graph.range_of(tile);
        let n = (range.end - range.start) as usize;
        WccTile {
            label: (0..n).map(|i| (range.start + i as u64) as u32).collect(),
            changed: vec![true; n],
        }
    }

    fn init(&self, state: &mut WccTile, ctx: &mut TaskCtx<'_>) {
        match self.mode {
            SyncMode::Async => {
                if ctx.kernel == 0 {
                    // every vertex seeds its own label once
                    let range = self.graph.range_of(ctx.tile);
                    for local in 0..state.label.len() {
                        ctx.load(ctx.local_addr(arrays::VERT, local as u64, 4));
                        let v = (range.start + local as u64) as u32;
                        self.propagate(ctx, v, state.label[local]);
                    }
                }
            }
            SyncMode::Barrier => {
                let range = self.graph.range_of(ctx.tile);
                for local in 0..state.label.len() {
                    ctx.load(ctx.local_addr(arrays::AUX, local as u64, 1));
                    ctx.int_ops(1);
                    if state.changed[local] {
                        state.changed[local] = false;
                        let v = (range.start + local as u64) as u32;
                        self.propagate(ctx, v, state.label[local]);
                    }
                }
            }
        }
    }

    fn handle(&self, state: &mut WccTile, _task: u8, msg: &[u32], ctx: &mut TaskCtx<'_>) {
        let (v, label) = (msg[0], msg[1]);
        let local = self.graph.local(v) as usize;
        ctx.load(ctx.local_addr(arrays::VERT, local as u64, 4));
        ctx.int_ops(1);
        if label < state.label[local] {
            state.label[local] = label;
            ctx.store(ctx.local_addr(arrays::VERT, local as u64, 4));
            match self.mode {
                SyncMode::Async => self.propagate(ctx, v, label),
                SyncMode::Barrier => {
                    state.changed[local] = true;
                    ctx.store(ctx.local_addr(arrays::AUX, local as u64, 1));
                }
            }
        }
    }

    fn tile_state_bytes(&self, state: &WccTile) -> u64 {
        state.label.capacity() as u64 * 4 + state.changed.capacity() as u64
    }

    fn snapshot_tile(&self, state: &WccTile, out: &mut Vec<u8>) -> Result<(), String> {
        snap::put_u32s(out, &state.label);
        snap::put_bools(out, &state.changed);
        Ok(())
    }

    fn restore_tile(&self, state: &mut WccTile, bytes: &[u8]) -> Result<(), String> {
        let mut r = snap::ByteReader::new(bytes);
        let label = r.u32s()?;
        let changed = r.bools()?;
        if label.len() != state.label.len() || changed.len() != state.changed.len() {
            return Err("wcc tile: snapshot partition does not match dataset".into());
        }
        state.label = label;
        state.changed = changed;
        r.expect_end()
    }

    fn check(&self, tiles: &[WccTile]) -> Result<(), String> {
        let mut got = Vec::with_capacity(self.reference.len());
        for t in tiles {
            got.extend_from_slice(&t.label);
        }
        for (v, (&g, &r)) in got.iter().zip(&self.reference).enumerate() {
            if g != r {
                return Err(format!("wcc: vertex {v} label {g} != reference {r}"));
            }
        }
        Ok(())
    }
}

/// Host reference: min-label propagation until fixpoint; returns labels
/// and the number of *Jacobi* rounds with changes (matching the
/// barrier-synchronized schedule, which only sees the previous round's
/// labels).
fn host_wcc(g: &Csr) -> (Vec<u32>, u32) {
    let n = g.num_vertices();
    let mut label: Vec<u32> = (0..n).collect();
    let mut changing_rounds = 0;
    loop {
        let snapshot = label.clone();
        let mut changed = false;
        for v in 0..n {
            let lv = snapshot[v as usize];
            for &w in g.neighbors(v) {
                if lv < label[w as usize] {
                    label[w as usize] = lv;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
        changing_rounds += 1;
    }
    (label, changing_rounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_wcc_two_components() {
        // 0-1-2 and 3-4 (symmetric already)
        let g = Csr::from_edges(
            5,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (3, 4, 1.0),
                (4, 3, 1.0),
            ],
        );
        let (labels, _) = host_wcc(&g);
        assert_eq!(labels, vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn component_count_on_directed_input() {
        // directed chain counts as one weak component after symmetrize
        let g = Csr::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let wcc = Wcc::new(g.into(), 4, SyncMode::Async);
        assert_eq!(wcc.component_count(), 1);
    }
}
