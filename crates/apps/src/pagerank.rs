//! PageRank by synchronous power iteration (paper §III-G).
//!
//! Each kernel is one iteration with a global barrier: every tile pushes
//! `rank[v] / degree[v]` contributions along its out-edges (optionally as
//! in-network SumF32 reductions), and the next kernel's init folds the
//! accumulated contributions into new ranks.

use crate::common::{arrays, f2w, w2f, GraphData};
use muchisim_core::snapshot as snap;
use muchisim_core::{Application, GridInfo, ReduceOp, TaskCtx};
use muchisim_data::Csr;
use std::sync::Arc;

/// Damping factor (the standard 0.85).
const DAMPING: f32 = 0.85;

/// PageRank over a directed graph.
#[derive(Debug)]
pub struct PageRank {
    graph: GraphData,
    iterations: u32,
    reference: Vec<f32>,
    reduction: bool,
}

/// Per-tile PageRank state: local ranks and accumulators.
#[derive(Debug)]
pub struct PageRankTile {
    rank: Vec<f32>,
    acc: Vec<f32>,
}

impl PageRank {
    /// Builds `iterations` PageRank iterations over `graph` on `tiles`.
    pub fn new(graph: Arc<Csr>, tiles: u32, iterations: u32) -> Self {
        let reference = host_pagerank(&graph, iterations);
        PageRank {
            graph: GraphData::new(graph, tiles),
            iterations,
            reference,
            reduction: false,
        }
    }

    /// Sends contributions as in-network SumF32 reductions.
    pub fn with_reduction(mut self, enable: bool) -> Self {
        self.reduction = enable;
        self
    }

    /// The host reference ranks.
    pub fn reference(&self) -> &[f32] {
        &self.reference
    }

    fn fold(&self, state: &mut PageRankTile, ctx: &mut TaskCtx<'_>) {
        let n = self.graph.csr.num_vertices() as f32;
        for local in 0..state.rank.len() {
            ctx.load(ctx.local_addr(arrays::OUT, local as u64, 4));
            ctx.fp_ops(2); // damping multiply-add
            state.rank[local] = (1.0 - DAMPING) / n + DAMPING * state.acc[local];
            state.acc[local] = 0.0;
            ctx.store(ctx.local_addr(arrays::VERT, local as u64, 4));
            ctx.store(ctx.local_addr(arrays::OUT, local as u64, 4));
        }
    }
}

impl Application for PageRank {
    type Tile = PageRankTile;

    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn task_types(&self) -> u8 {
        1
    }

    fn kernels(&self) -> u32 {
        self.iterations + 1
    }

    fn make_tile(&self, tile: u32, _grid: &GridInfo) -> PageRankTile {
        let range = self.graph.range_of(tile);
        let n = (range.end - range.start) as usize;
        let total = self.graph.csr.num_vertices() as f32;
        PageRankTile {
            rank: vec![1.0 / total; n],
            acc: vec![0.0; n],
        }
    }

    fn init(&self, state: &mut PageRankTile, ctx: &mut TaskCtx<'_>) {
        if ctx.kernel > 0 {
            self.fold(state, ctx);
        }
        if ctx.kernel == self.iterations {
            return; // final kernel only folds
        }
        let range = self.graph.range_of(ctx.tile);
        let base = self.graph.edge_base(ctx.tile);
        for local in 0..state.rank.len() {
            let v = (range.start + local as u64) as u32;
            let (lo, hi) = self.graph.read_row(ctx, local as u64);
            let deg = hi - lo;
            if deg == 0 {
                continue;
            }
            ctx.load(ctx.local_addr(arrays::VERT, local as u64, 4));
            ctx.fp_ops(1); // divide by degree
            let contrib = state.rank[local] / deg as f32;
            let _ = v;
            for k in lo..hi {
                let w = self.graph.read_edge(ctx, k, base);
                ctx.app_ops(1);
                let dst = self.graph.owner(w);
                if self.reduction {
                    ctx.send_reduce(0, dst, &[w, f2w(contrib)], ReduceOp::SumF32);
                } else {
                    ctx.send(0, dst, &[w, f2w(contrib)]);
                }
            }
        }
    }

    fn handle(&self, state: &mut PageRankTile, _task: u8, msg: &[u32], ctx: &mut TaskCtx<'_>) {
        let (w, contrib) = (msg[0], w2f(msg[1]));
        let local = self.graph.local(w) as usize;
        ctx.load(ctx.local_addr(arrays::OUT, local as u64, 4));
        ctx.fp_ops(1);
        state.acc[local] += contrib;
        ctx.store(ctx.local_addr(arrays::OUT, local as u64, 4));
    }

    fn tile_state_bytes(&self, state: &PageRankTile) -> u64 {
        (state.rank.capacity() + state.acc.capacity()) as u64 * 4
    }

    fn snapshot_tile(&self, state: &PageRankTile, out: &mut Vec<u8>) -> Result<(), String> {
        snap::put_f32s(out, &state.rank);
        snap::put_f32s(out, &state.acc);
        Ok(())
    }

    fn restore_tile(&self, state: &mut PageRankTile, bytes: &[u8]) -> Result<(), String> {
        let mut r = snap::ByteReader::new(bytes);
        let rank = r.f32s()?;
        let acc = r.f32s()?;
        if rank.len() != state.rank.len() || acc.len() != state.acc.len() {
            return Err("pagerank tile: snapshot partition does not match dataset".into());
        }
        state.rank = rank;
        state.acc = acc;
        r.expect_end()
    }

    fn check(&self, tiles: &[PageRankTile]) -> Result<(), String> {
        let mut got = Vec::with_capacity(self.reference.len());
        for t in tiles {
            got.extend_from_slice(&t.rank);
        }
        for (v, (&g, &r)) in got.iter().zip(&self.reference).enumerate() {
            // f32 summation order differs between DUT and host; allow a
            // small relative tolerance
            if (g - r).abs() > 1e-3 * r.abs().max(1e-6) {
                return Err(format!("pagerank: vertex {v} rank {g} != reference {r}"));
            }
        }
        Ok(())
    }
}

/// Host reference power iteration with the same dangling-mass policy
/// (no redistribution) as the distributed kernel.
fn host_pagerank(g: &Csr, iterations: u32) -> Vec<f32> {
    let n = g.num_vertices();
    let mut rank = vec![1.0 / n as f32; n as usize];
    for _ in 0..iterations {
        let mut acc = vec![0.0f32; n as usize];
        for v in 0..n {
            let deg = g.degree(v);
            if deg == 0 {
                continue;
            }
            let contrib = rank[v as usize] / deg as f32;
            for &w in g.neighbors(v) {
                acc[w as usize] += contrib;
            }
        }
        for v in 0..n as usize {
            rank[v] = (1.0 - DAMPING) / n as f32 + DAMPING * acc[v];
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_pagerank_sums_below_one() {
        // rank mass leaks through dangling vertices, never exceeds 1
        let g = Csr::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        let r = host_pagerank(&g, 20);
        let total: f32 = r.iter().sum();
        assert!(total > 0.0 && total <= 1.0 + 1e-6, "{total}");
    }

    #[test]
    fn host_pagerank_symmetric_cycle_uniform() {
        let g = Csr::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        let r = host_pagerank(&g, 50);
        assert!((r[0] - r[1]).abs() < 1e-6);
        assert!((r[1] - r[2]).abs() < 1e-6);
    }

    #[test]
    fn popular_vertex_ranks_higher() {
        // everyone points at vertex 3
        let g = Csr::from_edges(4, &[(0, 3, 1.0), (1, 3, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        let r = host_pagerank(&g, 30);
        assert!(r[3] > r[0] && r[3] > r[1] && r[3] > r[2]);
    }
}
