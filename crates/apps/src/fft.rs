//! Distributed 3D Fast Fourier Transform (paper §III-G and the §IV-A
//! WSE validation): the FFT of an `n³` tensor parallelized across `n²`
//! tiles, one `n`-element pencil per tile, with two all-to-all transpose
//! phases between the three 1D FFT sweeps.
//!
//! Data distribution across the three kernels (tile grid coordinates
//! `(a, b)` = (column, row)):
//!
//! 1. kernel 0: tile `(a, b)` owns the z-pencil `f[a][b][*]`; FFT over z,
//!    then send element `k` to tile `(a, k)` (slot `b`).
//! 2. kernel 1: tile `(a, c)` owns the y-pencil `f[a][*][c]`; FFT over y,
//!    then send element `j` to tile `(j, c)` (slot `a`).
//! 3. kernel 2: tile `(b, c)` owns the x-pencil `f[*][b][c]`; FFT over x.
//!
//! Element transfers use FP32 (the WSE implementation's precision), so
//! the result check uses a relative Frobenius tolerance.

use crate::common::arrays;
use muchisim_core::snapshot as snap;
use muchisim_core::{Application, GridInfo, TaskCtx};
use muchisim_data::tensor::{fft_in_place, Complex, Tensor3};
use std::sync::Arc;

/// Distributed 3D FFT of an `n³` tensor over an `n × n` tile grid.
#[derive(Debug)]
pub struct Fft3d {
    input: Arc<Tensor3>,
    reference: Tensor3,
    n: usize,
}

/// Per-tile FFT state: the owned pencil and the transpose receive buffer.
#[derive(Debug)]
pub struct FftTile {
    pencil: Vec<Complex>,
    recv: Vec<Complex>,
}

impl Fft3d {
    /// Builds the FFT of a deterministic random `n³` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n.is_power_of_two(), "FFT size must be a power of two");
        let input = Tensor3::random(n, seed);
        let reference = input.fft3_reference();
        Fft3d {
            input: Arc::new(input),
            reference,
            n,
        }
    }

    /// Tensor side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Instruments one `n`-point FFT: `(n/2)·log2(n)` butterflies at 10
    /// FLOPs each, with the pencil streaming through the PLM.
    fn instrument_fft(&self, ctx: &mut TaskCtx<'_>) {
        let n = self.n as u64;
        let butterflies = (n / 2) * n.trailing_zeros() as u64;
        ctx.fp_ops(butterflies * 10);
        for i in 0..n {
            ctx.load(ctx.local_addr(arrays::AUX, i, 8));
            ctx.store(ctx.local_addr(arrays::AUX, i, 8));
        }
    }
}

impl Application for Fft3d {
    type Tile = FftTile;

    fn name(&self) -> &'static str {
        "fft"
    }

    fn task_types(&self) -> u8 {
        1
    }

    fn kernels(&self) -> u32 {
        3
    }

    fn make_tile(&self, tile: u32, grid: &GridInfo) -> FftTile {
        assert_eq!(
            (grid.width as usize, grid.height as usize),
            (self.n, self.n),
            "FFT of n^3 needs an n x n tile grid"
        );
        let (a, b) = (tile % grid.width, tile / grid.width);
        FftTile {
            pencil: self.input.pencil(a as usize, b as usize).to_vec(),
            recv: vec![Complex::ZERO; self.n],
        }
    }

    fn init(&self, state: &mut FftTile, ctx: &mut TaskCtx<'_>) {
        let grid = ctx.grid();
        let (a, b) = (ctx.tile % grid.width, ctx.tile / grid.width);
        if ctx.kernel > 0 {
            // adopt the transposed data received during the last kernel
            std::mem::swap(&mut state.pencil, &mut state.recv);
        }
        fft_in_place(&mut state.pencil);
        self.instrument_fft(ctx);
        if ctx.kernel == 2 {
            return; // final sweep: data stays put
        }
        for k in 0..self.n {
            let v = state.pencil[k];
            let (dst, slot) = if ctx.kernel == 0 {
                // z -> y transpose: element k goes to tile (a, k), slot b
                (k as u32 * grid.width + a, b)
            } else {
                // y -> x transpose: element j goes to tile (j, c), slot a
                (b * grid.width + k as u32, a)
            };
            ctx.int_ops(2);
            ctx.send(
                0,
                dst,
                &[slot, (v.re as f32).to_bits(), (v.im as f32).to_bits()],
            );
            ctx.app_ops(1);
        }
    }

    fn handle(&self, state: &mut FftTile, _task: u8, msg: &[u32], ctx: &mut TaskCtx<'_>) {
        let slot = msg[0] as usize;
        let re = f32::from_bits(msg[1]) as f64;
        let im = f32::from_bits(msg[2]) as f64;
        state.recv[slot] = Complex::new(re, im);
        ctx.store(ctx.local_addr(arrays::AUX, slot as u64, 8));
    }

    fn tile_state_bytes(&self, state: &FftTile) -> u64 {
        (state.pencil.capacity() + state.recv.capacity()) as u64
            * std::mem::size_of::<Complex>() as u64
    }

    fn snapshot_tile(&self, state: &FftTile, out: &mut Vec<u8>) -> Result<(), String> {
        for line in [&state.pencil, &state.recv] {
            snap::put_u32(out, line.len() as u32);
            for c in line {
                snap::put_f64(out, c.re);
                snap::put_f64(out, c.im);
            }
        }
        Ok(())
    }

    fn restore_tile(&self, state: &mut FftTile, bytes: &[u8]) -> Result<(), String> {
        let mut r = snap::ByteReader::new(bytes);
        for line in [&mut state.pencil, &mut state.recv] {
            let n = r.u32()? as usize;
            if n != line.len() {
                return Err("fft tile: snapshot pencil length does not match".into());
            }
            for c in line.iter_mut() {
                c.re = r.f64()?;
                c.im = r.f64()?;
            }
        }
        r.expect_end()
    }

    fn check(&self, tiles: &[FftTile]) -> Result<(), String> {
        // tile (b, c) holds the x-line for y=b, z=c
        let n = self.n;
        let mut out = Tensor3::zeros(n);
        for (tile, state) in tiles.iter().enumerate() {
            let b = tile % n;
            let c = tile / n;
            for (i, &v) in state.pencil.iter().enumerate() {
                out.set(i, b, c, v);
            }
        }
        let scale = self
            .reference
            .distance(&Tensor3::zeros(n))
            .max(f64::EPSILON);
        let err = out.distance(&self.reference) / scale;
        if err < 1e-3 {
            Ok(())
        } else {
            Err(format!("fft: relative error {err:.2e} exceeds 1e-3"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_builds_reference() {
        let f = Fft3d::new(4, 1);
        assert_eq!(f.n(), 4);
        // reference differs from input (non-trivial transform)
        assert!(f.reference.distance(&f.input) > 1e-6);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Fft3d::new(6, 1);
    }
}
