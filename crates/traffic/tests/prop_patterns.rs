//! Property-based tests on the traffic pattern generators: destinations
//! stay in-bounds on arbitrary grids, the permutation patterns really
//! are bijections, and the hotspot pattern honors its skew fraction.

use muchisim_config::{TrafficParams, TrafficPattern};
use muchisim_traffic::{tile_schedule, tile_seed, PatternMap};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn params(seed: u64) -> TrafficParams {
    TrafficParams {
        seed,
        ..TrafficParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every pattern keeps every destination inside the grid, from every
    /// source, deterministic and randomized alike.
    #[test]
    fn prop_destinations_in_bounds(
        w in 1u32..17,
        h in 1u32..17,
        seed in any::<u64>(),
    ) {
        let p = params(seed);
        let total = w * h;
        for pattern in TrafficPattern::ALL {
            let map = PatternMap::new(pattern, w, h, &p);
            let mut rng = SmallRng::seed_from_u64(seed);
            for src in 0..total {
                for _ in 0..4 {
                    let d = map.dest(src, &mut rng);
                    prop_assert!(d < total, "{pattern:?}: {src} -> {d} on {w}x{h}");
                }
                if let Some(d) = map.fixed_dest(src) {
                    prop_assert!(d < total);
                }
            }
        }
    }

    /// Transpose, shuffle and bit-complement are bijections on any grid:
    /// every tile receives from exactly one sender.
    #[test]
    fn prop_permutation_patterns_are_bijections(
        w in 1u32..23,
        h in 1u32..23,
        seed in any::<u64>(),
    ) {
        let p = params(seed);
        let total = w * h;
        for pattern in [
            TrafficPattern::Transpose,
            TrafficPattern::Shuffle,
            TrafficPattern::BitComplement,
            TrafficPattern::NearestNeighbor,
        ] {
            let map = PatternMap::new(pattern, w, h, &p);
            let mut hit = vec![false; total as usize];
            for src in 0..total {
                let d = map.fixed_dest(src)
                    .expect("permutation patterns are deterministic");
                prop_assert!(d < total, "{pattern:?}: {src} -> {d}");
                prop_assert!(
                    !hit[d as usize],
                    "{pattern:?} on {w}x{h}: destination {d} hit twice"
                );
                hit[d as usize] = true;
            }
            prop_assert!(hit.iter().all(|&b| b), "{pattern:?}: not surjective");
        }
    }

    /// The hotspot pattern routes its configured fraction (±5 points,
    /// plus the uniform tail's accidental hits) into the hotspot set.
    #[test]
    fn prop_hotspot_honors_skew_fraction(
        w in 3u32..10,
        h in 3u32..10,
        seed in any::<u64>(),
        frac_pct in 20u32..95,
        targets in 1u32..5,
    ) {
        let mut p = params(seed);
        p.hotspot_fraction = frac_pct as f64 / 100.0;
        p.hotspot_targets = targets;
        p.rate = 0.5;
        p.cycles = 3_000;
        let map = PatternMap::new(TrafficPattern::Hotspot, w, h, &p);
        let total = w * h;
        prop_assert_eq!(map.hotspots().len(), targets.min(total) as usize);
        // measure through the real schedule generator, over a few tiles
        let mut sent = 0u64;
        let mut hot = 0u64;
        for tile in 0..total.min(4) {
            for s in tile_schedule(&map, &p, tile) {
                sent += 1;
                if map.hotspots().contains(&s.dst) {
                    hot += 1;
                }
            }
        }
        prop_assert!(sent > 1_000, "enough samples to measure: {sent}");
        let measured = hot as f64 / sent as f64;
        // uniform tail adds ~targets/total of the remaining fraction
        let tail = (1.0 - p.hotspot_fraction)
            * (map.hotspots().len() as f64 / total as f64);
        let want = p.hotspot_fraction + tail;
        prop_assert!(
            (measured - want).abs() < 0.05,
            "hotspot skew {measured:.3}, configured {want:.3} ({w}x{h}, {targets} targets)"
        );
    }

    /// Per-tile RNG streams are independent yet reproducible.
    #[test]
    fn prop_tile_seeds_reproducible_and_distinct(
        seed in any::<u64>(),
        a in 0u32..4096,
        b in 0u32..4096,
    ) {
        prop_assert_eq!(tile_seed(seed, a), tile_seed(seed, a));
        if a != b {
            prop_assert_ne!(tile_seed(seed, a), tile_seed(seed, b));
        }
    }
}
