//! The synthetic-traffic application.
//!
//! [`TrafficApp`] implements the engine's [`Application`] trait over a
//! pre-computed injection timetable, so synthetic traffic runs unmodified
//! through everything the real applications use: the parallel cycle
//! driver, time leaping, statistics frames, telemetry, DSE sweeps, and
//! the CLI. The tile "compute" is a one-instruction receive handler —
//! traffic stresses the *network*, and the per-packet latency statistics
//! ([`muchisim_core::SimResult::noc_latency`]) are collected by the NoC
//! itself at the ejection point.

use crate::patterns::{tile_schedule, PatternMap};
use muchisim_config::{ConfigError, SystemConfig, TrafficParams, TrafficPattern};
use muchisim_core::{Application, GridInfo, ScheduledSend, TaskCtx};

/// A synthetic-traffic workload: every tile injects packets on a
/// deterministic timetable drawn from a spatial pattern and offered load.
#[derive(Debug)]
pub struct TrafficApp {
    pattern: TrafficPattern,
    params: TrafficParams,
    /// Per-tile injection timetables.
    schedules: Vec<Vec<ScheduledSend>>,
    /// Expected packet deliveries per tile (reduce-free traffic: every
    /// scheduled packet arrives exactly once).
    expected: Vec<u64>,
    offered: u64,
}

impl TrafficApp {
    /// Builds the workload for `cfg`'s grid with `pattern`, taking every
    /// other knob (rate, window, sizes, seed) from `cfg.traffic`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Traffic`] for invalid traffic parameters or
    /// a zero offered load.
    pub fn new(cfg: &SystemConfig, pattern: TrafficPattern) -> Result<Self, ConfigError> {
        let params = cfg.traffic.clone();
        params.validate()?;
        if params.rate <= 0.0 {
            return Err(ConfigError::Traffic {
                why: "synthetic traffic needs a positive injection rate",
            });
        }
        let (w, h) = (cfg.width(), cfg.height());
        let map = PatternMap::new(pattern, w, h, &params);
        let total = map.total_tiles();
        let mut expected = vec![0u64; total as usize];
        let mut offered = 0u64;
        let schedules: Vec<Vec<ScheduledSend>> = (0..total)
            .map(|tile| {
                let sched = tile_schedule(&map, &params, tile);
                offered += sched.len() as u64;
                for s in &sched {
                    expected[s.dst as usize] += 1;
                }
                sched
            })
            .collect();
        Ok(TrafficApp {
            pattern,
            params,
            schedules,
            expected,
            offered,
        })
    }

    /// Builds the workload with the pattern from `cfg.traffic.pattern`.
    pub fn from_config(cfg: &SystemConfig) -> Result<Self, ConfigError> {
        Self::new(cfg, cfg.traffic.pattern)
    }

    /// The spatial pattern.
    pub fn pattern(&self) -> TrafficPattern {
        self.pattern
    }

    /// Total packets offered across all tiles.
    pub fn offered_packets(&self) -> u64 {
        self.offered
    }

    /// The injection-window length in NoC cycles.
    pub fn window_cycles(&self) -> u64 {
        self.params.cycles
    }

    /// Offered load in packets/tile/cycle as actually drawn (the
    /// Bernoulli realization of `traffic.rate`).
    pub fn realized_rate(&self) -> f64 {
        self.offered as f64 / (self.schedules.len() as f64 * self.params.cycles as f64)
    }
}

impl Application for TrafficApp {
    /// Packets received by the tile.
    type Tile = u64;

    fn name(&self) -> &'static str {
        match self.pattern {
            TrafficPattern::UniformRandom => "traffic-uniform",
            TrafficPattern::BitComplement => "traffic-bitcomp",
            TrafficPattern::Transpose => "traffic-transpose",
            TrafficPattern::Shuffle => "traffic-shuffle",
            TrafficPattern::NearestNeighbor => "traffic-neighbor",
            TrafficPattern::Hotspot => "traffic-hotspot",
        }
    }

    fn task_types(&self) -> u8 {
        1
    }

    fn make_tile(&self, _tile: u32, _grid: &GridInfo) -> u64 {
        0
    }

    fn init(&self, _state: &mut u64, _ctx: &mut TaskCtx<'_>) {}

    fn handle(&self, state: &mut u64, _task: u8, _msg: &[u32], ctx: &mut TaskCtx<'_>) {
        *state += 1;
        ctx.int_ops(1);
    }

    fn scheduled_sends(&self, tile: u32, _grid: &GridInfo) -> Vec<ScheduledSend> {
        self.schedules[tile as usize].clone()
    }

    fn snapshot_tile(&self, state: &u64, out: &mut Vec<u8>) -> Result<(), String> {
        muchisim_core::snapshot::put_u64(out, *state);
        Ok(())
    }

    fn restore_tile(&self, state: &mut u64, bytes: &[u8]) -> Result<(), String> {
        let mut r = muchisim_core::snapshot::ByteReader::new(bytes);
        *state = r.u64()?;
        r.expect_end()
    }

    fn check(&self, tiles: &[u64]) -> Result<(), String> {
        for (tile, (&got, &want)) in tiles.iter().zip(&self.expected).enumerate() {
            if got != want {
                return Err(format!(
                    "tile {tile} received {got} packets, expected {want}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muchisim_core::Simulation;

    fn cfg(rate: f64) -> SystemConfig {
        let traffic = TrafficParams {
            rate,
            cycles: 300,
            ..TrafficParams::default()
        };
        SystemConfig::builder()
            .chiplet_tiles(4, 4)
            .traffic(traffic)
            .build()
            .unwrap()
    }

    #[test]
    fn traffic_runs_end_to_end_and_checks() {
        let cfg = cfg(0.05);
        let app = TrafficApp::new(&cfg, TrafficPattern::Transpose).unwrap();
        let offered = app.offered_packets();
        assert!(offered > 0);
        let result = Simulation::new(cfg, app).unwrap().run().unwrap();
        assert!(result.check_error.is_none(), "{:?}", result.check_error);
        assert_eq!(result.counters.noc.injected, offered);
        assert_eq!(result.counters.noc.ejected, offered);
        assert_eq!(result.noc_latency.count, offered);
        assert!(result.noc_latency.mean() > 0.0);
    }

    #[test]
    fn every_pattern_runs_clean_on_a_small_grid() {
        for pattern in TrafficPattern::ALL {
            let cfg = cfg(0.08);
            let app = TrafficApp::new(&cfg, pattern).unwrap();
            let result = Simulation::new(cfg, app).unwrap().run().unwrap();
            assert!(
                result.check_error.is_none(),
                "{pattern:?}: {:?}",
                result.check_error
            );
            assert!(result.counters.noc.injected > 0, "{pattern:?}");
        }
    }

    #[test]
    fn zero_rate_is_rejected() {
        let cfg = cfg(0.0);
        let err = TrafficApp::from_config(&cfg).unwrap_err();
        assert!(err.to_string().contains("positive injection rate"));
    }

    #[test]
    fn from_config_takes_the_configured_pattern() {
        let mut cfg = cfg(0.05);
        cfg.traffic.pattern = TrafficPattern::Hotspot;
        let app = TrafficApp::from_config(&cfg).unwrap();
        assert_eq!(app.pattern(), TrafficPattern::Hotspot);
        assert_eq!(app.name(), "traffic-hotspot");
    }

    #[test]
    fn realized_rate_tracks_the_offered_rate() {
        let cfg = cfg(0.2);
        let app = TrafficApp::new(&cfg, TrafficPattern::UniformRandom).unwrap();
        let r = app.realized_rate();
        assert!((0.15..0.25).contains(&r), "realized {r}");
    }
}
