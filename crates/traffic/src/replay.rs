//! Trace replay: re-inject a recorded communication pattern, app-free.
//!
//! A trace recorded from any run (`SystemConfig::noc_trace`) captures
//! every packet at the NoC injection point with full fidelity — cycle,
//! endpoints, task, payload words, reduction operator. [`TraceReplayApp`]
//! turns it back into a scheduled-injection workload: the original
//! application's compute never runs, yet the network sees the same
//! packets at the same cycles. On the recording configuration the NoC
//! evolves identically (provided ejection is never refused — give the
//! input queues headroom); under a *different* `noc.*` configuration the
//! same communication pattern re-simulates in a fraction of full-app
//! time, which is the point: NoC-only design exploration over real app
//! traffic.

use muchisim_core::{Application, GridInfo, Payload, ScheduledSend, TaskCtx};
use muchisim_noc::{read_trace_jsonl, sort_events, TraceEvent};

/// A recorded-trace workload.
#[derive(Debug)]
pub struct TraceReplayApp {
    /// Per-tile injection timetables, in canonical trace order.
    schedules: Vec<Vec<ScheduledSend>>,
    task_types: u8,
    total_packets: u64,
    last_cycle: u64,
}

impl TraceReplayApp {
    /// Builds a replay of `events` on a grid of `total_tiles`.
    ///
    /// # Errors
    ///
    /// Returns a description when the trace is empty, references tiles
    /// outside the grid (replaying on a smaller grid is not meaningful),
    /// or uses more task types than the engine supports.
    pub fn from_events(mut events: Vec<TraceEvent>, total_tiles: u32) -> Result<Self, String> {
        if events.is_empty() {
            return Err("trace holds no events".to_string());
        }
        sort_events(&mut events);
        let mut schedules: Vec<Vec<ScheduledSend>> = vec![Vec::new(); total_tiles as usize];
        let mut max_task = 0u8;
        let mut last_cycle = 0u64;
        for (i, ev) in events.iter().enumerate() {
            if ev.src >= total_tiles || ev.dst >= total_tiles {
                return Err(format!(
                    "trace event {} ({} -> {}) is outside the {total_tiles}-tile grid",
                    i + 1,
                    ev.src,
                    ev.dst
                ));
            }
            max_task = max_task.max(ev.task);
            last_cycle = last_cycle.max(ev.cycle);
            schedules[ev.src as usize].push(ScheduledSend {
                cycle: ev.cycle,
                dst: ev.dst,
                task: ev.task,
                payload: Payload::from_slice(&ev.payload),
                reduce: ev.reduce,
            });
        }
        if max_task >= 32 {
            return Err(format!(
                "trace uses task type {max_task}, above the engine maximum"
            ));
        }
        Ok(TraceReplayApp {
            schedules,
            task_types: max_task + 1,
            total_packets: events.len() as u64,
            last_cycle,
        })
    }

    /// Reads a JSONL trace file and builds its replay.
    ///
    /// # Errors
    ///
    /// Propagates file/parse errors and [`TraceReplayApp::from_events`]
    /// validation.
    pub fn from_file(path: &str, total_tiles: u32) -> Result<Self, String> {
        Self::from_events(read_trace_jsonl(path)?, total_tiles)
    }

    /// Packets the replay injects.
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// The last scheduled injection cycle.
    pub fn last_cycle(&self) -> u64 {
        self.last_cycle
    }
}

impl Application for TraceReplayApp {
    /// Packets received by the tile.
    type Tile = u64;

    fn name(&self) -> &'static str {
        "trace-replay"
    }

    fn task_types(&self) -> u8 {
        self.task_types
    }

    fn make_tile(&self, _tile: u32, _grid: &GridInfo) -> u64 {
        0
    }

    fn init(&self, _state: &mut u64, _ctx: &mut TaskCtx<'_>) {}

    fn handle(&self, state: &mut u64, _task: u8, _msg: &[u32], ctx: &mut TaskCtx<'_>) {
        *state += 1;
        ctx.int_ops(1);
    }

    fn scheduled_sends(&self, tile: u32, _grid: &GridInfo) -> Vec<ScheduledSend> {
        self.schedules[tile as usize].clone()
    }

    fn snapshot_tile(&self, state: &u64, out: &mut Vec<u8>) -> Result<(), String> {
        muchisim_core::snapshot::put_u64(out, *state);
        Ok(())
    }

    fn restore_tile(&self, state: &mut u64, bytes: &[u8]) -> Result<(), String> {
        let mut r = muchisim_core::snapshot::ByteReader::new(bytes);
        *state = r.u64()?;
        r.expect_end()
    }

    fn check(&self, tiles: &[u64]) -> Result<(), String> {
        // in-network reduction may legitimately merge packets, so the
        // delivered count is bounded by — not equal to — the injected one
        let delivered: u64 = tiles.iter().sum();
        if delivered == 0 || delivered > self.total_packets {
            return Err(format!(
                "replay delivered {delivered} of {} injected packets",
                self.total_packets
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, src: u32, dst: u32, task: u8) -> TraceEvent {
        TraceEvent {
            cycle,
            src,
            dst,
            task,
            flits: 2,
            reduce: None,
            payload: vec![src],
        }
    }

    #[test]
    fn events_map_to_per_tile_schedules_in_order() {
        let app =
            TraceReplayApp::from_events(vec![ev(9, 1, 0, 1), ev(2, 1, 3, 0), ev(5, 0, 2, 0)], 4)
                .unwrap();
        assert_eq!(app.total_packets(), 3);
        assert_eq!(app.task_types(), 2);
        assert_eq!(app.last_cycle(), 9);
        let g = GridInfo {
            width: 2,
            height: 2,
            total_tiles: 4,
            pus_per_tile: 1,
        };
        let t1 = app.scheduled_sends(1, &g);
        assert_eq!(t1.len(), 2);
        assert_eq!((t1[0].cycle, t1[0].dst), (2, 3));
        assert_eq!((t1[1].cycle, t1[1].dst), (9, 0));
        assert!(app.scheduled_sends(2, &g).is_empty());
    }

    #[test]
    fn out_of_grid_and_empty_traces_are_rejected() {
        let err = TraceReplayApp::from_events(vec![ev(0, 9, 0, 0)], 4).unwrap_err();
        assert!(err.contains("outside"), "{err}");
        let err = TraceReplayApp::from_events(Vec::new(), 4).unwrap_err();
        assert!(err.contains("no events"), "{err}");
        let err = TraceReplayApp::from_events(vec![ev(0, 0, 1, 33)], 4).unwrap_err();
        assert!(err.contains("task type"), "{err}");
    }

    #[test]
    fn replay_runs_the_schedule() {
        use muchisim_config::SystemConfig;
        use muchisim_core::Simulation;

        let events = vec![ev(0, 0, 3, 0), ev(4, 3, 1, 0), ev(4, 3, 2, 0)];
        let app = TraceReplayApp::from_events(events, 4).unwrap();
        let cfg = SystemConfig::builder().chiplet_tiles(2, 2).build().unwrap();
        let result = Simulation::new(cfg, app).unwrap().run().unwrap();
        assert!(result.check_error.is_none(), "{:?}", result.check_error);
        assert_eq!(result.counters.noc.injected, 3);
        assert_eq!(result.counters.noc.ejected, 3);
    }
}
