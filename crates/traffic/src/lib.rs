//! # muchisim-traffic
//!
//! Synthetic traffic, trace record/replay, and latency-versus-load NoC
//! characterization for the MuchiSim reproduction.
//!
//! The benchmark suite exercises the simulator the way the paper does —
//! whole applications — but NoC design exploration also needs the
//! workload-generation layer every network simulator ships:
//!
//! * **Pattern generators** ([`TrafficApp`]): uniform-random,
//!   bit-complement, transpose, shuffle, nearest-neighbor and hotspot
//!   patterns at a configurable offered load, packet-size distribution
//!   and seed (all in `SystemConfig::traffic`, hence sweepable through
//!   DSE overrides like `traffic.rate=0.08`). Implemented over the
//!   engine's scheduled-injection hook, so traffic runs through the
//!   parallel time-leaping driver, telemetry, and the CLI unmodified.
//! * **Trace replay** ([`TraceReplayApp`]): any run with
//!   `SystemConfig::noc_trace` set records its injection stream; the
//!   replay app re-injects it app-free, enabling NoC-only re-simulation
//!   of a real communication pattern under different `noc.*` configs —
//!   bit-identical NoC counters on the recording config (given eject
//!   headroom), and a topology study in a fraction of full-app time
//!   otherwise.
//! * **Saturation sweeps** ([`saturation_sweep`]): offered-load axis →
//!   mean/percentile latency curve plus detected saturation throughput,
//!   the latency-versus-load figure of every NoC paper.
//!
//! # Example
//!
//! ```
//! use muchisim_config::{SystemConfig, TrafficPattern};
//! use muchisim_core::Simulation;
//! use muchisim_traffic::TrafficApp;
//!
//! let mut cfg = SystemConfig::builder().chiplet_tiles(4, 4).build().unwrap();
//! cfg.traffic.cycles = 200;
//! let app = TrafficApp::new(&cfg, TrafficPattern::Transpose).unwrap();
//! let result = Simulation::new(cfg, app).unwrap().run().unwrap();
//! assert!(result.check_error.is_none());
//! assert!(result.noc_latency.mean() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod app;
mod patterns;
mod replay;
mod saturation;

pub use app::TrafficApp;
pub use muchisim_config::{TrafficParams, TrafficPattern};
pub use patterns::{tile_schedule, tile_seed, PatternMap};
pub use replay::TraceReplayApp;
pub use saturation::{run_point, saturation_sweep, LoadPoint, SaturationCurve};
