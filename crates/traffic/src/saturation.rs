//! Latency-versus-offered-load characterization and saturation detection.
//!
//! The standard NoC design-exploration experiment: sweep the offered
//! load, measure mean/percentile packet latency at each point, and locate
//! the *saturation throughput* — the load at which latency departs from
//! its zero-load plateau and the network stops accepting what is offered.
//! Each point is one full simulation of a [`TrafficApp`], so the curve
//! reflects the whole modeled stack (inject queues, link serialization,
//! backpressure, eject contention), and every point is deterministic.

use crate::app::TrafficApp;
use muchisim_config::{SystemConfig, TrafficPattern};
use muchisim_core::{SimError, SimResult, Simulation};
use serde::{Deserialize, Serialize};

/// Measurements at one offered-load point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadPoint {
    /// Offered load in packets/tile/cycle (the configured rate).
    pub offered: f64,
    /// Accepted throughput in packets/tile/cycle: deliveries divided by
    /// the cycles the network actually needed (at least the injection
    /// window; beyond saturation the drain tail stretches it, so this
    /// plateaus at capacity while `offered` keeps growing).
    pub achieved: f64,
    /// Mean packet latency in NoC cycles (generation → ejection, source
    /// queueing included).
    pub avg_latency: f64,
    /// Median latency (log₂-bucket resolution).
    pub p50_latency: u64,
    /// 95th-percentile latency.
    pub p95_latency: u64,
    /// 99th-percentile latency.
    pub p99_latency: u64,
    /// Maximum latency (exact).
    pub max_latency: u64,
    /// Packets injected.
    pub injected: u64,
    /// Packets delivered.
    pub ejected: u64,
    /// Total simulated cycles (drain and termination included).
    pub runtime_cycles: u64,
}

/// A latency-versus-load curve for one pattern on one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaturationCurve {
    /// The spatial pattern swept.
    pub pattern: TrafficPattern,
    /// One measurement per offered rate, in sweep order.
    pub points: Vec<LoadPoint>,
}

impl SaturationCurve {
    /// Zero-load baseline latency: the mean at the lowest offered rate.
    pub fn base_latency(&self) -> Option<f64> {
        self.points.first().map(|p| p.avg_latency)
    }

    /// The first point whose mean latency exceeds `factor ×` the
    /// zero-load baseline — the classic saturation criterion.
    pub fn saturation_point(&self, factor: f64) -> Option<&LoadPoint> {
        let base = self.base_latency()?;
        self.points
            .iter()
            .skip(1)
            .find(|p| p.avg_latency > factor * base)
    }

    /// The saturation throughput: the *accepted* rate at the saturation
    /// point, or `None` if no swept rate saturated the network.
    pub fn saturation_rate(&self, factor: f64) -> Option<f64> {
        self.saturation_point(factor).map(|p| p.achieved)
    }
}

/// Runs one offered-load point: `base` with `traffic.rate = rate` and
/// `pattern`, on `threads` host threads.
///
/// # Errors
///
/// Propagates configuration and engine errors; a failed delivery check
/// (lost packets) is promoted to [`SimError::CheckFailed`].
pub fn run_point(
    base: &SystemConfig,
    pattern: TrafficPattern,
    rate: f64,
    threads: usize,
) -> Result<LoadPoint, SimError> {
    let mut cfg = base.clone();
    cfg.traffic.rate = rate;
    let app = TrafficApp::new(&cfg, pattern)?;
    let window = app.window_cycles();
    let result = Simulation::new(cfg.clone(), app)?.run_parallel(threads)?;
    if let Some(why) = &result.check_error {
        return Err(SimError::CheckFailed(why.clone()));
    }
    Ok(load_point(&cfg, &result, rate, window))
}

fn load_point(cfg: &SystemConfig, result: &SimResult, rate: f64, window: u64) -> LoadPoint {
    let tiles = cfg.total_tiles() as f64;
    // cycles the network was actually busy: runtime minus the fixed
    // idleness-confirmation tail, floored at the injection window
    let active = result
        .runtime_cycles
        .saturating_sub(cfg.termination_latency_cycles())
        .max(window);
    let lat = &result.noc_latency;
    LoadPoint {
        offered: rate,
        achieved: result.counters.noc.ejected as f64 / (tiles * active as f64),
        avg_latency: lat.mean(),
        p50_latency: lat.percentile(0.50),
        p95_latency: lat.percentile(0.95),
        p99_latency: lat.percentile(0.99),
        max_latency: lat.max_cycles,
        injected: result.counters.noc.injected,
        ejected: result.counters.noc.ejected,
        runtime_cycles: result.runtime_cycles,
    }
}

/// Sweeps `rates` (ascending offered load) for `pattern` over `base`,
/// producing the latency-versus-load curve.
///
/// # Errors
///
/// Propagates the first failing point.
pub fn saturation_sweep(
    base: &SystemConfig,
    pattern: TrafficPattern,
    rates: &[f64],
    threads: usize,
) -> Result<SaturationCurve, SimError> {
    let points = rates
        .iter()
        .map(|&rate| run_point(base, pattern, rate, threads))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SaturationCurve { pattern, points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use muchisim_config::TrafficParams;

    fn base() -> SystemConfig {
        let traffic = TrafficParams {
            cycles: 600,
            ..TrafficParams::default()
        };
        SystemConfig::builder()
            .chiplet_tiles(4, 4)
            .pus_per_tile(4)
            .traffic(traffic)
            .build()
            .unwrap()
    }

    #[test]
    fn latency_grows_with_offered_load() {
        let curve =
            saturation_sweep(&base(), TrafficPattern::UniformRandom, &[0.02, 0.6], 1).unwrap();
        assert_eq!(curve.points.len(), 2);
        let (lo, hi) = (&curve.points[0], &curve.points[1]);
        assert!(lo.avg_latency > 0.0);
        assert!(
            hi.avg_latency > 2.0 * lo.avg_latency,
            "latency must climb toward saturation: {} -> {}",
            lo.avg_latency,
            hi.avg_latency
        );
        assert!(
            hi.achieved < hi.offered,
            "saturated point accepts less than offered"
        );
        assert!(lo.p50_latency <= lo.p95_latency);
        assert!(lo.p95_latency <= lo.max_latency);
    }

    #[test]
    fn saturation_detection_finds_the_knee() {
        let curve =
            saturation_sweep(&base(), TrafficPattern::UniformRandom, &[0.02, 0.1, 0.6], 1).unwrap();
        let sat = curve
            .saturation_point(3.0)
            .expect("0.6 saturates a 4x4 mesh");
        assert_eq!(sat.offered, 0.6);
        let rate = curve.saturation_rate(3.0).unwrap();
        assert!(
            rate > 0.0 && rate < 0.6,
            "accepted rate at saturation: {rate}"
        );
        // an unsaturated curve reports none
        let calm = SaturationCurve {
            pattern: TrafficPattern::UniformRandom,
            points: curve.points[..2].to_vec(),
        };
        assert!(calm.saturation_point(3.0).is_none());
        assert!(SaturationCurve {
            pattern: TrafficPattern::UniformRandom,
            points: Vec::new()
        }
        .saturation_rate(3.0)
        .is_none());
    }
}
