//! Synthetic spatial traffic patterns and injection-schedule generation.
//!
//! A [`PatternMap`] resolves a source tile to destination tiles for one
//! of the classic NoC characterization patterns (BookSim-style). The
//! permutation patterns (bit-complement, transpose, shuffle) are strict
//! bijections on *any* `w × h` grid — power-of-two shapes get the
//! textbook bit definitions, everything else a generalized equivalent —
//! so offered and received load stay balanced. Randomized patterns
//! (uniform, hotspot) draw from a caller-supplied RNG.
//!
//! [`tile_schedule`] turns a pattern plus [`TrafficParams`] into a
//! tile's full injection timetable: a Bernoulli(rate) coin per NoC cycle
//! (the standard open-loop injection process), payload sizes uniform in
//! the configured word range, everything derived from a per-tile RNG
//! stream so schedules are identical for any host-thread count.

use muchisim_config::{TrafficParams, TrafficPattern};
use muchisim_core::{Payload, ScheduledSend};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Derives a statistically independent per-tile seed (splitmix64 mix of
/// the master seed and the tile id).
pub fn tile_seed(master: u64, tile: u32) -> u64 {
    let mut z = master ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(tile as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A pattern resolved against a concrete grid.
#[derive(Debug, Clone)]
pub struct PatternMap {
    pattern: TrafficPattern,
    width: u32,
    height: u32,
    total: u32,
    /// Seeded permutation table for [`TrafficPattern::Shuffle`] on
    /// non-power-of-two tile counts (shared: built once per app).
    shuffle: Option<Arc<Vec<u32>>>,
    /// Hotspot destination tiles, evenly spread over the grid.
    hotspots: Vec<u32>,
    hotspot_fraction: f64,
}

impl PatternMap {
    /// Resolves `pattern` against a `width × height` grid.
    pub fn new(pattern: TrafficPattern, width: u32, height: u32, params: &TrafficParams) -> Self {
        let total = width * height;
        let shuffle = (pattern == TrafficPattern::Shuffle && !total.is_power_of_two())
            .then(|| Arc::new(seeded_permutation(total, params.seed)));
        let targets = params.hotspot_targets.min(total).max(1);
        // spread along the grid diagonal so targets cover both dimensions
        // (an index stride of total/targets degenerates to one column
        // whenever it is a multiple of the width); on grids smaller than
        // the target count positions may repeat, which only reweights the
        // random pick
        let hotspots = (0..targets)
            .map(|i| {
                let x = ((2 * i as u64 + 1) * width as u64 / (2 * targets as u64)) as u32;
                let y = ((2 * i as u64 + 1) * height as u64 / (2 * targets as u64)) as u32;
                y * width + x
            })
            .collect();
        PatternMap {
            pattern,
            width,
            height,
            total,
            shuffle,
            hotspots,
            hotspot_fraction: params.hotspot_fraction,
        }
    }

    /// Total tiles of the grid.
    pub fn total_tiles(&self) -> u32 {
        self.total
    }

    /// The hotspot destination set (meaningful for
    /// [`TrafficPattern::Hotspot`]).
    pub fn hotspots(&self) -> &[u32] {
        &self.hotspots
    }

    /// The fixed destination of `src` for deterministic (permutation)
    /// patterns, `None` for randomized ones.
    pub fn fixed_dest(&self, src: u32) -> Option<u32> {
        let (w, h, n) = (self.width, self.height, self.total);
        let (x, y) = (src % w, src / w);
        match self.pattern {
            TrafficPattern::UniformRandom | TrafficPattern::Hotspot => None,
            // point reflection; on power-of-two grids this is the
            // bit-complement of the coordinate bits
            TrafficPattern::BitComplement => Some((h - 1 - y) * w + (w - 1 - x)),
            // generalized index transpose: y·w + x  →  x·h + y
            TrafficPattern::Transpose => Some(x * h + y),
            TrafficPattern::Shuffle => Some(match &self.shuffle {
                Some(table) => table[src as usize],
                // power of two: rotate the index bits left by one
                None => {
                    let bits = n.trailing_zeros();
                    if bits == 0 {
                        0
                    } else {
                        ((src << 1) | (src >> (bits - 1))) & (n - 1)
                    }
                }
            }),
            TrafficPattern::NearestNeighbor => Some(y * w + (x + 1) % w),
        }
    }

    /// The destination of one packet from `src`, drawing randomized
    /// patterns from `rng`.
    pub fn dest(&self, src: u32, rng: &mut SmallRng) -> u32 {
        if let Some(dst) = self.fixed_dest(src) {
            return dst;
        }
        match self.pattern {
            TrafficPattern::Hotspot if rng.gen_bool(self.hotspot_fraction) => {
                self.hotspots[rng.gen_range(0..self.hotspots.len())]
            }
            _ => self.uniform_other(src, rng),
        }
    }

    /// A uniform destination over all tiles except `src`.
    fn uniform_other(&self, src: u32, rng: &mut SmallRng) -> u32 {
        if self.total <= 1 {
            return src;
        }
        let raw = rng.gen_range(0..self.total - 1);
        if raw >= src {
            raw + 1
        } else {
            raw
        }
    }
}

/// A seed-derived permutation of `0..n` (Fisher–Yates over a dedicated
/// RNG stream).
fn seeded_permutation(n: u32, seed: u64) -> Vec<u32> {
    let mut table: Vec<u32> = (0..n).collect();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5348_5546_464C);
    for i in (1..table.len()).rev() {
        let j = rng.gen_range(0..=i);
        table.swap(i, j);
    }
    table
}

/// Generates tile `tile`'s injection timetable: one Bernoulli(rate) coin
/// per cycle of the injection window, destinations from `map`, payload
/// sizes uniform in `[payload_words_min, payload_words_max]` words.
/// Payload word 0 is the per-tile packet sequence number, word 1 (when
/// present) the source tile.
pub fn tile_schedule(map: &PatternMap, params: &TrafficParams, tile: u32) -> Vec<ScheduledSend> {
    let mut rng = SmallRng::seed_from_u64(tile_seed(params.seed, tile));
    let mut out = Vec::new();
    let mut seq = 0u32;
    for cycle in 0..params.cycles {
        if !rng.gen_bool(params.rate) {
            continue;
        }
        let dst = map.dest(tile, &mut rng);
        let words = if params.payload_words_min == params.payload_words_max {
            params.payload_words_min
        } else {
            rng.gen_range(params.payload_words_min..=params.payload_words_max)
        };
        let mut payload = vec![0u32; words as usize];
        if let Some(w) = payload.first_mut() {
            *w = seq;
        }
        if let Some(w) = payload.get_mut(1) {
            *w = tile;
        }
        seq = seq.wrapping_add(1);
        out.push(ScheduledSend {
            cycle,
            dst,
            task: 0,
            payload: Payload::from_slice(&payload),
            reduce: None,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TrafficParams {
        TrafficParams::default()
    }

    #[test]
    fn tile_seeds_differ() {
        let a = tile_seed(7, 0);
        let b = tile_seed(7, 1);
        let c = tile_seed(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, tile_seed(7, 0));
    }

    #[test]
    fn bit_complement_matches_bit_definition_on_pow2() {
        // 4x4: tile index bits are yyxx; coordinate reflection == ~i
        let map = PatternMap::new(TrafficPattern::BitComplement, 4, 4, &params());
        for i in 0..16u32 {
            assert_eq!(map.fixed_dest(i), Some(!i & 15));
        }
    }

    #[test]
    fn shuffle_rotates_bits_on_pow2() {
        let map = PatternMap::new(TrafficPattern::Shuffle, 4, 2, &params());
        // 8 tiles, 3 bits: i=0b110 -> 0b101
        assert_eq!(map.fixed_dest(0b110), Some(0b101));
        assert_eq!(map.fixed_dest(0b001), Some(0b010));
    }

    #[test]
    fn transpose_is_involutive_on_square() {
        let map = PatternMap::new(TrafficPattern::Transpose, 4, 4, &params());
        for i in 0..16u32 {
            let j = map.fixed_dest(i).unwrap();
            assert_eq!(map.fixed_dest(j), Some(i));
        }
    }

    #[test]
    fn neighbor_wraps_within_rows() {
        let map = PatternMap::new(TrafficPattern::NearestNeighbor, 4, 2, &params());
        assert_eq!(map.fixed_dest(0), Some(1));
        assert_eq!(map.fixed_dest(3), Some(0), "row wrap");
        assert_eq!(map.fixed_dest(7), Some(4));
    }

    #[test]
    fn uniform_never_targets_self() {
        let map = PatternMap::new(TrafficPattern::UniformRandom, 3, 3, &params());
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..500 {
            let d = map.dest(4, &mut rng);
            assert_ne!(d, 4);
            assert!(d < 9);
        }
    }

    #[test]
    fn single_tile_grid_degenerates_to_self() {
        let map = PatternMap::new(TrafficPattern::UniformRandom, 1, 1, &params());
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(map.dest(0, &mut rng), 0);
    }

    #[test]
    fn schedules_are_deterministic_and_rate_scaled() {
        let mut p = params();
        p.cycles = 4_000;
        p.rate = 0.1;
        let map = PatternMap::new(TrafficPattern::UniformRandom, 4, 4, &p);
        let a = tile_schedule(&map, &p, 3);
        let b = tile_schedule(&map, &p, 3);
        assert_eq!(a, b, "same tile, same seed, same schedule");
        let other = tile_schedule(&map, &p, 4);
        assert_ne!(a, other, "tiles draw independent streams");
        // binomial(4000, 0.1): mean 400, generous 5-sigma bounds
        assert!((300..500).contains(&a.len()), "got {} packets", a.len());
        // sorted by cycle, all in the window
        assert!(a.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert!(a.iter().all(|s| s.cycle < p.cycles));
        let mut hi = p.clone();
        hi.rate = 0.4;
        let dense = tile_schedule(&map, &hi, 3);
        assert!(dense.len() > 2 * a.len());
    }

    #[test]
    fn payload_sizes_respect_the_configured_range() {
        let mut p = params();
        p.payload_words_min = 1;
        p.payload_words_max = 8;
        p.rate = 0.5;
        p.cycles = 400;
        let map = PatternMap::new(TrafficPattern::UniformRandom, 2, 2, &p);
        let sched = tile_schedule(&map, &p, 0);
        assert!(sched.iter().all(|s| (1..=8).contains(&s.payload.len())));
        let sizes: std::collections::HashSet<usize> =
            sched.iter().map(|s| s.payload.len()).collect();
        assert!(sizes.len() > 3, "sizes should vary: {sizes:?}");
    }

    #[test]
    fn hotspots_are_honored_roughly_at_the_configured_fraction() {
        let mut p = params();
        p.hotspot_targets = 2;
        p.hotspot_fraction = 0.75;
        let map = PatternMap::new(TrafficPattern::Hotspot, 4, 4, &p);
        // diagonal spread: (1,1) and (3,3), not a single column
        assert_eq!(map.hotspots(), &[5, 15]);
        let xs: std::collections::HashSet<u32> = map.hotspots().iter().map(|t| t % 4).collect();
        let ys: std::collections::HashSet<u32> = map.hotspots().iter().map(|t| t / 4).collect();
        assert!(xs.len() > 1 && ys.len() > 1, "targets span both dimensions");
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 4_000;
        let hits = (0..n)
            .filter(|_| map.hotspots().contains(&map.dest(5, &mut rng)))
            .count();
        let frac = hits as f64 / n as f64;
        // hotspot picks plus the uniform tail's accidental hits
        assert!((0.70..0.85).contains(&frac), "hotspot fraction {frac}");
    }
}
