//! The PLM-as-write-back-cache model (paper §III-A).
//!
//! Tags, valid and dirty bits are carved out of the tile's SRAM, so the
//! data capacity is slightly below the nominal PLM size. The line width
//! equals the DRAM bitline (512 bits by default) and there is no hardware
//! coherence: misses go straight to the chiplet's memory controller and
//! dirty victims are written back on eviction.

use serde::{Deserialize, Serialize};

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; `writeback` is true if a dirty victim must be
    /// written back to DRAM.
    Miss {
        /// Whether the evicted line was dirty.
        writeback: bool,
    },
}

impl AccessOutcome {
    /// Whether this is a hit.
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp: larger = more recently used.
    stamp: u64,
    /// Filled by the prefetcher and not yet demanded.
    prefetched: bool,
}

/// A set-associative write-back cache with LRU replacement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheModel {
    lines: Vec<Line>,
    num_sets: u64,
    ways: u32,
    line_bytes: u32,
    tick: u64,
}

impl CacheModel {
    /// Builds a cache with the data capacity that fits in `plm_kib` KiB of
    /// SRAM after tag overhead, with `line_bits`-wide lines and `ways`-way
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics if the PLM is too small to hold even one set.
    pub fn new(plm_kib: u32, line_bits: u32, ways: u32) -> Self {
        assert!(ways >= 1, "cache needs at least one way");
        let line_bytes = line_bits / 8;
        // ~48-bit physical addresses: tag + valid + dirty bits per line.
        let tag_bits = 48 - (line_bits.trailing_zeros() as u64 - 3) + 2;
        let total_bits = plm_kib as u64 * 1024 * 8;
        let lines_budget = total_bits / (line_bits as u64 + tag_bits);
        let num_sets = (lines_budget / ways as u64).next_power_of_two() / 2;
        let num_sets = num_sets.max(1);
        assert!(num_sets >= 1, "PLM too small for a cache");
        CacheModel {
            lines: vec![Line::default(); (num_sets * ways as u64) as usize],
            num_sets,
            ways,
            line_bytes,
            tick: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.num_sets
    }

    /// Total data capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.num_sets * self.ways as u64 * self.line_bytes as u64
    }

    /// Host heap bytes owned by the tag/metadata array (the simulator
    /// models tags only, never data, so this *is* the model's footprint).
    pub fn heap_bytes(&self) -> u64 {
        self.lines.capacity() as u64 * std::mem::size_of::<Line>() as u64
    }

    fn set_range(&self, addr: u64) -> (std::ops::Range<usize>, u64) {
        let line_addr = addr / self.line_bytes as u64;
        let set = (line_addr % self.num_sets) as usize;
        let tag = line_addr / self.num_sets;
        let start = set * self.ways as usize;
        (start..start + self.ways as usize, tag)
    }

    /// Accesses `addr`; on a miss the line is filled (and a victim evicted).
    ///
    /// Returns the outcome plus whether the access hit a prefetched line
    /// for the first time.
    pub fn access(&mut self, addr: u64, write: bool) -> (AccessOutcome, bool) {
        self.tick += 1;
        let (range, tag) = self.set_range(addr);
        // hit?
        for i in range.clone() {
            let line = &mut self.lines[i];
            if line.valid && line.tag == tag {
                line.stamp = self.tick;
                line.dirty |= write;
                let first_demand = line.prefetched;
                line.prefetched = false;
                return (AccessOutcome::Hit, first_demand);
            }
        }
        // miss: evict LRU
        let victim = range
            .clone()
            .min_by_key(|&i| {
                let l = &self.lines[i];
                if l.valid {
                    (1, l.stamp)
                } else {
                    (0, 0)
                }
            })
            .expect("set is non-empty");
        let writeback = self.lines[victim].valid && self.lines[victim].dirty;
        self.lines[victim] = Line {
            tag,
            valid: true,
            dirty: write,
            stamp: self.tick,
            prefetched: false,
        };
        (AccessOutcome::Miss { writeback }, false)
    }

    /// Checks residency without disturbing LRU/dirty state.
    pub fn probe(&self, addr: u64) -> bool {
        let (range, tag) = self.set_range(addr);
        range
            .clone()
            .any(|i| self.lines[i].valid && self.lines[i].tag == tag)
    }

    /// Fills `addr`'s line as a prefetch (no dirty bit, marked
    /// prefetched). Returns `Some(writeback)` if a fill happened, or
    /// `None` if the line was already resident.
    pub fn prefetch_fill(&mut self, addr: u64) -> Option<bool> {
        if self.probe(addr) {
            return None;
        }
        self.tick += 1;
        let (range, tag) = self.set_range(addr);
        let victim = range
            .min_by_key(|&i| {
                let l = &self.lines[i];
                if l.valid {
                    (1, l.stamp)
                } else {
                    (0, 0)
                }
            })
            .expect("set is non-empty");
        let writeback = self.lines[victim].valid && self.lines[victim].dirty;
        self.lines[victim] = Line {
            tag,
            valid: true,
            dirty: false,
            stamp: self.tick,
            prefetched: true,
        };
        Some(writeback)
    }

    /// Invalidates everything (between kernels, if desired).
    pub fn flush(&mut self) -> u64 {
        let dirty = self.lines.iter().filter(|l| l.valid && l.dirty).count() as u64;
        for l in &mut self.lines {
            *l = Line::default();
        }
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> CacheModel {
        CacheModel::new(4, 512, 2) // 4 KiB PLM, 64B lines, 2-way
    }

    #[test]
    fn geometry_accounts_for_tags() {
        let c = small_cache();
        // 4 KiB = 32768 bits; line+tag = 512 + (48-6+2)=556 bits -> 58 lines
        // -> 29 sets -> rounded down to 16 sets x 2 ways = 32 lines = 2 KiB
        assert_eq!(c.line_bytes(), 64);
        assert_eq!(c.num_sets(), 16);
        assert_eq!(c.capacity_bytes(), 2048);
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small_cache();
        let (o, _) = c.access(0x1000, false);
        assert_eq!(o, AccessOutcome::Miss { writeback: false });
        let (o, _) = c.access(0x1000, false);
        assert_eq!(o, AccessOutcome::Hit);
        // same line, different word
        let (o, _) = c.access(0x103F, false);
        assert_eq!(o, AccessOutcome::Hit);
        // next line
        let (o, _) = c.access(0x1040, false);
        assert!(!o.is_hit());
    }

    #[test]
    fn dirty_eviction_requires_writeback() {
        let mut c = small_cache();
        // fill both ways of set 0 with writes; then a third conflicting
        // line must evict a dirty victim
        let set_stride = c.num_sets() * c.line_bytes() as u64;
        c.access(0, true);
        c.access(set_stride, true);
        let (o, _) = c.access(2 * set_stride, false);
        assert_eq!(o, AccessOutcome::Miss { writeback: true });
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small_cache();
        let set_stride = c.num_sets() * c.line_bytes() as u64;
        c.access(0, false);
        c.access(set_stride, false);
        let (o, _) = c.access(2 * set_stride, false);
        assert_eq!(o, AccessOutcome::Miss { writeback: false });
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_cache();
        let stride = c.num_sets() * c.line_bytes() as u64;
        c.access(0, false); // way A
        c.access(stride, false); // way B
        c.access(0, false); // A more recent
        c.access(2 * stride, false); // evicts B
        assert!(c.probe(0));
        assert!(!c.probe(stride));
        assert!(c.probe(2 * stride));
    }

    #[test]
    fn prefetch_fill_and_first_demand_hit() {
        let mut c = small_cache();
        assert_eq!(c.prefetch_fill(0x2000), Some(false));
        assert_eq!(c.prefetch_fill(0x2000), None, "already resident");
        let (o, pf_hit) = c.access(0x2000, false);
        assert!(o.is_hit());
        assert!(pf_hit, "first demand access to a prefetched line");
        let (_, pf_hit2) = c.access(0x2000, false);
        assert!(!pf_hit2);
    }

    #[test]
    fn flush_counts_dirty_lines() {
        let mut c = small_cache();
        c.access(0, true);
        c.access(0x40, true);
        c.access(0x80, false);
        assert_eq!(c.flush(), 2);
        assert!(!c.probe(0));
    }

    #[test]
    fn larger_plm_more_capacity() {
        let small = CacheModel::new(64, 512, 4);
        let big = CacheModel::new(256, 512, 4);
        assert!(big.capacity_bytes() >= 4 * small.capacity_bytes() / 2);
        assert!(big.capacity_bytes() > small.capacity_bytes());
    }
}
