//! HBM channel contention and tile-to-channel mapping.

use muchisim_config::{MemoryConfig, SystemConfig};
use serde::{Deserialize, Serialize};

/// The contention state of one HBM channel.
///
/// Paper §III-D: "the contention is modeled by imposing that the memory
/// channel can only take one request per cycle, and keeping the count of
/// the transactions of each channel. For example, if a request is done at
/// cycle X, but the memory channel has received Y transactions (where
/// Y > X), then the delay of this request is Y − X + the round trip to the
/// memory channel."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChannelState {
    /// The cycle at which the next request would be accepted.
    pub transactions: u64,
}

impl ChannelState {
    /// Issues one line request at `cycle`; returns the total latency in
    /// cycles including the controller round trip `round_trip`.
    pub fn request(&mut self, cycle: u64, round_trip: u64) -> u64 {
        let queue_wait = self.transactions.saturating_sub(cycle);
        self.transactions = self.transactions.max(cycle) + 1;
        queue_wait + round_trip
    }

    /// Resets the transaction count (between kernels).
    pub fn reset(&mut self) {
        self.transactions = 0;
    }

    /// The cycle at which this channel's transaction backlog drains (the
    /// earliest cycle a new request would see no queue wait), or `None`
    /// if the channel is already caught up at `now`.
    ///
    /// Channels never initiate events on their own — request latency is
    /// computed analytically at issue time, and `transactions` is frozen
    /// between dispatches — so folding this horizon is not required for
    /// correctness. The time-leaping driver includes it for layering
    /// completeness; it can only split a leap at the drain instant
    /// (at most once per frozen backlog value), never change results.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        (self.transactions > now).then_some(self.transactions)
    }
}

/// Maps tiles to HBM channels.
///
/// Channels are vertical column bands within each chiplet, so that a
/// channel's tiles form contiguous columns: a 32×32-tile chiplet with one
/// 8-channel HBM device has 4-column bands of 128 tiles per channel
/// (paper Fig. 5's "128 Tile/Ch"). Column alignment also keeps channel
/// state thread-local under the column-sliced parallel driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelMap {
    chiplet_w: u32,
    chiplet_h: u32,
    chiplets_x: u32,
    channels_per_chiplet: u32,
    band_cols: u32,
}

impl ChannelMap {
    /// Builds the channel map, or `None` in scratchpad mode.
    pub fn from_system(cfg: &SystemConfig) -> Option<Self> {
        let dram = match &cfg.memory {
            MemoryConfig::Scratchpad => return None,
            MemoryConfig::Dram(d) => d,
        };
        let channels = dram.devices_per_chiplet * cfg.params.hbm.channels_per_device;
        let chiplet_w = cfg.hierarchy.chiplet.x;
        let band_cols = (chiplet_w / channels).max(1);
        let effective_channels = chiplet_w.div_ceil(band_cols);
        Some(ChannelMap {
            chiplet_w,
            chiplet_h: cfg.hierarchy.chiplet.y,
            chiplets_x: cfg.width() / chiplet_w,
            channels_per_chiplet: effective_channels,
            band_cols,
        })
    }

    /// Total channels in the system given the grid height.
    pub fn total_channels(&self, grid_height: u32) -> u32 {
        let chiplets_y = grid_height / self.chiplet_h;
        self.chiplets_x * chiplets_y * self.channels_per_chiplet
    }

    /// The channel serving the tile at `(x, y)`.
    pub fn channel_of(&self, x: u32, y: u32) -> u32 {
        let chiplet_x = x / self.chiplet_w;
        let chiplet_y = y / self.chiplet_h;
        let band = (x % self.chiplet_w) / self.band_cols;
        let band = band.min(self.channels_per_chiplet - 1);
        (chiplet_y * self.chiplets_x + chiplet_x) * self.channels_per_chiplet + band
    }

    /// Tiles sharing one channel.
    pub fn tiles_per_channel(&self) -> u32 {
        self.band_cols * self.chiplet_h
    }

    /// Width of a channel's column band.
    pub fn band_cols(&self) -> u32 {
        self.band_cols
    }

    /// Channels per chiplet after band rounding.
    pub fn channels_per_chiplet(&self) -> u32 {
        self.channels_per_chiplet
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muchisim_config::DramConfig;

    fn dram_cfg(chiplet: u32) -> SystemConfig {
        SystemConfig::builder()
            .chiplet_tiles(chiplet, chiplet)
            .dram(DramConfig::default())
            .build()
            .unwrap()
    }

    #[test]
    fn paper_fig5_tiles_per_channel() {
        // 32x32 chiplet, 8 channels -> 128 tiles/channel in 4-column bands
        let map = ChannelMap::from_system(&dram_cfg(32)).unwrap();
        assert_eq!(map.tiles_per_channel(), 128);
        assert_eq!(map.band_cols(), 4);
        // 16x16 chiplet, 8 channels -> 32 tiles/channel
        let map = ChannelMap::from_system(&dram_cfg(16)).unwrap();
        assert_eq!(map.tiles_per_channel(), 32);
        assert_eq!(map.band_cols(), 2);
    }

    #[test]
    fn scratchpad_has_no_channels() {
        let cfg = SystemConfig::default();
        assert!(ChannelMap::from_system(&cfg).is_none());
    }

    #[test]
    fn channel_ids_dense_and_column_aligned() {
        let cfg = dram_cfg(32);
        let map = ChannelMap::from_system(&cfg).unwrap();
        let total = map.total_channels(cfg.height());
        assert_eq!(total, 8);
        let mut seen = vec![false; total as usize];
        for y in 0..32 {
            for x in 0..32 {
                let c = map.channel_of(x, y);
                assert!(c < total);
                seen[c as usize] = true;
                // all tiles in a column share a channel
                assert_eq!(c, map.channel_of(x, 0));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn channel_request_no_contention() {
        let mut ch = ChannelState::default();
        // first request at cycle 100: no queue wait
        assert_eq!(ch.request(100, 50), 50);
        // immediately after: next slot is 101, request at 100 -> +1 wait
        assert_eq!(ch.request(100, 50), 51);
        assert_eq!(ch.request(100, 50), 52);
    }

    #[test]
    fn channel_request_catches_up() {
        let mut ch = ChannelState::default();
        for _ in 0..10 {
            ch.request(0, 50);
        }
        // much later, the backlog has drained
        assert_eq!(ch.request(1000, 50), 50);
    }

    #[test]
    fn channel_horizon_is_backlog_drain() {
        let mut ch = ChannelState::default();
        assert_eq!(ch.next_event_cycle(0), None);
        for _ in 0..10 {
            ch.request(0, 50);
        }
        assert_eq!(ch.next_event_cycle(0), Some(10));
        assert_eq!(ch.next_event_cycle(9), Some(10));
        assert_eq!(ch.next_event_cycle(10), None);
    }

    #[test]
    fn channel_reset() {
        let mut ch = ChannelState::default();
        ch.request(0, 50);
        ch.reset();
        assert_eq!(ch.transactions, 0);
    }

    #[test]
    fn more_channels_than_columns_clamps() {
        // 4x4 chiplet with 8 channels: bands clamp to 1 column = 4 channels
        let map = ChannelMap::from_system(&dram_cfg(4)).unwrap();
        assert_eq!(map.band_cols(), 1);
        assert_eq!(map.channels_per_chiplet(), 4);
        assert_eq!(map.tiles_per_channel(), 4);
    }
}
