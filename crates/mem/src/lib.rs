//! # muchisim-mem
//!
//! Memory-system models (paper §III-A "Private Local Memory",
//! "Prefetching", and §III-D "SRAM model" / "DRAM model").
//!
//! Each tile has a private local memory (PLM) in SRAM. Depending on the
//! [`MemoryConfig`], the PLM is either
//!
//! * a **scratchpad**: the tile-distributed SRAM *is* the system's main
//!   memory and every local access costs the (bank-scaled) SRAM latency; or
//! * a **write-back cache** in front of on-package HBM DRAM: tags and
//!   valid/dirty bits are carved out of the local SRAM, misses fetch a
//!   full 512-bit line from the chiplet's memory controller, and dirty
//!   victims are written back.
//!
//! DRAM channels are shared by many tiles; contention is modeled exactly
//! as the paper describes: a channel accepts one request per cycle and
//! keeps a transaction count `Y`, so a request at cycle `X` waits
//! `max(Y − X, 0)` cycles plus the controller round trip.
//!
//! [`MemoryConfig`]: muchisim_config::MemoryConfig

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod channel;
mod counters;
mod tile_mem;

pub use cache::{AccessOutcome, CacheModel};
pub use channel::{ChannelMap, ChannelState};
pub use counters::MemCounters;
pub use tile_mem::{AccessKind, TileMemory};
