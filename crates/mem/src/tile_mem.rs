//! The per-tile memory facade: the paper's `dcache` function.
//!
//! Applications call [`TileMemory::access`] for each memory operation;
//! the returned latency (in PU cycles) depends on whether the access hits
//! in the PLM and on the configured memory system (paper §III-C: "For
//! memory operations, MuchiSim offers a special dcache function that
//! returns the latency to fetch a given memory address").

use crate::cache::CacheModel;
use crate::channel::ChannelState;
use crate::counters::MemCounters;
use muchisim_config::{MemoryConfig, SystemConfig, TimePs};

/// Word size assumed for application loads/stores, in bits.
const WORD_BITS: u64 = 32;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

#[derive(Debug)]
enum Mode {
    Scratchpad,
    Cache {
        cache: CacheModel,
        round_trip_cycles: u64,
        next_line: bool,
        line_bytes: u64,
    },
}

/// The memory system of one tile.
#[derive(Debug)]
pub struct TileMemory {
    mode: Mode,
    sram_latency: u64,
    counters: MemCounters,
}

impl TileMemory {
    /// Builds the tile memory for `cfg` (scratchpad or cache mode).
    pub fn from_system(cfg: &SystemConfig) -> Self {
        let sram_latency = cfg.sram_latency_cycles();
        let mode = match &cfg.memory {
            MemoryConfig::Scratchpad => Mode::Scratchpad,
            MemoryConfig::Dram(d) => {
                let line_bits = cfg.params.hbm.cacheline_bits;
                let round_trip = cfg
                    .pu_clock
                    .operating
                    .cycles_for_ps(TimePs::ns(cfg.params.hbm.ctrl_latency_ns).as_ps());
                Mode::Cache {
                    cache: CacheModel::new(cfg.sram_kib_per_tile, line_bits, 4),
                    round_trip_cycles: round_trip,
                    next_line: d.prefetch.next_line,
                    line_bytes: line_bits as u64 / 8,
                }
            }
        };
        TileMemory {
            mode,
            sram_latency,
            counters: MemCounters::default(),
        }
    }

    /// Whether the PLM operates as a cache over DRAM.
    pub fn is_cache(&self) -> bool {
        matches!(self.mode, Mode::Cache { .. })
    }

    /// The SRAM access latency in PU cycles (bank-scaled).
    pub fn sram_latency(&self) -> u64 {
        self.sram_latency
    }

    /// Performs one word access at `addr` and returns its latency in PU
    /// cycles.
    ///
    /// In cache mode `channel` must be the HBM channel serving this tile;
    /// in scratchpad mode it is ignored.
    ///
    /// # Panics
    ///
    /// Panics if the tile is in cache mode and `channel` is `None`.
    pub fn access(
        &mut self,
        addr: u64,
        kind: AccessKind,
        cycle: u64,
        channel: Option<&mut ChannelState>,
    ) -> u64 {
        match kind {
            AccessKind::Read => {
                self.counters.sram_reads += 1;
                self.counters.sram_read_bits += WORD_BITS;
            }
            AccessKind::Write => {
                self.counters.sram_writes += 1;
                self.counters.sram_write_bits += WORD_BITS;
            }
        }
        match &mut self.mode {
            Mode::Scratchpad => self.sram_latency,
            Mode::Cache {
                cache,
                round_trip_cycles,
                next_line,
                line_bytes,
            } => {
                let channel = channel.expect("cache mode requires an HBM channel");
                self.counters.tag_accesses += 1;
                let (outcome, pf_hit) = cache.access(addr, kind == AccessKind::Write);
                if pf_hit {
                    self.counters.prefetch_hits += 1;
                }
                if outcome.is_hit() {
                    self.counters.cache_hits += 1;
                    return self.sram_latency;
                }
                self.counters.cache_misses += 1;
                self.counters.dram_line_reads += 1;
                // line fill written into SRAM; victim read out if dirty
                self.counters.sram_write_bits += *line_bytes * 8;
                let dram_latency = channel.request(cycle, *round_trip_cycles);
                if let crate::cache::AccessOutcome::Miss { writeback: true } = outcome {
                    self.counters.writebacks += 1;
                    self.counters.dram_line_writes += 1;
                    self.counters.sram_read_bits += *line_bytes * 8;
                    // posted write: occupies the channel but is off the
                    // load's critical path
                    let _ = channel.request(cycle, *round_trip_cycles);
                }
                if *next_line {
                    let next = addr + *line_bytes;
                    if let Some(wb) = cache.prefetch_fill(next) {
                        self.counters.prefetch_fills += 1;
                        self.counters.sram_write_bits += *line_bytes * 8;
                        let _ = channel.request(cycle, *round_trip_cycles);
                        if wb {
                            self.counters.writebacks += 1;
                            self.counters.dram_line_writes += 1;
                            self.counters.sram_read_bits += *line_bytes * 8;
                            let _ = channel.request(cycle, *round_trip_cycles);
                        }
                    }
                }
                self.sram_latency + dram_latency
            }
        }
    }

    /// Issues a pointer-indirection prefetch for `addr` (TSU prefetching
    /// for tasks waiting in the input queue, paper §III-A).
    ///
    /// No-op in scratchpad mode or when the line is already resident.
    pub fn prefetch(&mut self, addr: u64, cycle: u64, channel: Option<&mut ChannelState>) {
        if let Mode::Cache {
            cache,
            round_trip_cycles,
            line_bytes,
            ..
        } = &mut self.mode
        {
            let channel = channel.expect("cache mode requires an HBM channel");
            if let Some(wb) = cache.prefetch_fill(addr) {
                self.counters.prefetch_fills += 1;
                self.counters.sram_write_bits += *line_bytes * 8;
                let _ = channel.request(cycle, *round_trip_cycles);
                if wb {
                    self.counters.writebacks += 1;
                    self.counters.dram_line_writes += 1;
                    self.counters.sram_read_bits += *line_bytes * 8;
                    let _ = channel.request(cycle, *round_trip_cycles);
                }
            }
        }
    }

    /// Records a task-queue read (queues live in the PLM, paper §III-A)
    /// and returns its latency.
    pub fn queue_read(&mut self, words: u64) -> u64 {
        self.counters.queue_reads += 1;
        self.counters.sram_read_bits += words * WORD_BITS;
        self.sram_latency
    }

    /// Records a task-queue write and returns its latency.
    pub fn queue_write(&mut self, words: u64) -> u64 {
        self.counters.queue_writes += 1;
        self.counters.sram_write_bits += words * WORD_BITS;
        self.sram_latency
    }

    /// Event counters of this tile.
    pub fn counters(&self) -> &MemCounters {
        &self.counters
    }

    /// The cache-model state as canonical JSON, or `None` in scratchpad
    /// mode (which holds no dynamic memory state). All cache fields are
    /// integers and booleans, so the JSON round-trip is exact.
    pub fn snapshot_cache(&self) -> Option<String> {
        match &self.mode {
            Mode::Scratchpad => None,
            Mode::Cache { cache, .. } => {
                Some(serde_json::to_string(cache).expect("cache model serializes"))
            }
        }
    }

    /// Overwrites the cache model from a [`TileMemory::snapshot_cache`]
    /// blob. Errors if this tile is in scratchpad mode or the blob does
    /// not parse; the static geometry (latencies, line size, prefetch
    /// policy) is kept from the current configuration.
    pub fn restore_cache(&mut self, json: &str) -> Result<(), String> {
        match &mut self.mode {
            Mode::Scratchpad => Err("snapshot has cache state but tile is a scratchpad".into()),
            Mode::Cache { cache, .. } => {
                *cache = serde_json::from_str(json)
                    .map_err(|e| format!("cache state does not parse: {e}"))?;
                Ok(())
            }
        }
    }

    /// Overwrites the event counters (checkpoint restore).
    pub fn restore_counters(&mut self, counters: MemCounters) {
        self.counters = counters;
    }

    /// Host heap bytes owned by this tile's memory model (the cache tag
    /// array in DRAM mode; zero in scratchpad mode).
    pub fn heap_bytes(&self) -> u64 {
        match &self.mode {
            Mode::Scratchpad => 0,
            Mode::Cache { cache, .. } => cache.heap_bytes(),
        }
    }

    /// Cache hit rate so far (1.0 in scratchpad mode).
    pub fn hit_rate(&self) -> f64 {
        self.counters.hit_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muchisim_config::DramConfig;

    fn scratchpad() -> TileMemory {
        TileMemory::from_system(&SystemConfig::default())
    }

    fn cached(kib: u32, next_line: bool) -> TileMemory {
        let mut dram = DramConfig::default();
        dram.prefetch.next_line = next_line;
        TileMemory::from_system(
            &SystemConfig::builder()
                .sram_kib_per_tile(kib)
                .dram(dram)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn scratchpad_constant_latency() {
        let mut m = scratchpad();
        assert!(!m.is_cache());
        let l1 = m.access(0x0, AccessKind::Read, 0, None);
        let l2 = m.access(0xFFFF_FFFF, AccessKind::Write, 99, None);
        assert_eq!(l1, m.sram_latency());
        assert_eq!(l2, m.sram_latency());
        assert_eq!(m.counters().sram_reads, 1);
        assert_eq!(m.counters().sram_writes, 1);
    }

    #[test]
    fn cache_miss_then_hit_latency() {
        let mut m = cached(64, false);
        let mut ch = ChannelState::default();
        let miss = m.access(0x4000, AccessKind::Read, 0, Some(&mut ch));
        let hit = m.access(0x4000, AccessKind::Read, 100, Some(&mut ch));
        assert!(miss > hit, "miss {miss} must exceed hit {hit}");
        assert_eq!(hit, m.sram_latency());
        assert_eq!(m.counters().cache_misses, 1);
        assert_eq!(m.counters().cache_hits, 1);
        // 50ns at 1GHz = 50 cycles round trip
        assert_eq!(miss, m.sram_latency() + 50);
    }

    #[test]
    fn channel_contention_increases_miss_latency() {
        let mut m = cached(64, false);
        let mut ch = ChannelState::default();
        let first = m.access(0x0000, AccessKind::Read, 0, Some(&mut ch));
        let second = m.access(0x1_0000, AccessKind::Read, 0, Some(&mut ch));
        assert!(second > first, "queued request must wait");
    }

    #[test]
    fn writeback_counted_on_dirty_eviction() {
        let mut m = cached(64, false);
        let mut ch = ChannelState::default();
        // discover geometry indirectly: write a long stride until something
        // evicts; with 64 KiB PLM the cache holds ~< 64 KiB of data
        for i in 0..4096u64 {
            m.access(i * 64, AccessKind::Write, 0, Some(&mut ch));
        }
        assert!(m.counters().writebacks > 0);
        assert_eq!(m.counters().dram_line_writes, m.counters().writebacks);
    }

    #[test]
    fn next_line_prefetch_hits() {
        let mut with_pf = cached(64, true);
        let mut without = cached(64, false);
        let mut ch1 = ChannelState::default();
        let mut ch2 = ChannelState::default();
        // sequential scan: every second line should be prefetched
        let mut pf_lat = 0;
        let mut plain_lat = 0;
        for i in 0..64u64 {
            pf_lat += with_pf.access(i * 64, AccessKind::Read, i * 200, Some(&mut ch1));
            plain_lat += without.access(i * 64, AccessKind::Read, i * 200, Some(&mut ch2));
        }
        assert!(with_pf.counters().prefetch_fills > 0);
        assert!(with_pf.counters().prefetch_hits > 0);
        assert!(
            pf_lat < plain_lat,
            "prefetching scan latency {pf_lat} should beat {plain_lat}"
        );
    }

    #[test]
    fn pointer_prefetch_warms_cache() {
        let mut m = cached(64, false);
        let mut ch = ChannelState::default();
        m.prefetch(0x8000, 0, Some(&mut ch));
        assert_eq!(m.counters().prefetch_fills, 1);
        let lat = m.access(0x8000, AccessKind::Read, 100, Some(&mut ch));
        assert_eq!(lat, m.sram_latency());
        assert_eq!(m.counters().prefetch_hits, 1);
    }

    #[test]
    fn queue_ops_counted_as_sram_traffic() {
        let mut m = scratchpad();
        let l = m.queue_write(3);
        assert_eq!(l, m.sram_latency());
        m.queue_read(3);
        assert_eq!(m.counters().queue_writes, 1);
        assert_eq!(m.counters().queue_reads, 1);
        assert_eq!(m.counters().sram_read_bits, 96);
        assert_eq!(m.counters().sram_write_bits, 96);
    }

    #[test]
    fn bigger_plm_higher_hit_rate() {
        let run = |kib: u32| {
            let mut m = cached(kib, false);
            let mut ch = ChannelState::default();
            // working set ~96 KiB, accessed twice
            for _ in 0..2 {
                for i in 0..1536u64 {
                    m.access(i * 64, AccessKind::Read, 0, Some(&mut ch));
                }
            }
            m.hit_rate()
        };
        let small = run(64);
        let big = run(256);
        assert!(big > small, "hit rate {big:.3} should beat {small:.3}");
    }

    #[test]
    #[should_panic(expected = "requires an HBM channel")]
    fn cache_mode_requires_channel() {
        let mut m = cached(64, false);
        m.access(0, AccessKind::Read, 0, None);
    }
}
