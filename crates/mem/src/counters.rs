//! Memory-event counters, part of the counters file used for energy
//! post-processing (paper §III-D).

use serde::{Deserialize, Serialize};

/// Counts of memory events for one tile or aggregated over tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MemCounters {
    /// SRAM read accesses (word granularity).
    pub sram_reads: u64,
    /// SRAM write accesses (word granularity).
    pub sram_writes: u64,
    /// Bits read from SRAM (words + line fills + victim reads).
    pub sram_read_bits: u64,
    /// Bits written to SRAM.
    pub sram_write_bits: u64,
    /// Cache tag read + compare operations.
    pub tag_accesses: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Dirty lines written back to DRAM.
    pub writebacks: u64,
    /// Lines fetched from DRAM (demand misses).
    pub dram_line_reads: u64,
    /// Lines written to DRAM (writebacks).
    pub dram_line_writes: u64,
    /// Lines fetched by the prefetcher.
    pub prefetch_fills: u64,
    /// Demand accesses that hit a prefetched line.
    pub prefetch_hits: u64,
    /// Task-queue reads (modeled as SRAM loads, paper §III-A "Queues").
    pub queue_reads: u64,
    /// Task-queue writes.
    pub queue_writes: u64,
}

impl MemCounters {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &MemCounters) {
        self.sram_reads += other.sram_reads;
        self.sram_writes += other.sram_writes;
        self.sram_read_bits += other.sram_read_bits;
        self.sram_write_bits += other.sram_write_bits;
        self.tag_accesses += other.tag_accesses;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.writebacks += other.writebacks;
        self.dram_line_reads += other.dram_line_reads;
        self.dram_line_writes += other.dram_line_writes;
        self.prefetch_fills += other.prefetch_fills;
        self.prefetch_hits += other.prefetch_hits;
        self.queue_reads += other.queue_reads;
        self.queue_writes += other.queue_writes;
    }

    /// Cache hit rate in `[0, 1]`, or 1.0 when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            1.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Total DRAM line transfers (reads + writes + prefetches).
    pub fn dram_lines(&self) -> u64 {
        self.dram_line_reads + self.dram_line_writes + self.prefetch_fills
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let a = MemCounters {
            sram_reads: 1,
            cache_hits: 3,
            cache_misses: 1,
            dram_line_reads: 2,
            ..Default::default()
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.sram_reads, 2);
        assert_eq!(b.cache_hits, 6);
        assert_eq!(b.dram_lines(), 4);
    }

    #[test]
    fn hit_rate_bounds() {
        let mut c = MemCounters::default();
        assert_eq!(c.hit_rate(), 1.0);
        c.cache_hits = 3;
        c.cache_misses = 1;
        assert_eq!(c.hit_rate(), 0.75);
    }
}
