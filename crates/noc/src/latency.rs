//! Per-packet latency statistics.
//!
//! Every packet carries the cycle it was *born* (scheduled or handed to
//! the NoC injection point); when it ejects, the shard records
//! `eject_cycle − born` here. The accumulator is a log₂ histogram plus
//! exact count/sum/max, so merging per-shard instances is commutative —
//! results are bit-identical across host-thread counts — and memory is a
//! fixed few hundred bytes regardless of traffic volume.
//!
//! This is the measurement half of latency-versus-offered-load NoC
//! characterization (see `muchisim-traffic`): the mean is exact, and
//! percentiles are resolved to power-of-two bucket bounds, which is
//! plenty to locate a saturation knee that moves latency by orders of
//! magnitude.

use serde::{Deserialize, Serialize};

/// Number of log₂ buckets (bucket 31 absorbs everything ≥ 2³⁰ cycles).
const BUCKETS: usize = 32;

/// A log₂ latency histogram with exact count, sum and max.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Packets recorded.
    pub count: u64,
    /// Sum of all recorded latencies, in cycles.
    pub total_cycles: u64,
    /// Largest recorded latency.
    pub max_cycles: u64,
    /// `buckets[i]` counts latencies in `[2^(i-1), 2^i)` (bucket 0: zero
    /// latency; the last bucket absorbs the tail).
    pub buckets: [u64; BUCKETS],
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats {
            count: 0,
            total_cycles: 0,
            max_cycles: 0,
            buckets: [0; BUCKETS],
        }
    }
}

/// The histogram bucket of a latency value.
fn bucket_of(latency: u64) -> usize {
    (64 - latency.leading_zeros() as usize).min(BUCKETS - 1)
}

impl LatencyStats {
    /// Records one packet latency.
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.total_cycles += latency;
        self.max_cycles = self.max_cycles.max(latency);
        self.buckets[bucket_of(latency)] += 1;
    }

    /// Accumulates `other` into `self` (commutative).
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.total_cycles += other.total_cycles;
        self.max_cycles = self.max_cycles.max(other.max_cycles);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Mean latency in cycles (0 when nothing was recorded).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0 < q ≤ 1`): the upper bound of the
    /// first histogram bucket whose cumulative count reaches `q · count`,
    /// clamped to the exact maximum. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let need = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= need.max(1) {
                // bucket i spans [2^(i-1), 2^i); report its inclusive top
                let top = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return top.min(self.max_cycles);
            }
        }
        self.max_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn mean_max_and_percentiles() {
        let mut s = LatencyStats::default();
        for lat in [4u64, 5, 6, 7, 100] {
            s.record(lat);
        }
        assert_eq!(s.count, 5);
        assert!((s.mean() - 24.4).abs() < 1e-9);
        assert_eq!(s.max_cycles, 100);
        // four of five samples sit in [4, 8): the median resolves there
        assert_eq!(s.percentile(0.5), 7);
        // the tail hits the max exactly
        assert_eq!(s.percentile(1.0), 100);
        assert_eq!(LatencyStats::default().percentile(0.5), 0);
        assert_eq!(LatencyStats::default().mean(), 0.0);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = LatencyStats::default();
        let mut b = LatencyStats::default();
        for lat in [1u64, 2, 3] {
            a.record(lat);
        }
        for lat in [10u64, 20] {
            b.record(lat);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 5);
        assert_eq!(ab.total_cycles, 36);
    }

    #[test]
    fn serde_round_trip() {
        let mut s = LatencyStats::default();
        s.record(9);
        let json = serde_json::to_string(&s).unwrap();
        let back: LatencyStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
