//! Per-router state: input queues, arbitration pointers, link occupancy.

use crate::packet::Packet;
use crate::port::{IN_PORTS, OUT_DIRS};
use std::collections::VecDeque;

/// The mutable state of one router.
///
/// Queues are FIFOs; capacity accounting (in flits) lives in the shared
/// occupancy table so that upstream routers in other shards can reserve
/// space without touching the queue itself.
#[derive(Debug, Default)]
pub struct RouterState {
    /// One FIFO per input port.
    pub queues: [VecDeque<Packet>; IN_PORTS],
    /// Round-robin arbitration pointer per output direction.
    pub rr_ptr: [u8; OUT_DIRS],
    /// Cycle until which each output link is busy serializing flits.
    pub busy_until: [u64; OUT_DIRS],
    /// Packets currently queued in this router (cheap emptiness check).
    pub queued_msgs: u32,
}

impl RouterState {
    /// Whether any packet is queued here.
    pub fn has_traffic(&self) -> bool {
        self.queued_msgs > 0
    }

    /// Pushes a packet into input queue `port`, combining with a queued
    /// reducible packet when possible.
    ///
    /// Returns the flits freed by combining (0 if simply enqueued).
    pub fn push(&mut self, port: usize, pkt: Packet) -> u32 {
        if pkt.reduce.is_some() {
            for queued in self.queues[port].iter_mut() {
                if queued.can_combine(&pkt) {
                    queued.combine(&pkt);
                    return pkt.flits as u32;
                }
            }
        }
        self.queued_msgs += 1;
        self.queues[port].push_back(pkt);
        0
    }

    /// Pops the head of input queue `port`.
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty.
    pub fn pop(&mut self, port: usize) -> Packet {
        self.queued_msgs -= 1;
        self.queues[port]
            .pop_front()
            .expect("pop from empty router queue")
    }

    /// Host heap bytes owned by this router's queues (buffer capacity
    /// plus spilled payloads).
    pub fn heap_bytes(&self) -> u64 {
        self.queues
            .iter()
            .map(|q| {
                q.capacity() as u64 * std::mem::size_of::<Packet>() as u64
                    + q.iter().map(|p| p.payload.heap_bytes()).sum::<u64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Payload, ReduceOp};

    fn pkt(dst: u32, key: u32, val: u32) -> Packet {
        Packet::unicast(0, dst, 1, Payload::from_slice(&[key, val]), 2)
            .with_reduce(ReduceOp::MinU32)
    }

    #[test]
    fn push_pop_fifo_order() {
        let mut r = RouterState::default();
        r.push(0, Packet::unicast(0, 1, 0, Payload::from_slice(&[1]), 1));
        r.push(0, Packet::unicast(0, 2, 0, Payload::from_slice(&[2]), 1));
        assert_eq!(r.queued_msgs, 2);
        assert_eq!(r.pop(0).dst, 1);
        assert_eq!(r.pop(0).dst, 2);
        assert!(!r.has_traffic());
    }

    #[test]
    fn push_combines_reducible_packets() {
        let mut r = RouterState::default();
        assert_eq!(r.push(0, pkt(9, 7, 10)), 0);
        let freed = r.push(0, pkt(9, 7, 4));
        assert_eq!(freed, 2, "combined packet frees its flits");
        assert_eq!(r.queued_msgs, 1);
        let head = r.pop(0);
        assert_eq!(head.payload.word(1), 4);
    }

    #[test]
    fn push_does_not_combine_across_keys() {
        let mut r = RouterState::default();
        r.push(0, pkt(9, 7, 10));
        assert_eq!(r.push(0, pkt(9, 8, 4)), 0);
        assert_eq!(r.queued_msgs, 2);
    }
}
