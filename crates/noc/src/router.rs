//! Per-router state: input queues and the in-network combine index.
//!
//! The hot per-cycle scalars (`busy_until`, `rr_ptr`, `queued_msgs`) live
//! in dense per-shard arrays (see [`crate::shard::Shard`]), not here: the
//! active-router sweep reads them without chasing the
//! `Vec<Option<Box<RouterState>>>` pointer table, and they survive when a
//! drained router's box is recycled through the shard's free-list. What
//! remains in the box is the cold bulk — the packet FIFOs — plus the
//! bookkeeping that is only touched when a packet actually moves.

use crate::packet::{Packet, ReduceOp};
use crate::port::IN_PORTS;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::collections::VecDeque;

/// Identity of a reducible packet waiting in one input queue: input port,
/// destination, task, reduction key (payload word 0), and operator.
///
/// [`RouterState::push`] maintains the invariant that at most one queued
/// packet per signature exists in any input queue — a second arrival
/// combines into the first instead of enqueueing — so a signature→position
/// map replaces the old first-match scan of the whole FIFO exactly.
type CombineSig = (u8, u32, u8, u32, ReduceOp);

/// Whether `pkt` participates in in-network combining at all (mirrors the
/// self-conditions of [`Packet::can_combine`]).
#[inline]
fn combine_sig(port: usize, pkt: &Packet) -> Option<CombineSig> {
    match pkt.reduce {
        Some(op) if pkt.payload.len() >= 2 => {
            Some((port as u8, pkt.dst, pkt.task, pkt.payload.word(0), op))
        }
        _ => None,
    }
}

/// The mutable state of one router.
///
/// Queues are FIFOs; capacity accounting (in flits) lives in the shared
/// occupancy table so that upstream routers in other shards can reserve
/// space without touching the queue itself.
#[derive(Debug, Default)]
pub struct RouterState {
    /// One FIFO per input port.
    pub queues: [VecDeque<Packet>; IN_PORTS],
    /// Bit `p` set ⇔ `queues[p]` is non-empty (the step sweep visits
    /// occupied ports only, instead of scanning all 13 queue heads).
    port_mask: u16,
    /// Pops per port since the last reset (wrapping). Together with a
    /// queue position this yields a stable sequence number, which is what
    /// the combine index stores — positions shift on every pop, sequence
    /// numbers never do.
    pops: [u32; IN_PORTS],
    /// Sequence number of the unique queued reducible packet per
    /// signature: the bounded replacement for scanning the whole input
    /// FIFO per reducible push.
    combine: HashMap<CombineSig, u32>,
}

impl RouterState {
    /// Whether every input queue is empty.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.port_mask == 0
    }

    /// Bitmask of non-empty input ports.
    #[inline]
    pub fn port_mask(&self) -> u16 {
        self.port_mask
    }

    /// Pushes a packet into input queue `port`, combining with the queued
    /// reducible packet of the same signature when one exists.
    ///
    /// Returns the flits freed by combining (0 if simply enqueued).
    pub fn push(&mut self, port: usize, pkt: Packet) -> u32 {
        if let Some(sig) = combine_sig(port, &pkt) {
            match self.combine.entry(sig) {
                Entry::Occupied(slot) => {
                    let idx = slot.get().wrapping_sub(self.pops[port]) as usize;
                    let queued = &mut self.queues[port][idx];
                    debug_assert!(queued.can_combine(&pkt), "combine index out of sync");
                    queued.combine(&pkt);
                    return pkt.flits as u32;
                }
                Entry::Vacant(slot) => {
                    slot.insert(self.pops[port].wrapping_add(self.queues[port].len() as u32));
                }
            }
        }
        self.queues[port].push_back(pkt);
        self.port_mask |= 1 << port;
        0
    }

    /// Pops the head of input queue `port`.
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty.
    pub fn pop(&mut self, port: usize) -> Packet {
        let pkt = self.queues[port]
            .pop_front()
            .expect("pop from empty router queue");
        if self.queues[port].is_empty() {
            self.port_mask &= !(1 << port);
        }
        self.pops[port] = self.pops[port].wrapping_add(1);
        if let Some(sig) = combine_sig(port, &pkt) {
            // the signature is unique in the queue, so the head is the
            // indexed instance
            let seq = self.combine.remove(&sig);
            debug_assert_eq!(seq, Some(self.pops[port].wrapping_sub(1)));
        }
        pkt
    }

    /// Restores a just-popped packet to the head of queue `port` (eject
    /// refusal: the tile's input queue had no room, retry next cycle).
    pub fn restore_front(&mut self, port: usize, pkt: Packet) {
        self.pops[port] = self.pops[port].wrapping_sub(1);
        if let Some(sig) = combine_sig(port, &pkt) {
            let prev = self.combine.insert(sig, self.pops[port]);
            debug_assert!(prev.is_none(), "restored signature already indexed");
        }
        self.queues[port].push_front(pkt);
        self.port_mask |= 1 << port;
    }

    /// Resets bookkeeping so a drained router's box can serve another
    /// router via the shard free-list. Queue and index *capacity* is
    /// deliberately kept — recycled buffers are the point of the pool.
    pub(crate) fn reset_for_reuse(&mut self) {
        debug_assert!(
            self.queues.iter().all(VecDeque::is_empty),
            "recycling a router that still holds packets"
        );
        debug_assert!(self.combine.is_empty(), "combine index leaked an entry");
        self.port_mask = 0;
        self.pops = [0; IN_PORTS];
    }

    /// Host heap bytes owned by this router's queues (buffer capacity
    /// plus spilled payloads) and combine index.
    pub fn heap_bytes(&self) -> u64 {
        self.queues
            .iter()
            .map(|q| {
                q.capacity() as u64 * std::mem::size_of::<Packet>() as u64
                    + q.iter().map(|p| p.payload.heap_bytes()).sum::<u64>()
            })
            .sum::<u64>()
            + self.combine.capacity() as u64 * std::mem::size_of::<(CombineSig, u32)>() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Payload;

    fn pkt(dst: u32, key: u32, val: u32) -> Packet {
        Packet::unicast(0, dst, 1, Payload::from_slice(&[key, val]), 2)
            .with_reduce(ReduceOp::MinU32)
    }

    #[test]
    fn push_pop_fifo_order() {
        let mut r = RouterState::default();
        r.push(0, Packet::unicast(0, 1, 0, Payload::from_slice(&[1]), 1));
        r.push(0, Packet::unicast(0, 2, 0, Payload::from_slice(&[2]), 1));
        assert_eq!(r.port_mask(), 1);
        assert_eq!(r.pop(0).dst, 1);
        assert_eq!(r.pop(0).dst, 2);
        assert!(r.is_empty());
    }

    #[test]
    fn push_combines_reducible_packets() {
        let mut r = RouterState::default();
        assert_eq!(r.push(0, pkt(9, 7, 10)), 0);
        let freed = r.push(0, pkt(9, 7, 4));
        assert_eq!(freed, 2, "combined packet frees its flits");
        let head = r.pop(0);
        assert_eq!(head.payload.word(1), 4);
        assert!(r.is_empty());
    }

    #[test]
    fn push_does_not_combine_across_keys() {
        let mut r = RouterState::default();
        r.push(0, pkt(9, 7, 10));
        assert_eq!(r.push(0, pkt(9, 8, 4)), 0);
        assert_eq!(r.pop(0).payload.word(0), 7);
        assert_eq!(r.pop(0).payload.word(0), 8);
    }

    #[test]
    fn combine_index_survives_deep_queues_and_pops() {
        // The satellite regression test: the old implementation walked the
        // whole FIFO per reducible push (quadratic under dense reduction
        // traffic); the index must keep behaving identically — first (and
        // only) same-signature packet combines, at any queue depth, even
        // after the positions under it shift through pops and restores.
        let mut r = RouterState::default();
        // 64 distinct-key reducible packets + one plain packet in front
        r.push(3, Packet::unicast(0, 9, 1, Payload::from_slice(&[999]), 1));
        for key in 0..64 {
            assert_eq!(r.push(3, pkt(9, key, key + 100)), 0);
        }
        // a second wave combines into every queued packet, regardless of
        // how deep it sits
        for key in 0..64 {
            assert_eq!(r.push(3, pkt(9, key, 1)), 2, "key {key} must combine");
        }
        // shift the queue: pop the plain head and the first 10 reduced
        // packets, then push a third wave — survivors still combine, the
        // popped keys re-enqueue
        assert_eq!(r.pop(3).payload.word(0), 999);
        for _ in 0..10 {
            r.pop(3);
        }
        for key in 0..64 {
            let freed = r.push(3, pkt(9, key, 2));
            if key < 10 {
                assert_eq!(freed, 0, "popped key {key} re-enqueues");
            } else {
                assert_eq!(freed, 2, "queued key {key} still combines");
            }
        }
        // restore-front keeps the index consistent too
        let head = r.pop(3);
        let key = head.payload.word(0);
        r.restore_front(3, head);
        assert_eq!(r.push(3, pkt(9, key, 3)), 2, "restored head combines");
    }

    #[test]
    fn reduce_without_key_words_never_indexes() {
        // reducible flag but payload < 2 words: can_combine is always
        // false for these, so they enqueue and never join the index
        let mut r = RouterState::default();
        let short =
            Packet::unicast(0, 9, 1, Payload::from_slice(&[7]), 1).with_reduce(ReduceOp::SumU32);
        assert_eq!(r.push(0, short.clone()), 0);
        assert_eq!(r.push(0, short), 0, "second short packet also enqueues");
        assert_eq!(r.queues[0].len(), 2);
    }

    #[test]
    fn reuse_reset_keeps_capacity() {
        let mut r = RouterState::default();
        for i in 0..32 {
            r.push(5, pkt(9, i, i));
        }
        let cap_before = r.queues[5].capacity();
        assert!(cap_before >= 32);
        while !r.is_empty() {
            r.pop(5);
        }
        r.reset_for_reuse();
        assert_eq!(r.port_mask(), 0);
        assert_eq!(r.queues[5].capacity(), cap_before, "buffers are recycled");
    }
}
