//! Dimension-ordered (XY) routing with dateline virtual channels.

use crate::port::{InPort, OutDir};
use crate::topo::TopoInfo;
use muchisim_config::NocTopology;

/// The outcome of a routing decision for one hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// Output direction to take.
    pub dir: OutDir,
    /// Virtual channel the packet travels on for this hop (dateline
    /// discipline: packets switch to VC 1 after using a wrap link and
    /// reset to VC 0 when turning into the other dimension).
    pub vc: u8,
}

/// Whether the packet arriving on `port` was already traveling in the X
/// dimension.
fn was_traveling_x(port: InPort) -> bool {
    matches!(
        port,
        InPort::FromE0
            | InPort::FromE1
            | InPort::FromW0
            | InPort::FromW1
            | InPort::FromRucheE
            | InPort::FromRucheW
    )
}

/// Whether the packet arriving on `port` was already traveling in the Y
/// dimension.
fn was_traveling_y(port: InPort) -> bool {
    matches!(
        port,
        InPort::FromN0
            | InPort::FromN1
            | InPort::FromS0
            | InPort::FromS1
            | InPort::FromRucheN
            | InPort::FromRucheS
    )
}

/// Signed distance to travel along one dimension of size `size` from `cur`
/// to `dst`; positive means increasing coordinate.
///
/// On a torus the shorter way around is chosen (ties go positive).
fn signed_delta(cur: u32, dst: u32, size: u32, torus: bool) -> i64 {
    let direct = dst as i64 - cur as i64;
    if !torus {
        return direct;
    }
    let size = size as i64;
    let wrapped = if direct > 0 {
        direct - size
    } else {
        direct + size
    };
    if direct.abs() < wrapped.abs() || (direct.abs() == wrapped.abs() && direct > 0) {
        direct
    } else {
        wrapped
    }
}

/// Computes the next hop for a packet at router `cur` (tile id) heading to
/// `dst`, having arrived on `in_port` with virtual channel `vc`.
///
/// Routing is strictly X-then-Y. Ruche links (length `R`) are taken while
/// at least `R` hops remain in the current direction and the link stays in
/// the grid (Ruche links never wrap).
pub fn decide(topo: &TopoInfo, cur: u32, in_port: InPort, vc: u8, dst: u32) -> RouteDecision {
    if cur == dst {
        return RouteDecision {
            dir: OutDir::Eject,
            vc: 0,
        };
    }
    let (cx, cy) = topo.coords(cur);
    let (dx_t, dy_t) = topo.coords(dst);
    let torus = topo.topology == NocTopology::FoldedTorus;
    let dx = signed_delta(cx, dx_t, topo.width, torus);
    if dx != 0 {
        let ring_vc = if was_traveling_x(in_port) { vc } else { 0 };
        let (dir, ruche_dir, wrap) = if dx > 0 {
            (OutDir::E, OutDir::RucheE, cx == topo.width - 1)
        } else {
            (OutDir::W, OutDir::RucheW, cx == 0)
        };
        if let Some(r) = topo.ruche_factor {
            let in_grid = if dx > 0 { cx + r < topo.width } else { cx >= r };
            if dx.unsigned_abs() >= r as u64 && in_grid {
                return RouteDecision {
                    dir: ruche_dir,
                    vc: ring_vc,
                };
            }
        }
        let new_vc = if torus && wrap { 1 } else { ring_vc };
        return RouteDecision { dir, vc: new_vc };
    }
    let dy = signed_delta(cy, dy_t, topo.height, torus);
    debug_assert_ne!(dy, 0, "cur != dst but both deltas are zero");
    let ring_vc = if was_traveling_y(in_port) { vc } else { 0 };
    let (dir, ruche_dir, wrap) = if dy > 0 {
        (OutDir::S, OutDir::RucheS, cy == topo.height - 1)
    } else {
        (OutDir::N, OutDir::RucheN, cy == 0)
    };
    if let Some(r) = topo.ruche_factor {
        let in_grid = if dy > 0 {
            cy + r < topo.height
        } else {
            cy >= r
        };
        if dy.unsigned_abs() >= r as u64 && in_grid {
            return RouteDecision {
                dir: ruche_dir,
                vc: ring_vc,
            };
        }
    }
    let new_vc = if torus && wrap { 1 } else { ring_vc };
    RouteDecision { dir, vc: new_vc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muchisim_config::{NocTopology, SystemConfig};

    fn topo(w: u32, h: u32, topology: NocTopology, ruche: Option<u32>) -> TopoInfo {
        let mut b = SystemConfig::builder();
        b.chiplet_tiles(w, h).noc_topology(topology);
        if let Some(r) = ruche {
            b.ruche_factor(r);
        }
        TopoInfo::from_system(&b.build().unwrap())
    }

    fn id(t: &TopoInfo, x: u32, y: u32) -> u32 {
        y * t.width + x
    }

    #[test]
    fn eject_at_destination() {
        let t = topo(4, 4, NocTopology::Mesh, None);
        let d = decide(&t, 5, InPort::Inject, 0, 5);
        assert_eq!(d.dir, OutDir::Eject);
    }

    #[test]
    fn x_before_y() {
        let t = topo(8, 8, NocTopology::Mesh, None);
        // from (1,1) to (5,6): must go east first
        let d = decide(&t, id(&t, 1, 1), InPort::Inject, 0, id(&t, 5, 6));
        assert_eq!(d.dir, OutDir::E);
        // from (5,1) to (5,6): south
        let d = decide(&t, id(&t, 5, 1), InPort::Inject, 0, id(&t, 5, 6));
        assert_eq!(d.dir, OutDir::S);
        // northbound
        let d = decide(&t, id(&t, 5, 6), InPort::Inject, 0, id(&t, 5, 1));
        assert_eq!(d.dir, OutDir::N);
        // westbound
        let d = decide(&t, id(&t, 5, 1), InPort::Inject, 0, id(&t, 1, 1));
        assert_eq!(d.dir, OutDir::W);
    }

    #[test]
    fn mesh_never_wraps() {
        let t = topo(4, 4, NocTopology::Mesh, None);
        // (3,0) to (0,0): direct west even though wrap would be shorter on
        // a torus
        let d = decide(&t, id(&t, 3, 0), InPort::Inject, 0, id(&t, 0, 0));
        assert_eq!(d.dir, OutDir::W);
        assert_eq!(d.vc, 0);
    }

    #[test]
    fn torus_takes_shorter_way_and_switches_vc_on_wrap() {
        let t = topo(8, 8, NocTopology::FoldedTorus, None);
        // (7,0) to (1,0): eastward wrap (distance 2) beats west (6)
        let d = decide(&t, id(&t, 7, 0), InPort::Inject, 0, id(&t, 1, 0));
        assert_eq!(d.dir, OutDir::E);
        assert_eq!(d.vc, 1, "wrap hop must switch to VC1");
        // continuing east at (0,0) keeps VC1
        let d = decide(&t, id(&t, 0, 0), InPort::FromW1, 1, id(&t, 1, 0));
        assert_eq!(d.dir, OutDir::E);
        assert_eq!(d.vc, 1);
    }

    #[test]
    fn turn_resets_vc() {
        let t = topo(8, 8, NocTopology::FoldedTorus, None);
        // packet on VC1 in the x ring turning south starts the y ring on VC0
        let d = decide(&t, id(&t, 1, 0), InPort::FromW1, 1, id(&t, 1, 3));
        assert_eq!(d.dir, OutDir::S);
        assert_eq!(d.vc, 0);
    }

    #[test]
    fn torus_tie_goes_positive() {
        let t = topo(8, 8, NocTopology::FoldedTorus, None);
        // distance 4 both ways on an 8-ring: go east
        let d = decide(&t, id(&t, 0, 0), InPort::Inject, 0, id(&t, 4, 0));
        assert_eq!(d.dir, OutDir::E);
    }

    #[test]
    fn ruche_taken_for_long_straight_runs() {
        let t = topo(16, 16, NocTopology::Mesh, Some(4));
        let d = decide(&t, id(&t, 0, 0), InPort::Inject, 0, id(&t, 9, 0));
        assert_eq!(d.dir, OutDir::RucheE);
        // 3 hops remaining: regular link
        let d = decide(&t, id(&t, 6, 0), InPort::FromRucheW, 0, id(&t, 9, 0));
        assert_eq!(d.dir, OutDir::E);
        // ruche never leaves the grid: at x=13, 4-hop link would exceed 15
        let d = decide(&t, id(&t, 13, 0), InPort::Inject, 0, id(&t, 15, 0));
        assert_eq!(d.dir, OutDir::E);
    }

    #[test]
    fn ruche_vertical() {
        let t = topo(16, 16, NocTopology::Mesh, Some(4));
        let d = decide(&t, id(&t, 3, 12), InPort::Inject, 0, id(&t, 3, 2));
        assert_eq!(d.dir, OutDir::RucheN);
        let d = decide(&t, id(&t, 3, 2), InPort::Inject, 0, id(&t, 3, 12));
        assert_eq!(d.dir, OutDir::RucheS);
    }

    #[test]
    fn signed_delta_mesh_vs_torus() {
        assert_eq!(signed_delta(7, 1, 8, false), -6);
        assert_eq!(signed_delta(7, 1, 8, true), 2);
        assert_eq!(signed_delta(1, 7, 8, true), -2);
        assert_eq!(signed_delta(0, 4, 8, true), 4); // tie -> positive
        assert_eq!(signed_delta(3, 3, 8, true), 0);
    }

    #[test]
    fn route_always_makes_progress_mesh() {
        let t = topo(6, 5, NocTopology::Mesh, None);
        for src in 0..30u32 {
            for dst in 0..30u32 {
                let mut cur = src;
                let mut port = InPort::Inject;
                let mut vc = 0u8;
                let mut hops = 0;
                while cur != dst {
                    let d = decide(&t, cur, port, vc, dst);
                    assert_ne!(d.dir, OutDir::Eject);
                    let (n, p) = t.neighbor(cur, d.dir, d.vc).expect("valid hop");
                    cur = n;
                    port = p;
                    vc = d.vc;
                    hops += 1;
                    assert!(hops <= 10, "routing loop from {src} to {dst}");
                }
            }
        }
    }

    #[test]
    fn route_always_makes_progress_torus_with_wrap() {
        let t = topo(6, 6, NocTopology::FoldedTorus, None);
        for src in 0..36u32 {
            for dst in 0..36u32 {
                let mut cur = src;
                let mut port = InPort::Inject;
                let mut vc = 0u8;
                let mut hops = 0;
                while cur != dst {
                    let d = decide(&t, cur, port, vc, dst);
                    let (n, p) = t.neighbor(cur, d.dir, d.vc).expect("valid hop");
                    cur = n;
                    port = p;
                    vc = d.vc;
                    hops += 1;
                    assert!(hops <= 6, "torus route too long from {src} to {dst}");
                }
            }
        }
    }
}
