//! Performance counters collected by the NoC (paper §III-D: hops, traffic
//! and contention at every hierarchy level, recorded in the counters file
//! for energy post-processing).

use muchisim_config::LinkClass;
use serde::{Deserialize, Serialize};

/// Index of a [`LinkClass`] in per-class counter arrays.
pub(crate) fn class_index(class: LinkClass) -> usize {
    match class {
        LinkClass::OnChip => 0,
        LinkClass::DieToDie => 1,
        LinkClass::OffPackage => 2,
        LinkClass::InterNode => 3,
    }
}

/// Aggregated NoC counters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NocCounters {
    /// Packets injected by PUs.
    pub injected: u64,
    /// Packets delivered to destination tiles.
    pub ejected: u64,
    /// Router-to-router packet moves.
    pub msg_hops: u64,
    /// Flit hops per link class `[on-chip, die-to-die, off-package,
    /// inter-node]`.
    pub flit_hops_by_class: [u64; 4],
    /// Flit × millimeter product for on-chip wire energy.
    pub onchip_flit_mm: f64,
    /// Destination-port collisions: extra candidates that lost round-robin
    /// arbitration in some cycle.
    pub collisions: u64,
    /// Moves blocked by a full downstream buffer.
    pub backpressure: u64,
    /// Ejections refused because the tile's input queue was full.
    pub eject_stalls: u64,
    /// Messages eliminated by in-network reduction combining.
    pub reduce_combines: u64,
}

impl NocCounters {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &NocCounters) {
        self.injected += other.injected;
        self.ejected += other.ejected;
        self.msg_hops += other.msg_hops;
        for i in 0..4 {
            self.flit_hops_by_class[i] += other.flit_hops_by_class[i];
        }
        self.onchip_flit_mm += other.onchip_flit_mm;
        self.collisions += other.collisions;
        self.backpressure += other.backpressure;
        self.eject_stalls += other.eject_stalls;
        self.reduce_combines += other.reduce_combines;
    }

    /// Total flit hops across all link classes.
    pub fn total_flit_hops(&self) -> u64 {
        self.flit_hops_by_class.iter().sum()
    }

    /// Flit hops over `class` links.
    pub fn flit_hops(&self, class: LinkClass) -> u64 {
        self.flit_hops_by_class[class_index(class)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = NocCounters {
            injected: 1,
            ejected: 2,
            msg_hops: 3,
            flit_hops_by_class: [1, 2, 3, 4],
            onchip_flit_mm: 1.5,
            collisions: 1,
            backpressure: 2,
            eject_stalls: 3,
            reduce_combines: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.injected, 2);
        assert_eq!(a.flit_hops_by_class, [2, 4, 6, 8]);
        assert_eq!(a.onchip_flit_mm, 3.0);
        assert_eq!(a.total_flit_hops(), 20);
        assert_eq!(a.flit_hops(LinkClass::DieToDie), 4);
    }

    #[test]
    fn class_indices_distinct() {
        let idxs = [
            class_index(LinkClass::OnChip),
            class_index(LinkClass::DieToDie),
            class_index(LinkClass::OffPackage),
            class_index(LinkClass::InterNode),
        ];
        for (i, a) in idxs.iter().enumerate() {
            for b in &idxs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
