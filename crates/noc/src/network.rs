//! The whole-network facade: shards + shared state.

use crate::counters::NocCounters;
use crate::packet::Packet;
use crate::port::InPort;
use crate::shard::Shard;
use crate::topo::TopoInfo;
use muchisim_config::SystemConfig;
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU32, Ordering};

/// Splits `width` columns into at most `num_shards` contiguous ranges
/// whose boundaries are multiples of `align`, returning the exclusive end
/// column of each range.
///
/// Degenerate inputs degrade instead of panicking: asking for more shards
/// than columns (or than alignment units) yields fewer, non-empty shards;
/// an `align` of 0 or beyond `width` collapses to a single shard; a zero
/// `width` yields no shards at all.
pub fn split_columns(width: u32, num_shards: usize, align: u32) -> Vec<u32> {
    if width == 0 {
        return Vec::new();
    }
    let align = align.clamp(1, width);
    let units = width / align; // alignment units (last unit absorbs remainder)
    let n = (num_shards as u32).clamp(1, units);
    let base = units / n;
    let extra = units % n;
    let mut boundaries = Vec::with_capacity(n as usize);
    let mut cursor = 0;
    for i in 0..n {
        cursor += (base + u32::from(i < extra)) * align;
        boundaries.push(cursor);
    }
    *boundaries.last_mut().expect("n >= 1") = width;
    boundaries
}

/// Splits `weights.len()` columns into at most `num_shards` contiguous
/// ranges whose boundaries are multiples of `align`, balancing the summed
/// per-column `weights` across ranges. Returns the exclusive end column
/// of each range, like [`split_columns`].
///
/// `weights[c]` is a measured event count for column `c` (tasks executed,
/// packets routed) from a calibration window; the greedy walk closes each
/// shard once it holds its fair share of the remaining weight, so a
/// hotspot column ends up in a narrow shard and idle plains are grouped
/// into wide ones. With uniform weights this degenerates to (nearly) the
/// even split of [`split_columns`].
///
/// Degenerate inputs degrade like [`split_columns`]: fewer shards than
/// requested when columns or alignment units run out, a single shard when
/// `align` exceeds the width, no shards for zero columns. All-zero
/// weights fall back to the even split.
pub fn split_by_activity(weights: &[u64], num_shards: usize, align: u32) -> Vec<u32> {
    let width = weights.len() as u32;
    if width == 0 {
        return Vec::new();
    }
    let align = align.clamp(1, width);
    let units = width / align; // last unit absorbs the remainder columns
    let n = (num_shards as u32).clamp(1, units);
    // weight of each alignment unit
    let unit_w: Vec<u64> = (0..units)
        .map(|u| {
            let start = (u * align) as usize;
            let end = if u == units - 1 {
                width as usize
            } else {
                start + align as usize
            };
            weights[start..end].iter().sum()
        })
        .collect();
    let mut remaining: u64 = unit_w.iter().sum();
    if remaining == 0 {
        return split_columns(width, num_shards, align);
    }
    let mut boundaries = Vec::with_capacity(n as usize);
    let mut unit = 0u32;
    for shard in 0..n {
        let shards_left = n - shard;
        let target = remaining.div_ceil(shards_left as u64);
        let mut acc = 0u64;
        // take at least one unit, then keep taking while under target and
        // while enough units remain to give every later shard one
        loop {
            acc += unit_w[unit as usize];
            unit += 1;
            let units_left = units - unit;
            if units_left < shards_left {
                break; // later shards need the rest
            }
            if shard + 1 == n || acc >= target {
                break;
            }
            // stop early if taking the next unit overshoots the target by
            // more than stopping now undershoots it
            let next = unit_w[unit as usize];
            if acc + next > target && (acc + next - target) > (target - acc) {
                break;
            }
        }
        remaining -= acc;
        boundaries.push((unit * align).min(width));
    }
    *boundaries.last_mut().expect("n >= 1") = width;
    boundaries
}

/// Destination for packets that reach their tile (the bridge into the
/// core simulator's input queues).
///
/// Implementations refuse a packet (returning it) when the destination
/// queue is full, which back-pressures the network (paper §III-A).
pub trait EjectSink {
    /// Offers `pkt`, delivered at `tile`. Returns the packet back if it
    /// cannot be accepted this cycle.
    fn offer(&mut self, tile: u32, pkt: Packet) -> Result<(), Packet>;
}

/// An [`EjectSink`] that accepts everything, collecting `(tile, packet)`
/// pairs. Useful for tests and standalone NoC studies.
#[derive(Debug, Default)]
pub struct DrainSink {
    /// Delivered packets in arrival order.
    pub drained: Vec<(u32, Packet)>,
}

impl EjectSink for DrainSink {
    fn offer(&mut self, tile: u32, pkt: Packet) -> Result<(), Packet> {
        self.drained.push((tile, pkt));
        Ok(())
    }
}

/// Construction parameters for a [`Network`] plane.
#[derive(Debug, Clone)]
pub struct NetworkParams {
    /// Topology and latency data.
    pub topo: TopoInfo,
    /// Capacity of each tile's inject queue, in flits.
    pub inject_capacity_flits: u32,
    /// Whether shards accumulate per-router busy cycles for heat-map
    /// frames. Off by default below verbosity V2: the per-router grid is
    /// pure overhead when no frame will ever read it.
    pub track_busy: bool,
    /// Whether shards record every injection as a [`crate::TraceEvent`]
    /// (driven by `SystemConfig::noc_trace`).
    pub record_trace: bool,
    /// Whether shards keep an [`crate::ActiveSet`] worklist of routers
    /// holding traffic, so [`Shard::step`] and
    /// [`Shard::next_event_cycle`] skip idle routers (driven by
    /// `SystemConfig::active_list`; results are bit-identical either
    /// way).
    pub active_list: bool,
}

impl NetworkParams {
    /// Derives network parameters from a system configuration.
    pub fn from_system(cfg: &SystemConfig) -> Self {
        NetworkParams {
            topo: TopoInfo::from_system(cfg),
            // the inject queue models the channel-queue drain port
            inject_capacity_flits: cfg.queues.cq_capacity * 2,
            track_busy: cfg.verbosity >= muchisim_config::Verbosity::V2,
            record_trace: cfg.noc_trace.is_some(),
            active_list: cfg.active_list,
        }
    }

    /// Enables or disables per-router busy tracking explicitly
    /// (standalone NoC studies that read [`Network::take_busy`] without a
    /// full system configuration).
    pub fn track_busy(mut self, enabled: bool) -> Self {
        self.track_busy = enabled;
        self
    }

    /// Enables or disables injection-trace recording explicitly.
    pub fn record_trace(mut self, enabled: bool) -> Self {
        self.record_trace = enabled;
        self
    }

    /// Enables or disables the per-shard active-router worklist
    /// explicitly (ablations without a full system configuration).
    pub fn active_list(mut self, enabled: bool) -> Self {
        self.active_list = enabled;
        self
    }
}

/// A single-producer cross-shard mailbox: packets handed from one shard's
/// routers to another's, tagged with the destination tile and input port.
pub(crate) type Mailbox = Mutex<Vec<(u32, InPort, Packet)>>;

/// State shared by all shards: topology, the queue-occupancy table, and
/// the single-producer cross-shard mailboxes.
pub struct SharedNet {
    /// Topology and latency data.
    pub topo: TopoInfo,
    /// Flits reserved per input queue (global queue id).
    pub occupancy: Vec<AtomicU32>,
    /// `mailboxes[consumer][producer]`.
    mailboxes: Vec<Vec<Mailbox>>,
    /// Shard owning each column.
    pub shard_of_col: Vec<u32>,
    /// Inject queue capacity in flits.
    pub inject_capacity_flits: u32,
    /// Packets currently inside the plane (injected − ejected − combined).
    pub(crate) in_flight: AtomicI64,
}

impl SharedNet {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.mailboxes.len()
    }

    /// The mailbox written by `producer` and drained by `consumer`.
    pub(crate) fn mailbox(&self, consumer: usize, producer: usize) -> &Mailbox {
        &self.mailboxes[consumer][producer]
    }

    /// Packets currently inside this plane (injected − ejected − combined).
    pub fn in_flight(&self) -> i64 {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Whether every cross-shard mailbox is empty.
    pub fn mailboxes_empty(&self) -> bool {
        self.mailboxes.iter().flatten().all(|m| m.lock().is_empty())
    }

    /// Host heap bytes of the shared state: the occupancy table, the
    /// column→shard map, and the cross-shard mailboxes.
    pub fn heap_bytes(&self) -> u64 {
        let mailboxes: u64 = self
            .mailboxes
            .iter()
            .map(|row| {
                row.capacity() as u64 * std::mem::size_of::<Mailbox>() as u64
                    + row
                        .iter()
                        .map(|m| {
                            let inbox = m.lock();
                            inbox.capacity() as u64
                                * std::mem::size_of::<(u32, InPort, Packet)>() as u64
                                + inbox
                                    .iter()
                                    .map(|(_, _, p)| p.payload.heap_bytes())
                                    .sum::<u64>()
                        })
                        .sum::<u64>()
            })
            .sum();
        self.occupancy.capacity() as u64 * std::mem::size_of::<AtomicU32>() as u64
            + self.shard_of_col.capacity() as u64 * 4
            + self.mailboxes.capacity() as u64 * std::mem::size_of::<Vec<Mailbox>>() as u64
            + mailboxes
    }

    /// The earliest cycle after `now` at which a packet currently parked
    /// in a cross-shard mailbox can move, or `None` if all mailboxes are
    /// empty.
    ///
    /// Only sound once every shard has finished its step phase for `now`
    /// (mailboxes are written during stepping); the time-leaping driver
    /// therefore calls this from the post-barrier leader action.
    pub fn mailbox_next_event_cycle(&self, now: u64) -> Option<u64> {
        let floor = now + 1;
        let mut horizon: Option<u64> = None;
        for mailbox in self.mailboxes.iter().flatten() {
            for (_, _, pkt) in mailbox.lock().iter() {
                let c = pkt.ready_at.max(floor);
                horizon = Some(horizon.map_or(c, |h| h.min(c)));
            }
        }
        horizon
    }
}

impl fmt::Debug for SharedNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedNet")
            .field("tiles", &self.topo.num_tiles())
            .field("shards", &self.num_shards())
            .finish()
    }
}

/// One physical NoC plane: a grid of routers split into column shards.
///
/// Sequential use: [`Network::step`]. Parallel use: [`Network::split`]
/// hands each host thread a `&mut Shard` plus the shared state; the caller
/// must run the begin-phase of *all* shards (barrier) before any shard's
/// step-phase for the same cycle.
#[derive(Debug)]
pub struct Network {
    shared: SharedNet,
    shards: Vec<Shard>,
}

impl Network {
    /// Builds a network split into (at most) `num_shards` column shards.
    pub fn new(params: NetworkParams, num_shards: usize) -> Self {
        let width = params.topo.width;
        Network::with_boundaries(params, &split_columns(width, num_shards, 1))
    }

    /// Builds a network with explicit shard column boundaries.
    ///
    /// `boundaries` lists the exclusive end column of each shard, in
    /// increasing order, ending at the grid width. Used by the parallel
    /// driver to align shard boundaries with DRAM channel bands.
    ///
    /// # Panics
    ///
    /// Panics if the boundaries are not increasing or do not end at the
    /// grid width.
    pub fn with_boundaries(params: NetworkParams, boundaries: &[u32]) -> Self {
        let topo = params.topo;
        let width = topo.width;
        assert_eq!(*boundaries.last().expect("at least one shard"), width);
        let n = boundaries.len();
        let mut shard_of_col = vec![0u32; width as usize];
        let mut shards = Vec::with_capacity(n);
        let mut start = 0;
        for (i, &end) in boundaries.iter().enumerate() {
            assert!(end > start, "shard boundaries must be increasing");
            for c in start..end {
                shard_of_col[c as usize] = i as u32;
            }
            shards.push(Shard::new(
                i,
                start..end,
                topo.height,
                params.track_busy,
                params.record_trace,
                params.active_list,
            ));
            start = end;
        }
        let occupancy = (0..topo.num_queues()).map(|_| AtomicU32::new(0)).collect();
        let mailboxes = (0..n)
            .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        Network {
            shared: SharedNet {
                topo,
                occupancy,
                mailboxes,
                shard_of_col,
                inject_capacity_flits: params.inject_capacity_flits,
                in_flight: AtomicI64::new(0),
            },
            shards,
        }
    }

    /// The shared topology.
    pub fn topo(&self) -> &TopoInfo {
        &self.shared.topo
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Splits into shared state and per-shard mutable handles for the
    /// parallel driver.
    pub fn split(&mut self) -> (&SharedNet, &mut [Shard]) {
        (&self.shared, &mut self.shards)
    }

    /// Injects `pkt` at `tile`.
    ///
    /// # Errors
    ///
    /// Returns the packet back if the tile's inject queue is full.
    pub fn inject(&mut self, tile: u32, pkt: Packet) -> Result<(), Packet> {
        let col = tile % self.shared.topo.width;
        let shard = self.shared.shard_of_col[col as usize] as usize;
        self.shards[shard].inject(&self.shared, tile, pkt)
    }

    /// Advances the whole plane one cycle (sequential driver):
    /// begin-phase for every shard, then step-phase for every shard.
    pub fn step(&mut self, cycle: u64, sink: &mut dyn EjectSink) {
        for shard in &mut self.shards {
            shard.begin_cycle(&self.shared);
        }
        for shard in &mut self.shards {
            shard.step(&self.shared, cycle, sink);
        }
    }

    /// Whether no packet remains anywhere (queues, pending, mailboxes).
    ///
    /// O(1): maintained as an atomic inject/eject/combine balance.
    pub fn is_empty(&self) -> bool {
        self.shared.in_flight.load(Ordering::Acquire) == 0
    }

    /// Packets currently inside the plane (O(1) atomic read).
    pub fn in_flight(&self) -> i64 {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    /// Packets currently inside the network.
    pub fn queued_packets(&self) -> u64 {
        let in_shards: u64 = self.shards.iter().map(|s| s.queued_packets()).sum();
        let in_mail: u64 = self
            .shared
            .mailboxes
            .iter()
            .flatten()
            .map(|m| m.lock().len() as u64)
            .sum();
        in_shards + in_mail
    }

    /// Total host bytes of this plane's simulation state (struct plus
    /// all owned heap), the quantity behind the paper's bytes-per-tile
    /// scalability argument.
    pub fn state_bytes(&self) -> u64 {
        std::mem::size_of::<Network>() as u64
            + self.shared.heap_bytes()
            + self.shards.capacity() as u64 * std::mem::size_of::<Shard>() as u64
            + self.shards.iter().map(Shard::heap_bytes).sum::<u64>()
    }

    /// Merged counters across shards.
    pub fn counters(&self) -> NocCounters {
        let mut total = NocCounters::default();
        for s in &self.shards {
            total.merge(s.counters());
        }
        total
    }

    /// Merged per-packet latency statistics across shards.
    pub fn latency(&self) -> crate::LatencyStats {
        let mut total = crate::LatencyStats::default();
        for s in &self.shards {
            total.merge(s.latency());
        }
        total
    }

    /// Drains the recorded injection trace of every shard (unsorted;
    /// see [`crate::sort_events`]). Empty when recording is off.
    pub fn take_trace(&mut self) -> Vec<crate::TraceEvent> {
        let mut events = Vec::new();
        for s in &mut self.shards {
            events.extend(s.take_trace());
        }
        events
    }

    /// Collects and resets per-router busy-cycle counts into `grid`
    /// (indexed by tile id) for heat-map frames.
    pub fn take_busy(&mut self, grid: &mut [u32]) {
        let width = self.shared.topo.width;
        for s in &mut self.shards {
            s.take_busy(grid, width);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Payload, ReduceOp};
    use muchisim_config::{NocTopology, SystemConfig};

    fn net(w: u32, h: u32, shards: usize) -> Network {
        let cfg = SystemConfig::builder().chiplet_tiles(w, h).build().unwrap();
        Network::new(NetworkParams::from_system(&cfg), shards)
    }

    fn run_to_empty(net: &mut Network, sink: &mut DrainSink, limit: u64) -> u64 {
        let mut cycle = 0;
        while !net.is_empty() {
            net.step(cycle, sink);
            cycle += 1;
            assert!(cycle < limit, "network did not drain in {limit} cycles");
        }
        cycle
    }

    #[test]
    fn split_columns_even_and_remainder() {
        assert_eq!(split_columns(8, 2, 1), vec![4, 8]);
        assert_eq!(split_columns(7, 2, 1), vec![4, 7]);
        assert_eq!(split_columns(8, 3, 1), vec![3, 6, 8]);
    }

    #[test]
    fn split_columns_more_shards_than_columns_has_no_empty_shard() {
        for width in 1..=6u32 {
            for shards in [7usize, 16, 100] {
                let bounds = split_columns(width, shards, 1);
                assert!(bounds.len() <= width as usize, "{width}x{shards}");
                assert_eq!(*bounds.last().unwrap(), width);
                let mut start = 0;
                for &end in &bounds {
                    assert!(end > start, "empty shard in {bounds:?} ({width}x{shards})");
                    start = end;
                }
            }
        }
    }

    #[test]
    fn split_columns_align_beyond_width_collapses_to_one_shard() {
        assert_eq!(split_columns(8, 4, 64), vec![8]);
        assert_eq!(split_columns(8, 4, 8), vec![8]);
        // alignment respected when it fits
        assert_eq!(split_columns(8, 4, 3), vec![3, 8]);
        assert_eq!(split_columns(8, 4, 0), split_columns(8, 4, 1));
    }

    #[test]
    fn split_columns_zero_width_and_zero_shards_do_not_panic() {
        assert_eq!(split_columns(0, 4, 1), Vec::<u32>::new());
        assert_eq!(split_columns(0, 0, 0), Vec::<u32>::new());
        assert_eq!(split_columns(5, 0, 1), vec![5]);
    }

    fn check_valid(bounds: &[u32], width: u32, max_shards: usize, align: u32) {
        assert!(!bounds.is_empty());
        assert!(bounds.len() <= max_shards);
        assert_eq!(*bounds.last().unwrap(), width);
        let mut start = 0;
        for (i, &end) in bounds.iter().enumerate() {
            assert!(end > start, "empty shard in {bounds:?}");
            if i + 1 < bounds.len() {
                assert_eq!(end % align, 0, "unaligned boundary in {bounds:?}");
            }
            start = end;
        }
    }

    #[test]
    fn split_by_activity_balances_skewed_weights() {
        // all the work in the first two columns: the first shard should be
        // narrow, the idle plain grouped into the others
        let mut w = vec![0u64; 16];
        w[0] = 100;
        w[1] = 100;
        let bounds = split_by_activity(&w, 4, 1);
        check_valid(&bounds, 16, 4, 1);
        assert_eq!(bounds[0], 1, "hotspot column gets its own shard");
        // uniform weights reproduce the even split
        assert_eq!(split_by_activity(&[5; 16], 4, 1), split_columns(16, 4, 1));
        assert_eq!(split_by_activity(&[7; 32], 3, 4), split_columns(32, 3, 4));
    }

    #[test]
    fn split_by_activity_respects_alignment() {
        let mut w = vec![1u64; 32];
        w[..8].fill(50); // hot band on the left
        let bounds = split_by_activity(&w, 4, 4);
        check_valid(&bounds, 32, 4, 4);
        assert!(
            bounds[0] <= 8,
            "first shard should stay near the hot band: {bounds:?}"
        );
    }

    #[test]
    fn split_by_activity_degenerate_inputs() {
        assert_eq!(split_by_activity(&[], 4, 1), Vec::<u32>::new());
        // zero weights fall back to the even split
        assert_eq!(split_by_activity(&[0; 8], 2, 1), split_columns(8, 2, 1));
        // align beyond width collapses to one shard
        assert_eq!(split_by_activity(&[3; 8], 4, 16), vec![8]);
        // more shards than columns clamps without empty shards
        for width in 1..=6usize {
            for shards in [7usize, 16] {
                let w: Vec<u64> = (0..width as u64).collect();
                let bounds = split_by_activity(&w, shards, 1);
                check_valid(&bounds, width as u32, shards, 1);
            }
        }
        assert_eq!(split_by_activity(&[9; 5], 0, 1), vec![5]);
    }

    #[test]
    fn split_by_activity_boundaries_feed_with_boundaries() {
        let cfg = SystemConfig::builder().chiplet_tiles(8, 2).build().unwrap();
        let w = [40, 1, 1, 1, 1, 1, 1, 40];
        let bounds = split_by_activity(&w, 3, 1);
        check_valid(&bounds, 8, 3, 1);
        let n = Network::with_boundaries(NetworkParams::from_system(&cfg), &bounds);
        assert_eq!(n.num_shards(), bounds.len());
    }

    #[test]
    fn single_packet_delivery_latency() {
        let mut n = net(8, 8, 1);
        // corner to corner: 14 hops
        n.inject(0, Packet::unicast(0, 63, 0, Payload::from_slice(&[42]), 1))
            .unwrap();
        let mut sink = DrainSink::default();
        let cycles = run_to_empty(&mut n, &mut sink, 1000);
        assert_eq!(sink.drained.len(), 1);
        let (tile, pkt) = &sink.drained[0];
        assert_eq!(*tile, 63);
        assert_eq!(pkt.payload.as_slice(), &[42]);
        // 14 hops x 1 cycle + eject; allow small overhead
        assert!((14..=20).contains(&cycles), "latency {cycles}");
        let c = n.counters();
        assert_eq!(c.injected, 1);
        assert_eq!(c.ejected, 1);
        assert_eq!(c.msg_hops, 14);
    }

    #[test]
    fn xy_routing_hop_count_counted() {
        let mut n = net(4, 4, 1);
        // (0,0) -> (3,2): 3 east + 2 south = 5 hops
        n.inject(0, Packet::unicast(0, 11, 0, Payload::empty(), 1))
            .unwrap();
        let mut sink = DrainSink::default();
        run_to_empty(&mut n, &mut sink, 100);
        assert_eq!(n.counters().msg_hops, 5);
    }

    #[test]
    fn local_delivery_without_hops() {
        let mut n = net(4, 4, 1);
        n.inject(5, Packet::unicast(5, 5, 0, Payload::empty(), 1))
            .unwrap();
        let mut sink = DrainSink::default();
        run_to_empty(&mut n, &mut sink, 100);
        assert_eq!(n.counters().msg_hops, 0);
        assert_eq!(sink.drained.len(), 1);
    }

    #[test]
    fn many_packets_all_delivered() {
        let mut n = net(8, 8, 1);
        let mut expected = 0u32;
        for src in 0..64u32 {
            for dst in [0u32, 17, 42, 63] {
                n.inject(
                    src,
                    Packet::unicast(src, dst, 0, Payload::from_slice(&[src]), 2),
                )
                .unwrap();
                expected += 1;
            }
        }
        let mut sink = DrainSink::default();
        run_to_empty(&mut n, &mut sink, 10_000);
        assert_eq!(sink.drained.len(), expected as usize);
    }

    #[test]
    fn sharded_equals_sequential() {
        // identical traffic through 1-shard and 4-shard networks must
        // deliver identical (tile, payload, arrival-order) streams
        let mut results = Vec::new();
        for shards in [1usize, 4] {
            let mut n = net(8, 8, shards);
            for src in 0..64u32 {
                let dst = (src * 7 + 3) % 64;
                n.inject(
                    src,
                    Packet::unicast(src, dst, 0, Payload::from_slice(&[src]), 2),
                )
                .unwrap();
            }
            // record (arrival cycle, tile, payload); within-cycle sink
            // order depends on router iteration order, so sort per cycle
            let mut log: Vec<(u64, u32, u32)> = Vec::new();
            let mut cycle = 0u64;
            let mut sink = DrainSink::default();
            while !n.is_empty() {
                let before = sink.drained.len();
                n.step(cycle, &mut sink);
                for (t, p) in &sink.drained[before..] {
                    log.push((cycle, *t, p.payload.word(0)));
                }
                cycle += 1;
                assert!(cycle < 10_000);
            }
            log.sort_unstable();
            results.push((cycle, log, n.counters()));
        }
        assert_eq!(results[0].0, results[1].0, "drain cycle differs");
        assert_eq!(results[0].1, results[1].1, "per-cycle deliveries differ");
        assert_eq!(results[0].2.msg_hops, results[1].2.msg_hops);
        assert_eq!(
            results[0].2.flit_hops_by_class,
            results[1].2.flit_hops_by_class
        );
    }

    #[test]
    fn torus_delivers_under_heavy_random_traffic() {
        // exercises wrap links + dateline VCs; must not deadlock
        let cfg = SystemConfig::builder()
            .chiplet_tiles(6, 6)
            .noc_topology(NocTopology::FoldedTorus)
            .buffer_depth(2)
            .build()
            .unwrap();
        let mut n = Network::new(NetworkParams::from_system(&cfg), 2);
        let mut injected = 0;
        let mut sink = DrainSink::default();
        let mut cycle = 0u64;
        let mut pending: Vec<(u32, Packet)> = Vec::new();
        for round in 0..20u32 {
            for src in 0..36u32 {
                let dst = (src.wrapping_mul(31).wrapping_add(round * 13)) % 36;
                pending.push((
                    src,
                    Packet::unicast(src, dst, 0, Payload::from_slice(&[src, round]), 3),
                ));
            }
        }
        while !pending.is_empty() || !n.is_empty() {
            pending.retain_mut(|(src, pkt)| {
                let p = std::mem::replace(pkt, Packet::unicast(0, 0, 0, Payload::empty(), 1));
                match n.inject(*src, p.ready_at(cycle)) {
                    Ok(()) => {
                        injected += 1;
                        false
                    }
                    Err(back) => {
                        *pkt = back;
                        true
                    }
                }
            });
            n.step(cycle, &mut sink);
            cycle += 1;
            assert!(
                cycle < 100_000,
                "torus traffic did not drain (possible deadlock)"
            );
        }
        assert_eq!(sink.drained.len(), injected);
    }

    #[test]
    fn backpressure_counted_with_tiny_buffers() {
        let cfg = SystemConfig::builder()
            .chiplet_tiles(8, 1)
            .buffer_depth(1)
            .build()
            .unwrap();
        let mut n = Network::new(NetworkParams::from_system(&cfg), 1);
        // funnel traffic from all tiles to tile 7 through one row
        for src in 0..7u32 {
            for _ in 0..4 {
                let _ = n.inject(
                    src,
                    Packet::unicast(src, 7, 0, Payload::from_slice(&[src]), 2),
                );
            }
        }
        let mut sink = DrainSink::default();
        run_to_empty(&mut n, &mut sink, 10_000);
        let c = n.counters();
        assert!(
            c.backpressure > 0,
            "expected backpressure with depth-1 buffers"
        );
        assert!(
            c.collisions > 0,
            "expected collisions funneling into one row"
        );
    }

    #[test]
    fn reduction_combines_in_flight() {
        let mut n = net(8, 1, 1);
        // two reducible packets for the same key injected at the same tile
        // back-to-back: the second should merge into the first while queued
        let mk = |src: u32, val: u32| {
            Packet::unicast(src, 7, 1, Payload::from_slice(&[5, val]), 2)
                .with_reduce(ReduceOp::MinU32)
        };
        n.inject(0, mk(0, 30)).unwrap();
        n.inject(0, mk(0, 10)).unwrap();
        let mut sink = DrainSink::default();
        run_to_empty(&mut n, &mut sink, 1000);
        assert_eq!(n.counters().reduce_combines, 1);
        assert_eq!(sink.drained.len(), 1);
        assert_eq!(sink.drained[0].1.payload.word(1), 10);
    }

    #[test]
    fn inject_backpressures_when_full() {
        let cfg = SystemConfig::builder()
            .chiplet_tiles(2, 1)
            .queues(4, 1)
            .build()
            .unwrap();
        let mut n = Network::new(NetworkParams::from_system(&cfg), 1);
        // capacity = cq * 2 = 2 flits; 2-flit packets: first fits, second refused
        assert!(n
            .inject(0, Packet::unicast(0, 1, 0, Payload::from_slice(&[1]), 2))
            .is_ok());
        assert!(n
            .inject(0, Packet::unicast(0, 1, 0, Payload::from_slice(&[2]), 2))
            .is_err());
    }

    #[test]
    fn multi_flit_serialization_slows_link() {
        // same path, 1-flit vs 8-flit message streams
        let drain = |flits: u16| {
            let mut n = net(4, 1, 1);
            for _ in 0..8 {
                n.inject(0, Packet::unicast(0, 3, 0, Payload::empty(), flits))
                    .unwrap();
            }
            let mut sink = DrainSink::default();
            run_to_empty(&mut n, &mut sink, 10_000)
        };
        let fast = drain(1);
        let slow = drain(8);
        assert!(
            slow > fast * 3,
            "8-flit stream ({slow} cy) should be much slower than 1-flit ({fast} cy)"
        );
    }

    #[test]
    fn eject_sink_refusal_stalls_delivery() {
        struct Stingy {
            accepted: usize,
            refuse_until: u64,
            calls: u64,
        }
        impl EjectSink for Stingy {
            fn offer(&mut self, _tile: u32, pkt: Packet) -> Result<(), Packet> {
                self.calls += 1;
                if self.calls < self.refuse_until {
                    Err(pkt)
                } else {
                    self.accepted += 1;
                    Ok(())
                }
            }
        }
        let mut n = net(4, 1, 1);
        n.inject(0, Packet::unicast(0, 3, 0, Payload::empty(), 1))
            .unwrap();
        let mut sink = Stingy {
            accepted: 0,
            refuse_until: 5,
            calls: 0,
        };
        let mut cycle = 0;
        while !n.is_empty() {
            n.step(cycle, &mut sink);
            cycle += 1;
            assert!(cycle < 1000);
        }
        assert_eq!(sink.accepted, 1);
        assert!(n.counters().eject_stalls >= 4);
    }

    #[test]
    fn latency_and_trace_recorded_across_shards() {
        let cfg = SystemConfig::builder().chiplet_tiles(4, 1).build().unwrap();
        let params = NetworkParams::from_system(&cfg).record_trace(true);
        assert!(
            !NetworkParams::from_system(&cfg).record_trace,
            "off by default"
        );
        let mut n = Network::new(params, 2);
        n.inject(
            0,
            Packet::unicast(0, 3, 0, Payload::from_slice(&[5]), 1).ready_at(0),
        )
        .unwrap();
        n.inject(
            3,
            Packet::unicast(3, 0, 0, Payload::from_slice(&[6]), 1).ready_at(0),
        )
        .unwrap();
        let mut sink = DrainSink::default();
        run_to_empty(&mut n, &mut sink, 100);
        let lat = n.latency();
        assert_eq!(lat.count, 2, "one latency sample per ejected packet");
        assert!(lat.mean() >= 3.0, "3 hops minimum, measured {}", lat.mean());
        assert!(lat.max_cycles >= 3);
        let mut trace = n.take_trace();
        crate::trace::sort_events(&mut trace);
        assert_eq!(trace.len(), 2);
        assert_eq!((trace[0].src, trace[0].dst), (0, 3));
        assert_eq!((trace[1].src, trace[1].dst), (3, 0));
        assert!(n.take_trace().is_empty(), "trace drains once");
    }

    #[test]
    fn busy_heatmap_collects_active_routers() {
        let cfg = SystemConfig::builder().chiplet_tiles(4, 1).build().unwrap();
        // below V2 the config disables tracking; heat-map consumers
        // opt back in explicitly
        let params = NetworkParams::from_system(&cfg).track_busy(true);
        let mut n = Network::new(params, 1);
        n.inject(0, Packet::unicast(0, 3, 0, Payload::empty(), 1))
            .unwrap();
        let mut sink = DrainSink::default();
        run_to_empty(&mut n, &mut sink, 100);
        let mut grid = vec![0u32; 4];
        n.take_busy(&mut grid);
        assert!(grid[0] > 0 && grid[1] > 0 && grid[2] > 0 && grid[3] > 0);
        // second take returns zeros
        let mut grid2 = vec![0u32; 4];
        n.take_busy(&mut grid2);
        assert!(grid2.iter().all(|&b| b == 0));
    }

    #[test]
    fn untracked_busy_grid_stays_zero_and_costs_nothing() {
        let mut n = net(4, 1, 1); // default config: V0, tracking off
        n.inject(0, Packet::unicast(0, 3, 0, Payload::empty(), 1))
            .unwrap();
        let mut sink = DrainSink::default();
        run_to_empty(&mut n, &mut sink, 100);
        let mut grid = vec![0u32; 4];
        n.take_busy(&mut grid);
        assert!(grid.iter().all(|&b| b == 0));
    }

    #[test]
    fn routers_allocate_lazily_and_recycle_when_drained() {
        let mut n = net(8, 8, 1);
        assert_eq!(n.shards[0].allocated_routers(), 0);
        // a single west-to-east packet along row 0 touches only the
        // routers on its path; each drained router returns its box to the
        // shard free-list instead of staying materialized
        n.inject(0, Packet::unicast(0, 7, 0, Payload::empty(), 1))
            .unwrap();
        let mut sink = DrainSink::default();
        run_to_empty(&mut n, &mut sink, 100);
        assert_eq!(
            n.shards[0].allocated_routers(),
            0,
            "a drained plane holds no materialized routers"
        );
        let pooled = n.shards[0].pooled_routers();
        assert!(
            (1..=8).contains(&pooled),
            "row 0's boxes ({pooled}) are pooled for reuse, never more than the 8 touched"
        );
        // a second traversal reuses pooled boxes instead of allocating
        n.inject(0, Packet::unicast(0, 7, 0, Payload::empty(), 1))
            .unwrap();
        run_to_empty(&mut n, &mut sink, 100);
        assert_eq!(
            n.shards[0].pooled_routers(),
            pooled,
            "steady-state traffic recycles boxes through the pool"
        );
    }

    #[test]
    fn idle_network_state_is_compact() {
        let n = net(64, 64, 4);
        let eager_routers = 64 * 64 * std::mem::size_of::<crate::router::RouterState>() as u64;
        let idle = n.state_bytes();
        assert!(
            idle < eager_routers / 2,
            "idle 64x64 plane uses {idle} B; eager router state alone would be {eager_routers} B"
        );
        // traffic grows the accounted state
        let mut n = n;
        for src in 0..64u32 {
            n.inject(src, Packet::unicast(src, 4095, 0, Payload::empty(), 2))
                .unwrap();
        }
        let mut sink = DrainSink::default();
        run_to_empty(&mut n, &mut sink, 100_000);
        assert!(n.state_bytes() > idle);
    }

    #[test]
    fn shard_split_covers_all_columns() {
        let n = net(10, 2, 3);
        assert_eq!(n.num_shards(), 3);
        let mut covered = [false; 10];
        for s in &n.shards {
            for c in s.cols() {
                assert!(!covered[c as usize]);
                covered[c as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn shards_clamped_to_width() {
        let n = net(4, 4, 64);
        assert_eq!(n.num_shards(), 4);
    }

    #[test]
    fn split_columns_even_and_aligned() {
        assert_eq!(split_columns(8, 4, 1), vec![2, 4, 6, 8]);
        assert_eq!(split_columns(10, 3, 1), vec![4, 7, 10]);
        // align 4: 32 cols, 8 units; 3 shards -> 3,3,2 units
        assert_eq!(split_columns(32, 3, 4), vec![12, 24, 32]);
        // more shards than units clamps
        assert_eq!(split_columns(8, 5, 4), vec![4, 8]);
        // align larger than width
        assert_eq!(split_columns(8, 4, 16), vec![8]);
    }
}
