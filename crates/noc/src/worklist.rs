//! Active-element worklists: sweep only what can act.
//!
//! At the paper's million-tile scales, almost every tile and router is
//! idle on any given cycle (graph frontiers touch a few thousand tiles; a
//! packet's path wakes a few dozen routers). Sweeping all of them anyway
//! makes per-cycle host cost proportional to *total* elements, which is
//! exactly the scaling wall BENCH_scale.json exposes. An [`ActiveSet`]
//! makes the sweep proportional to *active* elements instead: a dense
//! bitset records membership and a sorted drain list drives iteration, so
//! cost per cycle is `O(active)` plus a cheap merge of the cycle's fresh
//! activations.
//!
//! Determinism is the design constraint. The simulator's bit-identity
//! guarantees (sequential == parallel == time-leaped) rest on sweeping
//! elements in ascending local-index order — DRAM channel contention and
//! packet arbitration observe that order. The drain list is therefore
//! kept *sorted*: activations accumulate in a fresh-list and are merged
//! (sort + two-way merge) before the next sweep, and removals compact the
//! list in place without disturbing the order. A disabled set (the
//! `MUCHISIM_NO_ACTIVE_LIST` kill switch or `SystemConfig::active_list =
//! false`) degrades every operation to the pre-worklist full sweep, which
//! is how the ablation jobs prove the worklist is invisible to results.

/// A set of active element indices over a fixed domain `0..len`,
/// iterable in ascending order.
///
/// Membership is tracked in a dense bitset (one bit per element);
/// iteration order comes from a sorted drain list. Newly activated
/// indices are buffered in a fresh-list and merged into the drain list by
/// [`ActiveSet::refresh`] — callers refresh once per sweep, then iterate.
///
/// When constructed disabled, the set allocates nothing and
/// [`ActiveSet::iter`] yields the whole domain: callers get the
/// un-optimized full sweep without a second code path.
#[derive(Debug)]
pub struct ActiveSet {
    enabled: bool,
    len: u32,
    /// Dense membership bitset, `len.div_ceil(64)` words.
    bits: Vec<u64>,
    /// Sorted drain list: exactly the members minus `fresh`.
    order: Vec<u32>,
    /// Members activated since the last refresh (unsorted, duplicate-free
    /// — the bitset gates insertion).
    fresh: Vec<u32>,
    /// Merge scratch, swapped with `order` on refresh.
    scratch: Vec<u32>,
}

impl ActiveSet {
    /// Creates a set over the domain `0..len`, empty when enabled,
    /// allocation-free when disabled.
    pub fn new(len: usize, enabled: bool) -> Self {
        let len = u32::try_from(len).expect("domain fits in u32");
        ActiveSet {
            enabled,
            len,
            bits: if enabled {
                vec![0; (len as usize).div_ceil(64)]
            } else {
                Vec::new()
            },
            order: Vec::new(),
            fresh: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Whether the worklist optimization is on. When `false`, the set
    /// tracks nothing and [`ActiveSet::iter`] sweeps the full domain.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the domain is empty (not the set — the *domain*).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `idx` is currently active. Always `true` when disabled
    /// (every element is swept).
    pub fn contains(&self, idx: u32) -> bool {
        if !self.enabled {
            return idx < self.len;
        }
        self.bits[(idx / 64) as usize] & (1 << (idx % 64)) != 0
    }

    /// Number of active elements (the full domain when disabled).
    pub fn active_count(&self) -> usize {
        if self.enabled {
            self.order.len() + self.fresh.len()
        } else {
            self.len as usize
        }
    }

    /// Marks `idx` active. No-op if already active or the set is
    /// disabled.
    #[inline]
    pub fn activate(&mut self, idx: u32) {
        if !self.enabled {
            return;
        }
        debug_assert!(idx < self.len, "index {idx} outside domain {}", self.len);
        let word = &mut self.bits[(idx / 64) as usize];
        let mask = 1u64 << (idx % 64);
        if *word & mask == 0 {
            *word |= mask;
            self.fresh.push(idx);
        }
    }

    /// Marks every element active (kernel start: every tile owes an init
    /// task).
    pub fn activate_all(&mut self) {
        if !self.enabled {
            return;
        }
        self.bits.fill(!0);
        if !self.len.is_multiple_of(64) {
            // keep bits beyond the domain clear so popcount-style
            // invariants hold
            *self.bits.last_mut().expect("len > 0 implies a word") = (1u64 << (self.len % 64)) - 1;
        }
        self.order.clear();
        self.order.extend(0..self.len);
        self.fresh.clear();
    }

    /// Merges activations since the last refresh into the sorted drain
    /// list. Call once before each sweep; `O(fresh log fresh + active)`
    /// when anything changed, `O(1)` otherwise.
    pub fn refresh(&mut self) {
        if self.fresh.is_empty() {
            return;
        }
        self.fresh.sort_unstable();
        self.scratch.clear();
        self.scratch.reserve(self.order.len() + self.fresh.len());
        let (mut i, mut j) = (0, 0);
        while i < self.order.len() && j < self.fresh.len() {
            // no duplicates across the lists: the bitset admitted each
            // index into `fresh` only while it was absent from `order`
            if self.order[i] < self.fresh[j] {
                self.scratch.push(self.order[i]);
                i += 1;
            } else {
                self.scratch.push(self.fresh[j]);
                j += 1;
            }
        }
        self.scratch.extend_from_slice(&self.order[i..]);
        self.scratch.extend_from_slice(&self.fresh[j..]);
        std::mem::swap(&mut self.order, &mut self.scratch);
        self.fresh.clear();
    }

    /// Iterates the active elements in ascending index order (the whole
    /// domain when disabled).
    ///
    /// Requires a preceding [`ActiveSet::refresh`] with no activations in
    /// between; debug builds assert this.
    pub fn iter(&self) -> Sweep<'_> {
        if self.enabled {
            debug_assert!(self.fresh.is_empty(), "iterating an unrefreshed ActiveSet");
            Sweep::List(self.order.iter())
        } else {
            Sweep::All(0..self.len)
        }
    }

    /// Sweeps the active elements in ascending order, deactivating those
    /// for which `keep` returns `false`. The drain list is compacted in
    /// place, so no refresh is needed afterwards.
    ///
    /// When the set is disabled this degrades to calling `keep` on every
    /// domain element and ignoring the verdict — shard/worker sweeps put
    /// their per-element work inside `keep`, giving both modes one code
    /// path.
    pub fn retain(&mut self, mut keep: impl FnMut(u32) -> bool) {
        if !self.enabled {
            for idx in 0..self.len {
                let _ = keep(idx);
            }
            return;
        }
        debug_assert!(self.fresh.is_empty(), "retain on an unrefreshed ActiveSet");
        let mut kept = 0;
        for i in 0..self.order.len() {
            let idx = self.order[i];
            if keep(idx) {
                self.order[kept] = idx;
                kept += 1;
            } else {
                self.bits[(idx / 64) as usize] &= !(1u64 << (idx % 64));
            }
        }
        self.order.truncate(kept);
    }

    /// Host heap bytes owned by this set (bitset + lists).
    pub fn heap_bytes(&self) -> u64 {
        self.bits.capacity() as u64 * 8
            + (self.order.capacity() + self.fresh.capacity() + self.scratch.capacity()) as u64 * 4
    }
}

/// Iterator over an [`ActiveSet`]'s elements: the sorted drain list when
/// the worklist is enabled, the full domain when disabled.
#[derive(Debug)]
pub enum Sweep<'a> {
    /// Full-domain sweep (worklist disabled).
    All(std::ops::Range<u32>),
    /// Active-only sweep in ascending order.
    List(std::slice::Iter<'a, u32>),
}

impl Iterator for Sweep<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        match self {
            Sweep::All(r) => r.next(),
            Sweep::List(it) => it.next().copied(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            Sweep::All(r) => r.size_hint(),
            Sweep::List(it) => it.size_hint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collected(set: &ActiveSet) -> Vec<u32> {
        set.iter().collect()
    }

    #[test]
    fn empty_set_iterates_nothing() {
        let mut s = ActiveSet::new(100, true);
        s.refresh();
        assert_eq!(collected(&s), Vec::<u32>::new());
        assert_eq!(s.active_count(), 0);
    }

    #[test]
    fn disabled_set_iterates_whole_domain() {
        let s = ActiveSet::new(5, false);
        assert_eq!(collected(&s), vec![0, 1, 2, 3, 4]);
        assert_eq!(s.active_count(), 5);
        assert!(s.contains(3));
        assert!(!s.contains(5));
        assert_eq!(s.heap_bytes(), 0);
    }

    #[test]
    fn activations_merge_sorted_without_duplicates() {
        let mut s = ActiveSet::new(200, true);
        for idx in [150u32, 3, 150, 67, 3, 199] {
            s.activate(idx);
        }
        s.refresh();
        assert_eq!(collected(&s), vec![3, 67, 150, 199]);
        // second wave interleaves with the existing order
        for idx in [0u32, 68, 199, 151] {
            s.activate(idx);
        }
        s.refresh();
        assert_eq!(collected(&s), vec![0, 3, 67, 68, 150, 151, 199]);
    }

    #[test]
    fn retain_compacts_in_place_and_clears_bits() {
        let mut s = ActiveSet::new(64, true);
        for idx in 0..10 {
            s.activate(idx);
        }
        s.refresh();
        s.retain(|idx| idx % 3 == 0);
        assert_eq!(collected(&s), vec![0, 3, 6, 9]);
        assert!(!s.contains(1));
        assert!(s.contains(9));
    }

    #[test]
    fn reactivation_after_retain_in_same_cycle_appears_once() {
        // the "tile re-activated same cycle" edge case: deactivated by the
        // retention pass, then a message arrives during net_step
        let mut s = ActiveSet::new(32, true);
        s.activate(7);
        s.refresh();
        s.retain(|_| false); // tile went idle
        assert_eq!(s.active_count(), 0);
        s.activate(7); // delivery re-activates it
        s.activate(7); // double delivery must not duplicate
        s.refresh();
        assert_eq!(collected(&s), vec![7]);
    }

    #[test]
    fn activate_all_covers_non_word_aligned_domains() {
        for len in [1usize, 63, 64, 65, 130] {
            let mut s = ActiveSet::new(len, true);
            s.activate_all();
            assert_eq!(s.active_count(), len, "len {len}");
            assert_eq!(collected(&s), (0..len as u32).collect::<Vec<_>>());
            // retention still works on the full set
            s.retain(|idx| idx == 0);
            assert_eq!(collected(&s), vec![0], "len {len}");
        }
    }

    #[test]
    fn disabled_retain_still_visits_every_element() {
        let mut s = ActiveSet::new(6, false);
        let mut visited = Vec::new();
        s.retain(|idx| {
            visited.push(idx);
            false // verdict ignored when disabled
        });
        assert_eq!(visited, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(s.active_count(), 6, "disabled set never shrinks");
    }

    #[test]
    fn heap_bytes_tracks_allocations() {
        let mut s = ActiveSet::new(1 << 20, true);
        let base = s.heap_bytes();
        assert!(base >= (1 << 20) / 8, "bitset accounted");
        for idx in 0..1000 {
            s.activate(idx * 7);
        }
        s.refresh();
        assert!(s.heap_bytes() > base, "drain list accounted");
    }
}
