//! # muchisim-noc
//!
//! Cycle-level, flit-granularity network-on-chip model (paper §III-A,
//! §III-C).
//!
//! The NoC is the part of the system MuchiSim simulates in full detail:
//! every router is evaluated every cycle. This crate models:
//!
//! * **Topologies**: 2D mesh and 2D folded torus with dimension-ordered
//!   (XY) routing, plus optional *Ruche* channels connecting every R-th
//!   router with long straight wires.
//! * **Virtual channels**: torus ring deadlock is broken with a dateline
//!   VC per ring dimension (packets switch to VC1 after using a wrap
//!   link), the standard discipline for bounded-buffer torus networks.
//! * **Flit-level bandwidth**: a message of F flits occupies its output
//!   link for F cycles (`busy_until`), and buffer space is accounted in
//!   flits; round-robin arbitration resolves output-port collisions and
//!   full downstream buffers back-pressure the sender — both are counted.
//! * **Timestamps**: each packet carries the earliest NoC cycle at which
//!   it may move again, updated every hop. This is the mechanism that lets
//!   PUs be simulated ahead of the network (paper §III-C).
//! * **Reduction trees**: packets flagged with a [`ReduceOp`] combine
//!   opportunistically with a queued packet for the same destination, task
//!   and key — the Tascade-style asynchronous in-network reduction the
//!   paper evaluates for its Fig. 2 torus+tree configuration.
//! * **Column sharding**: the network is split into column [`Shard`]s with
//!   single-producer mailboxes between them, so the core crate can step
//!   shards on separate host threads while remaining *bit-identical* to
//!   the sequential schedule (freed buffer space becomes visible one cycle
//!   later in both modes).
//! * **Activity tracking**: each shard keeps an [`ActiveSet`] worklist of
//!   routers holding traffic, so stepping a mostly-idle million-tile
//!   plane costs `O(active routers)` per cycle, not `O(all routers)` —
//!   results are bit-identical either way (`SystemConfig::active_list`).
//!   [`split_by_activity`] complements [`split_columns`] with shard
//!   boundaries balanced by measured per-column event weights.
//!
//! # Example
//!
//! ```
//! use muchisim_config::SystemConfig;
//! use muchisim_noc::{DrainSink, Network, NetworkParams, Packet, Payload};
//!
//! let cfg = SystemConfig::builder().chiplet_tiles(4, 4).build().unwrap();
//! let mut net = Network::new(NetworkParams::from_system(&cfg), 1);
//! let pkt = Packet::unicast(0, 15, 0, Payload::from_slice(&[7]), 2);
//! net.inject(0, pkt).unwrap();
//! let mut sink = DrainSink::default();
//! let mut cycle = 0;
//! while !net.is_empty() {
//!     net.step(cycle, &mut sink);
//!     cycle += 1;
//! }
//! assert_eq!(sink.drained.len(), 1);
//! assert_eq!(sink.drained[0].1.payload.as_slice(), &[7]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod counters;
mod latency;
mod network;
mod packet;
mod port;
mod route;
mod router;
mod shard;
mod topo;
mod trace;
mod worklist;

pub use counters::NocCounters;
pub use latency::LatencyStats;
pub use network::{
    split_by_activity, split_columns, DrainSink, EjectSink, Network, NetworkParams, SharedNet,
};
pub use packet::{Packet, Payload, ReduceOp};
pub use port::{InPort, OutDir};
pub use route::{decide, RouteDecision};
pub use shard::{InjectBatch, Shard};
pub use topo::TopoInfo;
pub use trace::{read_trace_jsonl, sort_events, write_trace_jsonl, TraceEvent};
pub use worklist::{ActiveSet, Sweep};
