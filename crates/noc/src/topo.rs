//! Static topology information shared by all routers.

use crate::port::{InPort, OutDir, IN_PORTS};
use muchisim_config::{Hierarchy, LinkClass, NocTopology, SystemConfig, TileCoord};

/// Division by a runtime-constant divisor via the round-up reciprocal:
/// for `d ≥ 2`, `⌊n·⌈2^64/d⌉ / 2^64⌋ = ⌊n/d⌋` for every `n < 2^32`
/// (the reciprocal overshoot contributes less than `2^-32 < 1/d`, so
/// the floor never crosses). The hot sweeps convert a tile id to
/// coordinates for every routed packet; a hardware `div` costs ~20+
/// cycles where the multiply-high costs ~4.
#[derive(Debug, Clone, Copy)]
pub struct FastDiv {
    d: u32,
    /// `⌈2^64 / d⌉`; unused (zero) for `d ≤ 1`.
    magic: u64,
}

impl FastDiv {
    /// Divider for divisor `d ≥ 1`.
    pub fn new(d: u32) -> Self {
        debug_assert!(d >= 1, "division by zero");
        FastDiv {
            d,
            magic: if d >= 2 { u64::MAX / d as u64 + 1 } else { 0 },
        }
    }

    /// `n / d`.
    #[inline]
    pub fn div(self, n: u32) -> u32 {
        if self.d <= 1 {
            n
        } else {
            ((self.magic as u128 * n as u128) >> 64) as u32
        }
    }

    /// `(n / d, n % d)`.
    #[inline]
    pub fn divmod(self, n: u32) -> (u32, u32) {
        let q = self.div(n);
        (q, n - q * self.d)
    }
}

/// Immutable topology data derived from a [`SystemConfig`]: grid shape,
/// link classes, and per-hop latencies in NoC cycles.
#[derive(Debug, Clone)]
pub struct TopoInfo {
    /// Grid width in tiles.
    pub width: u32,
    /// Grid height in tiles.
    pub height: u32,
    /// NoC topology.
    pub topology: NocTopology,
    /// Ruche link length in hops, if Ruche channels are configured.
    pub ruche_factor: Option<u32>,
    /// The tile hierarchy for link classification.
    pub hierarchy: Hierarchy,
    /// Estimated tile pitch in mm (side of a tile), used for wire length.
    pub tile_pitch_mm: f64,
    /// Base on-chip hop latency in NoC cycles (router + one tile of wire).
    pub hop_cycles_on_chip: u64,
    /// Extra cycles for a die-to-die crossing.
    pub extra_cycles_d2d: u64,
    /// Extra cycles for an off-package crossing.
    pub extra_cycles_off_package: u64,
    /// Extra cycles for an inter-node crossing.
    pub extra_cycles_inter_node: u64,
    /// Buffer capacity per input queue, in flits.
    pub queue_capacity_flits: u32,
    /// Reciprocal divider for `width` (hot: tile id → coordinates).
    pub div_width: FastDiv,
}

impl TopoInfo {
    /// Derives the topology info from a system configuration.
    pub fn from_system(cfg: &SystemConfig) -> Self {
        let pitch = estimate_tile_pitch_mm(cfg);
        let link = &cfg.params.link;
        let period = cfg.noc_clock.operating.period_ps();
        let hop_ps = link.noc_router_latency_ps + link.noc_wire_latency_ps_per_mm * pitch;
        let hop_cycles = (hop_ps / period).ceil().max(1.0) as u64;
        TopoInfo {
            width: cfg.width(),
            height: cfg.height(),
            topology: cfg.noc.topology,
            ruche_factor: cfg.noc.ruche_factor,
            hierarchy: cfg.hierarchy,
            tile_pitch_mm: pitch,
            hop_cycles_on_chip: hop_cycles,
            extra_cycles_d2d: cfg.hop_extra_cycles(LinkClass::DieToDie),
            extra_cycles_off_package: cfg.hop_extra_cycles(LinkClass::OffPackage),
            extra_cycles_inter_node: cfg.hop_extra_cycles(LinkClass::InterNode),
            queue_capacity_flits: cfg.noc.buffer_depth,
            div_width: FastDiv::new(cfg.width()),
        }
    }

    /// Total routers (= tiles).
    pub fn num_tiles(&self) -> u32 {
        self.width * self.height
    }

    /// Coordinates of tile `id`.
    #[inline]
    pub fn coords(&self, id: u32) -> (u32, u32) {
        let (y, x) = self.div_width.divmod(id);
        (x, y)
    }

    /// Tile id at `(x, y)`.
    pub fn tile_at(&self, x: u32, y: u32) -> u32 {
        y * self.width + x
    }

    /// Column of tile `id` (used for shard assignment).
    #[inline]
    pub fn col_of(&self, id: u32) -> u32 {
        self.div_width.divmod(id).1
    }

    /// The neighbor reached from `cur` via `dir` on virtual channel `vc`,
    /// with the input port the packet arrives on, or `None` if the link
    /// does not exist (mesh edge, or Ruche link leaving the grid).
    pub fn neighbor(&self, cur: u32, dir: OutDir, vc: u8) -> Option<(u32, InPort)> {
        let (x, y) = self.coords(cur);
        let (dx, dy) = self.neighbor_xy(x, y, dir)?;
        Some((self.tile_at(dx, dy), InPort::arrival_port(dir, vc)))
    }

    /// Coordinate form of [`Self::neighbor`]: the destination coordinates
    /// of the `dir` link out of `(x, y)`, or `None` if the link does not
    /// exist. Callers that already hold the source coordinates (and need
    /// the destination's) skip the id → coordinate conversions.
    fn neighbor_xy(&self, x: u32, y: u32, dir: OutDir) -> Option<(u32, u32)> {
        let torus = self.topology == NocTopology::FoldedTorus;
        let r = self.ruche_factor.unwrap_or(0);
        match dir {
            OutDir::N => {
                if y > 0 {
                    Some((x, y - 1))
                } else if torus {
                    Some((x, self.height - 1))
                } else {
                    None
                }
            }
            OutDir::S => {
                if y + 1 < self.height {
                    Some((x, y + 1))
                } else if torus {
                    Some((x, 0))
                } else {
                    None
                }
            }
            OutDir::E => {
                if x + 1 < self.width {
                    Some((x + 1, y))
                } else if torus {
                    Some((0, y))
                } else {
                    None
                }
            }
            OutDir::W => {
                if x > 0 {
                    Some((x - 1, y))
                } else if torus {
                    Some((self.width - 1, y))
                } else {
                    None
                }
            }
            OutDir::RucheN => (r > 0 && y >= r).then(|| (x, y - r)),
            OutDir::RucheS => (r > 0 && y + r < self.height).then(|| (x, y + r)),
            OutDir::RucheE => (r > 0 && x + r < self.width).then(|| (x + r, y)),
            OutDir::RucheW => (r > 0 && x >= r).then(|| (x - r, y)),
            OutDir::Eject => None,
        }
    }

    /// Everything a router needs to move a head flit from `cur` via
    /// `dir` in one lookup: destination router, arrival port, physical
    /// link class, and total head-flit hop latency in NoC cycles
    /// (router traversal + wire + any boundary-crossing extra).
    ///
    /// [`Self::neighbor`], [`Self::link_class`] and [`Self::hop_cycles`]
    /// each re-derive the others' intermediate results; the forwarding
    /// hot loop calls this once per moved packet instead.
    pub fn hop_info(&self, cur: u32, dir: OutDir, vc: u8) -> Option<(u32, InPort, LinkClass, u64)> {
        let (cx, cy) = self.coords(cur);
        let (dx, dy) = self.neighbor_xy(cx, cy, dir)?;
        let dest = self.tile_at(dx, dy);
        let in_port = InPort::arrival_port(dir, vc);
        let class = self
            .hierarchy
            .link_class(TileCoord::new(cx, cy), TileCoord::new(dx, dy));
        let extra = match class {
            LinkClass::OnChip => 0,
            LinkClass::DieToDie => self.extra_cycles_d2d,
            LinkClass::OffPackage => self.extra_cycles_off_package,
            LinkClass::InterNode => self.extra_cycles_inter_node,
        };
        let ruche_extra = if dir.is_ruche() {
            // The long wire costs proportionally more wire delay: half a
            // base hop per extra tile spanned. Dividing after the
            // multiplication (with a ceiling) keeps the extra non-zero
            // even when the base hop is a single cycle — a Ruche wire
            // spanning R tiles is never as fast as a one-tile hop.
            ((self.ruche_factor.unwrap_or(1) as u64).saturating_sub(1) * self.hop_cycles_on_chip)
                .div_ceil(2)
        } else {
            0
        };
        Some((
            dest,
            in_port,
            class,
            self.hop_cycles_on_chip + extra + ruche_extra,
        ))
    }

    /// The physical link class crossed by hopping from `cur` via `dir`.
    pub fn link_class(&self, cur: u32, dir: OutDir, vc: u8) -> Option<LinkClass> {
        self.hop_info(cur, dir, vc).map(|(_, _, class, _)| class)
    }

    /// Total hop latency in NoC cycles for the head flit from `cur` via
    /// `dir` (router traversal + wire + any boundary-crossing extra).
    pub fn hop_cycles(&self, cur: u32, dir: OutDir, vc: u8) -> Option<u64> {
        self.hop_info(cur, dir, vc).map(|(_, _, _, cycles)| cycles)
    }

    /// Wire length in mm of the hop (for on-chip wire energy).
    pub fn hop_wire_mm(&self, dir: OutDir) -> f64 {
        if dir.is_ruche() {
            self.ruche_factor.unwrap_or(1) as f64 * self.tile_pitch_mm
        } else {
            self.tile_pitch_mm
        }
    }

    /// Global input-queue id for `(tile, port)`.
    pub fn queue_id(&self, tile: u32, port: InPort) -> usize {
        tile as usize * IN_PORTS + port.index()
    }

    /// Total input queues in the network.
    pub fn num_queues(&self) -> usize {
        self.num_tiles() as usize * IN_PORTS
    }
}

/// Rough tile pitch from the area parameters: PU + TSU + router + SRAM
/// plus 10 % wiring overhead. (The energy crate owns the authoritative
/// area model; this local estimate only feeds wire-length latency/energy.)
fn estimate_tile_pitch_mm(cfg: &SystemConfig) -> f64 {
    let p = &cfg.params.pu;
    let sram_mm2 = cfg.sram_kib_per_tile as f64 / 1024.0 / cfg.params.sram.density_mb_per_mm2;
    let peak_ghz = cfg.pu_clock.peak.as_ghz();
    let freq_growth = 1.0 + p.area_growth_per_freq * (peak_ghz - 1.0).max(0.0);
    let pu_mm2 = p.area_mm2 * cfg.pus_per_tile as f64 * freq_growth;
    let router_mm2 = (p.router_base_area_mm2
        + p.router_area_mm2_per_bit * cfg.noc.width_bits as f64)
        * cfg.noc.num_physical as f64;
    let tile_mm2 = (pu_mm2 + p.tsu_area_mm2 + router_mm2 + sram_mm2) * 1.1;
    tile_mm2.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use muchisim_config::SystemConfig;

    fn mesh_8x8() -> TopoInfo {
        TopoInfo::from_system(&SystemConfig::builder().chiplet_tiles(8, 8).build().unwrap())
    }

    #[test]
    fn neighbors_mesh_interior() {
        let t = mesh_8x8();
        let c = t.tile_at(3, 3);
        assert_eq!(
            t.neighbor(c, OutDir::N, 0),
            Some((t.tile_at(3, 2), InPort::FromS0))
        );
        assert_eq!(
            t.neighbor(c, OutDir::S, 0),
            Some((t.tile_at(3, 4), InPort::FromN0))
        );
        assert_eq!(
            t.neighbor(c, OutDir::E, 0),
            Some((t.tile_at(4, 3), InPort::FromW0))
        );
        assert_eq!(
            t.neighbor(c, OutDir::W, 0),
            Some((t.tile_at(2, 3), InPort::FromE0))
        );
    }

    #[test]
    fn mesh_edges_have_no_links() {
        let t = mesh_8x8();
        assert_eq!(t.neighbor(t.tile_at(0, 0), OutDir::N, 0), None);
        assert_eq!(t.neighbor(t.tile_at(0, 0), OutDir::W, 0), None);
        assert_eq!(t.neighbor(t.tile_at(7, 7), OutDir::S, 0), None);
        assert_eq!(t.neighbor(t.tile_at(7, 7), OutDir::E, 0), None);
    }

    #[test]
    fn torus_wraps() {
        let cfg = SystemConfig::builder()
            .chiplet_tiles(8, 8)
            .noc_topology(muchisim_config::NocTopology::FoldedTorus)
            .build()
            .unwrap();
        let t = TopoInfo::from_system(&cfg);
        assert_eq!(
            t.neighbor(t.tile_at(7, 0), OutDir::E, 1),
            Some((t.tile_at(0, 0), InPort::FromW1))
        );
        assert_eq!(
            t.neighbor(t.tile_at(0, 0), OutDir::N, 0),
            Some((t.tile_at(0, 7), InPort::FromS0))
        );
    }

    #[test]
    fn ruche_links() {
        let cfg = SystemConfig::builder()
            .chiplet_tiles(16, 16)
            .ruche_factor(4)
            .build()
            .unwrap();
        let t = TopoInfo::from_system(&cfg);
        assert_eq!(
            t.neighbor(t.tile_at(2, 0), OutDir::RucheE, 0),
            Some((t.tile_at(6, 0), InPort::FromRucheW))
        );
        // ruche never wraps
        assert_eq!(t.neighbor(t.tile_at(13, 0), OutDir::RucheE, 0), None);
        assert_eq!(t.neighbor(t.tile_at(2, 0), OutDir::RucheW, 0), None);
    }

    #[test]
    fn link_class_chiplet_boundary() {
        let cfg = SystemConfig::builder()
            .chiplet_tiles(4, 4)
            .package_chiplets(2, 1)
            .build()
            .unwrap();
        let t = TopoInfo::from_system(&cfg);
        assert_eq!(
            t.link_class(t.tile_at(3, 0), OutDir::E, 0),
            Some(LinkClass::DieToDie)
        );
        assert_eq!(
            t.link_class(t.tile_at(2, 0), OutDir::E, 0),
            Some(LinkClass::OnChip)
        );
    }

    #[test]
    fn hop_cycles_d2d_exceeds_on_chip() {
        let cfg = SystemConfig::builder()
            .chiplet_tiles(4, 4)
            .package_chiplets(2, 1)
            .build()
            .unwrap();
        let t = TopoInfo::from_system(&cfg);
        let on = t.hop_cycles(t.tile_at(2, 0), OutDir::E, 0).unwrap();
        let d2d = t.hop_cycles(t.tile_at(3, 0), OutDir::E, 0).unwrap();
        assert!(on >= 1);
        assert!(d2d > on);
    }

    #[test]
    fn ruche_hop_slower_than_plain_hop_even_at_one_cycle_base() {
        // regression: with a 1-cycle base hop, the old
        // `(r-1) * (hop/2)` truncated to 0 extra cycles, making a
        // 4-tile-long Ruche wire exactly as fast as a 1-tile hop
        let cfg = SystemConfig::builder()
            .chiplet_tiles(16, 16)
            .ruche_factor(4)
            .build()
            .unwrap();
        let t = TopoInfo::from_system(&cfg);
        assert_eq!(t.hop_cycles_on_chip, 1, "default pitch yields 1-cycle hops");
        let plain = t.hop_cycles(t.tile_at(2, 0), OutDir::E, 0).unwrap();
        let ruche = t.hop_cycles(t.tile_at(2, 0), OutDir::RucheE, 0).unwrap();
        assert!(
            ruche > plain,
            "ruche hop ({ruche} cy) must cost more than a plain hop ({plain} cy)"
        );
        // (r-1) * hop / 2, rounded up: (4-1)*1/2 -> 2 extra cycles
        assert_eq!(ruche, plain + 2);
        // but per tile spanned it is cheaper than stepping
        assert!(ruche < plain * 4, "ruche must still beat 4 plain hops");
    }

    #[test]
    fn pitch_is_sub_millimeter_for_default_tile() {
        let t = mesh_8x8();
        assert!(
            t.tile_pitch_mm > 0.1 && t.tile_pitch_mm < 1.0,
            "{}",
            t.tile_pitch_mm
        );
    }

    #[test]
    fn queue_ids_dense_and_unique() {
        let t = mesh_8x8();
        let mut seen = vec![false; t.num_queues()];
        for tile in 0..t.num_tiles() {
            for p in InPort::ALL {
                let q = t.queue_id(tile, p);
                assert!(!seen[q]);
                seen[q] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn coords_round_trip() {
        let t = mesh_8x8();
        for id in 0..64 {
            let (x, y) = t.coords(id);
            assert_eq!(t.tile_at(x, y), id);
        }
    }
}
