//! Network packets and payloads.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of 32-bit words stored inline in a [`Payload`].
const INLINE_WORDS: usize = 6;

/// A small message payload of 32-bit words.
///
/// Payloads up to `INLINE_WORDS` (6) words are stored inline (no heap
/// allocation on the critical path); larger payloads spill to the heap.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Payload {
    /// Inline storage.
    Inline {
        /// Number of valid words.
        len: u8,
        /// Word storage; only `words[..len]` is meaningful.
        words: [u32; INLINE_WORDS],
    },
    /// Heap storage for payloads longer than `INLINE_WORDS` words.
    Heap(Box<[u32]>),
}

impl Payload {
    /// An empty payload.
    pub fn empty() -> Self {
        Payload::Inline {
            len: 0,
            words: [0; INLINE_WORDS],
        }
    }

    /// Builds a payload from a word slice.
    pub fn from_slice(words: &[u32]) -> Self {
        if words.len() <= INLINE_WORDS {
            let mut buf = [0u32; INLINE_WORDS];
            buf[..words.len()].copy_from_slice(words);
            Payload::Inline {
                len: words.len() as u8,
                words: buf,
            }
        } else {
            Payload::Heap(words.into())
        }
    }

    /// The payload as a word slice.
    pub fn as_slice(&self) -> &[u32] {
        match self {
            Payload::Inline { len, words } => &words[..*len as usize],
            Payload::Heap(v) => v,
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        match self {
            Payload::Inline { len, .. } => *len as usize,
            Payload::Heap(v) => v.len(),
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Payload size in bytes (4 bytes per word).
    pub fn size_bytes(&self) -> u32 {
        self.len() as u32 * 4
    }

    /// Word at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn word(&self, idx: usize) -> u32 {
        self.as_slice()[idx]
    }

    /// Replaces word `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn set_word(&mut self, idx: usize, value: u32) {
        match self {
            Payload::Inline { len, words } => {
                assert!(idx < *len as usize, "payload index out of range");
                words[idx] = value;
            }
            Payload::Heap(v) => v[idx] = value,
        }
    }

    /// Host heap bytes owned by this payload (0 while stored inline).
    pub fn heap_bytes(&self) -> u64 {
        match self {
            Payload::Inline { .. } => 0,
            Payload::Heap(v) => v.len() as u64 * 4,
        }
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({:?})", self.as_slice())
    }
}

impl From<&[u32]> for Payload {
    fn from(words: &[u32]) -> Self {
        Payload::from_slice(words)
    }
}

/// An in-network reduction operator (Tascade-style, paper §III-A).
///
/// Two queued packets with the same destination, task and key (payload
/// word 0) combine their value (payload word 1) with this operator,
/// eliminating one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceOp {
    /// `f32` addition on the value word.
    SumF32,
    /// `u32` (wrapping) addition on the value word.
    SumU32,
    /// `u32` minimum on the value word.
    MinU32,
    /// `f32` minimum on the value word.
    MinF32,
    /// `u32` maximum on the value word.
    MaxU32,
}

impl ReduceOp {
    /// Combines two value words.
    pub fn combine(self, a: u32, b: u32) -> u32 {
        match self {
            ReduceOp::SumF32 => (f32::from_bits(a) + f32::from_bits(b)).to_bits(),
            ReduceOp::SumU32 => a.wrapping_add(b),
            ReduceOp::MinU32 => a.min(b),
            ReduceOp::MaxU32 => a.max(b),
            ReduceOp::MinF32 => f32::from_bits(a).min(f32::from_bits(b)).to_bits(),
        }
    }
}

/// A message traveling through the NoC.
///
/// The `ready_at` timestamp is the earliest NoC cycle at which the packet
/// may be moved again; it is set at injection and updated on every hop
/// (paper §III-C: "the timestamps do not exist in the DUT, but they are
/// used to allow PUs and routers to be simulated in parallel").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Source tile id.
    pub src: u32,
    /// Destination tile id.
    pub dst: u32,
    /// Task-type id selecting the destination input queue.
    pub task: u8,
    /// Current virtual channel (dateline discipline; 0 or 1).
    pub vc: u8,
    /// Message length in flits, including the one-flit header.
    pub flits: u16,
    /// Earliest NoC cycle this packet may be routed.
    pub ready_at: u64,
    /// NoC cycle at which the packet was *generated* (scheduled by a
    /// traffic source, or handed to the injection point by a channel
    /// queue). Ejection records `eject_cycle − born` into the latency
    /// statistics, so for scheduled traffic the measured latency includes
    /// source-queueing time — the quantity that diverges at saturation.
    pub born: u64,
    /// Optional in-network reduction operator.
    pub reduce: Option<ReduceOp>,
    /// Payload words.
    pub payload: Payload,
}

impl Packet {
    /// Creates an ordinary (non-reducible) packet ready at cycle 0.
    pub fn unicast(src: u32, dst: u32, task: u8, payload: Payload, flits: u16) -> Self {
        Packet {
            src,
            dst,
            task,
            vc: 0,
            flits: flits.max(1),
            ready_at: 0,
            born: 0,
            reduce: None,
            payload,
        }
    }

    /// Marks the packet as reducible with `op` (consuming builder step).
    pub fn with_reduce(mut self, op: ReduceOp) -> Self {
        self.reduce = Some(op);
        self
    }

    /// Sets the earliest-routing timestamp (consuming builder step).
    ///
    /// Also sets `born` to `cycle`, so injectors that don't distinguish
    /// generation from injection get injection-to-ejection latency
    /// accounting for free; apply [`Packet::born`] *afterwards* when the
    /// two differ.
    pub fn ready_at(mut self, cycle: u64) -> Self {
        self.ready_at = cycle;
        self.born = cycle;
        self
    }

    /// Sets the generation timestamp (consuming builder step).
    pub fn born(mut self, cycle: u64) -> Self {
        self.born = cycle;
        self
    }

    /// The reduction key: payload word 0, or `None` for empty payloads.
    pub fn reduce_key(&self) -> Option<u32> {
        self.payload.as_slice().first().copied()
    }

    /// Whether `other` can be combined into `self` by an in-network
    /// reduction: same destination, task, operator and key.
    pub fn can_combine(&self, other: &Packet) -> bool {
        self.reduce.is_some()
            && self.reduce == other.reduce
            && self.dst == other.dst
            && self.task == other.task
            && self.payload.len() >= 2
            && other.payload.len() >= 2
            && self.reduce_key() == other.reduce_key()
    }

    /// Combines `other` into `self` (value word 1).
    ///
    /// # Panics
    ///
    /// Panics if [`Packet::can_combine`] is false.
    pub fn combine(&mut self, other: &Packet) {
        assert!(self.can_combine(other), "packets are not combinable");
        let op = self.reduce.expect("can_combine checked reduce");
        let merged = op.combine(self.payload.word(1), other.payload.word(1));
        self.payload.set_word(1, merged);
        // The combined packet may move no earlier than either input.
        self.ready_at = self.ready_at.max(other.ready_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_inline_round_trip() {
        let p = Payload::from_slice(&[1, 2, 3]);
        assert_eq!(p.as_slice(), &[1, 2, 3]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.size_bytes(), 12);
        assert!(matches!(p, Payload::Inline { .. }));
    }

    #[test]
    fn payload_heap_spill() {
        let words: Vec<u32> = (0..10).collect();
        let p = Payload::from_slice(&words);
        assert!(matches!(p, Payload::Heap(_)));
        assert_eq!(p.as_slice(), &words[..]);
    }

    #[test]
    fn payload_set_word() {
        let mut p = Payload::from_slice(&[1, 2]);
        p.set_word(1, 42);
        assert_eq!(p.word(1), 42);
    }

    #[test]
    fn empty_payload() {
        let p = Payload::empty();
        assert!(p.is_empty());
        assert_eq!(p.size_bytes(), 0);
    }

    #[test]
    fn reduce_ops() {
        assert_eq!(ReduceOp::SumU32.combine(3, 5), 8);
        assert_eq!(ReduceOp::MinU32.combine(3, 5), 3);
        assert_eq!(ReduceOp::MaxU32.combine(3, 5), 5);
        let s = ReduceOp::SumF32.combine(1.5f32.to_bits(), 2.25f32.to_bits());
        assert_eq!(f32::from_bits(s), 3.75);
        let m = ReduceOp::MinF32.combine(1.5f32.to_bits(), 2.25f32.to_bits());
        assert_eq!(f32::from_bits(m), 1.5);
    }

    #[test]
    fn combine_requires_matching_key() {
        let a = Packet::unicast(0, 9, 1, Payload::from_slice(&[7, 10]), 2)
            .with_reduce(ReduceOp::MinU32);
        let b =
            Packet::unicast(3, 9, 1, Payload::from_slice(&[7, 4]), 2).with_reduce(ReduceOp::MinU32);
        let c =
            Packet::unicast(3, 9, 1, Payload::from_slice(&[8, 4]), 2).with_reduce(ReduceOp::MinU32);
        assert!(a.can_combine(&b));
        assert!(!a.can_combine(&c));
        let mut a2 = a.clone();
        a2.combine(&b);
        assert_eq!(a2.payload.word(1), 4);
    }

    #[test]
    fn combine_takes_later_timestamp() {
        let a = Packet::unicast(0, 9, 1, Payload::from_slice(&[7, 10]), 2)
            .with_reduce(ReduceOp::MinU32)
            .ready_at(5);
        let b = Packet::unicast(3, 9, 1, Payload::from_slice(&[7, 4]), 2)
            .with_reduce(ReduceOp::MinU32)
            .ready_at(9);
        let mut a2 = a;
        a2.combine(&b);
        assert_eq!(a2.ready_at, 9);
    }

    #[test]
    fn non_reduce_packets_never_combine() {
        let a = Packet::unicast(0, 9, 1, Payload::from_slice(&[7, 10]), 2);
        let b = Packet::unicast(3, 9, 1, Payload::from_slice(&[7, 4]), 2);
        assert!(!a.can_combine(&b));
    }

    #[test]
    fn flits_clamped_to_one() {
        let p = Packet::unicast(0, 1, 0, Payload::empty(), 0);
        assert_eq!(p.flits, 1);
    }

    #[test]
    fn ready_at_sets_born_unless_overridden() {
        let p = Packet::unicast(0, 1, 0, Payload::empty(), 1).ready_at(9);
        assert_eq!(p.born, 9);
        let p = Packet::unicast(0, 1, 0, Payload::empty(), 1)
            .ready_at(9)
            .born(4);
        assert_eq!(p.ready_at, 9);
        assert_eq!(p.born, 4);
    }
}
