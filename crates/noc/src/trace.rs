//! Communication-trace recording: every packet entering the network.
//!
//! When recording is enabled, each shard logs a [`TraceEvent`] at its
//! injection point — the same point that increments `injected` — with
//! full packet fidelity (payload words and reduction operator included),
//! because replay must reproduce in-network reduce-combining decisions
//! bit for bit. Events are written as sorted JSONL, one event per line,
//! which keeps the format greppable and streamable; at the small payload
//! sizes of message-triggered tasks a line is ~80 bytes.
//!
//! Recording is config-driven (`SystemConfig::noc_trace`); replay lives
//! in the `muchisim-traffic` crate, which turns a trace back into
//! pre-scheduled injections.

use crate::packet::{Packet, ReduceOp};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufWriter, Write};

/// One packet entering the NoC: everything needed to re-inject it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// NoC cycle of the (successful) injection.
    pub cycle: u64,
    /// Source tile.
    pub src: u32,
    /// Destination tile.
    pub dst: u32,
    /// Task type (also selects the physical NoC plane, `task % planes`).
    pub task: u8,
    /// Message length in flits under the recording configuration
    /// (informational — replay under a different link width recomputes it
    /// from the payload).
    pub flits: u16,
    /// In-network reduction operator, if any.
    pub reduce: Option<ReduceOp>,
    /// Payload words.
    pub payload: Vec<u32>,
}

impl TraceEvent {
    /// Captures the event for `pkt` as it enters the network (the
    /// packet's `ready_at` is its injection cycle at that point).
    pub fn from_packet(pkt: &Packet) -> Self {
        TraceEvent {
            cycle: pkt.ready_at,
            src: pkt.src,
            dst: pkt.dst,
            task: pkt.task,
            flits: pkt.flits,
            reduce: pkt.reduce,
            payload: pkt.payload.as_slice().to_vec(),
        }
    }
}

/// Sorts `events` into canonical replay order: by cycle, then source
/// tile, then task. The sort is stable, so the FIFO order of a tile's
/// same-task packets within one cycle (recorded in shard order) is
/// preserved — exactly the order the engine's channel-queue drain
/// produced them.
pub fn sort_events(events: &mut [TraceEvent]) {
    events.sort_by_key(|e| (e.cycle, e.src, e.task));
}

/// Writes `events` (sorted first) to a JSONL file at `path`, creating
/// parent directories.
///
/// # Errors
///
/// Returns a description of the I/O or serialization failure.
pub fn write_trace_jsonl(path: &str, events: &mut [TraceEvent]) -> Result<(), String> {
    sort_events(events);
    let p = std::path::Path::new(path);
    if let Some(dir) = p.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
    }
    let file = std::fs::File::create(p).map_err(|e| format!("creating {path}: {e}"))?;
    let mut out = BufWriter::new(file);
    for ev in events.iter() {
        let line = serde_json::to_string(ev).map_err(|e| format!("serializing event: {e}"))?;
        out.write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    out.flush().map_err(|e| format!("writing {path}: {e}"))
}

/// Reads a JSONL trace written by [`write_trace_jsonl`].
///
/// # Errors
///
/// Returns a description naming the offending line on malformed input.
pub fn read_trace_jsonl(path: &str) -> Result<Vec<TraceEvent>, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    let mut events = Vec::new();
    for (i, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| format!("reading {path}: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let ev: TraceEvent =
            serde_json::from_str(&line).map_err(|e| format!("{path} line {}: {e}", i + 1))?;
        events.push(ev);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Payload;

    fn ev(cycle: u64, src: u32, task: u8) -> TraceEvent {
        TraceEvent {
            cycle,
            src,
            dst: 9,
            task,
            flits: 2,
            reduce: None,
            payload: vec![src, cycle as u32],
        }
    }

    #[test]
    fn from_packet_captures_everything() {
        let pkt = Packet::unicast(3, 8, 1, Payload::from_slice(&[7, 5]), 2)
            .with_reduce(ReduceOp::MinU32)
            .ready_at(42);
        let e = TraceEvent::from_packet(&pkt);
        assert_eq!((e.cycle, e.src, e.dst, e.task, e.flits), (42, 3, 8, 1, 2));
        assert_eq!(e.reduce, Some(ReduceOp::MinU32));
        assert_eq!(e.payload, vec![7, 5]);
    }

    #[test]
    fn sort_is_stable_within_keys() {
        let mut events = vec![ev(5, 1, 0), ev(1, 2, 0), ev(1, 2, 1), ev(1, 0, 0)];
        // two same-key events keep their order
        let mut dup_a = ev(1, 2, 0);
        dup_a.payload = vec![111];
        events.push(dup_a.clone());
        sort_events(&mut events);
        assert_eq!(events[0].src, 0);
        assert_eq!(events[1], ev(1, 2, 0));
        assert_eq!(events[2], dup_a);
        assert_eq!(events[3].task, 1);
        assert_eq!(events[4].cycle, 5);
    }

    #[test]
    fn jsonl_round_trip() {
        let dir = std::env::temp_dir().join(format!("muchisim-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let path = path.to_str().unwrap().to_string();
        let mut events = vec![ev(9, 0, 0), ev(2, 1, 0)];
        write_trace_jsonl(&path, &mut events).unwrap();
        let back = read_trace_jsonl(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].cycle, 2, "written sorted");
        assert_eq!(back[1].cycle, 9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_lines_name_their_position() {
        let dir = std::env::temp_dir().join(format!("muchisim-trace-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        std::fs::write(&path, "{}garbage\n").unwrap();
        let err = read_trace_jsonl(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(read_trace_jsonl("/nonexistent/trace.jsonl").is_err());
    }
}
