//! Router port enumeration.
//!
//! Routers have five bidirectional ports (N, S, E, W plus the PU port) and
//! up to four extra cardinal ports when Ruche channels are configured
//! (paper §III-A: "a total of nine"). Ring dimensions of a torus carry two
//! dateline virtual channels, so a router has up to 13 input queues.

use serde::{Deserialize, Serialize};

/// Number of input queues per router.
pub const IN_PORTS: usize = 13;
/// Number of output directions per router.
pub const OUT_DIRS: usize = 9;

/// An input queue of a router, named after where its link comes *from*.
///
/// The `0`/`1` suffix is the dateline virtual channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum InPort {
    FromN0 = 0,
    FromN1 = 1,
    FromS0 = 2,
    FromS1 = 3,
    FromE0 = 4,
    FromE1 = 5,
    FromW0 = 6,
    FromW1 = 7,
    /// Ruche link arriving from the north.
    FromRucheN = 8,
    /// Ruche link arriving from the south.
    FromRucheS = 9,
    /// Ruche link arriving from the east.
    FromRucheE = 10,
    /// Ruche link arriving from the west.
    FromRucheW = 11,
    /// The local PU injection port (fed by the tile's channel queues).
    Inject = 12,
}

impl InPort {
    /// All input ports in arbitration order.
    pub const ALL: [InPort; IN_PORTS] = [
        InPort::FromN0,
        InPort::FromN1,
        InPort::FromS0,
        InPort::FromS1,
        InPort::FromE0,
        InPort::FromE1,
        InPort::FromW0,
        InPort::FromW1,
        InPort::FromRucheN,
        InPort::FromRucheS,
        InPort::FromRucheE,
        InPort::FromRucheW,
        InPort::Inject,
    ];

    /// Index in `0..IN_PORTS`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The input port a packet sent towards `dir` on virtual channel `vc`
    /// arrives at on the neighboring router.
    ///
    /// # Panics
    ///
    /// Panics if `dir` is [`OutDir::Eject`] (ejection has no downstream
    /// queue) or `vc > 1`.
    pub fn arrival_port(dir: OutDir, vc: u8) -> InPort {
        assert!(vc <= 1, "virtual channel out of range");
        match (dir, vc) {
            (OutDir::N, 0) => InPort::FromS0,
            (OutDir::N, _) => InPort::FromS1,
            (OutDir::S, 0) => InPort::FromN0,
            (OutDir::S, _) => InPort::FromN1,
            (OutDir::E, 0) => InPort::FromW0,
            (OutDir::E, _) => InPort::FromW1,
            (OutDir::W, 0) => InPort::FromE0,
            (OutDir::W, _) => InPort::FromE1,
            (OutDir::RucheN, _) => InPort::FromRucheS,
            (OutDir::RucheS, _) => InPort::FromRucheN,
            (OutDir::RucheE, _) => InPort::FromRucheW,
            (OutDir::RucheW, _) => InPort::FromRucheE,
            (OutDir::Eject, _) => panic!("eject has no arrival port"),
        }
    }
}

/// An output direction of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum OutDir {
    N = 0,
    S = 1,
    E = 2,
    W = 3,
    /// Ruche (R-hop) link north.
    RucheN = 4,
    /// Ruche link south.
    RucheS = 5,
    /// Ruche link east.
    RucheE = 6,
    /// Ruche link west.
    RucheW = 7,
    /// Delivery to the local PU's input queues.
    Eject = 8,
}

impl OutDir {
    /// All output directions; ejection first so local delivery is never
    /// starved by through traffic.
    pub const ALL: [OutDir; OUT_DIRS] = [
        OutDir::Eject,
        OutDir::N,
        OutDir::S,
        OutDir::E,
        OutDir::W,
        OutDir::RucheN,
        OutDir::RucheS,
        OutDir::RucheE,
        OutDir::RucheW,
    ];

    /// Index in `0..OUT_DIRS`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Directions by [`OutDir::index`] (the inverse of `index`; note
    /// [`OutDir::ALL`] iterates in a different, Eject-first order).
    pub const BY_INDEX: [OutDir; OUT_DIRS] = [
        OutDir::N,
        OutDir::S,
        OutDir::E,
        OutDir::W,
        OutDir::RucheN,
        OutDir::RucheS,
        OutDir::RucheE,
        OutDir::RucheW,
        OutDir::Eject,
    ];

    /// Whether this is one of the four Ruche directions.
    pub fn is_ruche(self) -> bool {
        matches!(
            self,
            OutDir::RucheN | OutDir::RucheS | OutDir::RucheE | OutDir::RucheW
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense() {
        for (i, p) in InPort::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let mut seen = [false; OUT_DIRS];
        for d in OutDir::ALL {
            assert!(!seen[d.index()]);
            seen[d.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn arrival_port_reverses_direction() {
        assert_eq!(InPort::arrival_port(OutDir::E, 0), InPort::FromW0);
        assert_eq!(InPort::arrival_port(OutDir::E, 1), InPort::FromW1);
        assert_eq!(InPort::arrival_port(OutDir::N, 0), InPort::FromS0);
        assert_eq!(InPort::arrival_port(OutDir::RucheW, 0), InPort::FromRucheE);
    }

    #[test]
    #[should_panic(expected = "eject")]
    fn eject_has_no_arrival() {
        let _ = InPort::arrival_port(OutDir::Eject, 0);
    }

    #[test]
    fn ruche_classification() {
        assert!(OutDir::RucheE.is_ruche());
        assert!(!OutDir::E.is_ruche());
        assert!(!OutDir::Eject.is_ruche());
    }
}
