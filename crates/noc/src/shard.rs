//! Column shards: the unit of host-thread parallelism.
//!
//! The simulator parallelizes over *columns* of the tile grid (paper
//! §III-C); each shard owns the routers of a contiguous column range.
//! Packets crossing a shard boundary travel through single-producer
//! mailboxes and buffer space is reserved through a shared atomic
//! occupancy table, so stepping shards concurrently is bit-identical to
//! stepping them sequentially: every queue has exactly one upstream
//! router, freed buffer space becomes visible at the next cycle boundary
//! in both modes, and packets never move in the cycle they arrive.
//!
//! Router state is *lazily allocated*: a router that never sees a packet
//! costs one null pointer, not thirteen input queues. At the paper's
//! million-tile scales most routers are idle at any instant, so this is
//! the difference between gigabytes and megabytes of host state. A
//! router, once touched, stays allocated — its `busy_until` link clocks
//! must survive idle gaps — which also keeps behavior bit-identical to
//! the eager layout (a fresh router and a drained router are
//! indistinguishable to the cycle loop).

use crate::counters::{class_index, NocCounters};
use crate::latency::LatencyStats;
use crate::network::{EjectSink, SharedNet};
use crate::packet::Packet;
use crate::port::{InPort, OutDir, IN_PORTS};
use crate::route;
use crate::router::RouterState;
use crate::trace::TraceEvent;
use crate::worklist::ActiveSet;
use std::ops::Range;
use std::sync::atomic::{AtomicU32, Ordering};

/// Reserves `flits` of space in a queue with capacity `cap`.
///
/// A single oversized message (larger than the whole buffer) is allowed
/// when the queue is empty, so it can still make progress.
fn reserve(occ: &AtomicU32, flits: u32, cap: u32) -> bool {
    occ.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        if v == 0 || v + flits <= cap {
            Some(v + flits)
        } else {
            None
        }
    })
    .is_ok()
}

/// Lazily materializes the router at `local`.
fn router_mut(routers: &mut [Option<Box<RouterState>>], local: usize) -> &mut RouterState {
    routers[local].get_or_insert_with(Box::default)
}

/// One column shard of the network.
#[derive(Debug)]
pub struct Shard {
    idx: usize,
    cols: Range<u32>,
    /// Per-router state, `None` until the router first sees a packet.
    routers: Vec<Option<Box<RouterState>>>,
    counters: NocCounters,
    /// Injection-to-ejection latency of every packet delivered by this
    /// shard (generation-to-ejection for scheduled traffic).
    latency: LatencyStats,
    /// Injection trace, recorded when `SystemConfig::noc_trace` is set.
    trace: Option<Vec<TraceEvent>>,
    /// Per-router busy cycles of the current statistics frame; empty when
    /// heat-map tracking is disabled (verbosity < V2).
    busy_frame: Vec<u32>,
    /// Pushes into this shard's own queues, applied at the next cycle
    /// boundary (mirrors the mailbox delay of cross-shard pushes).
    pending_pushes: Vec<(usize, usize, Packet)>,
    /// Occupancy decrements from this cycle's pops, applied at the next
    /// cycle boundary (credit-return delay; keeps parallel == sequential).
    pending_frees: Vec<(usize, u32)>,
    /// Worklist of routers currently holding traffic. Every push site
    /// (inject, deferred pushes, mailbox drains) activates the target;
    /// [`Shard::step`] deactivates routers it finds drained. The
    /// invariant "has traffic ⇒ active" holds at every step/horizon
    /// point because no router *gains* traffic during `step` (same-shard
    /// forwards defer to `pending_pushes`, cross-shard ones to
    /// mailboxes).
    active: ActiveSet,
}

impl Shard {
    pub(crate) fn new(
        idx: usize,
        cols: Range<u32>,
        height: u32,
        track_busy: bool,
        record_trace: bool,
        active_list: bool,
    ) -> Self {
        let n = (cols.end - cols.start) as usize * height as usize;
        Shard {
            idx,
            cols,
            routers: (0..n).map(|_| None).collect(),
            counters: NocCounters::default(),
            latency: LatencyStats::default(),
            trace: if record_trace { Some(Vec::new()) } else { None },
            busy_frame: if track_busy { vec![0; n] } else { Vec::new() },
            pending_pushes: Vec::new(),
            pending_frees: Vec::new(),
            active: ActiveSet::new(n, active_list),
        }
    }

    /// The column range this shard owns.
    pub fn cols(&self) -> Range<u32> {
        self.cols.clone()
    }

    /// Shard index.
    pub fn index(&self) -> usize {
        self.idx
    }

    /// Cumulative counters of this shard.
    pub fn counters(&self) -> &NocCounters {
        &self.counters
    }

    /// Latency statistics of packets this shard delivered.
    pub fn latency(&self) -> &LatencyStats {
        &self.latency
    }

    /// Drains the recorded injection trace (empty when recording is off).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Routers whose state has been materialized (saw at least one
    /// packet since construction).
    pub fn allocated_routers(&self) -> usize {
        self.routers.iter().filter(|r| r.is_some()).count()
    }

    fn local_idx(&self, tile: u32, width: u32) -> usize {
        let x = tile % width;
        let y = tile / width;
        debug_assert!(
            self.cols.contains(&x),
            "tile {tile} not in shard {}",
            self.idx
        );
        (y * (self.cols.end - self.cols.start) + (x - self.cols.start)) as usize
    }

    fn global_tile(&self, local: usize, width: u32) -> u32 {
        let ncols = (self.cols.end - self.cols.start) as usize;
        let y = (local / ncols) as u32;
        let x = self.cols.start + (local % ncols) as u32;
        y * width + x
    }

    /// Whether all queues and pending buffers of this shard are empty.
    pub fn is_drained(&self) -> bool {
        self.pending_pushes.is_empty() && self.routers.iter().flatten().all(|r| !r.has_traffic())
    }

    /// The earliest cycle after `now` at which this shard can move a
    /// packet, or `None` if it holds no packets at all.
    ///
    /// Queue heads are the earliest-ready packet of their FIFO (link
    /// serialization makes arrival times monotone within a queue), so
    /// scanning heads plus this shard's own deferred pushes is exact:
    /// strictly before the returned cycle, [`Shard::step`] is a no-op —
    /// no movement, no counter, no busy accounting. A head that is
    /// already ready but stalled (link busy, backpressure, eject refusal)
    /// clamps the horizon to `now + 1` because it retries every cycle.
    /// The time-leaping driver uses this to skip dead cycles while
    /// packets ride long-latency (die-to-die, inter-node) links.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        let floor = now + 1;
        let mut horizon: Option<u64> = None;
        for (_, _, pkt) in &self.pending_pushes {
            let c = pkt.ready_at.max(floor);
            horizon = Some(horizon.map_or(c, |h| h.min(c)));
        }
        // only active routers can hold traffic (every push activates its
        // target; step deactivates only drained routers), so the worklist
        // scan is exact
        for local in self.active.iter() {
            if horizon == Some(floor) {
                return horizon; // cannot get any earlier
            }
            let Some(r) = self.routers[local as usize].as_deref() else {
                continue;
            };
            if !r.has_traffic() {
                continue;
            }
            for q in &r.queues {
                if let Some(head) = q.front() {
                    let c = head.ready_at.max(floor);
                    horizon = Some(horizon.map_or(c, |h| h.min(c)));
                }
            }
        }
        horizon
    }

    /// Packets currently queued (including pending pushes).
    pub fn queued_packets(&self) -> u64 {
        self.pending_pushes.len() as u64
            + self
                .routers
                .iter()
                .flatten()
                .map(|r| r.queued_msgs as u64)
                .sum::<u64>()
    }

    /// Injects a packet at `tile`'s local inject queue.
    ///
    /// # Errors
    ///
    /// Returns the packet back if the inject queue is full (the caller's
    /// channel queue keeps it and retries later).
    pub fn inject(&mut self, shared: &SharedNet, tile: u32, pkt: Packet) -> Result<(), Packet> {
        let width = shared.topo.width;
        let qid = shared.topo.queue_id(tile, InPort::Inject);
        if !reserve(
            &shared.occupancy[qid],
            pkt.flits as u32,
            shared.inject_capacity_flits,
        ) {
            return Err(pkt);
        }
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent::from_packet(&pkt));
        }
        let local = self.local_idx(tile, width);
        let freed = router_mut(&mut self.routers, local).push(InPort::Inject.index(), pkt);
        self.active.activate(local as u32);
        if freed > 0 {
            shared.occupancy[qid].fetch_sub(freed, Ordering::Relaxed);
            self.counters.reduce_combines += 1;
            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        }
        self.counters.injected += 1;
        shared.in_flight.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Applies deferred frees, deferred local pushes, and drains incoming
    /// mailboxes. Must run for every shard (with a barrier in parallel
    /// mode) before any shard's [`Shard::step`] for the same cycle.
    pub fn begin_cycle(&mut self, shared: &SharedNet) {
        for (qid, flits) in self.pending_frees.drain(..) {
            shared.occupancy[qid].fetch_sub(flits, Ordering::Relaxed);
        }
        let width = shared.topo.width;
        let pushes = std::mem::take(&mut self.pending_pushes);
        for (local, port, pkt) in pushes {
            let tile = self.global_tile(local, width);
            let qid = shared.topo.queue_id(tile, InPort::ALL[port]);
            let freed = router_mut(&mut self.routers, local).push(port, pkt);
            self.active.activate(local as u32);
            if freed > 0 {
                shared.occupancy[qid].fetch_sub(freed, Ordering::Relaxed);
                self.counters.reduce_combines += 1;
                shared.in_flight.fetch_sub(1, Ordering::AcqRel);
            }
        }
        for producer in 0..shared.num_shards() {
            if producer == self.idx {
                continue;
            }
            let mut inbox = shared.mailbox(self.idx, producer).lock();
            for (tile, port, pkt) in inbox.drain(..) {
                let local = self.local_idx(tile, width);
                let qid = shared.topo.queue_id(tile, port);
                let freed = router_mut(&mut self.routers, local).push(port.index(), pkt);
                self.active.activate(local as u32);
                if freed > 0 {
                    shared.occupancy[qid].fetch_sub(freed, Ordering::Relaxed);
                    self.counters.reduce_combines += 1;
                    shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                }
            }
        }
    }

    /// Advances every router holding traffic by one NoC cycle.
    ///
    /// The sweep walks the active-router worklist in ascending local
    /// order (bit-identical to the full scan: idle routers are pure
    /// no-ops) and deactivates routers it leaves drained. With the
    /// worklist disabled it degrades to the full scan.
    pub fn step(&mut self, shared: &SharedNet, cycle: u64, sink: &mut dyn EjectSink) {
        let topo = &shared.topo;
        let width = topo.width;
        // split borrows: `router` stays mutably borrowed across the inner
        // loop while counters / pending buffers are updated alongside
        let Shard {
            idx,
            cols,
            routers,
            counters,
            latency,
            trace: _,
            busy_frame,
            pending_pushes,
            pending_frees,
            active,
        } = self;
        let ncols = (cols.end - cols.start) as usize;
        let col_start = cols.start;
        active.refresh();
        active.retain(|local| {
            let local = local as usize;
            let Some(router) = routers[local].as_deref_mut() else {
                return false;
            };
            if !router.has_traffic() {
                return false;
            }
            let tile = {
                let y = (local / ncols) as u32;
                let x = col_start + (local % ncols) as u32;
                y * width + x
            };
            // Compute each ready head's routing decision once.
            let mut decisions: [Option<route::RouteDecision>; IN_PORTS] = [None; IN_PORTS];
            for (port, dec) in decisions.iter_mut().enumerate() {
                if let Some(head) = router.queues[port].front() {
                    if head.ready_at <= cycle {
                        *dec = Some(route::decide(
                            topo,
                            tile,
                            InPort::ALL[port],
                            head.vc,
                            head.dst,
                        ));
                    }
                }
            }
            let mut moved = false;
            for out in OutDir::ALL {
                let oi = out.index();
                let mut candidates: [usize; IN_PORTS] = [0; IN_PORTS];
                let mut n_cand = 0;
                for (port, dec) in decisions.iter().enumerate() {
                    if dec.map(|d| d.dir) == Some(out) {
                        candidates[n_cand] = port;
                        n_cand += 1;
                    }
                }
                if n_cand == 0 {
                    continue;
                }
                if router.busy_until[oi] > cycle {
                    continue; // link still serializing a previous message
                }
                counters.collisions += (n_cand - 1) as u64;
                let pick = Self::round_robin_pick(&candidates[..n_cand], router.rr_ptr[oi]);
                router.rr_ptr[oi] = pick as u8;
                if out == OutDir::Eject {
                    let pkt = router.pop(pick);
                    let flits = pkt.flits;
                    let born = pkt.born;
                    match sink.offer(tile, pkt) {
                        Ok(()) => {
                            pending_frees
                                .push((topo.queue_id(tile, InPort::ALL[pick]), flits as u32));
                            router.busy_until[oi] = cycle + flits as u64;
                            counters.ejected += 1;
                            latency.record(cycle.saturating_sub(born));
                            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                            moved = true;
                        }
                        Err(pkt) => {
                            // refused: restore head position
                            router.queues[pick].push_front(pkt);
                            router.queued_msgs += 1;
                            counters.eject_stalls += 1;
                        }
                    }
                    continue;
                }
                let vc = decisions[pick].expect("candidate has decision").vc;
                let (dest, in_port) = topo
                    .neighbor(tile, out, vc)
                    .expect("routing chose a non-existent link");
                let qid = topo.queue_id(dest, in_port);
                let flits = router.queues[pick]
                    .front()
                    .expect("candidate has head")
                    .flits as u32;
                if !reserve(&shared.occupancy[qid], flits, topo.queue_capacity_flits) {
                    counters.backpressure += 1;
                    continue;
                }
                let mut pkt = router.pop(pick);
                pending_frees.push((topo.queue_id(tile, InPort::ALL[pick]), flits));
                pkt.vc = vc;
                let hop = topo.hop_cycles(tile, out, vc).expect("link exists");
                pkt.ready_at = cycle + hop + (flits as u64 - 1);
                router.busy_until[oi] = cycle + flits as u64;
                let class = topo.link_class(tile, out, vc).expect("link exists");
                counters.msg_hops += 1;
                counters.flit_hops_by_class[class_index(class)] += flits as u64;
                if class == muchisim_config::LinkClass::OnChip {
                    counters.onchip_flit_mm += flits as f64 * topo.hop_wire_mm(out);
                }
                let dest_shard = shared.shard_of_col[(dest % width) as usize] as usize;
                if dest_shard == *idx {
                    let dlocal = {
                        let (dx, dy) = (dest % width, dest / width);
                        (dy * ncols as u32 + (dx - col_start)) as usize
                    };
                    pending_pushes.push((dlocal, in_port.index(), pkt));
                } else {
                    shared
                        .mailbox(dest_shard, *idx)
                        .lock()
                        .push((dest, in_port, pkt));
                }
                moved = true;
            }
            if moved {
                if let Some(b) = busy_frame.get_mut(local) {
                    *b += 1;
                }
            }
            // keep the router active iff it still holds traffic; stalled
            // heads (busy link, backpressure, eject refusal) retry next
            // cycle, so they must stay on the worklist
            router.has_traffic()
        });
    }

    fn round_robin_pick(candidates: &[usize], last: u8) -> usize {
        // first candidate strictly after `last`, cyclically
        *candidates
            .iter()
            .find(|&&c| c > last as usize)
            .unwrap_or(&candidates[0])
    }

    /// Adds this shard's per-router busy-cycle counts into the global
    /// `grid` (indexed by tile id) and resets them (one statistics frame).
    ///
    /// No-op when busy tracking is disabled (verbosity < V2); the counts
    /// were never accumulated.
    pub fn take_busy(&mut self, grid: &mut [u32], width: u32) {
        for local in 0..self.busy_frame.len() {
            if self.busy_frame[local] > 0 {
                let tile = self.global_tile(local, width);
                grid[tile as usize] += self.busy_frame[local];
                self.busy_frame[local] = 0;
            }
        }
    }

    /// Host heap bytes owned by this shard: the router pointer table,
    /// every materialized router's queues, the busy grid, and the
    /// pending-push/free buffers.
    pub fn heap_bytes(&self) -> u64 {
        let ptr = std::mem::size_of::<Option<Box<RouterState>>>() as u64;
        let routers = self.routers.capacity() as u64 * ptr
            + self
                .routers
                .iter()
                .flatten()
                .map(|r| std::mem::size_of::<RouterState>() as u64 + r.heap_bytes())
                .sum::<u64>();
        let trace = self.trace.as_ref().map_or(0, |t| {
            t.capacity() as u64 * std::mem::size_of::<TraceEvent>() as u64
                + t.iter()
                    .map(|e| e.payload.capacity() as u64 * 4)
                    .sum::<u64>()
        });
        routers
            + trace
            + self.busy_frame.capacity() as u64 * 4
            + self.pending_pushes.capacity() as u64
                * std::mem::size_of::<(usize, usize, Packet)>() as u64
            + self
                .pending_pushes
                .iter()
                .map(|(_, _, p)| p.payload.heap_bytes())
                .sum::<u64>()
            + self.pending_frees.capacity() as u64 * std::mem::size_of::<(usize, u32)>() as u64
            + self.active.heap_bytes()
    }

    /// Routers currently on the active worklist (all allocated routers
    /// when the worklist is disabled). Activity telemetry for scheduling
    /// studies; the cycle loop itself never reads this.
    pub fn active_routers(&self) -> usize {
        if self.active.enabled() {
            self.active.active_count()
        } else {
            self.allocated_routers()
        }
    }

    /// Per-queue occupancy of task-type `_task` packets, for verbosity V3
    /// inspection: total packets queued at `tile`.
    pub fn queued_at(&self, tile: u32, width: u32) -> u32 {
        self.routers[self.local_idx(tile, width)]
            .as_ref()
            .map_or(0, |r| r.queued_msgs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_wraps() {
        assert_eq!(Shard::round_robin_pick(&[0, 3, 7], 0), 3);
        assert_eq!(Shard::round_robin_pick(&[0, 3, 7], 7), 0);
        assert_eq!(Shard::round_robin_pick(&[0, 3, 7], 12), 0);
        assert_eq!(Shard::round_robin_pick(&[5], 5), 5);
    }

    #[test]
    fn reserve_respects_capacity() {
        let occ = AtomicU32::new(0);
        assert!(reserve(&occ, 3, 4));
        assert!(!reserve(&occ, 2, 4));
        assert!(reserve(&occ, 1, 4));
        assert_eq!(occ.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn reserve_allows_oversized_when_empty() {
        let occ = AtomicU32::new(0);
        assert!(reserve(&occ, 10, 4));
        assert!(!reserve(&occ, 1, 4));
    }

    #[test]
    fn fresh_shard_allocates_no_routers() {
        let mut shard = Shard::new(0, 0..8, 8, false, false, true);
        assert_eq!(shard.allocated_routers(), 0);
        assert_eq!(shard.active_routers(), 0);
        assert!(shard.is_drained());
        assert_eq!(shard.queued_packets(), 0);
        assert_eq!(shard.next_event_cycle(0), None);
        assert!(shard.busy_frame.is_empty(), "untracked shard has no grid");
        assert_eq!(shard.latency().count, 0);
        assert!(shard.take_trace().is_empty(), "tracing is off by default");
    }
}
