//! Column shards: the unit of host-thread parallelism.
//!
//! The simulator parallelizes over *columns* of the tile grid (paper
//! §III-C); each shard owns the routers of a contiguous column range.
//! Packets crossing a shard boundary travel through single-producer
//! mailboxes and buffer space is reserved through a shared atomic
//! occupancy table, so stepping shards concurrently is bit-identical to
//! stepping them sequentially: every queue has exactly one upstream
//! router, freed buffer space becomes visible at the next cycle boundary
//! in both modes, and packets never move in the cycle they arrive.
//!
//! Router state is split hot/cold. The per-cycle scalars the sweeps
//! actually read — `queued_msgs`, `busy_until`, `rr_ptr` — live in dense
//! arrays indexed by local router id, so the active-router drain walks
//! contiguous memory. The cold bulk (the 13 packet FIFOs and the combine
//! index) lives in a lazily materialized `Box<RouterState>`: a router that
//! never sees a packet costs one null pointer plus a few SoA slots. A
//! *drained* router returns its box to a per-shard free-list — its link
//! clocks survive in the SoA arrays (they must: `busy_until` keeps
//! serializing across idle gaps), while the next router to wake reuses the
//! box's queue buffers instead of round-tripping the allocator.

use crate::counters::{class_index, NocCounters};
use crate::latency::LatencyStats;
use crate::network::{EjectSink, SharedNet};
use crate::packet::Packet;
use crate::port::{InPort, OutDir, IN_PORTS, OUT_DIRS};
use crate::route;
use crate::router::RouterState;
use crate::topo::{FastDiv, TopoInfo};
use crate::trace::TraceEvent;
use crate::worklist::ActiveSet;
use std::ops::Range;
use std::sync::atomic::{AtomicU32, Ordering};

/// Reserves `flits` of space in a queue with capacity `cap`.
///
/// A single oversized message (larger than the whole buffer) is allowed
/// when the queue is empty, so it can still make progress.
fn reserve(occ: &AtomicU32, flits: u32, cap: u32) -> bool {
    occ.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        if v == 0 || v + flits <= cap {
            Some(v + flits)
        } else {
            None
        }
    })
    .is_ok()
}

/// Lazily materializes the router at `local`, reusing a pooled box when
/// one is available.
///
/// The pool holds `Box`es (not bare `RouterState`s) so a recycled
/// router moves back into the `Option<Box<_>>` slot as a pointer, never
/// memcpying the large queue struct.
#[allow(clippy::vec_box)]
fn router_mut<'a>(
    routers: &'a mut [Option<Box<RouterState>>],
    pool: &mut Vec<Box<RouterState>>,
    local: usize,
) -> &'a mut RouterState {
    routers[local].get_or_insert_with(|| pool.pop().unwrap_or_default())
}

/// One column shard of the network.
#[derive(Debug)]
pub struct Shard {
    idx: usize,
    cols: Range<u32>,
    /// Reciprocal divider for the shard's column count (hot: local
    /// router index → shard-relative coordinates).
    div_ncols: FastDiv,
    /// Per-router cold state, `None` while the router holds no packets.
    routers: Vec<Option<Box<RouterState>>>,
    /// Drained router boxes awaiting reuse: the recycled
    /// `VecDeque<Packet>` buffers that make steady-state dense traffic
    /// allocator-free. Boxes on purpose — reuse moves a pointer back
    /// into the `routers` slot, not the struct.
    #[allow(clippy::vec_box)]
    pool: Vec<Box<RouterState>>,
    /// Packets queued per router (SoA; the worklist's emptiness check).
    queued_msgs: Vec<u32>,
    /// Earliest cycle at which each router can possibly move a packet
    /// (SoA wake cache; a lower bound). Heads within a FIFO ripen
    /// monotonically and every delivery lowers the bound to the new
    /// packet's `ready_at`, so strictly before `wake` a step visit is a
    /// provable no-op and skips without touching the router box.
    wake: Vec<u64>,
    /// Cycle until which each output link is busy serializing flits
    /// (SoA, `local * OUT_DIRS + dir`; survives router recycling).
    busy_until: Vec<u64>,
    /// Round-robin arbitration pointer per output direction (SoA,
    /// `local * OUT_DIRS + dir`; survives router recycling).
    rr_ptr: Vec<u8>,
    counters: NocCounters,
    /// Injection-to-ejection latency of every packet delivered by this
    /// shard (generation-to-ejection for scheduled traffic).
    latency: LatencyStats,
    /// Injection trace, recorded when `SystemConfig::noc_trace` is set.
    trace: Option<Vec<TraceEvent>>,
    /// Per-router busy cycles of the current statistics frame; empty when
    /// heat-map tracking is disabled (verbosity < V2).
    busy_frame: Vec<u32>,
    /// Pushes into this shard's own queues, applied at the next cycle
    /// boundary (mirrors the mailbox delay of cross-shard pushes). Each
    /// entry carries `(local router, input port, global queue id, pkt)`;
    /// the queue id is captured at forward time so `begin_cycle` does
    /// not re-derive it from coordinates.
    pending_pushes: Vec<(usize, usize, usize, Packet)>,
    /// Occupancy decrements from this cycle's pops, applied at the next
    /// cycle boundary (credit-return delay; keeps parallel == sequential).
    pending_frees: Vec<(usize, u32)>,
    /// Worklist of routers currently holding traffic. Every push site
    /// (inject, deferred pushes, mailbox drains) activates the target;
    /// [`Shard::step`] deactivates routers it finds drained. The
    /// invariant "has traffic ⇒ active" holds at every step/horizon
    /// point because no router *gains* traffic during `step` (same-shard
    /// forwards defer to `pending_pushes`, cross-shard ones to
    /// mailboxes).
    active: ActiveSet,
}

impl Shard {
    pub(crate) fn new(
        idx: usize,
        cols: Range<u32>,
        height: u32,
        track_busy: bool,
        record_trace: bool,
        active_list: bool,
    ) -> Self {
        let n = (cols.end - cols.start) as usize * height as usize;
        Shard {
            idx,
            div_ncols: FastDiv::new(cols.end - cols.start),
            cols,
            routers: (0..n).map(|_| None).collect(),
            pool: Vec::new(),
            queued_msgs: vec![0; n],
            wake: vec![0; n],
            busy_until: vec![0; n * OUT_DIRS],
            rr_ptr: vec![0; n * OUT_DIRS],
            counters: NocCounters::default(),
            latency: LatencyStats::default(),
            trace: if record_trace { Some(Vec::new()) } else { None },
            busy_frame: if track_busy { vec![0; n] } else { Vec::new() },
            pending_pushes: Vec::new(),
            pending_frees: Vec::new(),
            active: ActiveSet::new(n, active_list),
        }
    }

    /// The column range this shard owns.
    pub fn cols(&self) -> Range<u32> {
        self.cols.clone()
    }

    /// Shard index.
    pub fn index(&self) -> usize {
        self.idx
    }

    /// Cumulative counters of this shard.
    pub fn counters(&self) -> &NocCounters {
        &self.counters
    }

    /// Latency statistics of packets this shard delivered.
    pub fn latency(&self) -> &LatencyStats {
        &self.latency
    }

    /// Drains the recorded injection trace (empty when recording is off).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Routers whose cold state is currently materialized (holding at
    /// least one packet; drained boxes return to the free-list).
    pub fn allocated_routers(&self) -> usize {
        self.routers.iter().filter(|r| r.is_some()).count()
    }

    /// Drained router boxes waiting in the free-list for reuse.
    pub fn pooled_routers(&self) -> usize {
        self.pool.len()
    }

    fn local_of(&self, x: u32, y: u32) -> usize {
        debug_assert!(
            self.cols.contains(&x),
            "column {x} not in shard {}",
            self.idx
        );
        (y * (self.cols.end - self.cols.start) + (x - self.cols.start)) as usize
    }

    fn local_idx(&self, tile: u32, topo: &TopoInfo) -> usize {
        let (x, y) = topo.coords(tile);
        self.local_of(x, y)
    }

    fn global_tile(&self, local: usize, width: u32) -> u32 {
        let (y, xr) = self.div_ncols.divmod(local as u32);
        y * width + self.cols.start + xr
    }

    /// Whether all queues and pending buffers of this shard are empty.
    pub fn is_drained(&self) -> bool {
        self.pending_pushes.is_empty() && self.queued_msgs.iter().all(|&q| q == 0)
    }

    /// The earliest cycle after `now` at which this shard can move a
    /// packet, or `None` if it holds no packets at all.
    ///
    /// Queue heads are the earliest-ready packet of their FIFO (link
    /// serialization makes arrival times monotone within a queue), so
    /// scanning heads plus this shard's own deferred pushes is exact:
    /// strictly before the returned cycle, [`Shard::step`] is a no-op —
    /// no movement, no counter, no busy accounting. A head that is
    /// already ready but stalled (link busy, backpressure, eject refusal)
    /// clamps the horizon to `now + 1` because it retries every cycle.
    /// The time-leaping driver uses this to skip dead cycles while
    /// packets ride long-latency (die-to-die, inter-node) links.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        let floor = now + 1;
        let mut horizon: Option<u64> = None;
        for (_, _, _, pkt) in &self.pending_pushes {
            let c = pkt.ready_at.max(floor);
            horizon = Some(horizon.map_or(c, |h| h.min(c)));
        }
        // only active routers can hold traffic (every push activates its
        // target; step deactivates only drained routers), so the worklist
        // scan is exact
        for local in self.active.iter() {
            if horizon == Some(floor) {
                return horizon; // cannot get any earlier
            }
            let local = local as usize;
            if self.queued_msgs[local] == 0 {
                continue;
            }
            let Some(r) = self.routers[local].as_deref() else {
                continue;
            };
            let mut mask = r.port_mask();
            while mask != 0 {
                let port = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let head = r.queues[port].front().expect("mask bit implies a head");
                let c = head.ready_at.max(floor);
                horizon = Some(horizon.map_or(c, |h| h.min(c)));
            }
        }
        horizon
    }

    /// Packets currently queued (including pending pushes).
    pub fn queued_packets(&self) -> u64 {
        self.pending_pushes.len() as u64 + self.queued_msgs.iter().map(|&q| q as u64).sum::<u64>()
    }

    /// Pushes `pkt` into queue `port` of router `local`, maintaining the
    /// worklist, the per-router packet count, and the occupancy/in-flight
    /// balance when the push combines (shared by every delivery site).
    fn deliver(&mut self, shared: &SharedNet, local: usize, qid: usize, port: usize, pkt: Packet) {
        if pkt.ready_at < self.wake[local] {
            self.wake[local] = pkt.ready_at;
        }
        let freed = router_mut(&mut self.routers, &mut self.pool, local).push(port, pkt);
        self.active.activate(local as u32);
        if freed > 0 {
            shared.occupancy[qid].fetch_sub(freed, Ordering::Relaxed);
            self.counters.reduce_combines += 1;
            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        } else {
            self.queued_msgs[local] += 1;
        }
    }

    /// Opens a batched injection session at `tile`'s local inject queue.
    ///
    /// During the driver's local phase the inject queue's occupancy entry
    /// is touched by this worker alone (frees for it are recorded by this
    /// same shard and applied at its own `begin_cycle`), so the batch can
    /// run the admission rule on a local copy and publish one occupancy
    /// and one in-flight update per run instead of two atomics per
    /// packet. Dropping the batch without [`InjectBatch::commit`] loses
    /// those updates; commit is mandatory.
    pub fn inject_batch<'a>(&'a mut self, shared: &'a SharedNet, tile: u32) -> InjectBatch<'a> {
        let local = self.local_idx(tile, &shared.topo);
        let qid = shared.topo.queue_id(tile, InPort::Inject);
        let occ = shared.occupancy[qid].load(Ordering::Relaxed);
        InjectBatch {
            shard: self,
            shared,
            local,
            qid,
            occ,
            occ_delta: 0,
            in_flight_delta: 0,
        }
    }

    /// Injects a packet at `tile`'s local inject queue.
    ///
    /// # Errors
    ///
    /// Returns the packet back if the inject queue is full (the caller's
    /// channel queue keeps it and retries later).
    pub fn inject(&mut self, shared: &SharedNet, tile: u32, pkt: Packet) -> Result<(), Packet> {
        let mut batch = self.inject_batch(shared, tile);
        let outcome = batch.offer(pkt);
        batch.commit();
        outcome
    }

    /// Applies deferred frees, deferred local pushes, and drains incoming
    /// mailboxes. Must run for every shard (with a barrier in parallel
    /// mode) before any shard's [`Shard::step`] for the same cycle.
    pub fn begin_cycle(&mut self, shared: &SharedNet) {
        for (qid, flits) in self.pending_frees.drain(..) {
            shared.occupancy[qid].fetch_sub(flits, Ordering::Relaxed);
        }
        let pushes = std::mem::take(&mut self.pending_pushes);
        for (local, port, qid, pkt) in pushes {
            self.deliver(shared, local, qid, port, pkt);
        }
        for producer in 0..shared.num_shards() {
            if producer == self.idx {
                continue;
            }
            let mut inbox = shared.mailbox(self.idx, producer).lock();
            for (tile, port, pkt) in inbox.drain(..) {
                let local = self.local_idx(tile, &shared.topo);
                let qid = shared.topo.queue_id(tile, port);
                self.deliver(shared, local, qid, port.index(), pkt);
            }
        }
    }

    /// Advances every router holding traffic by one NoC cycle.
    ///
    /// The sweep walks the active-router worklist in ascending local
    /// order (bit-identical to the full scan: idle routers are pure
    /// no-ops) and deactivates routers it leaves drained, recycling their
    /// boxes through the free-list. With the worklist disabled it
    /// degrades to the full scan.
    pub fn step(&mut self, shared: &SharedNet, cycle: u64, sink: &mut dyn EjectSink) {
        let topo = &shared.topo;
        let width = topo.width;
        // split borrows: `router` stays mutably borrowed across the inner
        // loop while counters / pending buffers are updated alongside
        let Shard {
            idx,
            cols,
            div_ncols,
            routers,
            pool,
            queued_msgs,
            wake,
            busy_until,
            rr_ptr,
            counters,
            latency,
            trace: _,
            busy_frame,
            pending_pushes,
            pending_frees,
            active,
        } = self;
        let ncols = (cols.end - cols.start) as usize;
        let col_start = cols.start;
        active.refresh();
        // Candidate scratch lives outside the per-router closure: `cand`
        // and `vc_of` are only ever read at indices the current router
        // wrote (`n_cand` gates every access), so they carry stale bytes
        // between routers instead of being re-zeroed ~130 bytes per
        // visit. `n_cand` alone must start all-zero; the consume loop
        // below restores that invariant as it reads each entry.
        let mut cand: [[u8; IN_PORTS]; OUT_DIRS] = [[0; IN_PORTS]; OUT_DIRS];
        let mut n_cand: [u8; OUT_DIRS] = [0; OUT_DIRS];
        let mut vc_of: [u8; IN_PORTS] = [0; IN_PORTS];
        active.retain(|local| {
            let local = local as usize;
            if queued_msgs[local] == 0 {
                return false;
            }
            if wake[local] > cycle {
                return true; // no head can ripen before `wake`
            }
            let router = routers[local]
                .as_deref_mut()
                .expect("queued packets imply a materialized router");
            let tile = {
                let (y, xr) = div_ncols.divmod(local as u32);
                y * width + col_start + xr
            };
            // Compute each ready head's routing decision once, visiting
            // occupied ports only. Candidate lists per direction keep the
            // ascending port order of the old full scan.
            let mut ripen = u64::MAX;
            let mut dirty: u16 = 0;
            let mut mask = router.port_mask();
            while mask != 0 {
                let port = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let head = router.queues[port]
                    .front()
                    .expect("mask bit implies a head");
                if head.ready_at <= cycle {
                    let d = route::decide(topo, tile, InPort::ALL[port], head.vc, head.dst);
                    let oi = d.dir.index();
                    cand[oi][n_cand[oi] as usize] = port as u8;
                    n_cand[oi] += 1;
                    vc_of[port] = d.vc;
                    dirty |= 1 << oi;
                } else {
                    ripen = ripen.min(head.ready_at);
                }
            }
            if dirty == 0 {
                // every head is immature: sleep until the earliest ripens
                wake[local] = ripen;
                return true;
            }
            // stalled heads (busy link, backpressure, eject refusal,
            // collision losers) retry next cycle
            wake[local] = cycle + 1;
            let mut moved = false;
            // Visit only directions holding a candidate, in `OutDir::ALL`
            // order: the Eject bit first (local delivery is never starved
            // by through traffic), then N..RucheW — which is ascending
            // index order, exactly the remaining `ALL` entries.
            while dirty != 0 {
                let oi = if dirty & (1 << OutDir::Eject.index()) != 0 {
                    OutDir::Eject.index()
                } else {
                    dirty.trailing_zeros() as usize
                };
                dirty &= !(1 << oi);
                let out = OutDir::BY_INDEX[oi];
                // read-and-clear keeps `n_cand` all-zero for the next
                // router even on the `continue` paths below
                let n = std::mem::take(&mut n_cand[oi]) as usize;
                if busy_until[local * OUT_DIRS + oi] > cycle {
                    continue; // link still serializing a previous message
                }
                counters.collisions += (n - 1) as u64;
                let pick = Self::round_robin_pick(&cand[oi][..n], rr_ptr[local * OUT_DIRS + oi]);
                rr_ptr[local * OUT_DIRS + oi] = pick;
                let pick = pick as usize;
                if out == OutDir::Eject {
                    let pkt = router.pop(pick);
                    queued_msgs[local] -= 1;
                    let flits = pkt.flits;
                    let born = pkt.born;
                    match sink.offer(tile, pkt) {
                        Ok(()) => {
                            pending_frees
                                .push((topo.queue_id(tile, InPort::ALL[pick]), flits as u32));
                            busy_until[local * OUT_DIRS + oi] = cycle + flits as u64;
                            counters.ejected += 1;
                            latency.record(cycle.saturating_sub(born));
                            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                            moved = true;
                        }
                        Err(pkt) => {
                            // refused: restore head position
                            router.restore_front(pick, pkt);
                            queued_msgs[local] += 1;
                            counters.eject_stalls += 1;
                        }
                    }
                    continue;
                }
                let vc = vc_of[pick];
                let (dest, in_port, class, hop) = topo
                    .hop_info(tile, out, vc)
                    .expect("routing chose a non-existent link");
                let qid = topo.queue_id(dest, in_port);
                let flits = router.queues[pick]
                    .front()
                    .expect("candidate has head")
                    .flits as u32;
                if !reserve(&shared.occupancy[qid], flits, topo.queue_capacity_flits) {
                    counters.backpressure += 1;
                    continue;
                }
                let mut pkt = router.pop(pick);
                queued_msgs[local] -= 1;
                pending_frees.push((topo.queue_id(tile, InPort::ALL[pick]), flits));
                pkt.vc = vc;
                pkt.ready_at = cycle + hop + (flits as u64 - 1);
                busy_until[local * OUT_DIRS + oi] = cycle + flits as u64;
                counters.msg_hops += 1;
                counters.flit_hops_by_class[class_index(class)] += flits as u64;
                if class == muchisim_config::LinkClass::OnChip {
                    counters.onchip_flit_mm += flits as f64 * topo.hop_wire_mm(out);
                }
                let (dx, dy) = topo.coords(dest);
                let dest_shard = shared.shard_of_col[dx as usize] as usize;
                if dest_shard == *idx {
                    let dlocal = (dy * ncols as u32 + (dx - col_start)) as usize;
                    pending_pushes.push((dlocal, in_port.index(), qid, pkt));
                } else {
                    shared
                        .mailbox(dest_shard, *idx)
                        .lock()
                        .push((dest, in_port, pkt));
                }
                moved = true;
            }
            if moved {
                if let Some(b) = busy_frame.get_mut(local) {
                    *b += 1;
                }
            }
            // stalled heads (busy link, backpressure, eject refusal) retry
            // next cycle, so a router with traffic stays on the worklist;
            // a drained router recycles its box and retires
            if queued_msgs[local] > 0 {
                return true;
            }
            let mut drained = routers[local].take().expect("materialized above");
            drained.reset_for_reuse();
            pool.push(drained);
            // the next delivery's min() then records its exact ready_at
            wake[local] = u64::MAX;
            false
        });
    }

    fn round_robin_pick(candidates: &[u8], last: u8) -> u8 {
        // first candidate strictly after `last`, cyclically
        *candidates
            .iter()
            .find(|&&c| c > last)
            .unwrap_or(&candidates[0])
    }

    /// Adds this shard's per-router busy-cycle counts into the global
    /// `grid` (indexed by tile id) and resets them (one statistics frame).
    ///
    /// No-op when busy tracking is disabled (verbosity < V2); the counts
    /// were never accumulated.
    pub fn take_busy(&mut self, grid: &mut [u32], width: u32) {
        for local in 0..self.busy_frame.len() {
            if self.busy_frame[local] > 0 {
                let tile = self.global_tile(local, width);
                grid[tile as usize] += self.busy_frame[local];
                self.busy_frame[local] = 0;
            }
        }
    }

    /// Host heap bytes owned by this shard: the router pointer table, the
    /// SoA hot-state arrays, every materialized or pooled router's
    /// queues, the busy grid, and the pending-push/free buffers.
    pub fn heap_bytes(&self) -> u64 {
        let ptr = std::mem::size_of::<Option<Box<RouterState>>>() as u64;
        let per_router =
            |r: &RouterState| -> u64 { std::mem::size_of::<RouterState>() as u64 + r.heap_bytes() };
        let routers = self.routers.capacity() as u64 * ptr
            + self
                .routers
                .iter()
                .flatten()
                .map(|r| per_router(r))
                .sum::<u64>()
            + self.pool.iter().map(|r| per_router(r)).sum::<u64>();
        let trace = self.trace.as_ref().map_or(0, |t| {
            t.capacity() as u64 * std::mem::size_of::<TraceEvent>() as u64
                + t.iter()
                    .map(|e| e.payload.capacity() as u64 * 4)
                    .sum::<u64>()
        });
        routers
            + trace
            + self.pool.capacity() as u64 * ptr
            + self.queued_msgs.capacity() as u64 * 4
            + self.wake.capacity() as u64 * 8
            + self.busy_until.capacity() as u64 * 8
            + self.rr_ptr.capacity() as u64
            + self.busy_frame.capacity() as u64 * 4
            + self.pending_pushes.capacity() as u64
                * std::mem::size_of::<(usize, usize, usize, Packet)>() as u64
            + self
                .pending_pushes
                .iter()
                .map(|(_, _, _, p)| p.payload.heap_bytes())
                .sum::<u64>()
            + self.pending_frees.capacity() as u64 * std::mem::size_of::<(usize, u32)>() as u64
            + self.active.heap_bytes()
    }

    /// Routers currently on the active worklist (all traffic-holding
    /// routers when the worklist is disabled). Activity telemetry for
    /// scheduling studies; the cycle loop itself never reads this.
    pub fn active_routers(&self) -> usize {
        if self.active.enabled() {
            self.active.active_count()
        } else {
            self.allocated_routers()
        }
    }

    /// Per-queue occupancy of task-type `_task` packets, for verbosity V3
    /// inspection: total packets queued at `tile`.
    pub fn queued_at(&self, tile: u32, width: u32) -> u32 {
        self.queued_msgs[self.local_of(tile % width, tile / width)]
    }

    // -----------------------------------------------------------------
    // Checkpointing. Snapshots are taken at a quiescent point — right
    // after `begin_cycle`, before any `step` — where the pending-push
    // and pending-free buffers are empty and every in-flight packet
    // sits in exactly one router input queue.
    // -----------------------------------------------------------------

    /// Every queued packet as `(global tile, input-port index, packet)`,
    /// in deterministic order: ascending local router id, ascending
    /// port, FIFO position within each queue.
    ///
    /// Must be called at the post-`begin_cycle` quiescent point; the
    /// deferred buffers are required to be empty.
    pub fn snapshot_packets(&self, width: u32) -> Vec<(u32, u8, &Packet)> {
        debug_assert!(
            self.pending_pushes.is_empty() && self.pending_frees.is_empty(),
            "snapshot requires the post-begin_cycle quiescent point"
        );
        let mut out = Vec::new();
        for (local, slot) in self.routers.iter().enumerate() {
            let Some(router) = slot.as_deref() else {
                continue;
            };
            let tile = self.global_tile(local, width);
            for (port, queue) in router.queues.iter().enumerate() {
                for pkt in queue {
                    out.push((tile, port as u8, pkt));
                }
            }
        }
        out
    }

    /// Output links still serializing flits at `now`, as
    /// `(global tile, direction index, busy_until)`.
    pub fn snapshot_links(&self, width: u32, now: u64) -> Vec<(u32, u8, u64)> {
        let mut out = Vec::new();
        for local in 0..self.queued_msgs.len() {
            for dir in 0..OUT_DIRS {
                let until = self.busy_until[local * OUT_DIRS + dir];
                if until > now {
                    out.push((self.global_tile(local, width), dir as u8, until));
                }
            }
        }
        out
    }

    /// Non-zero round-robin arbitration pointers, as
    /// `(global tile, direction index, pointer)`.
    pub fn snapshot_rr(&self, width: u32) -> Vec<(u32, u8, u8)> {
        let mut out = Vec::new();
        for local in 0..self.queued_msgs.len() {
            for dir in 0..OUT_DIRS {
                let v = self.rr_ptr[local * OUT_DIRS + dir];
                if v != 0 {
                    out.push((self.global_tile(local, width), dir as u8, v));
                }
            }
        }
        out
    }

    /// Non-zero per-router busy counts of the current (open) statistics
    /// frame, as `(global tile, count)`. Empty when heat-map tracking is
    /// off (verbosity < V2).
    pub fn snapshot_busy_frame(&self, width: u32) -> Vec<(u32, u32)> {
        self.busy_frame
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v > 0)
            .map(|(local, &v)| (self.global_tile(local, width), v))
            .collect()
    }

    /// Re-queues a checkpointed packet into `tile`'s `port` queue,
    /// rebuilding the occupancy table, the in-flight balance, the
    /// per-router packet count, the wake cache, and the worklist.
    ///
    /// Packets must be restored in their snapshot order (FIFO order is
    /// load-bearing). Snapshots are taken post-combine, so a restore can
    /// never trigger an in-network reduction.
    pub fn restore_packet(&mut self, shared: &SharedNet, tile: u32, port: InPort, pkt: Packet) {
        let local = self.local_idx(tile, &shared.topo);
        let qid = shared.topo.queue_id(tile, port);
        shared.occupancy[qid].fetch_add(pkt.flits as u32, Ordering::Relaxed);
        shared.in_flight.fetch_add(1, Ordering::AcqRel);
        if pkt.ready_at < self.wake[local] {
            self.wake[local] = pkt.ready_at;
        }
        let freed = router_mut(&mut self.routers, &mut self.pool, local).push(port.index(), pkt);
        assert_eq!(freed, 0, "snapshot is post-combine; restore cannot reduce");
        self.queued_msgs[local] += 1;
        self.active.activate(local as u32);
    }

    /// Restores one output link's `busy_until` clock.
    pub fn restore_link(&mut self, topo: &TopoInfo, tile: u32, dir: u8, until: u64) {
        let local = self.local_idx(tile, topo);
        self.busy_until[local * OUT_DIRS + dir as usize] = until;
    }

    /// Restores one round-robin arbitration pointer.
    pub fn restore_rr(&mut self, topo: &TopoInfo, tile: u32, dir: u8, val: u8) {
        let local = self.local_idx(tile, topo);
        self.rr_ptr[local * OUT_DIRS + dir as usize] = val;
    }

    /// Restores one router's open-frame busy count (no-op when heat-map
    /// tracking is off; the count was never captured either).
    pub fn restore_busy_frame(&mut self, topo: &TopoInfo, tile: u32, val: u32) {
        let local = self.local_idx(tile, topo);
        if let Some(b) = self.busy_frame.get_mut(local) {
            *b = val;
        }
    }

    /// Folds checkpointed NoC counters and latency statistics into this
    /// shard (applied once per plane, to one shard, on restore).
    pub fn restore_counters(&mut self, counters: &NocCounters, latency: &LatencyStats) {
        self.counters.merge(counters);
        self.latency.merge(latency);
    }
}

/// A batched injection session at one tile's inject queue (see
/// [`Shard::inject_batch`]): admission control runs on a locally cached
/// occupancy value, and the atomic occupancy/in-flight updates are folded
/// into one arithmetic update per run at [`InjectBatch::commit`].
#[derive(Debug)]
pub struct InjectBatch<'a> {
    shard: &'a mut Shard,
    shared: &'a SharedNet,
    local: usize,
    qid: usize,
    /// Local view of `occupancy[qid]`, exact while the batch is open
    /// (the inject queue is single-writer during the local phase).
    occ: u32,
    /// Net occupancy change to publish at commit.
    occ_delta: i64,
    /// Net in-flight change to publish at commit.
    in_flight_delta: i64,
}

impl InjectBatch<'_> {
    /// Offers one packet under the same admission rule as
    /// [`Shard::inject`]: admit iff the queue is empty or `flits` fit.
    ///
    /// # Errors
    ///
    /// Returns the packet back if the inject queue is full.
    pub fn offer(&mut self, pkt: Packet) -> Result<(), Packet> {
        let flits = pkt.flits as u32;
        if !(self.occ == 0 || self.occ + flits <= self.shared.inject_capacity_flits) {
            return Err(pkt);
        }
        self.occ += flits;
        self.occ_delta += flits as i64;
        if let Some(trace) = &mut self.shard.trace {
            trace.push(TraceEvent::from_packet(&pkt));
        }
        if pkt.ready_at < self.shard.wake[self.local] {
            self.shard.wake[self.local] = pkt.ready_at;
        }
        let freed = router_mut(&mut self.shard.routers, &mut self.shard.pool, self.local)
            .push(InPort::Inject.index(), pkt);
        self.shard.active.activate(self.local as u32);
        if freed > 0 {
            self.occ -= freed;
            self.occ_delta -= i64::from(freed);
            self.shard.counters.reduce_combines += 1;
            self.in_flight_delta -= 1;
        } else {
            self.shard.queued_msgs[self.local] += 1;
        }
        self.shard.counters.injected += 1;
        self.in_flight_delta += 1;
        Ok(())
    }

    /// Publishes the batched occupancy and in-flight deltas.
    pub fn commit(self) {
        match self.occ_delta.cmp(&0) {
            std::cmp::Ordering::Greater => {
                self.shared.occupancy[self.qid].fetch_add(self.occ_delta as u32, Ordering::Relaxed);
            }
            std::cmp::Ordering::Less => {
                self.shared.occupancy[self.qid]
                    .fetch_sub((-self.occ_delta) as u32, Ordering::Relaxed);
            }
            std::cmp::Ordering::Equal => {}
        }
        if self.in_flight_delta != 0 {
            self.shared
                .in_flight
                .fetch_add(self.in_flight_delta, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_wraps() {
        assert_eq!(Shard::round_robin_pick(&[0, 3, 7], 0), 3);
        assert_eq!(Shard::round_robin_pick(&[0, 3, 7], 7), 0);
        assert_eq!(Shard::round_robin_pick(&[0, 3, 7], 12), 0);
        assert_eq!(Shard::round_robin_pick(&[5], 5), 5);
    }

    #[test]
    fn reserve_respects_capacity() {
        let occ = AtomicU32::new(0);
        assert!(reserve(&occ, 3, 4));
        assert!(!reserve(&occ, 2, 4));
        assert!(reserve(&occ, 1, 4));
        assert_eq!(occ.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn reserve_allows_oversized_when_empty() {
        let occ = AtomicU32::new(0);
        assert!(reserve(&occ, 10, 4));
        assert!(!reserve(&occ, 1, 4));
    }

    #[test]
    fn fresh_shard_allocates_no_routers() {
        let mut shard = Shard::new(0, 0..8, 8, false, false, true);
        assert_eq!(shard.allocated_routers(), 0);
        assert_eq!(shard.pooled_routers(), 0);
        assert_eq!(shard.active_routers(), 0);
        assert!(shard.is_drained());
        assert_eq!(shard.queued_packets(), 0);
        assert_eq!(shard.next_event_cycle(0), None);
        assert!(shard.busy_frame.is_empty(), "untracked shard has no grid");
        assert_eq!(shard.latency().count, 0);
        assert!(shard.take_trace().is_empty(), "tracing is off by default");
    }
}
