//! Column shards: the unit of host-thread parallelism.
//!
//! The simulator parallelizes over *columns* of the tile grid (paper
//! §III-C); each shard owns the routers of a contiguous column range.
//! Packets crossing a shard boundary travel through single-producer
//! mailboxes and buffer space is reserved through a shared atomic
//! occupancy table, so stepping shards concurrently is bit-identical to
//! stepping them sequentially: every queue has exactly one upstream
//! router, freed buffer space becomes visible at the next cycle boundary
//! in both modes, and packets never move in the cycle they arrive.

use crate::counters::{class_index, NocCounters};
use crate::network::{EjectSink, SharedNet};
use crate::packet::Packet;
use crate::port::{InPort, OutDir, IN_PORTS};
use crate::route;
use crate::router::RouterState;
use std::ops::Range;
use std::sync::atomic::{AtomicU32, Ordering};

/// Reserves `flits` of space in a queue with capacity `cap`.
///
/// A single oversized message (larger than the whole buffer) is allowed
/// when the queue is empty, so it can still make progress.
fn reserve(occ: &AtomicU32, flits: u32, cap: u32) -> bool {
    occ.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        if v == 0 || v + flits <= cap {
            Some(v + flits)
        } else {
            None
        }
    })
    .is_ok()
}

/// One column shard of the network.
#[derive(Debug)]
pub struct Shard {
    idx: usize,
    cols: Range<u32>,
    routers: Vec<RouterState>,
    counters: NocCounters,
    busy_frame: Vec<u32>,
    /// Pushes into this shard's own queues, applied at the next cycle
    /// boundary (mirrors the mailbox delay of cross-shard pushes).
    pending_pushes: Vec<(usize, usize, Packet)>,
    /// Occupancy decrements from this cycle's pops, applied at the next
    /// cycle boundary (credit-return delay; keeps parallel == sequential).
    pending_frees: Vec<(usize, u32)>,
}

impl Shard {
    pub(crate) fn new(idx: usize, cols: Range<u32>, height: u32) -> Self {
        let n = (cols.end - cols.start) as usize * height as usize;
        Shard {
            idx,
            cols,
            routers: (0..n).map(|_| RouterState::default()).collect(),
            counters: NocCounters::default(),
            busy_frame: vec![0; n],
            pending_pushes: Vec::new(),
            pending_frees: Vec::new(),
        }
    }

    /// The column range this shard owns.
    pub fn cols(&self) -> Range<u32> {
        self.cols.clone()
    }

    /// Shard index.
    pub fn index(&self) -> usize {
        self.idx
    }

    /// Cumulative counters of this shard.
    pub fn counters(&self) -> &NocCounters {
        &self.counters
    }

    fn local_idx(&self, tile: u32, width: u32) -> usize {
        let x = tile % width;
        let y = tile / width;
        debug_assert!(
            self.cols.contains(&x),
            "tile {tile} not in shard {}",
            self.idx
        );
        (y * (self.cols.end - self.cols.start) + (x - self.cols.start)) as usize
    }

    fn global_tile(&self, local: usize, width: u32) -> u32 {
        let ncols = (self.cols.end - self.cols.start) as usize;
        let y = (local / ncols) as u32;
        let x = self.cols.start + (local % ncols) as u32;
        y * width + x
    }

    /// Whether all queues and pending buffers of this shard are empty.
    pub fn is_drained(&self) -> bool {
        self.pending_pushes.is_empty() && self.routers.iter().all(|r| !r.has_traffic())
    }

    /// The earliest cycle after `now` at which this shard can move a
    /// packet, or `None` if it holds no packets at all.
    ///
    /// Queue heads are the earliest-ready packet of their FIFO (link
    /// serialization makes arrival times monotone within a queue), so
    /// scanning heads plus this shard's own deferred pushes is exact:
    /// strictly before the returned cycle, [`Shard::step`] is a no-op —
    /// no movement, no counter, no busy accounting. A head that is
    /// already ready but stalled (link busy, backpressure, eject refusal)
    /// clamps the horizon to `now + 1` because it retries every cycle.
    /// The time-leaping driver uses this to skip dead cycles while
    /// packets ride long-latency (die-to-die, inter-node) links.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        let floor = now + 1;
        let mut horizon: Option<u64> = None;
        for (_, _, pkt) in &self.pending_pushes {
            let c = pkt.ready_at.max(floor);
            horizon = Some(horizon.map_or(c, |h| h.min(c)));
        }
        for r in &self.routers {
            if horizon == Some(floor) {
                return horizon; // cannot get any earlier
            }
            if !r.has_traffic() {
                continue;
            }
            for q in &r.queues {
                if let Some(head) = q.front() {
                    let c = head.ready_at.max(floor);
                    horizon = Some(horizon.map_or(c, |h| h.min(c)));
                }
            }
        }
        horizon
    }

    /// Packets currently queued (including pending pushes).
    pub fn queued_packets(&self) -> u64 {
        self.pending_pushes.len() as u64
            + self
                .routers
                .iter()
                .map(|r| r.queued_msgs as u64)
                .sum::<u64>()
    }

    /// Injects a packet at `tile`'s local inject queue.
    ///
    /// # Errors
    ///
    /// Returns the packet back if the inject queue is full (the caller's
    /// channel queue keeps it and retries later).
    pub fn inject(&mut self, shared: &SharedNet, tile: u32, pkt: Packet) -> Result<(), Packet> {
        let width = shared.topo.width;
        let qid = shared.topo.queue_id(tile, InPort::Inject);
        if !reserve(
            &shared.occupancy[qid],
            pkt.flits as u32,
            shared.inject_capacity_flits,
        ) {
            return Err(pkt);
        }
        let local = self.local_idx(tile, width);
        let freed = self.routers[local].push(InPort::Inject.index(), pkt);
        if freed > 0 {
            shared.occupancy[qid].fetch_sub(freed, Ordering::Relaxed);
            self.counters.reduce_combines += 1;
            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        }
        self.counters.injected += 1;
        shared.in_flight.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Applies deferred frees, deferred local pushes, and drains incoming
    /// mailboxes. Must run for every shard (with a barrier in parallel
    /// mode) before any shard's [`Shard::step`] for the same cycle.
    pub fn begin_cycle(&mut self, shared: &SharedNet) {
        for (qid, flits) in self.pending_frees.drain(..) {
            shared.occupancy[qid].fetch_sub(flits, Ordering::Relaxed);
        }
        let width = shared.topo.width;
        let pushes = std::mem::take(&mut self.pending_pushes);
        for (local, port, pkt) in pushes {
            let tile = self.global_tile(local, width);
            let qid = shared.topo.queue_id(tile, InPort::ALL[port]);
            let freed = self.routers[local].push(port, pkt);
            if freed > 0 {
                shared.occupancy[qid].fetch_sub(freed, Ordering::Relaxed);
                self.counters.reduce_combines += 1;
                shared.in_flight.fetch_sub(1, Ordering::AcqRel);
            }
        }
        for producer in 0..shared.num_shards() {
            if producer == self.idx {
                continue;
            }
            let mut inbox = shared.mailbox(self.idx, producer).lock();
            for (tile, port, pkt) in inbox.drain(..) {
                let local = self.local_idx(tile, width);
                let qid = shared.topo.queue_id(tile, port);
                let freed = self.routers[local].push(port.index(), pkt);
                if freed > 0 {
                    shared.occupancy[qid].fetch_sub(freed, Ordering::Relaxed);
                    self.counters.reduce_combines += 1;
                    shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                }
            }
        }
    }

    /// Advances every router in this shard by one NoC cycle.
    pub fn step(&mut self, shared: &SharedNet, cycle: u64, sink: &mut dyn EjectSink) {
        let topo = &shared.topo;
        let width = topo.width;
        for local in 0..self.routers.len() {
            if !self.routers[local].has_traffic() {
                continue;
            }
            let tile = self.global_tile(local, width);
            // Compute each ready head's routing decision once.
            let mut decisions: [Option<route::RouteDecision>; IN_PORTS] = [None; IN_PORTS];
            for (port, dec) in decisions.iter_mut().enumerate() {
                if let Some(head) = self.routers[local].queues[port].front() {
                    if head.ready_at <= cycle {
                        *dec = Some(route::decide(
                            topo,
                            tile,
                            InPort::ALL[port],
                            head.vc,
                            head.dst,
                        ));
                    }
                }
            }
            let mut moved = false;
            for out in OutDir::ALL {
                let oi = out.index();
                let mut candidates: [usize; IN_PORTS] = [0; IN_PORTS];
                let mut n_cand = 0;
                for (port, dec) in decisions.iter().enumerate() {
                    if dec.map(|d| d.dir) == Some(out) {
                        candidates[n_cand] = port;
                        n_cand += 1;
                    }
                }
                if n_cand == 0 {
                    continue;
                }
                if self.routers[local].busy_until[oi] > cycle {
                    continue; // link still serializing a previous message
                }
                self.counters.collisions += (n_cand - 1) as u64;
                let pick =
                    Self::round_robin_pick(&candidates[..n_cand], self.routers[local].rr_ptr[oi]);
                self.routers[local].rr_ptr[oi] = pick as u8;
                if out == OutDir::Eject {
                    let pkt = self.routers[local].pop(pick);
                    let flits = pkt.flits;
                    match sink.offer(tile, pkt) {
                        Ok(()) => {
                            self.pending_frees
                                .push((topo.queue_id(tile, InPort::ALL[pick]), flits as u32));
                            self.routers[local].busy_until[oi] = cycle + flits as u64;
                            self.counters.ejected += 1;
                            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                            moved = true;
                        }
                        Err(pkt) => {
                            // refused: restore head position
                            self.routers[local].queues[pick].push_front(pkt);
                            self.routers[local].queued_msgs += 1;
                            self.counters.eject_stalls += 1;
                        }
                    }
                    continue;
                }
                let vc = decisions[pick].expect("candidate has decision").vc;
                let (dest, in_port) = topo
                    .neighbor(tile, out, vc)
                    .expect("routing chose a non-existent link");
                let qid = topo.queue_id(dest, in_port);
                let flits = self.routers[local].queues[pick]
                    .front()
                    .expect("candidate has head")
                    .flits as u32;
                if !reserve(&shared.occupancy[qid], flits, topo.queue_capacity_flits) {
                    self.counters.backpressure += 1;
                    continue;
                }
                let mut pkt = self.routers[local].pop(pick);
                self.pending_frees
                    .push((topo.queue_id(tile, InPort::ALL[pick]), flits));
                pkt.vc = vc;
                let hop = topo.hop_cycles(tile, out, vc).expect("link exists");
                pkt.ready_at = cycle + hop + (flits as u64 - 1);
                self.routers[local].busy_until[oi] = cycle + flits as u64;
                let class = topo.link_class(tile, out, vc).expect("link exists");
                self.counters.msg_hops += 1;
                self.counters.flit_hops_by_class[class_index(class)] += flits as u64;
                if class == muchisim_config::LinkClass::OnChip {
                    self.counters.onchip_flit_mm += flits as f64 * topo.hop_wire_mm(out);
                }
                let dest_shard = shared.shard_of_col[(dest % width) as usize] as usize;
                if dest_shard == self.idx {
                    let dlocal = self.local_idx(dest, width);
                    self.pending_pushes.push((dlocal, in_port.index(), pkt));
                } else {
                    shared
                        .mailbox(dest_shard, self.idx)
                        .lock()
                        .push((dest, in_port, pkt));
                }
                moved = true;
            }
            if moved {
                self.busy_frame[local] += 1;
            }
        }
    }

    fn round_robin_pick(candidates: &[usize], last: u8) -> usize {
        // first candidate strictly after `last`, cyclically
        *candidates
            .iter()
            .find(|&&c| c > last as usize)
            .unwrap_or(&candidates[0])
    }

    /// Adds this shard's per-router busy-cycle counts into the global
    /// `grid` (indexed by tile id) and resets them (one statistics frame).
    pub fn take_busy(&mut self, grid: &mut [u32], width: u32) {
        for local in 0..self.busy_frame.len() {
            if self.busy_frame[local] > 0 {
                let tile = self.global_tile(local, width);
                grid[tile as usize] += self.busy_frame[local];
                self.busy_frame[local] = 0;
            }
        }
    }

    /// Per-queue occupancy of task-type `_task` packets, for verbosity V3
    /// inspection: total packets queued at `tile`.
    pub fn queued_at(&self, tile: u32, width: u32) -> u32 {
        self.routers[self.local_idx(tile, width)].queued_msgs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_wraps() {
        assert_eq!(Shard::round_robin_pick(&[0, 3, 7], 0), 3);
        assert_eq!(Shard::round_robin_pick(&[0, 3, 7], 7), 0);
        assert_eq!(Shard::round_robin_pick(&[0, 3, 7], 12), 0);
        assert_eq!(Shard::round_robin_pick(&[5], 5), 5);
    }

    #[test]
    fn reserve_respects_capacity() {
        let occ = AtomicU32::new(0);
        assert!(reserve(&occ, 3, 4));
        assert!(!reserve(&occ, 2, 4));
        assert!(reserve(&occ, 1, 4));
        assert_eq!(occ.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn reserve_allows_oversized_when_empty() {
        let occ = AtomicU32::new(0);
        assert!(reserve(&occ, 10, 4));
        assert!(!reserve(&occ, 1, 4));
    }
}
