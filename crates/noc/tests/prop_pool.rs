//! Property tests on the router-box free-list (the pooled packet
//! storage of the dense-regime hot loops): when a traffic wave drains,
//! its router boxes retire into the per-shard pools, and replaying the
//! *same* wave through those recycled boxes — time-shifted past every
//! busy window — produces bit-identical deliveries. A recycled buffer
//! is therefore observably indistinguishable from a fresh allocation:
//! `reset_for_reuse` cleared every carried-over bit that could matter.
//!
//! All traffic originates at tile 0, so every router sees packets on at
//! most one input port and arbitration never consults the round-robin
//! pointers (which intentionally survive recycling, like the link
//! clocks — they are SoA state, not box state).

use muchisim_config::SystemConfig;
use muchisim_noc::{DrainSink, Network, NetworkParams, Packet, Payload, ReduceOp};
use proptest::collection::vec;
use proptest::prelude::*;

fn network(w: u32, h: u32, shards: usize) -> Network {
    let cfg = SystemConfig::builder()
        .chiplet_tiles(w, h)
        .build()
        .expect("valid grid");
    Network::new(NetworkParams::from_system(&cfg), shards)
}

/// One scripted injection: relative inject cycle, destination, payload
/// seed word, flit count, and whether the packet joins a reduction.
type Send = (u64, u32, u32, u16, bool);

/// A delivered packet, in wave-relative time: (delivery cycle, eject
/// tile, destination, flits, payload words).
type Delivery = (u64, u32, u32, u16, Vec<u32>);

/// Injects `wave` from tile 0 starting at absolute cycle `base` and
/// steps until the network drains, retrying backpressured injections
/// each cycle in order. Returns the deliveries in wave-relative time.
fn run_wave(net: &mut Network, base: u64, wave: &[Send]) -> Vec<Delivery> {
    let mut pending: Vec<Send> = wave.to_vec();
    let mut out = Vec::new();
    let mut sink = DrainSink::default();
    let mut seen = 0;
    let mut cycle = base;
    loop {
        let rel = cycle - base;
        let mut retry = Vec::new();
        for send in pending.drain(..) {
            let (due, dst, word, flits, reduce) = send;
            if due > rel {
                retry.push(send);
                continue;
            }
            let payload = Payload::from_slice(&[word, word ^ 0x9e37]);
            let mut pkt = Packet::unicast(0, dst, 0, payload, flits).ready_at(cycle);
            if reduce {
                pkt = pkt.with_reduce(ReduceOp::SumU32);
            }
            if let Err(_refused) = net.inject(0, pkt) {
                retry.push(send); // inject queue full: retry next cycle
            }
        }
        pending = retry;
        net.step(cycle, &mut sink);
        for (tile, pkt) in &sink.drained[seen..] {
            out.push((
                rel,
                *tile,
                pkt.dst,
                pkt.flits,
                pkt.payload.as_slice().to_vec(),
            ));
        }
        seen = sink.drained.len();
        if pending.is_empty() && net.is_empty() {
            return out;
        }
        cycle += 1;
        assert!(cycle - base < 1 << 20, "wave failed to drain");
    }
}

fn pooled_routers(net: &mut Network) -> usize {
    let (_, shards) = net.split();
    shards.iter().map(|s| s.pooled_routers()).sum()
}

fn allocated_routers(net: &mut Network) -> usize {
    let (_, shards) = net.split();
    shards.iter().map(|s| s.allocated_routers()).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replaying a wave through pooled boxes matches the fresh-box run
    /// bit for bit, on any grid, shard split, and traffic mix.
    #[test]
    fn recycled_boxes_are_indistinguishable_from_fresh(
        w in 2u32..9,
        h in 2u32..9,
        shards in 1usize..4,
        wave in vec((0u64..24, any::<u32>(), any::<u32>(), 1u16..4), 1..32),
    ) {
        // the seed word's low bit doubles as the "reducible" flag (the
        // vendored proptest implements tuple strategies up to arity 4)
        let wave: Vec<Send> = wave
            .into_iter()
            .map(|(c, dst, word, flits)| (c, dst % (w * h), word, flits, word & 1 == 0))
            .collect();
        let mut net = network(w, h, shards.min(w as usize));
        let fresh = run_wave(&mut net, 0, &wave);
        prop_assert!(
            allocated_routers(&mut net) == 0 && pooled_routers(&mut net) > 0,
            "drained wave must retire its router boxes into the pools"
        );
        let hops_fresh = net.counters().msg_hops;
        // far past every busy_until the first wave could have left behind
        let base = 1 << 14;
        let replay = run_wave(&mut net, base, &wave);
        prop_assert_eq!(replay, fresh, "recycled boxes changed behavior");
        prop_assert_eq!(
            net.counters().msg_hops - hops_fresh,
            hops_fresh,
            "replay must retrace the same hops"
        );
    }

    /// The pool never grows beyond the routers the traffic actually
    /// touched, and repeated waves reuse it instead of growing it
    /// (steady-state dense traffic is allocator-free).
    #[test]
    fn pool_reaches_steady_state(
        w in 2u32..7,
        h in 2u32..7,
        wave in vec((0u64..8, any::<u32>(), any::<u32>()), 1..16),
    ) {
        let wave: Vec<Send> = wave
            .into_iter()
            .map(|(c, dst, word)| (c, dst % (w * h), word, 1u16, false))
            .collect();
        let mut net = network(w, h, 1);
        run_wave(&mut net, 0, &wave);
        let after_first = pooled_routers(&mut net);
        prop_assert!(after_first <= (w * h) as usize);
        for round in 1..4u64 {
            run_wave(&mut net, round << 14, &wave);
            prop_assert_eq!(
                pooled_routers(&mut net),
                after_first,
                "identical waves must reuse the pooled boxes, not grow the pool"
            );
        }
    }
}
