//! Property-based tests on the routing function alone: on any mesh,
//! torus, or Ruche-augmented grid, `route::decide` walks every
//! source/destination pair with *monotonic progress* (the topology-aware
//! remaining distance strictly decreases every hop) and delivers within a
//! network-diameter hop bound, so no packet can ever livelock.

use muchisim_config::{NocTopology, SystemConfig};
use muchisim_noc::{decide, InPort, OutDir, TopoInfo};
use proptest::prelude::*;

fn topo(w: u32, h: u32, topology: NocTopology, ruche: Option<u32>) -> TopoInfo {
    let mut b = SystemConfig::builder();
    b.chiplet_tiles(w, h).noc_topology(topology);
    if let Some(r) = ruche {
        b.ruche_factor(r);
    }
    TopoInfo::from_system(&b.build().expect("valid grid"))
}

/// Topology-aware remaining distance from `cur` to `dst` in tile units
/// (a Ruche hop covers `r` units at once, so "units" rather than "hops").
fn distance(t: &TopoInfo, cur: u32, dst: u32) -> u64 {
    let (cx, cy) = t.coords(cur);
    let (dx, dy) = t.coords(dst);
    let axis = |a: u32, b: u32, size: u32| -> u64 {
        let d = (a as i64 - b as i64).unsigned_abs();
        if t.topology == NocTopology::FoldedTorus {
            d.min(size as u64 - d)
        } else {
            d
        }
    };
    axis(cx, dx, t.width) + axis(cy, dy, t.height)
}

/// The worst-case shortest-path length of the grid (the mesh/torus
/// diameter); every XY route is a shortest path, so it is a hop bound.
fn diameter(t: &TopoInfo) -> u64 {
    match t.topology {
        NocTopology::Mesh => (t.width - 1) as u64 + (t.height - 1) as u64,
        NocTopology::FoldedTorus => (t.width / 2) as u64 + (t.height / 2) as u64,
    }
}

/// Walks one packet from `src` to `dst` through `decide`, asserting
/// monotonic progress and the diameter hop bound.
fn walk(t: &TopoInfo, src: u32, dst: u32) {
    let bound = diameter(t);
    let mut cur = src;
    let mut port = InPort::Inject;
    let mut vc = 0u8;
    let mut hops = 0u64;
    let mut remaining = distance(t, cur, dst);
    while cur != dst {
        let d = decide(t, cur, port, vc, dst);
        prop_assert!(
            d.dir != OutDir::Eject,
            "premature eject at tile {cur} heading to {dst}"
        );
        let (next, in_port) = t
            .neighbor(cur, d.dir, d.vc)
            .expect("decide must pick an existing link");
        let next_remaining = distance(t, next, dst);
        prop_assert!(
            next_remaining < remaining,
            "hop {cur}->{next} (towards {dst}) did not make progress: {remaining} -> {next_remaining}"
        );
        cur = next;
        port = in_port;
        vc = d.vc;
        remaining = next_remaining;
        hops += 1;
        prop_assert!(
            hops <= bound,
            "route {src}->{dst} exceeded the diameter bound {bound}"
        );
    }
    let d = decide(t, cur, port, vc, dst);
    prop_assert_eq!(d.dir, OutDir::Eject, "must eject at the destination");
}

/// Ruche factors valid for a `w`-wide chiplet: divisors of `w`, at least 2.
fn ruche_choices(w: u32) -> Vec<Option<u32>> {
    let mut out = vec![None];
    for r in 2..=w {
        if w.is_multiple_of(r) {
            out.push(Some(r));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_route_monotonic_and_diameter_bounded(
        w in 2u32..13,
        h in 2u32..13,
        torus in any::<bool>(),
        ruche_seed in 0u32..1024,
        pairs in proptest::collection::vec((0u64..1 << 32, 0u64..1 << 32), 1..40),
    ) {
        let topology = if torus { NocTopology::FoldedTorus } else { NocTopology::Mesh };
        let choices = ruche_choices(w);
        let ruche = choices[ruche_seed as usize % choices.len()];
        let t = topo(w, h, topology, ruche);
        let tiles = (w * h) as u64;
        for (s, d) in pairs {
            walk(&t, (s % tiles) as u32, (d % tiles) as u32);
        }
    }

    #[test]
    fn prop_route_exhaustive_on_small_grids(
        w in 2u32..7,
        h in 2u32..7,
        torus in any::<bool>(),
    ) {
        let topology = if torus { NocTopology::FoldedTorus } else { NocTopology::Mesh };
        let t = topo(w, h, topology, None);
        for src in 0..w * h {
            for dst in 0..w * h {
                walk(&t, src, dst);
            }
        }
    }

    #[test]
    fn prop_route_exhaustive_with_ruche(
        h in 2u32..9,
        torus in any::<bool>(),
    ) {
        // 8-wide chiplet with every valid ruche factor, all pairs
        let topology = if torus { NocTopology::FoldedTorus } else { NocTopology::Mesh };
        for r in [2u32, 4, 8] {
            let t = topo(8, h, topology, Some(r));
            for src in 0..8 * h {
                for dst in 0..8 * h {
                    walk(&t, src, dst);
                }
            }
        }
    }
}
