//! Property-based tests on the NoC's global invariants: every injected
//! packet is delivered exactly once with its payload intact, on any
//! topology, under any shard split, and the conservation law
//! `injected == ejected + combined` holds.

use muchisim_config::{NocTopology, SystemConfig};
use muchisim_noc::{DrainSink, Network, NetworkParams, Packet, Payload, ReduceOp};
use proptest::prelude::*;

fn build(w: u32, h: u32, topo: NocTopology, buffer: u32, shards: usize) -> Network {
    let cfg = SystemConfig::builder()
        .chiplet_tiles(w, h)
        .noc_topology(topo)
        .buffer_depth(buffer)
        .build()
        .unwrap();
    Network::new(NetworkParams::from_system(&cfg), shards)
}

/// Drives injections (retrying on backpressure) until the plane drains.
fn run_traffic(
    net: &mut Network,
    mut pending: Vec<(u32, Packet)>,
    limit: u64,
) -> (Vec<(u32, Packet)>, u64) {
    let mut sink = DrainSink::default();
    let mut cycle = 0u64;
    while !pending.is_empty() || !net.is_empty() {
        pending.retain_mut(|(src, pkt)| {
            let p = std::mem::replace(pkt, Packet::unicast(0, 0, 0, Payload::empty(), 1));
            match net.inject(*src, p.ready_at(cycle)) {
                Ok(()) => false,
                Err(back) => {
                    *pkt = back;
                    true
                }
            }
        });
        net.step(cycle, &mut sink);
        cycle += 1;
        assert!(
            cycle < limit,
            "network failed to drain within {limit} cycles"
        );
    }
    (sink.drained, cycle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_exactly_once_delivery(
        seed in 0u64..10_000,
        topo_torus in any::<bool>(),
        buffer in 1u32..6,
        shards in 1usize..5,
        n_msgs in 1usize..120,
    ) {
        let (w, h) = (6u32, 5u32);
        let topo = if topo_torus { NocTopology::FoldedTorus } else { NocTopology::Mesh };
        let mut net = build(w, h, topo, buffer, shards);
        let tiles = w * h;
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut sent = Vec::new();
        let mut pending = Vec::new();
        for i in 0..n_msgs {
            let src = next() % tiles;
            let dst = next() % tiles;
            let tag = i as u32;
            sent.push((dst, tag));
            pending.push((
                src,
                Packet::unicast(src, dst, 0, Payload::from_slice(&[tag, src]), 1 + (next() % 3) as u16),
            ));
        }
        let (drained, _) = run_traffic(&mut net, pending, 200_000);
        // exactly once, payload intact, correct tile
        let mut got: Vec<(u32, u32)> =
            drained.iter().map(|(t, p)| (*t, p.payload.word(0))).collect();
        got.sort_unstable();
        sent.sort_unstable();
        prop_assert_eq!(got, sent);
        // conservation
        let c = net.counters();
        prop_assert_eq!(c.injected, n_msgs as u64);
        prop_assert_eq!(c.ejected + c.reduce_combines, n_msgs as u64);
        prop_assert!(net.in_flight() == 0);
    }

    #[test]
    fn prop_reduction_conserves_value(
        seed in 0u64..10_000,
        n_msgs in 2usize..80,
    ) {
        // all messages reduce (SumU32) toward one key on one tile: the
        // delivered total must equal the sum of all sent values no matter
        // how many combined in flight
        let mut net = build(6, 6, NocTopology::Mesh, 2, 3);
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            (state >> 33) as u32
        };
        let mut pending = Vec::new();
        let mut total = 0u64;
        for _ in 0..n_msgs {
            let src = next() % 36;
            let val = next() % 1000;
            total += val as u64;
            pending.push((
                src,
                Packet::unicast(src, 35, 1, Payload::from_slice(&[7, val]), 2)
                    .with_reduce(ReduceOp::SumU32),
            ));
        }
        let (drained, _) = run_traffic(&mut net, pending, 200_000);
        let delivered: u64 = drained.iter().map(|(_, p)| p.payload.word(1) as u64).sum();
        prop_assert_eq!(delivered, total);
        let c = net.counters();
        prop_assert_eq!(c.ejected + c.reduce_combines, n_msgs as u64);
    }

    #[test]
    fn prop_shard_count_invariant_timing(
        seed in 0u64..1_000,
        topo_torus in any::<bool>(),
    ) {
        // identical traffic must drain in the identical cycle count for
        // any shard split
        let topo = if topo_torus { NocTopology::FoldedTorus } else { NocTopology::Mesh };
        let mk_traffic = || {
            let mut v = Vec::new();
            let mut s = seed.wrapping_add(3);
            for i in 0..60u32 {
                s = s.wrapping_mul(48271) % 0x7FFF_FFFF;
                let src = (s as u32) % 30;
                let dst = (s as u32 >> 7) % 30;
                v.push((src, Packet::unicast(src, dst, 0, Payload::from_slice(&[i]), 2)));
            }
            v
        };
        let mut cycles = Vec::new();
        for shards in [1usize, 2, 5] {
            let mut net = build(6, 5, topo, 3, shards);
            let (_, c) = run_traffic(&mut net, mk_traffic(), 100_000);
            cycles.push(c);
        }
        prop_assert_eq!(cycles[0], cycles[1]);
        prop_assert_eq!(cycles[0], cycles[2]);
    }
}
