//! # muchisim-dse
//!
//! Design-space exploration for MuchiSim: experiments as data instead of
//! bespoke `main()` functions.
//!
//! The paper's case studies (§IV: memory integration, chiplet
//! granularity, NoC choices) are all parameter sweeps over
//! `SystemConfig` × application × dataset. This crate makes that workflow
//! a first-class subsystem:
//!
//! * **Spec layer** — a declarative [`ExperimentSpec`]: named axes of
//!   string-keyed configuration overrides (`"sram_kib_per_tile=64"`,
//!   `"noc.width_bits=32"`), applications and datasets, expanded by
//!   cartesian product into deterministic [`RunPoint`]s with stable run
//!   IDs. Specs come from JSON files or are built in code.
//! * **Runner layer** — a [`BatchRunner`] that schedules many
//!   simulations concurrently over a host-thread budget, sharing each
//!   dataset across points via `Arc<Csr>`, and streams results into a
//!   resumable [`JsonlStore`]: re-running a sweep skips run IDs already
//!   on disk.
//! * **Reporting layer** — aggregate a store into the
//!   [`muchisim_viz::ReportTable`] comparison machinery, including
//!   *re-pricing*: re-running the energy/cost post-processing under
//!   different model parameters without re-simulating (paper §III-E).
//!
//! # Example
//!
//! ```
//! use muchisim_dse::{BatchRunner, ExperimentSpec, JsonlStore, table_from_store};
//!
//! # fn main() -> Result<(), muchisim_dse::DseError> {
//! let spec = ExperimentSpec::from_json(r#"{
//!     "name": "noc_width",
//!     "base": ["hierarchy.chiplet.x=4", "hierarchy.chiplet.y=4"],
//!     "axes": [{"name": "noc", "points": [
//!         {"label": "32b", "set": ["noc.width_bits=32"]},
//!         {"label": "64b", "set": ["noc.width_bits=64"]}
//!     ]}],
//!     "apps": ["bfs"],
//!     "datasets": [{"rmat": {"scale": 5, "seed": 1}}]
//! }"#)?;
//! let dir = std::env::temp_dir().join("muchisim-dse-doc");
//! let path = dir.join("noc_width.jsonl");
//! # let _ = std::fs::remove_file(&path);
//! let mut store = JsonlStore::open(&path)?;
//! let outcome = BatchRunner::new(2).run_spec(&spec, &mut store)?;
//! assert_eq!(outcome.executed + outcome.skipped, 2);
//! let table = table_from_store(&store, &[])?;
//! assert_eq!(table.rows.len(), 2);
//! # let _ = std::fs::remove_dir_all(&dir);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod overrides;
mod report;
mod runner;
mod spec;
mod store;

pub use error::DseError;
pub use overrides::{
    apply_to_config, overrides_from_value, parse_assignment, parse_json_or_string, Override,
};
pub use report::{report_for, repriced_report_for, table_from_store};
pub use runner::{BatchOutcome, BatchRunner};
pub use spec::{slug, Axis, AxisPoint, DatasetSpec, ExperimentSpec, RunPoint};
pub use store::{JsonlStore, RunRecord};
