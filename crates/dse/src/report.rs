//! Aggregating a result store into report tables.
//!
//! Bridges the store to the existing [`muchisim_viz::ReportTable`]
//! machinery: rows are rebuilt from each record's stored configuration
//! and counters, in spec expansion order. Because the store keeps inputs
//! next to outputs, the same records can be *re-priced* — the energy/cost
//! post-processing re-run under overridden model parameters without
//! re-simulating (paper §III-E).

use crate::error::DseError;
use crate::overrides::{apply_to_config, Override};
use crate::store::{JsonlStore, RunRecord};
use muchisim_energy::Report;
use muchisim_viz::{ReportRow, ReportTable};

/// The energy/cost report of one record, under its stored parameters.
pub fn report_for(record: &RunRecord) -> Report {
    Report::from_counters(&record.config, &record.result.counters)
}

/// The energy/cost report of one record with `overrides` applied to its
/// stored configuration first — re-pricing without re-simulating.
///
/// # Errors
///
/// Returns [`DseError`] when an override does not apply cleanly.
pub fn repriced_report_for(record: &RunRecord, overrides: &[Override]) -> Result<Report, DseError> {
    let cfg = apply_to_config(&record.config, overrides)?;
    Ok(Report::from_counters(&cfg, &record.result.counters))
}

/// Builds the comparison table for a whole store, rows in spec expansion
/// order, with `overrides` (possibly empty) applied to every record's
/// configuration before the energy/cost post-processing.
///
/// # Errors
///
/// Returns [`DseError`] when an override does not apply cleanly.
pub fn table_from_store(
    store: &JsonlStore,
    overrides: &[Override],
) -> Result<ReportTable, DseError> {
    let mut table = ReportTable::new();
    for record in store.sorted_records() {
        let report = repriced_report_for(record, overrides)?;
        table.push(ReportRow::new(
            &record.config_label,
            &record.app,
            &record.dataset,
            &record.result,
            &report,
        ));
    }
    Ok(table)
}
