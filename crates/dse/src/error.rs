//! Errors of the design-space-exploration subsystem.

use muchisim_config::ConfigError;
use muchisim_core::SimError;
use std::fmt;

/// Why a sweep could not be specified, executed, or reported.
#[derive(Debug)]
pub enum DseError {
    /// The experiment spec is malformed (bad JSON, missing fields,
    /// unknown apps or dataset kinds, empty axes, ...).
    Spec(String),
    /// A parameter override could not be parsed or applied.
    Override(String),
    /// An overridden configuration failed [`muchisim_config`] validation.
    Config(ConfigError),
    /// A simulation failed to run.
    Sim(SimError),
    /// The result store could not be read or written.
    Store(String),
    /// A sweep point sets a single-writer host-side output option that
    /// cannot coexist with batch execution: concurrent points would
    /// clobber one shared file, and a checkpoint-resumed point would
    /// replay writes into it. Names the offending configuration key and
    /// the first run that sets it.
    ResumeIncompatible {
        /// The rejected configuration key (`"frame_spill"`, `"noc_trace"`,
        /// `"checkpoint_path"`, `"telemetry.metrics_path"` or
        /// `"telemetry.metrics_csv"`).
        key: &'static str,
        /// The run ID of the first point setting the key.
        run_id: String,
    },
    /// Reading or writing a file failed.
    Io(std::io::Error),
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::Spec(msg) => write!(f, "invalid experiment spec: {msg}"),
            DseError::Override(msg) => write!(f, "invalid parameter override: {msg}"),
            DseError::Config(e) => write!(f, "invalid configuration: {e}"),
            DseError::Sim(e) => write!(f, "simulation failed: {e}"),
            DseError::Store(msg) => write!(f, "result store error: {msg}"),
            DseError::ResumeIncompatible { key, run_id } => write!(
                f,
                "point `{run_id}` sets {key}, which is unsupported in sweeps \
                 (concurrent points would clobber one shared file, and a \
                 resumed point would replay writes into it); run it via \
                 `muchisim run`"
            ),
            DseError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for DseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DseError::Config(e) => Some(e),
            DseError::Sim(e) => Some(e),
            DseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for DseError {
    fn from(e: ConfigError) -> Self {
        DseError::Config(e)
    }
}

impl From<SimError> for DseError {
    fn from(e: SimError) -> Self {
        DseError::Sim(e)
    }
}

impl From<std::io::Error> for DseError {
    fn from(e: std::io::Error) -> Self {
        DseError::Io(e)
    }
}
