//! The parallel batch runner.
//!
//! Takes the expanded [`RunPoint`]s of a spec and executes the ones not
//! yet in the store, scheduling simulations concurrently over a
//! host-thread budget. Each distinct dataset is generated once and shared
//! across all its sweep points via `Arc<Csr>` — a sweep of N configs over
//! one graph holds one host copy, not N.
//!
//! Results stream into the [`JsonlStore`] as they complete, so an
//! interrupted sweep resumes where it stopped. Simulation results are
//! deterministic (see the leap/parallel determinism tests), so running
//! points concurrently and out of order changes nothing about the
//! reported numbers.
//!
//! With [`BatchRunner::with_checkpoint_every`], the store-level
//! resumability extends *into* each point: every simulation periodically
//! snapshots into `<store>.ckpt/<run_id>.ckpt` (see
//! `muchisim_core::snapshot`), a killed sweep resumes mid-point from the
//! latest snapshot, and each point's snapshot is deleted once its record
//! lands in the store. Checkpointing never changes reported numbers —
//! the checkpoint determinism suite pins the resumed half bit-for-bit.
//!
//! With [`BatchRunner::with_sample_every`], every point additionally
//! streams a live metrics sample each `sample_every` cycles into its own
//! `<store>.metrics/<run_id>.jsonl`, so an in-flight sweep can be watched
//! point by point (`tail -f`) instead of only at record granularity.
//! Points whose configs arm telemetry wards stay first-class sweep
//! subjects: a tripped ward is an *outcome*, not a batch failure — the
//! partial result inside the [`muchisim_core::WardReport`] is recorded
//! with `termination = "ward:<name>"` and the sweep continues.

use crate::error::DseError;
use crate::spec::{DatasetSpec, ExperimentSpec, RunPoint};
use crate::store::{JsonlStore, RunRecord};
use muchisim_apps::run_benchmark;
use muchisim_data::Csr;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// What a batch did: how many points ran, were skipped as already
/// complete, or failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchOutcome {
    /// Points simulated in this invocation.
    pub executed: usize,
    /// Points skipped because their run ID was already in the store.
    pub skipped: usize,
    /// Points whose result check failed — counting both fresh executions
    /// and failures already recorded in the store for skipped points, so
    /// a resumed sweep over bad data stays loud instead of going green.
    pub check_failures: usize,
    /// Points a telemetry ward terminated early (fresh executions plus
    /// ward records already in the store for skipped points). These are
    /// recorded outcomes, not failures: their partial results are in the
    /// store with `termination = "ward:<name>"`.
    pub ward_trips: usize,
}

/// A batch executor with a host-thread budget.
#[derive(Debug, Clone, Copy)]
pub struct BatchRunner {
    /// Total host threads the batch may use at once.
    pub host_threads: usize,
    /// When set, every point checkpoints its simulated state each
    /// `checkpoint_every` cycles into `<store>.ckpt/<run_id>.ckpt` and
    /// resumes from that snapshot if one is present, so a killed sweep
    /// loses at most `checkpoint_every` cycles of the points in flight.
    pub checkpoint_every: Option<u64>,
    /// When set, every point streams a metrics sample each `sample_every`
    /// cycles into `<store>.metrics/<run_id>.jsonl` — live per-point
    /// progress for an in-flight sweep. Sampling is pure observation:
    /// reported numbers are bit-identical either way.
    pub sample_every: Option<u64>,
}

impl BatchRunner {
    /// A runner budgeted to `host_threads` total threads, without
    /// mid-point checkpointing.
    pub fn new(host_threads: usize) -> Self {
        BatchRunner {
            host_threads: host_threads.max(1),
            checkpoint_every: None,
            sample_every: None,
        }
    }

    /// Enables mid-point checkpoint/resume: each point snapshots every
    /// `every` cycles (min 1) next to the store and resumes from its
    /// snapshot when one exists.
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = Some(every.max(1));
        self
    }

    /// Enables live per-point metrics: each point streams a sample every
    /// `every` cycles (min 1) into `<store>.metrics/<run_id>.jsonl`.
    pub fn with_sample_every(mut self, every: u64) -> Self {
        self.sample_every = Some(every.max(1));
        self
    }

    /// Expands and runs `spec`, streaming results into `store`.
    ///
    /// # Errors
    ///
    /// Propagates expansion errors and the first engine or store error
    /// (completed points remain in the store either way).
    pub fn run_spec(
        &self,
        spec: &ExperimentSpec,
        store: &mut JsonlStore,
    ) -> Result<BatchOutcome, DseError> {
        let points = spec.expand()?;
        self.run_points(&points, spec.threads_per_run, store)
    }

    /// Runs the `points` not yet in `store`, `threads_per_run` host
    /// threads each, at most `host_threads / threads_per_run` (min 1)
    /// simulations in flight.
    ///
    /// # Errors
    ///
    /// Returns the first engine or store error; completed points remain
    /// recorded.
    pub fn run_points(
        &self,
        points: &[RunPoint],
        threads_per_run: usize,
        store: &mut JsonlStore,
    ) -> Result<BatchOutcome, DseError> {
        let threads_per_run = threads_per_run.max(1);
        // single-writer host-side outputs cannot coexist with a batch:
        // frame spilling, NoC tracing and metrics streams truncate and
        // write one shared file per simulation (concurrent points would
        // interleave into the same path and silently corrupt it), and a
        // user-set checkpoint path would make every point resume from
        // whichever point snapshotted last — the runner derives its own
        // per-point paths instead
        for (key, hit) in [
            (
                "frame_spill",
                points.iter().find(|p| p.config.frame_spill.is_some()),
            ),
            (
                "noc_trace",
                points.iter().find(|p| p.config.noc_trace.is_some()),
            ),
            (
                "checkpoint_path",
                points.iter().find(|p| p.config.checkpoint_path.is_some()),
            ),
            (
                "telemetry.metrics_path",
                points
                    .iter()
                    .find(|p| p.config.telemetry.metrics_path.is_some()),
            ),
            (
                "telemetry.metrics_csv",
                points
                    .iter()
                    .find(|p| p.config.telemetry.metrics_csv.is_some()),
            ),
        ] {
            if let Some(point) = hit {
                return Err(DseError::ResumeIncompatible {
                    key,
                    run_id: point.run_id.clone(),
                });
            }
        }
        let done = store.completed_ids();
        let pending: Vec<&RunPoint> = points
            .iter()
            .filter(|p| !done.contains(&p.run_id))
            .collect();
        // failures recorded in a previous invocation, now being skipped
        let skipped_ids: std::collections::HashSet<&str> = points
            .iter()
            .filter(|p| done.contains(&p.run_id))
            .map(|p| p.run_id.as_str())
            .collect();
        // a ward-terminated record expectably fails the output check (the
        // run was cut short by design), so it counts as a ward trip, not
        // a check failure
        let stored_failures = store
            .records()
            .iter()
            .filter(|r| skipped_ids.contains(r.run_id.as_str()))
            .filter(|r| !r.result.termination_label().starts_with("ward:"))
            .filter(|r| r.result.check_error.is_some())
            .count();
        let stored_trips = store
            .records()
            .iter()
            .filter(|r| skipped_ids.contains(r.run_id.as_str()))
            .filter(|r| r.result.termination_label().starts_with("ward:"))
            .count();
        let mut outcome = BatchOutcome {
            executed: 0,
            skipped: points.len() - pending.len(),
            check_failures: stored_failures,
            ward_trips: stored_trips,
        };

        // Generate each distinct dataset once, shared by every point.
        let mut datasets: HashMap<DatasetSpec, Arc<Csr>> = HashMap::new();
        for point in &pending {
            datasets
                .entry(point.dataset.clone())
                .or_insert_with(|| Arc::new(point.dataset.generate()));
        }

        // per-point snapshots live next to the store, keyed by run ID,
        // so the two resume layers compose: completed points skip via
        // the store, the interrupted point resumes via its snapshot
        let ckpt_dir: Option<PathBuf> = self.checkpoint_every.map(|_| {
            let mut os = store.path().as_os_str().to_os_string();
            os.push(".ckpt");
            PathBuf::from(os)
        });

        // live per-point metrics streams live next to the store too, one
        // file per run ID — kept after completion (they are the record of
        // how the point got there), unlike the transient snapshots above
        let metrics_dir: Option<PathBuf> = self.sample_every.map(|_| {
            let mut os = store.path().as_os_str().to_os_string();
            os.push(".metrics");
            PathBuf::from(os)
        });
        if let Some(dir) = &metrics_dir {
            std::fs::create_dir_all(dir)?;
        }

        let slots = (self.host_threads / threads_per_run).clamp(1, pending.len().max(1));
        let queue = Mutex::new(pending.into_iter());
        let sink: Mutex<(&mut JsonlStore, Vec<DseError>, &mut BatchOutcome)> =
            Mutex::new((store, Vec::new(), &mut outcome));

        std::thread::scope(|scope| {
            for _ in 0..slots {
                scope.spawn(|| loop {
                    let Some(point) = queue.lock().expect("queue lock").next() else {
                        return;
                    };
                    let graph = Arc::clone(&datasets[&point.dataset]);
                    let mut cfg = point.config.clone();
                    let ckpt_path = ckpt_dir
                        .as_ref()
                        .map(|dir| dir.join(format!("{}.ckpt", point.run_id)));
                    if let Some(path) = &ckpt_path {
                        cfg.checkpoint_every = self.checkpoint_every;
                        cfg.checkpoint_path = Some(path.to_string_lossy().into_owned());
                        cfg.checkpoint_resume = true; // fresh start if absent
                    }
                    if let Some(dir) = &metrics_dir {
                        let path = dir.join(format!("{}.jsonl", point.run_id));
                        cfg.telemetry.sample_every = self.sample_every;
                        cfg.telemetry.metrics_path = Some(path.to_string_lossy().into_owned());
                    }
                    // a ward trip is a recorded outcome, not an engine
                    // failure: fold its partial result back into the Ok
                    // path (termination already says "ward:<name>")
                    let run = match run_benchmark(point.app, cfg, &graph, threads_per_run) {
                        Err(muchisim_core::SimError::Ward(report)) if report.partial.is_some() => {
                            Ok(*report.partial.expect("partial checked above"))
                        }
                        other => other,
                    };
                    if run.is_ok() {
                        if let Some(path) = &ckpt_path {
                            let _ = std::fs::remove_file(path);
                        }
                    }
                    let mut guard = sink.lock().expect("sink lock");
                    let (store, errors, outcome) = &mut *guard;
                    match run {
                        Ok(result) => {
                            outcome.executed += 1;
                            if result.termination_label().starts_with("ward:") {
                                outcome.ward_trips += 1;
                            } else if result.check_error.is_some() {
                                outcome.check_failures += 1;
                            }
                            let record = RunRecord {
                                run_id: point.run_id.clone(),
                                order: point.order,
                                config_label: point.config_label.clone(),
                                app: point.app.label().to_string(),
                                dataset: point.dataset.label(),
                                config: point.config.clone(),
                                result,
                            };
                            if let Err(e) = store.append(record) {
                                errors.push(e);
                                return; // a dead store poisons the batch
                            }
                        }
                        Err(e) => errors.push(e.into()),
                    }
                });
            }
        });

        // best-effort: gone entirely once the last point's snapshot is
        // deleted (remove_dir refuses a non-empty directory)
        if let Some(dir) = &ckpt_dir {
            let _ = std::fs::remove_dir(dir);
        }

        let (_, mut errors, _) = sink.into_inner().expect("sink lock");
        match errors.is_empty() {
            true => Ok(outcome),
            false => Err(errors.swap_remove(0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExperimentSpec;

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec::from_json(
            r#"{
                "name": "runner_test",
                "base": ["hierarchy.chiplet.x=4", "hierarchy.chiplet.y=4"],
                "axes": [{"name": "sram", "points": [
                    {"label": "64KiB", "set": ["sram_kib_per_tile=64"]},
                    {"label": "128KiB", "set": ["sram_kib_per_tile=128"]}
                ]}],
                "apps": ["bfs", "histo"],
                "datasets": [{"rmat": {"scale": 5, "seed": 7}}]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn batch_runs_all_points_then_resumes_with_skips() {
        let dir = std::env::temp_dir().join(format!("muchisim-dse-{}", std::process::id()));
        let path = dir.join("runner_test.jsonl");
        let _ = std::fs::remove_file(&path);

        let spec = tiny_spec();
        let mut store = JsonlStore::open(&path).unwrap();
        let outcome = BatchRunner::new(4).run_spec(&spec, &mut store).unwrap();
        assert_eq!(outcome.executed, 4);
        assert_eq!(outcome.skipped, 0);
        assert_eq!(outcome.check_failures, 0);
        assert_eq!(store.records().len(), 4);

        // a second invocation over the same store runs nothing
        let mut reopened = JsonlStore::open(&path).unwrap();
        assert_eq!(reopened.records().len(), 4);
        let outcome2 = BatchRunner::new(4).run_spec(&spec, &mut reopened).unwrap();
        assert_eq!(outcome2.executed, 0);
        assert_eq!(outcome2.skipped, 4);

        // concurrent execution reported the same numbers as serial
        let serial_path = dir.join("runner_test_serial.jsonl");
        let _ = std::fs::remove_file(&serial_path);
        let mut serial = JsonlStore::open(&serial_path).unwrap();
        BatchRunner::new(1).run_spec(&spec, &mut serial).unwrap();
        for (a, b) in serial
            .sorted_records()
            .iter()
            .zip(reopened.sorted_records())
        {
            assert_eq!(a.run_id, b.run_id);
            assert_eq!(a.result.runtime_cycles, b.result.runtime_cycles);
            assert_eq!(a.result.counters, b.result.counters);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn frame_spill_points_are_rejected() {
        let spec = ExperimentSpec::from_json(
            r#"{
                "name": "spill_reject",
                "base": ["hierarchy.chiplet.x=2", "hierarchy.chiplet.y=2",
                         "frame_spill=\"/tmp/shared.jsonl\""],
                "axes": [{"name": "sram", "points": [
                    {"label": "64KiB", "set": ["sram_kib_per_tile=64"]},
                    {"label": "128KiB", "set": ["sram_kib_per_tile=128"]}
                ]}],
                "apps": ["bfs"],
                "datasets": [{"rmat": {"scale": 5, "seed": 7}}]
            }"#,
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!("muchisim-dse-spill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spill_reject.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut store = JsonlStore::open(&path).unwrap();
        let err = BatchRunner::new(2).run_spec(&spec, &mut store).unwrap_err();
        assert!(
            matches!(
                err,
                DseError::ResumeIncompatible {
                    key: "frame_spill",
                    ..
                }
            ),
            "wrong variant: {err:?}"
        );
        assert!(
            err.to_string().contains("frame_spill"),
            "unexpected error: {err}"
        );
        assert!(store.records().is_empty(), "nothing may have run");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn noc_trace_points_are_rejected() {
        let spec = ExperimentSpec::from_json(
            r#"{
                "name": "trace_reject",
                "base": ["hierarchy.chiplet.x=2", "hierarchy.chiplet.y=2",
                         "noc_trace=\"/tmp/shared.trace.jsonl\""],
                "apps": ["bfs"],
                "datasets": [{"rmat": {"scale": 5, "seed": 7}}]
            }"#,
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!("muchisim-dse-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace_reject.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut store = JsonlStore::open(&path).unwrap();
        let err = BatchRunner::new(2).run_spec(&spec, &mut store).unwrap_err();
        assert!(
            matches!(
                err,
                DseError::ResumeIncompatible {
                    key: "noc_trace",
                    ..
                }
            ),
            "wrong variant: {err:?}"
        );
        assert!(
            err.to_string().contains("noc_trace"),
            "unexpected error: {err}"
        );
        assert!(store.records().is_empty(), "nothing may have run");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn user_set_checkpoint_path_points_are_rejected() {
        // the runner derives per-point snapshot paths itself; a shared
        // user-set path would make every point resume from whichever
        // point snapshotted last
        let spec = ExperimentSpec::from_json(
            r#"{
                "name": "ckpt_reject",
                "base": ["hierarchy.chiplet.x=2", "hierarchy.chiplet.y=2",
                         "checkpoint_path=\"/tmp/shared.snap\"",
                         "checkpoint_every=1000"],
                "apps": ["bfs"],
                "datasets": [{"rmat": {"scale": 5, "seed": 7}}]
            }"#,
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!("muchisim-dse-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt_reject.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut store = JsonlStore::open(&path).unwrap();
        let err = BatchRunner::new(2).run_spec(&spec, &mut store).unwrap_err();
        assert!(
            matches!(
                err,
                DseError::ResumeIncompatible {
                    key: "checkpoint_path",
                    ..
                }
            ),
            "wrong variant: {err:?}"
        );
        assert!(
            err.to_string().contains("checkpoint_path"),
            "unexpected error: {err}"
        );
        assert!(store.records().is_empty(), "nothing may have run");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_batch_resumes_mid_point_and_cleans_up() {
        let dir =
            std::env::temp_dir().join(format!("muchisim-dse-midpoint-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = tiny_spec();
        let points = spec.expand().unwrap();

        // the reference: the same sweep without any checkpointing
        let plain_path = dir.join("plain.jsonl");
        let _ = std::fs::remove_file(&plain_path);
        let mut plain = JsonlStore::open(&plain_path).unwrap();
        BatchRunner::new(2).run_spec(&spec, &mut plain).unwrap();

        // simulate a sweep killed mid-point: seed the first point's
        // derived snapshot path with a half-run checkpoint, exactly what
        // an interrupted checkpointing batch leaves behind
        let store_path = dir.join("ckpt.jsonl");
        let _ = std::fs::remove_file(&store_path);
        let ckpt_dir = dir.join("ckpt.jsonl.ckpt");
        let graph = Arc::new(points[0].dataset.generate());
        let probe = run_benchmark(
            points[0].app,
            points[0].config.clone(),
            &graph,
            spec.threads_per_run,
        )
        .unwrap();
        let seeded = ckpt_dir.join(format!("{}.ckpt", points[0].run_id));
        let mut half = points[0].config.clone();
        half.checkpoint_path = Some(seeded.to_string_lossy().into_owned());
        half.checkpoint_every = Some((probe.runtime_cycles / 2).max(1));
        run_benchmark(points[0].app, half, &graph, spec.threads_per_run).unwrap();
        assert!(seeded.exists(), "seeding left no snapshot");

        // the checkpointing batch resumes that point from its snapshot
        // (and fresh-starts the rest), reporting numbers identical to
        // the plain sweep
        let mut store = JsonlStore::open(&store_path).unwrap();
        let outcome = BatchRunner::new(2)
            .with_checkpoint_every(500)
            .run_spec(&spec, &mut store)
            .unwrap();
        assert_eq!(outcome.executed, points.len());
        assert_eq!(outcome.check_failures, 0);
        for (a, b) in plain.sorted_records().iter().zip(store.sorted_records()) {
            assert_eq!(a.run_id, b.run_id);
            assert_eq!(a.result.runtime_cycles, b.result.runtime_cycles);
            assert_eq!(a.result.counters, b.result.counters);
        }
        // every per-point snapshot was deleted on completion, and the
        // emptied snapshot directory with it
        assert!(!seeded.exists(), "completed point left its snapshot");
        assert!(!ckpt_dir.exists(), "empty snapshot directory survived");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traffic_rate_axis_sweeps_through_the_batch_runner() {
        // the tentpole promise: synthetic traffic is a first-class sweep
        // subject — pattern via the app axis, rate via string overrides
        let spec = ExperimentSpec::from_json(
            r#"{
                "name": "traffic_axis",
                "base": ["hierarchy.chiplet.x=4", "hierarchy.chiplet.y=4",
                         "traffic.cycles=200"],
                "axes": [{"name": "load", "points": [
                    {"label": "r0.02", "set": ["traffic.rate=0.02"]},
                    {"label": "r0.10", "set": ["traffic.rate=0.10"]}
                ]}],
                "apps": ["traf-uniform", "traf-transpose"],
                "datasets": [{"rmat": {"scale": 4, "seed": 1}}]
            }"#,
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!("muchisim-dse-traf-{}", std::process::id()));
        let path = dir.join("traffic_axis.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut store = JsonlStore::open(&path).unwrap();
        let outcome = BatchRunner::new(2).run_spec(&spec, &mut store).unwrap();
        assert_eq!(outcome.executed, 4);
        assert_eq!(outcome.check_failures, 0);
        let low: u64 = store
            .records()
            .iter()
            .filter(|r| r.config_label == "r0.02")
            .map(|r| r.result.counters.noc.injected)
            .sum();
        let high: u64 = store
            .records()
            .iter()
            .filter(|r| r.config_label == "r0.10")
            .map(|r| r.result.counters.noc.injected)
            .sum();
        assert!(
            high > 2 * low,
            "5x the rate must inject well over 2x the packets ({low} vs {high})"
        );
        assert!(store
            .records()
            .iter()
            .all(|r| r.result.noc_latency.count == r.result.counters.noc.ejected));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_path_points_are_rejected() {
        // per-point metrics streams are the runner's job (one file per
        // run ID); a user-set shared stream path would interleave points
        let spec = ExperimentSpec::from_json(
            r#"{
                "name": "metrics_reject",
                "base": ["hierarchy.chiplet.x=2", "hierarchy.chiplet.y=2",
                         "telemetry.sample_every=64",
                         "telemetry.metrics_path=\"/tmp/shared.metrics.jsonl\""],
                "apps": ["bfs"],
                "datasets": [{"rmat": {"scale": 5, "seed": 7}}]
            }"#,
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!("muchisim-dse-mreject-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics_reject.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut store = JsonlStore::open(&path).unwrap();
        let err = BatchRunner::new(2).run_spec(&spec, &mut store).unwrap_err();
        assert!(
            matches!(
                err,
                DseError::ResumeIncompatible {
                    key: "telemetry.metrics_path",
                    ..
                }
            ),
            "wrong variant: {err:?}"
        );
        assert!(store.records().is_empty(), "nothing may have run");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sampling_batch_streams_per_point_metrics_without_perturbing_results() {
        let dir = std::env::temp_dir().join(format!("muchisim-dse-metrics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = tiny_spec();
        let points = spec.expand().unwrap();

        // reference sweep without sampling
        let plain_path = dir.join("plain.jsonl");
        let _ = std::fs::remove_file(&plain_path);
        let mut plain = JsonlStore::open(&plain_path).unwrap();
        BatchRunner::new(2).run_spec(&spec, &mut plain).unwrap();

        let store_path = dir.join("sampled.jsonl");
        let _ = std::fs::remove_file(&store_path);
        let metrics_dir = dir.join("sampled.jsonl.metrics");
        let _ = std::fs::remove_dir_all(&metrics_dir);
        let mut store = JsonlStore::open(&store_path).unwrap();
        let outcome = BatchRunner::new(2)
            .with_sample_every(64)
            .run_spec(&spec, &mut store)
            .unwrap();
        assert_eq!(outcome.executed, points.len());
        assert_eq!(outcome.ward_trips, 0);

        // every point streamed its own JSONL metrics file...
        for point in &points {
            let stream = metrics_dir.join(format!("{}.jsonl", point.run_id));
            let text = std::fs::read_to_string(&stream)
                .unwrap_or_else(|e| panic!("missing metrics stream {}: {e}", stream.display()));
            assert!(
                text.lines().count() >= 1,
                "empty metrics stream for {}",
                point.run_id
            );
            assert!(text.lines().all(|l| l.starts_with("{\"v\":")));
        }
        // ...and sampling changed nothing about the reported numbers
        for (a, b) in plain.sorted_records().iter().zip(store.sorted_records()) {
            assert_eq!(a.run_id, b.run_id);
            assert_eq!(a.result.runtime_cycles, b.result.runtime_cycles);
            assert_eq!(a.result.counters, b.result.counters);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ward_tripped_points_are_recorded_outcomes_not_batch_failures() {
        // one axis point arms an impossibly tight cycle budget: that
        // point must land in the store as termination "ward:max_cycles"
        // with its partial result, while the untripped point completes
        let spec = ExperimentSpec::from_json(
            r#"{
                "name": "ward_axis",
                "base": ["hierarchy.chiplet.x=4", "hierarchy.chiplet.y=4",
                         "telemetry.sample_every=32"],
                "axes": [{"name": "budget", "points": [
                    {"label": "unbounded", "set": []},
                    {"label": "tight", "set": ["telemetry.wards.max_cycles=64"]}
                ]}],
                "apps": ["bfs"],
                "datasets": [{"rmat": {"scale": 5, "seed": 7}}]
            }"#,
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!("muchisim-dse-ward-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ward_axis.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut store = JsonlStore::open(&path).unwrap();
        let outcome = BatchRunner::new(2).run_spec(&spec, &mut store).unwrap();
        assert_eq!(outcome.executed, 2);
        assert_eq!(outcome.ward_trips, 1);
        assert_eq!(
            outcome.check_failures, 0,
            "a deliberate ward trip is not a check failure"
        );
        let records = store.sorted_records();
        assert_eq!(records.len(), 2);
        let tripped = records
            .iter()
            .find(|r| r.config_label == "tight")
            .expect("tight point recorded");
        assert_eq!(tripped.result.termination_label(), "ward:max_cycles");
        let done = records
            .iter()
            .find(|r| r.config_label == "unbounded")
            .expect("unbounded point recorded");
        assert_eq!(done.result.termination_label(), "finished");
        assert!(done.result.check_error.is_none());
        assert!(
            tripped.result.runtime_cycles < done.result.runtime_cycles,
            "the warded point must have been cut short ({} vs {})",
            tripped.result.runtime_cycles,
            done.result.runtime_cycles
        );

        // resuming over the same store re-counts the stored trip without
        // re-running anything — the fleet view stays truthful
        let mut reopened = JsonlStore::open(&path).unwrap();
        let outcome2 = BatchRunner::new(2).run_spec(&spec, &mut reopened).unwrap();
        assert_eq!(outcome2.executed, 0);
        assert_eq!(outcome2.skipped, 2);
        assert_eq!(outcome2.ward_trips, 1);
        assert_eq!(outcome2.check_failures, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stored_check_failures_stay_loud_on_resume() {
        let dir = std::env::temp_dir().join(format!("muchisim-dse-fail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("failed.jsonl");
        let _ = std::fs::remove_file(&path);

        let spec = tiny_spec();
        let points = spec.expand().unwrap();

        // a previous invocation recorded a run whose check failed
        let mut store = JsonlStore::open(&path).unwrap();
        let mut failed = crate::store::tests::record(&points[0].run_id, points[0].order, None);
        failed.result.check_error = Some("mismatch at vertex 3".to_string());
        store.append(failed).unwrap();

        // resuming executes only the other points, but the stored
        // failure still counts — the sweep must not go green
        let outcome = BatchRunner::new(4)
            .run_points(&points, spec.threads_per_run, &mut store)
            .unwrap();
        assert_eq!(outcome.executed, points.len() - 1);
        assert_eq!(outcome.skipped, 1);
        assert_eq!(outcome.check_failures, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
