//! The resumable JSONL result store.
//!
//! Every completed simulation of a sweep appends one self-contained JSON
//! line: identity, the full resolved [`SystemConfig`] and the complete
//! [`SimResult`] (counters included). Storing the inputs with the outputs
//! is what makes the paper's decoupled workflow possible — a store can be
//! re-reported or re-priced under different model parameters without
//! re-simulating — and storing one line per run is what makes sweeps
//! resumable: re-running a sweep skips run IDs already on disk.

use crate::error::DseError;
use muchisim_config::SystemConfig;
use muchisim_core::SimResult;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

/// One completed sweep run: identity + inputs + outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Stable run ID (see [`crate::RunPoint::run_id`]).
    pub run_id: String,
    /// Expansion-order index, so reports print in spec order no matter
    /// which worker finished first.
    pub order: u64,
    /// The report's "config" column label.
    pub config_label: String,
    /// Application label (e.g. `"BFS"`).
    pub app: String,
    /// Dataset label (e.g. `"RMAT-11"`).
    pub dataset: String,
    /// The fully resolved configuration the run used.
    pub config: SystemConfig,
    /// The simulation result, counters and all.
    pub result: SimResult,
}

/// An append-only JSONL store of [`RunRecord`]s.
#[derive(Debug)]
pub struct JsonlStore {
    path: PathBuf,
    records: Vec<RunRecord>,
}

impl JsonlStore {
    /// Opens (or prepares to create) the store at `path`, loading any
    /// records already present.
    ///
    /// A final line that fails to parse is treated as a crash-truncated
    /// append: it is dropped with a warning to stderr and the file is
    /// truncated back to the last valid record, so the next append starts
    /// on a clean boundary instead of concatenating onto the garbage. A
    /// malformed line anywhere else is an error.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Io`] when the file exists but cannot be read
    /// and [`DseError::Store`] on malformed content.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, DseError> {
        let path = path.into();
        let mut records = Vec::new();
        if path.exists() {
            let text = std::fs::read_to_string(&path)?;
            // byte length of the leading well-formed prefix (whole lines,
            // newline included)
            let mut valid_len = 0u64;
            let lines: Vec<&str> = text.lines().collect();
            let last_nonempty = lines.iter().rposition(|line| !line.trim().is_empty());
            for (i, line) in lines.iter().enumerate() {
                let line_bytes = line.len() as u64 + 1; // '\n' (absent on a truncated tail)
                if line.trim().is_empty() {
                    valid_len += line_bytes;
                    continue;
                }
                match serde_json::from_str::<RunRecord>(line) {
                    Ok(rec) => {
                        records.push(rec);
                        valid_len += line_bytes;
                    }
                    Err(e) if Some(i) == last_nonempty => {
                        eprintln!(
                            "warning: dropping truncated final record in {} ({e})",
                            path.display()
                        );
                        let file = OpenOptions::new().write(true).open(&path)?;
                        file.set_len(valid_len.min(text.len() as u64))?;
                        file.sync_all()?;
                        break;
                    }
                    Err(e) => {
                        return Err(DseError::Store(format!(
                            "{} line {}: {e}",
                            path.display(),
                            i + 1
                        )));
                    }
                }
            }
        }
        Ok(JsonlStore { path, records })
    }

    /// The store's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// All records, in file order.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// The run IDs already completed.
    pub fn completed_ids(&self) -> HashSet<String> {
        self.records.iter().map(|r| r.run_id.clone()).collect()
    }

    /// Appends one record to the file (creating it and parent directories
    /// on first write) and to the in-memory view.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Io`] / [`DseError::Store`] when the record
    /// cannot be serialized or written.
    pub fn append(&mut self, record: RunRecord) -> Result<(), DseError> {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut line = serde_json::to_string(&record)
            .map_err(|e| DseError::Store(format!("serializing record: {e}")))?;
        // one write for line + newline: a crash can leave a truncated
        // line (which open() repairs) but never a complete record missing
        // its terminator, which a later append would corrupt
        line.push('\n');
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(line.as_bytes())?;
        file.flush()?;
        self.records.push(record);
        Ok(())
    }

    /// Records sorted into expansion order (then run ID, for stability
    /// across stores that merged several sweeps).
    pub fn sorted_records(&self) -> Vec<&RunRecord> {
        let mut out: Vec<&RunRecord> = self.records.iter().collect();
        out.sort_by(|a, b| a.order.cmp(&b.order).then_with(|| a.run_id.cmp(&b.run_id)));
        out
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use muchisim_config::TimePs;
    use muchisim_core::{FrameLog, SimCounters};

    pub(crate) fn record(run_id: &str, order: u64, check_error: Option<&str>) -> RunRecord {
        RunRecord {
            run_id: run_id.to_string(),
            order,
            config_label: "cfg".to_string(),
            app: "BFS".to_string(),
            dataset: "RMAT-5".to_string(),
            config: SystemConfig::default(),
            result: SimResult {
                runtime_cycles: 1,
                runtime: TimePs::ps(1.0),
                counters: SimCounters::default(),
                frames: FrameLog::default(),
                noc_latency: muchisim_core::LatencyStats::default(),
                host_seconds: 0.0,
                host_phase_ns: muchisim_core::HostPhaseNs::default(),
                host_threads: 1,
                total_tiles: 1,
                host_state_bytes: 0,
                check_error: check_error.map(str::to_string),
                column_activity: Vec::new(),
                termination: "finished".to_string(),
            },
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("muchisim-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn append_reload_round_trip() {
        let path = temp_path("round_trip.jsonl");
        let mut store = JsonlStore::open(&path).unwrap();
        store.append(record("a", 0, None)).unwrap();
        store.append(record("b", 1, Some("bad"))).unwrap();
        let reloaded = JsonlStore::open(&path).unwrap();
        assert_eq!(reloaded.records(), store.records());
        assert!(reloaded.completed_ids().contains("a"));
        assert_eq!(
            reloaded.records()[1].result.check_error.as_deref(),
            Some("bad")
        );
    }

    #[test]
    fn crash_truncated_tail_is_cut_so_appends_stay_parseable() {
        let path = temp_path("truncated.jsonl");
        let mut store = JsonlStore::open(&path).unwrap();
        store.append(record("a", 0, None)).unwrap();
        // simulate a crash mid-append: a partial record with no newline
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"run_id\":\"parti").unwrap();
        }
        // reopening drops the garbage AND truncates the file...
        let mut resumed = JsonlStore::open(&path).unwrap();
        assert_eq!(resumed.records().len(), 1);
        // ...so the next append lands on a clean line boundary
        resumed.append(record("b", 1, None)).unwrap();
        let reloaded = JsonlStore::open(&path).unwrap();
        assert_eq!(reloaded.records().len(), 2);
        assert_eq!(reloaded.records()[1].run_id, "b");
    }

    #[test]
    fn malformed_middle_line_is_an_error() {
        let path = temp_path("corrupt.jsonl");
        let line = serde_json::to_string(&record("a", 0, None)).unwrap();
        // a garbage line *followed by* a valid record is corruption, not
        // a crash-truncated tail
        std::fs::write(&path, format!("not json\n{line}\n")).unwrap();
        let err = JsonlStore::open(&path).unwrap_err();
        assert!(matches!(err, DseError::Store(_)), "{err:?}");
    }
}
