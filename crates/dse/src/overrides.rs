//! String-keyed configuration overrides.
//!
//! A sweep axis perturbs a [`SystemConfig`] through *assignments* like
//! `sram_kib_per_tile=64` or `noc.width_bits=32`: a dot-separated path
//! into the config's serialized field tree and a JSON value. The same
//! mechanism backs JSON spec files (where an override set is an object
//! mapping paths to values) and CLI `--set` flags (where it is the
//! `key=value` string form), so every parameter that serde can see is
//! sweepable without bespoke builder code.
//!
//! Paths are validated against the actual field tree: assigning to a key
//! that does not exist is an error (with the available keys listed), not
//! a silent no-op, and the rebuilt configuration is re-validated by
//! [`SystemConfig::validate`].

use crate::error::DseError;
use muchisim_config::SystemConfig;
use serde::value::Value;
use serde::{Deserialize, Serialize};

/// One parameter override: a dot-separated field path and the JSON value
/// to store there.
pub type Override = (String, Value);

/// Parses `key=value` into an [`Override`].
///
/// The value is interpreted as JSON when it parses as JSON (`64`, `true`,
/// `[1,0]`, `{"Dram":{...}}`) and as a bare string otherwise (`Mesh`,
/// `Scratchpad`), so enum variant names do not need shell-hostile quotes.
///
/// # Errors
///
/// Returns [`DseError::Override`] when the `key=` part is missing or
/// empty.
pub fn parse_assignment(text: &str) -> Result<Override, DseError> {
    let Some((key, value)) = text.split_once('=') else {
        return Err(DseError::Override(format!(
            "`{text}` is not of the form key=value"
        )));
    };
    let key = key.trim();
    if key.is_empty() {
        return Err(DseError::Override(format!("`{text}` has an empty key")));
    }
    Ok((key.to_string(), parse_json_or_string(value.trim())))
}

/// Parses `text` as a JSON value, falling back to a plain string.
pub fn parse_json_or_string(text: &str) -> Value {
    serde_json::from_str::<Value>(text).unwrap_or_else(|_| Value::String(text.to_string()))
}

/// Converts a spec-file override set into a list of [`Override`]s.
///
/// Accepts either an array of `"key=value"` strings or an object whose
/// keys are dot-separated paths (`{"sram_kib_per_tile": 64}`); `null`
/// means no overrides.
///
/// # Errors
///
/// Returns [`DseError::Override`] for any other JSON shape or an
/// unparseable assignment string.
pub fn overrides_from_value(value: &Value) -> Result<Vec<Override>, DseError> {
    match value {
        Value::Null => Ok(Vec::new()),
        Value::Array(items) => items
            .iter()
            .map(|item| match item {
                Value::String(s) => parse_assignment(s),
                other => Err(DseError::Override(format!(
                    "override list entries must be \"key=value\" strings, got {}",
                    other.kind()
                ))),
            })
            .collect(),
        Value::Object(map) => Ok(map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()),
        other => Err(DseError::Override(format!(
            "an override set must be an array of \"key=value\" strings or an object, got {}",
            other.kind()
        ))),
    }
}

/// Applies `overrides` to `cfg`, returning the rebuilt, re-validated
/// configuration.
///
/// # Errors
///
/// Returns [`DseError::Override`] for unknown paths or type-mismatched
/// values and [`DseError::Config`] when the resulting configuration fails
/// validation.
pub fn apply_to_config(
    cfg: &SystemConfig,
    overrides: &[Override],
) -> Result<SystemConfig, DseError> {
    let mut tree = cfg.to_value();
    for (path, value) in overrides {
        set_path(&mut tree, path, value.clone())?;
    }
    let rebuilt = SystemConfig::from_value(&tree)
        .map_err(|e| DseError::Override(format!("overridden config does not deserialize: {e}")))?;
    rebuilt.validate()?;
    Ok(rebuilt)
}

/// Stores `value` at the dot-separated `path` inside `root`, rejecting
/// paths that do not name an existing field.
fn set_path(root: &mut Value, path: &str, value: Value) -> Result<(), DseError> {
    let parts: Vec<&str> = path.split('.').collect();
    if parts.iter().any(|p| p.is_empty()) {
        return Err(DseError::Override(format!("`{path}` has an empty segment")));
    }
    let (last, dirs) = parts.split_last().expect("split produces >= 1 part");
    let mut cursor = root;
    for (i, part) in dirs.iter().enumerate() {
        cursor = descend(cursor, part, &parts[..=i], path)?;
    }
    let Value::Object(map) = cursor else {
        return Err(DseError::Override(format!(
            "`{}` is not a parameter object (while setting `{path}`)",
            dirs.join(".")
        )));
    };
    let Some(slot) = map.get_mut(last) else {
        return Err(unknown_key(map, last, path));
    };
    *slot = value;
    Ok(())
}

fn descend<'a>(
    cursor: &'a mut Value,
    part: &str,
    walked: &[&str],
    path: &str,
) -> Result<&'a mut Value, DseError> {
    let Value::Object(map) = cursor else {
        return Err(DseError::Override(format!(
            "`{}` is not a parameter object (while setting `{path}`); \
             assign a whole JSON value to it instead",
            walked[..walked.len() - 1].join(".")
        )));
    };
    if map.get(part).is_none() {
        return Err(unknown_key(map, part, path));
    }
    Ok(map.get_mut(part).expect("presence just checked"))
}

fn unknown_key(map: &serde::value::Map, key: &str, path: &str) -> DseError {
    let known: Vec<&str> = map.keys().map(String::as_str).collect();
    DseError::Override(format!(
        "unknown parameter `{key}` in `{path}`; known keys here: {}",
        known.join(", ")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use muchisim_config::{DramConfig, MemoryConfig, NocTopology, SchedulingPolicy};

    #[test]
    fn assignment_parses_numbers_strings_and_json() {
        let (k, v) = parse_assignment("sram_kib_per_tile=64").unwrap();
        assert_eq!(k, "sram_kib_per_tile");
        assert_eq!(v.as_u64(), Some(64));
        let (_, v) = parse_assignment("noc.topology=FoldedTorus").unwrap();
        assert_eq!(v.as_str(), Some("FoldedTorus"));
        let (_, v) = parse_assignment("time_leap=false").unwrap();
        assert_eq!(v, Value::Bool(false));
        let (_, v) = parse_assignment("scheduling={\"Priority\": [1, 0]}").unwrap();
        assert!(v.as_object().is_some());
        assert!(parse_assignment("no_equals_sign").is_err());
        assert!(parse_assignment("=64").is_err());
    }

    #[test]
    fn overrides_change_nested_fields() {
        let cfg = SystemConfig::default();
        let out = apply_to_config(
            &cfg,
            &[
                parse_assignment("sram_kib_per_tile=64").unwrap(),
                parse_assignment("noc.width_bits=32").unwrap(),
                parse_assignment("noc.topology=FoldedTorus").unwrap(),
                parse_assignment("hierarchy.chiplet.x=16").unwrap(),
                parse_assignment("hierarchy.chiplet.y=16").unwrap(),
                parse_assignment("params.cost.hbm_usd_per_gb=3.0").unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(out.sram_kib_per_tile, 64);
        assert_eq!(out.noc.width_bits, 32);
        assert_eq!(out.noc.topology, NocTopology::FoldedTorus);
        assert_eq!(out.total_tiles(), 256);
        assert_eq!(out.params.cost.hbm_usd_per_gb, 3.0);
        // untouched fields keep their defaults
        assert_eq!(out.queues, cfg.queues);
    }

    #[test]
    fn enum_variants_assign_by_name_or_json() {
        let cfg = SystemConfig::default();
        let dram = serde::Serialize::to_value(&MemoryConfig::Dram(DramConfig::default()));
        let out = apply_to_config(&cfg, &[("memory".to_string(), dram)]).unwrap();
        assert!(out.memory.has_dram());
        // ...and back to the unit variant by bare name
        let out2 =
            apply_to_config(&out, &[parse_assignment("memory=Scratchpad").unwrap()]).unwrap();
        assert_eq!(out2.memory, MemoryConfig::Scratchpad);
        // tuple variant through JSON
        let out3 = apply_to_config(
            &cfg,
            &[parse_assignment("scheduling={\"Priority\": [1, 0]}").unwrap()],
        )
        .unwrap();
        assert_eq!(out3.scheduling, SchedulingPolicy::Priority(vec![1, 0]));
    }

    #[test]
    fn unknown_keys_rejected_at_every_depth() {
        let cfg = SystemConfig::default();
        let top = apply_to_config(&cfg, &[parse_assignment("sram_kb=1").unwrap()]);
        assert!(matches!(top, Err(DseError::Override(_))), "{top:?}");
        let msg = top.unwrap_err().to_string();
        assert!(msg.contains("unknown parameter `sram_kb`"), "{msg}");
        assert!(
            msg.contains("sram_kib_per_tile"),
            "should list known keys: {msg}"
        );
        let nested = apply_to_config(&cfg, &[parse_assignment("noc.width=32").unwrap()]);
        assert!(nested.is_err());
        let deep = apply_to_config(&cfg, &[parse_assignment("params.nope.x=1").unwrap()]);
        assert!(deep.is_err());
    }

    #[test]
    fn type_mismatch_and_invalid_configs_rejected() {
        let cfg = SystemConfig::default();
        let bad_type =
            apply_to_config(&cfg, &[parse_assignment("sram_kib_per_tile=lots").unwrap()]);
        assert!(
            matches!(bad_type, Err(DseError::Override(_))),
            "{bad_type:?}"
        );
        // deserializes fine but fails validation (width not multiple of 8)
        let invalid = apply_to_config(&cfg, &[parse_assignment("noc.width_bits=12").unwrap()]);
        assert!(matches!(invalid, Err(DseError::Config(_))), "{invalid:?}");
    }

    #[test]
    fn builder_json_override_round_trip_stays_equal() {
        // builder -> JSON -> deserialize -> equal, and an override pass
        // with no overrides is the identity
        let cfg = SystemConfig::builder()
            .chiplet_tiles(8, 8)
            .package_chiplets(2, 2)
            .sram_kib_per_tile(64)
            .dram(DramConfig::default())
            .build()
            .unwrap();
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        let back: SystemConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
        assert_eq!(apply_to_config(&cfg, &[]).unwrap(), cfg);
    }

    #[test]
    fn override_set_shapes() {
        let from_list: Value =
            serde_json::from_str(r#"["sram_kib_per_tile=8", "noc.width_bits=32"]"#).unwrap();
        let ovs = overrides_from_value(&from_list).unwrap();
        assert_eq!(ovs.len(), 2);
        let from_obj: Value =
            serde_json::from_str(r#"{"sram_kib_per_tile": 8, "noc.width_bits": 32}"#).unwrap();
        let ovs2 = overrides_from_value(&from_obj).unwrap();
        assert_eq!(ovs, ovs2);
        assert!(overrides_from_value(&Value::Bool(true)).is_err());
        assert_eq!(overrides_from_value(&Value::Null).unwrap(), Vec::new());
    }
}
