//! Declarative experiment specifications.
//!
//! An [`ExperimentSpec`] is the paper's case-study workflow as data: a
//! base configuration, named *axes* of configuration overrides, a list of
//! applications and a list of datasets. Expanding the spec takes the
//! cartesian product of the axes and crosses it with datasets × apps,
//! yielding deterministic [`RunPoint`]s whose run IDs are stable across
//! invocations — the key to resumable sweeps.

use crate::error::DseError;
use crate::overrides::{apply_to_config, overrides_from_value, Override};
use muchisim_apps::Benchmark;
use muchisim_config::SystemConfig;
use muchisim_data::rmat::RmatConfig;
use muchisim_data::synthetic::{grid_2d, uniform_random};
use muchisim_data::Csr;
use serde::value::Value;
use std::collections::HashSet;

/// A dataset an experiment runs on, described by generator parameters so
/// it can be regenerated deterministically on any host.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DatasetSpec {
    /// Graph500-style RMAT graph: `2^scale` vertices, `16·2^scale` edges.
    Rmat {
        /// log2 of the vertex count.
        scale: u32,
        /// Generator seed.
        seed: u64,
    },
    /// A 2D grid graph (the sparse-frontier extreme).
    Grid {
        /// Grid width in vertices.
        width: u32,
        /// Grid height in vertices.
        height: u32,
    },
    /// A uniformly random graph.
    Uniform {
        /// Vertex count.
        vertices: u32,
        /// Edge count.
        edges: u64,
        /// Generator seed.
        seed: u64,
    },
}

impl DatasetSpec {
    /// The dataset label used in reports (e.g. `"RMAT-11"`), following
    /// the paper's naming. Deliberately omits the seed — run identity
    /// uses [`DatasetSpec::id`], which includes every generator
    /// parameter.
    pub fn label(&self) -> String {
        match self {
            DatasetSpec::Rmat { scale, .. } => format!("RMAT-{scale}"),
            DatasetSpec::Grid { width, height } => format!("GRID-{width}x{height}"),
            DatasetSpec::Uniform {
                vertices, edges, ..
            } => format!("UNI-{vertices}v{edges}e"),
        }
    }

    /// A fully discriminating identifier: every generator parameter,
    /// seed included, so two datasets differing only in seed never
    /// collide on run IDs (seed sweeps are a supported axis).
    pub fn id(&self) -> String {
        match self {
            DatasetSpec::Rmat { scale, seed } => format!("RMAT-{scale}-s{seed}"),
            DatasetSpec::Grid { width, height } => format!("GRID-{width}x{height}"),
            DatasetSpec::Uniform {
                vertices,
                edges,
                seed,
            } => format!("UNI-{vertices}v{edges}e-s{seed}"),
        }
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Csr {
        match *self {
            DatasetSpec::Rmat { scale, seed } => RmatConfig::scale(scale).generate(seed),
            DatasetSpec::Grid { width, height } => grid_2d(width, height),
            DatasetSpec::Uniform {
                vertices,
                edges,
                seed,
            } => uniform_random(vertices, edges, seed),
        }
    }

    fn from_value(value: &Value) -> Result<Self, DseError> {
        let obj = value
            .as_object()
            .ok_or_else(|| spec_err("each dataset must be an object like {\"rmat\": {...}}"))?;
        if obj.len() != 1 {
            return Err(spec_err("a dataset object must have exactly one kind key"));
        }
        let (kind, body) = obj.iter().next().expect("len checked");
        let fields = body
            .as_object()
            .ok_or_else(|| spec_err(format!("dataset `{kind}` parameters must be an object")))?;
        match kind.as_str() {
            "rmat" => {
                reject_unknown_keys(fields, &["scale", "seed"], "dataset `rmat`")?;
                Ok(DatasetSpec::Rmat {
                    scale: field_u32(fields, "scale", kind)?,
                    seed: field_u64(fields, "seed", kind)?,
                })
            }
            "grid" => {
                reject_unknown_keys(fields, &["width", "height"], "dataset `grid`")?;
                Ok(DatasetSpec::Grid {
                    width: field_u32(fields, "width", kind)?,
                    height: field_u32(fields, "height", kind)?,
                })
            }
            "uniform" => {
                reject_unknown_keys(fields, &["vertices", "edges", "seed"], "dataset `uniform`")?;
                Ok(DatasetSpec::Uniform {
                    vertices: field_u32(fields, "vertices", kind)?,
                    edges: field_u64(fields, "edges", kind)?,
                    seed: field_u64(fields, "seed", kind)?,
                })
            }
            other => Err(spec_err(format!(
                "unknown dataset kind `{other}`; expected rmat, grid, or uniform"
            ))),
        }
    }
}

/// One labelled point on a sweep axis: the overrides it applies.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisPoint {
    /// Human-readable label, used in report rows and run IDs (e.g.
    /// `"32T/Ch 1KiB"`).
    pub label: String,
    /// Configuration overrides this point applies.
    pub set: Vec<Override>,
}

/// A named sweep axis: a list of alternative configuration override sets.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Axis name (documentation only; run IDs use point labels).
    pub name: String,
    /// The points along the axis, in sweep order.
    pub points: Vec<AxisPoint>,
}

/// A declarative design-space exploration: axes × datasets × apps.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Experiment name (used for default store paths).
    pub name: String,
    /// Host threads each simulation uses.
    pub threads_per_run: usize,
    /// Overrides applied to [`SystemConfig::default`] before any axis.
    pub base: Vec<Override>,
    /// Sweep axes; their cartesian product forms the config points.
    pub axes: Vec<Axis>,
    /// Applications to run at every config point.
    pub apps: Vec<Benchmark>,
    /// Datasets to run every app on.
    pub datasets: Vec<DatasetSpec>,
}

/// One fully resolved simulation of a sweep: a configuration, an app and
/// a dataset, with a stable identity.
#[derive(Debug, Clone)]
pub struct RunPoint {
    /// Position in deterministic expansion order (report row order).
    pub order: u64,
    /// Stable ID: `slug(config_label)__APP__slug(dataset_id)`, where the
    /// dataset ID includes every generator parameter (seed included).
    /// Re-running a sweep skips IDs already present in the result store.
    pub run_id: String,
    /// Joined axis-point labels (the report's "config" column).
    pub config_label: String,
    /// The application.
    pub app: Benchmark,
    /// The dataset.
    pub dataset: DatasetSpec,
    /// The fully resolved, validated configuration.
    pub config: SystemConfig,
}

impl ExperimentSpec {
    /// Parses a spec from its JSON text.
    ///
    /// Required fields: `name`, `apps`, `datasets`. Optional: `base`
    /// (override set), `axes`, `threads_per_run` (default 1). Unknown
    /// top-level fields are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Spec`] describing the first problem found.
    pub fn from_json(text: &str) -> Result<Self, DseError> {
        let value: Value = serde_json::from_str(text)
            .map_err(|e| spec_err(format!("spec is not valid JSON: {e}")))?;
        Self::from_value(&value)
    }

    fn from_value(value: &Value) -> Result<Self, DseError> {
        let obj = value
            .as_object()
            .ok_or_else(|| spec_err("the spec must be a JSON object"))?;
        reject_unknown_keys(
            obj,
            &[
                "name",
                "threads_per_run",
                "base",
                "axes",
                "apps",
                "datasets",
            ],
            "the spec",
        )?;
        let name = obj
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| spec_err("missing required string field `name`"))?
            .to_string();
        let threads_per_run = match obj.get("threads_per_run") {
            None => 1,
            Some(v) => v
                .as_u64()
                .filter(|&n| n >= 1)
                .ok_or_else(|| spec_err("`threads_per_run` must be a positive integer"))?
                as usize,
        };
        let base = match obj.get("base") {
            None => Vec::new(),
            Some(v) => overrides_from_value(v)?,
        };
        let axes = match obj.get("axes") {
            None => Vec::new(),
            Some(Value::Array(items)) => items
                .iter()
                .map(axis_from_value)
                .collect::<Result<_, _>>()?,
            Some(other) => {
                return Err(spec_err(format!(
                    "`axes` must be an array, got {}",
                    other.kind()
                )))
            }
        };
        let apps = match obj.get("apps") {
            Some(Value::Array(items)) if !items.is_empty() => items
                .iter()
                .map(|item| {
                    let label = item
                        .as_str()
                        .ok_or_else(|| spec_err("`apps` entries must be strings"))?;
                    Benchmark::from_label(label).ok_or_else(|| {
                        spec_err(format!(
                            "unknown app `{label}`; choose one of: {}",
                            Benchmark::ALL.map(|b| b.label().to_lowercase()).join(", ")
                        ))
                    })
                })
                .collect::<Result<_, _>>()?,
            _ => return Err(spec_err("`apps` must be a non-empty array of app names")),
        };
        let datasets = match obj.get("datasets") {
            Some(Value::Array(items)) if !items.is_empty() => items
                .iter()
                .map(DatasetSpec::from_value)
                .collect::<Result<_, _>>()?,
            _ => return Err(spec_err("`datasets` must be a non-empty array")),
        };
        Ok(ExperimentSpec {
            name,
            threads_per_run,
            base,
            axes,
            apps,
            datasets,
        })
    }

    /// Expands the spec into deterministic [`RunPoint`]s: the cartesian
    /// product of the axes (first axis slowest), crossed with every
    /// dataset and app. All configurations are resolved and validated
    /// here, before anything runs.
    ///
    /// # Errors
    ///
    /// Returns [`DseError`] when an axis is empty, an override fails to
    /// apply, or two points collide on the same run ID.
    pub fn expand(&self) -> Result<Vec<RunPoint>, DseError> {
        for axis in &self.axes {
            if axis.points.is_empty() {
                return Err(spec_err(format!("axis `{}` has no points", axis.name)));
            }
        }
        let base_cfg = apply_to_config(&SystemConfig::default(), &self.base)?;
        let mut points = Vec::new();
        let mut seen = HashSet::new();
        for combo in cartesian(&self.axes) {
            let config_label = if combo.is_empty() {
                "base".to_string()
            } else {
                combo
                    .iter()
                    .map(|p| p.label.as_str())
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            let mut cfg = base_cfg.clone();
            for point in &combo {
                cfg = apply_to_config(&cfg, &point.set).map_err(|e| {
                    DseError::Override(format!("at sweep point `{config_label}`: {e}"))
                })?;
            }
            for dataset in &self.datasets {
                for &app in &self.apps {
                    let run_id = format!(
                        "{}__{}__{}",
                        slug(&config_label),
                        app.label(),
                        slug(&dataset.id())
                    );
                    if !seen.insert(run_id.clone()) {
                        return Err(spec_err(format!(
                            "duplicate run ID `{run_id}`; axis point labels must be unique"
                        )));
                    }
                    points.push(RunPoint {
                        order: points.len() as u64,
                        run_id,
                        config_label: config_label.clone(),
                        app,
                        dataset: dataset.clone(),
                        config: cfg.clone(),
                    });
                }
            }
        }
        Ok(points)
    }
}

/// All combinations of one point per axis, first axis varying slowest.
fn cartesian(axes: &[Axis]) -> Vec<Vec<&AxisPoint>> {
    let mut combos: Vec<Vec<&AxisPoint>> = vec![Vec::new()];
    for axis in axes {
        let mut next = Vec::with_capacity(combos.len() * axis.points.len());
        for prefix in &combos {
            for point in &axis.points {
                let mut combo = prefix.clone();
                combo.push(point);
                next.push(combo);
            }
        }
        combos = next;
    }
    combos
}

fn axis_from_value(value: &Value) -> Result<Axis, DseError> {
    let obj = value
        .as_object()
        .ok_or_else(|| spec_err("each axis must be an object"))?;
    reject_unknown_keys(obj, &["name", "points"], "each axis")?;
    let name = obj
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| spec_err("each axis needs a string `name`"))?
        .to_string();
    let Some(Value::Array(items)) = obj.get("points") else {
        return Err(spec_err(format!("axis `{name}` needs a `points` array")));
    };
    let points = items
        .iter()
        .map(|item| {
            let p = item
                .as_object()
                .ok_or_else(|| spec_err(format!("axis `{name}`: each point must be an object")))?;
            reject_unknown_keys(p, &["label", "set"], &format!("axis `{name}` points"))?;
            let label = p
                .get("label")
                .and_then(Value::as_str)
                .ok_or_else(|| spec_err(format!("axis `{name}`: each point needs a `label`")))?
                .to_string();
            let set = match p.get("set") {
                None => Vec::new(),
                Some(v) => overrides_from_value(v)?,
            };
            Ok(AxisPoint { label, set })
        })
        .collect::<Result<_, DseError>>()?;
    Ok(Axis { name, points })
}

/// Reduces a label to a filesystem/ID-safe slug (alphanumerics, `_` and
/// `-` kept, everything else mapped to `-`).
pub fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

fn spec_err(msg: impl Into<String>) -> DseError {
    DseError::Spec(msg.into())
}

fn field_u64(map: &serde::value::Map, field: &str, kind: &str) -> Result<u64, DseError> {
    map.get(field)
        .and_then(Value::as_u64)
        .ok_or_else(|| spec_err(format!("dataset `{kind}` needs integer field `{field}`")))
}

fn field_u32(map: &serde::value::Map, field: &str, kind: &str) -> Result<u32, DseError> {
    u32::try_from(field_u64(map, field, kind)?).map_err(|_| {
        spec_err(format!(
            "dataset `{kind}` field `{field}` is out of range for u32"
        ))
    })
}

/// Rejects keys of `map` not in `known`, naming `where_` in the error —
/// a typo like `"sets"` for `"set"` must fail loudly, not silently sweep
/// the base configuration under a label that claims otherwise.
fn reject_unknown_keys(
    map: &serde::value::Map,
    known: &[&str],
    where_: &str,
) -> Result<(), DseError> {
    for key in map.keys() {
        if !known.contains(&key.as_str()) {
            return Err(spec_err(format!(
                "unknown field `{key}` in {where_}; expected one of: {}",
                known.join(", ")
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{
        "name": "demo",
        "threads_per_run": 2,
        "base": {"sram_kib_per_tile": 64},
        "axes": [
            {"name": "grid", "points": [
                {"label": "8x8", "set": ["hierarchy.chiplet.x=8", "hierarchy.chiplet.y=8"]},
                {"label": "16x16", "set": ["hierarchy.chiplet.x=16", "hierarchy.chiplet.y=16"]}
            ]},
            {"name": "noc", "points": [
                {"label": "64b", "set": {"noc.width_bits": 64}},
                {"label": "32b", "set": {"noc.width_bits": 32}}
            ]}
        ],
        "apps": ["bfs", "spmv"],
        "datasets": [{"rmat": {"scale": 6, "seed": 1}}]
    }"#;

    #[test]
    fn spec_parses_and_expands_deterministically() {
        let spec = ExperimentSpec::from_json(SPEC).unwrap();
        assert_eq!(spec.threads_per_run, 2);
        assert_eq!(spec.apps, vec![Benchmark::Bfs, Benchmark::Spmv]);
        let points = spec.expand().unwrap();
        // 2 grid x 2 noc x 1 dataset x 2 apps
        assert_eq!(points.len(), 8);
        // first axis slowest, apps innermost
        assert_eq!(points[0].config_label, "8x8 64b");
        assert_eq!(points[0].app, Benchmark::Bfs);
        assert_eq!(points[1].app, Benchmark::Spmv);
        assert_eq!(points[2].config_label, "8x8 32b");
        assert_eq!(points[4].config_label, "16x16 64b");
        assert_eq!(points[0].run_id, "8x8-64b__BFS__RMAT-6-s1");
        assert_eq!(points[0].config.total_tiles(), 64);
        assert_eq!(points[0].config.sram_kib_per_tile, 64);
        assert_eq!(points[2].config.noc.width_bits, 32);
        // expansion is deterministic
        let again = spec.expand().unwrap();
        assert_eq!(
            points.iter().map(|p| &p.run_id).collect::<Vec<_>>(),
            again.iter().map(|p| &p.run_id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn axis_free_spec_gets_a_base_point() {
        let spec = ExperimentSpec::from_json(
            r#"{"name": "one", "apps": ["fft"],
                "base": ["hierarchy.chiplet.x=8", "hierarchy.chiplet.y=8"],
                "datasets": [{"grid": {"width": 4, "height": 4}}]}"#,
        )
        .unwrap();
        let points = spec.expand().unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].config_label, "base");
        assert_eq!(points[0].dataset.label(), "GRID-4x4");
    }

    #[test]
    fn bad_specs_are_rejected_with_reasons() {
        for (text, needle) in [
            ("[]", "must be a JSON object"),
            (
                r#"{"apps": ["bfs"], "datasets": [{"rmat": {"scale": 5, "seed": 1}}]}"#,
                "`name`",
            ),
            (
                r#"{"name": "x", "apps": [], "datasets": [{"rmat": {"scale": 5, "seed": 1}}]}"#,
                "`apps`",
            ),
            (
                r#"{"name": "x", "apps": ["bogus"], "datasets": [{"rmat": {"scale": 5, "seed": 1}}]}"#,
                "unknown app",
            ),
            (
                r#"{"name": "x", "apps": ["bfs"], "datasets": []}"#,
                "`datasets`",
            ),
            (
                r#"{"name": "x", "apps": ["bfs"], "datasets": [{"csv": {}}]}"#,
                "unknown dataset kind",
            ),
            (
                r#"{"name": "x", "apps": ["bfs"], "datasets": [{"rmat": {"scale": 5, "seed": 1}}], "extra": 1}"#,
                "unknown field `extra` in the spec",
            ),
            (
                r#"{"name": "x", "apps": ["bfs"], "datasets": [{"rmat": {"scale": 5, "seed": 1}}], "axes": [{"name": "a", "points": []}]}"#,
                "has no points",
            ),
            // a typo'd `set` must not silently sweep the base config
            (
                r#"{"name": "x", "apps": ["bfs"], "datasets": [{"rmat": {"scale": 5, "seed": 1}}], "axes": [{"name": "a", "points": [{"label": "32b", "sets": ["noc.width_bits=32"]}]}]}"#,
                "unknown field `sets`",
            ),
            (
                r#"{"name": "x", "apps": ["bfs"], "datasets": [{"rmat": {"scale": 5, "seed": 1}}], "axes": [{"name": "a", "values": [], "points": [{"label": "p"}]}]}"#,
                "unknown field `values` in each axis",
            ),
            (
                r#"{"name": "x", "apps": ["bfs"], "datasets": [{"rmat": {"scale": 5, "seed": 1, "scal": 2}}]}"#,
                "unknown field `scal`",
            ),
            // out-of-range integers are rejected, not silently truncated
            (
                r#"{"name": "x", "apps": ["bfs"], "datasets": [{"rmat": {"scale": 4294967297, "seed": 1}}]}"#,
                "out of range",
            ),
            (
                r#"{"name": "x", "apps": ["bfs"], "datasets": [{"rmat": {"scale": 5, "seed": 1}}], "threads_per_run": 0}"#,
                "positive",
            ),
        ] {
            let err = ExperimentSpec::from_json(text).and_then(|s| s.expand());
            let msg = err.expect_err(text).to_string();
            assert!(
                msg.contains(needle),
                "`{text}` -> `{msg}` (wanted `{needle}`)"
            );
        }
    }

    #[test]
    fn duplicate_labels_collide_on_run_id() {
        let spec = ExperimentSpec::from_json(
            r#"{"name": "dup", "apps": ["bfs"],
                "datasets": [{"rmat": {"scale": 5, "seed": 1}}],
                "axes": [{"name": "a", "points": [
                    {"label": "same"}, {"label": "same"}
                ]}]}"#,
        )
        .unwrap();
        let err = spec.expand().unwrap_err().to_string();
        assert!(err.contains("duplicate run ID"), "{err}");
    }

    #[test]
    fn seed_sweeps_get_distinct_run_ids() {
        // same scale, different seeds: labels coincide (paper naming)
        // but run identity must not
        let spec = ExperimentSpec::from_json(
            r#"{"name": "seeds", "apps": ["bfs"],
                "base": ["hierarchy.chiplet.x=4", "hierarchy.chiplet.y=4"],
                "datasets": [
                    {"rmat": {"scale": 6, "seed": 7}},
                    {"rmat": {"scale": 6, "seed": 8}}
                ]}"#,
        )
        .unwrap();
        let points = spec.expand().unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].dataset.label(), points[1].dataset.label());
        assert_ne!(points[0].run_id, points[1].run_id);
        assert_eq!(points[0].run_id, "base__BFS__RMAT-6-s7");
        assert_eq!(points[1].run_id, "base__BFS__RMAT-6-s8");
    }

    #[test]
    fn slug_keeps_word_chars() {
        assert_eq!(slug("memory_design_space"), "memory_design_space");
        assert_eq!(slug("32T/Ch 1KiB"), "32T-Ch-1KiB");
    }

    #[test]
    fn datasets_generate_expected_shapes() {
        let rmat = DatasetSpec::Rmat { scale: 5, seed: 1 };
        assert_eq!(rmat.generate().num_vertices(), 32);
        assert_eq!(rmat.label(), "RMAT-5");
        let grid = DatasetSpec::Grid {
            width: 4,
            height: 3,
        };
        assert_eq!(grid.generate().num_vertices(), 12);
        let uni = DatasetSpec::Uniform {
            vertices: 10,
            edges: 20,
            seed: 2,
        };
        assert_eq!(uni.generate().num_vertices(), 10);
        assert_eq!(uni.generate().num_edges(), 20);
    }
}
