//! Latency-versus-offered-load reporting (the saturation figure of NoC
//! characterization studies).
//!
//! Deliberately decoupled from the traffic generator: a row is plain
//! numbers, so any producer (saturation sweeps, DSE stores, hand-made
//! comparisons) can render the same table. Latency columns follow the
//! NoC's [`muchisim_core::SimResult::noc_latency`] statistics.

use serde::{Deserialize, Serialize};

/// One offered-load measurement row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadLatencyRow {
    /// Series label (e.g. `"mesh"`, `"torus/uniform"`).
    pub series: String,
    /// Offered load in packets/tile/cycle.
    pub offered: f64,
    /// Accepted throughput in packets/tile/cycle.
    pub achieved: f64,
    /// Mean packet latency in cycles.
    pub avg_latency: f64,
    /// Median latency.
    pub p50_latency: u64,
    /// 95th-percentile latency.
    pub p95_latency: u64,
    /// 99th-percentile latency.
    pub p99_latency: u64,
    /// Maximum latency.
    pub max_latency: u64,
}

/// A latency-versus-load table, one row per (series, offered rate).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LoadLatencyTable {
    /// Rows in presentation order.
    pub rows: Vec<LoadLatencyRow>,
}

impl LoadLatencyTable {
    /// Appends a row.
    pub fn push(&mut self, row: LoadLatencyRow) {
        self.rows.push(row);
    }

    /// Serializes to CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "series,offered,achieved,avg_latency,p50_latency,p95_latency,p99_latency,max_latency\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{:.4},{:.4},{:.2},{},{},{},{}\n",
                r.series,
                r.offered,
                r.achieved,
                r.avg_latency,
                r.p50_latency,
                r.p95_latency,
                r.p99_latency,
                r.max_latency
            ));
        }
        out
    }

    /// Renders an aligned text table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>8} {:>9} {:>9} {:>6} {:>6} {:>6} {:>7}\n",
            "series", "offered", "achieved", "avg lat", "p50", "p95", "p99", "max"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<16} {:>8.4} {:>9.4} {:>9.2} {:>6} {:>6} {:>6} {:>7}\n",
                r.series,
                r.offered,
                r.achieved,
                r.avg_latency,
                r.p50_latency,
                r.p95_latency,
                r.p99_latency,
                r.max_latency
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(series: &str, offered: f64, lat: f64) -> LoadLatencyRow {
        LoadLatencyRow {
            series: series.to_string(),
            offered,
            achieved: offered * 0.9,
            avg_latency: lat,
            p50_latency: lat as u64,
            p95_latency: lat as u64 * 2,
            p99_latency: lat as u64 * 3,
            max_latency: lat as u64 * 4,
        }
    }

    #[test]
    fn csv_and_text_agree_on_rows() {
        let mut t = LoadLatencyTable::default();
        t.push(row("mesh", 0.02, 8.5));
        t.push(row("mesh", 0.3, 210.0));
        let csv = t.to_csv();
        assert!(csv.starts_with("series,offered"));
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("mesh,0.3000,0.2700,210.00,210,420,630,840"));
        let text = t.to_text();
        assert_eq!(text.lines().count(), 3);
        assert!(text.lines().next().unwrap().contains("avg lat"));
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = LoadLatencyTable::default();
        assert_eq!(t.to_csv().lines().count(), 1);
        assert_eq!(t.to_text().lines().count(), 1);
    }
}
