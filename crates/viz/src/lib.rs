//! # muchisim-viz
//!
//! Data visualization and reporting (paper §III-F).
//!
//! The original framework ships a CLI plotting tool (multi-run metric
//! comparisons) and a PyQt5 GUI (per-frame time series and tile-grid
//! heat-map animations). This crate reproduces both as a library, with
//! text/CSV/PPM artifacts instead of matplotlib windows:
//!
//! * [`ReportTable`] — metrics for combinations of configurations,
//!   applications, and datasets, as CSV or aligned text, absolute or
//!   normalized to a baseline (the paper's Fig. 3/Fig. 5 style).
//! * [`TimeSeries`] — per-frame avg/min/max/stddev/quartile statistics of
//!   per-tile counters over the execution, the GUI's time-series pane.
//! * [`Heatmap`] — tile-grid activity frames as ASCII art or binary PPM
//!   images; a numbered PPM sequence is the "GIF" of the paper's Fig. 2.
//! * [`LoadLatencyTable`] — latency-versus-offered-load rows (the
//!   saturation figure produced by `muchisim-traffic` sweeps).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod heatmap;
mod loadlat;
mod report;
mod series;

pub use heatmap::Heatmap;
pub use loadlat::{LoadLatencyRow, LoadLatencyTable};
pub use report::{ReportRow, ReportTable};
pub use series::{Counter, FrameStats, TimeSeries};
