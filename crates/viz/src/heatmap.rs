//! Tile-grid activity heat maps (the paper's Fig. 2 frames).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Intensity ramp for ASCII rendering, dark to bright.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders per-tile activity grids for a `width × height` tile grid.
///
/// Values are normalized to `max_value` (e.g., the frame length in
/// cycles, so color is "percentage of the frame the counter was active",
/// exactly the paper's encoding).
#[derive(Debug, Clone)]
pub struct Heatmap {
    width: u32,
    height: u32,
}

impl Heatmap {
    /// Creates a renderer for a grid.
    pub fn new(width: u32, height: u32) -> Self {
        Heatmap { width, height }
    }

    /// Renders one frame as ASCII art, one character per tile.
    ///
    /// # Panics
    ///
    /// Panics if `grid.len() != width * height`.
    pub fn ascii(&self, grid: &[u32], max_value: u32) -> String {
        assert_eq!(grid.len(), (self.width * self.height) as usize);
        let max = max_value.max(1) as f64;
        let mut out = String::with_capacity(((self.width + 1) * self.height) as usize);
        for y in 0..self.height {
            for x in 0..self.width {
                let v = grid[(y * self.width + x) as usize] as f64 / max;
                let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }

    /// Renders one frame as a binary PPM (P6) image with a blue→red ramp,
    /// one pixel per tile.
    pub fn ppm(&self, grid: &[u32], max_value: u32) -> Vec<u8> {
        assert_eq!(grid.len(), (self.width * self.height) as usize);
        let max = max_value.max(1) as f64;
        let mut out = Vec::with_capacity(grid.len() * 3 + 32);
        let mut header = String::new();
        let _ = write!(header, "P6\n{} {}\n255\n", self.width, self.height);
        out.extend_from_slice(header.as_bytes());
        for &v in grid {
            let t = (v as f64 / max).min(1.0);
            // cold (32, 32, 96) -> hot (255, 64, 0)
            let r = (32.0 + t * 223.0) as u8;
            let g = (32.0 + t * 32.0) as u8;
            let b = (96.0 - t * 96.0) as u8;
            out.extend_from_slice(&[r, g, b]);
        }
        out
    }

    /// Writes a numbered PPM frame sequence (`frame_000.ppm`, ...) into
    /// `dir` — the file-based equivalent of the paper's GIF animation.
    ///
    /// # Errors
    ///
    /// Returns any I/O error creating the directory or writing frames.
    pub fn write_sequence(
        &self,
        dir: &Path,
        frames: &[Vec<u32>],
        max_value: u32,
    ) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (i, frame) in frames.iter().enumerate() {
            let path = dir.join(format!("frame_{i:03}.ppm"));
            std::fs::write(path, self.ppm(frame, max_value))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_shape_and_ramp() {
        let h = Heatmap::new(4, 2);
        let grid = vec![0, 10, 20, 40, 0, 0, 0, 40];
        let art = h.ascii(&grid, 40);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 4);
        assert_eq!(lines[0].as_bytes()[0], b' ');
        assert_eq!(lines[0].as_bytes()[3], b'@');
    }

    #[test]
    fn ppm_header_and_size() {
        let h = Heatmap::new(3, 3);
        let img = h.ppm(&[0; 9], 1);
        assert!(img.starts_with(b"P6\n3 3\n255\n"));
        assert_eq!(img.len(), 11 + 27);
    }

    #[test]
    fn hot_pixels_are_red() {
        let h = Heatmap::new(1, 1);
        let img = h.ppm(&[100], 100);
        let px = &img[img.len() - 3..];
        assert_eq!(px, &[255, 64, 0]);
        let img = h.ppm(&[0], 100);
        let px = &img[img.len() - 3..];
        assert_eq!(px, &[32, 32, 96]);
    }

    #[test]
    fn sequence_writes_numbered_frames() {
        let dir = std::env::temp_dir().join("muchisim_viz_test_frames");
        let _ = std::fs::remove_dir_all(&dir);
        let h = Heatmap::new(2, 2);
        h.write_sequence(&dir, &[vec![0; 4], vec![1; 4]], 1)
            .unwrap();
        assert!(dir.join("frame_000.ppm").exists());
        assert!(dir.join("frame_001.ppm").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic]
    fn wrong_grid_size_panics() {
        Heatmap::new(2, 2).ascii(&[0; 3], 1);
    }

    #[test]
    fn degenerate_grids_and_max_values_render_cleanly() {
        // zero max (an all-idle frame out of a tiny merged log) must not
        // divide by zero; everything lands on the cold end of the ramp
        let h = Heatmap::new(2, 1);
        let art = h.ascii(&[0, 0], 0);
        assert_eq!(art, "  \n");
        let img = h.ppm(&[0, 0], 0);
        assert_eq!(&img[img.len() - 3..], &[32, 32, 96]);
        // zero-sized grids produce empty-but-valid artifacts
        let empty = Heatmap::new(0, 0);
        assert_eq!(empty.ascii(&[], 1), "");
        assert!(empty.ppm(&[], 1).starts_with(b"P6\n0 0\n255\n"));
    }
}
