//! Per-frame time-series statistics (the GUI tool's pane: average,
//! min/max, standard deviation and quartiles of a per-tile counter over
//! the execution — paper §III-F).

use muchisim_core::FrameLog;
use serde::{Deserialize, Serialize};

/// Distribution statistics of a per-tile counter within one frame.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FrameStats {
    /// Frame index.
    pub index: u64,
    /// First cycle of the frame.
    pub start_cycle: u64,
    /// Mean over all tiles (absent tiles count as zero).
    pub mean: f64,
    /// Minimum.
    pub min: u32,
    /// Maximum.
    pub max: u32,
    /// Standard deviation.
    pub stddev: f64,
    /// 25th percentile.
    pub q1: u32,
    /// Median.
    pub median: u32,
    /// 75th percentile.
    pub q3: u32,
}

impl FrameStats {
    fn from_grid(index: u64, start_cycle: u64, grid: &mut [u32]) -> Self {
        if grid.is_empty() {
            // zero-tile grids (degenerate configs, empty logs re-summarized
            // downstream) must yield a well-defined all-zero row, not an
            // index underflow in the quartile lookup
            return FrameStats {
                index,
                start_cycle,
                ..FrameStats::default()
            };
        }
        let n = grid.len() as f64;
        let mean = grid.iter().map(|&v| v as f64).sum::<f64>() / n;
        let var = grid.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
        grid.sort_unstable();
        let pick = |q: f64| grid[((grid.len() - 1) as f64 * q).round() as usize];
        FrameStats {
            index,
            start_cycle,
            mean,
            min: *grid.first().unwrap_or(&0),
            max: *grid.last().unwrap_or(&0),
            stddev: var.sqrt(),
            q1: pick(0.25),
            median: pick(0.5),
            q3: pick(0.75),
        }
    }
}

/// Which per-tile counter of a frame to summarize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Router busy cycles.
    RouterBusy,
    /// PU busy cycles.
    PuBusy,
    /// Input-queue occupancy (verbosity V3).
    IqOccupancy,
}

/// A per-frame statistics series extracted from a [`FrameLog`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    /// One row per frame.
    pub rows: Vec<FrameStats>,
}

impl TimeSeries {
    /// Summarizes `counter` over all frames for a grid of `total_tiles`.
    pub fn from_frames(log: &FrameLog, counter: Counter, total_tiles: u32) -> Self {
        let rows = log
            .frames
            .iter()
            .map(|f| {
                let mut grid = match counter {
                    Counter::RouterBusy => f.router_grid(total_tiles),
                    Counter::PuBusy => f.pu_grid(total_tiles),
                    Counter::IqOccupancy => {
                        let mut g = vec![0u32; total_tiles as usize];
                        for &(t, v) in &f.iq_occupancy {
                            g[t as usize] += v;
                        }
                        g
                    }
                };
                FrameStats::from_grid(f.index, f.start_cycle, &mut grid)
            })
            .collect();
        TimeSeries { rows }
    }

    /// Serializes to CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("frame,start_cycle,mean,min,q1,median,q3,max,stddev\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{:.4},{},{},{},{},{},{:.4}\n",
                r.index, r.start_cycle, r.mean, r.min, r.q1, r.median, r.q3, r.max, r.stddev
            ));
        }
        out
    }

    /// The tail-imbalance signal the paper highlights: frames where the
    /// max is far above the median indicate a long execution tail.
    ///
    /// Well-defined on degenerate inputs: an empty series (verbosity V0,
    /// or a `frame_budget` so tight the run merged into nothing) and
    /// all-zero frames both report 0 — never NaN, never a panic.
    pub fn tail_imbalance(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| {
                if r.median == 0 {
                    r.max as f64
                } else {
                    r.max as f64 / r.median as f64
                }
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muchisim_core::Frame;

    fn log_with(frames: Vec<Frame>) -> FrameLog {
        FrameLog {
            interval_cycles: 100,
            frames,
        }
    }

    #[test]
    fn stats_over_sparse_frame() {
        let f = Frame {
            index: 0,
            start_cycle: 0,
            pu_busy: vec![(0, 10), (1, 20)],
            ..Default::default()
        };
        let ts = TimeSeries::from_frames(&log_with(vec![f]), Counter::PuBusy, 4);
        let r = ts.rows[0];
        assert_eq!(r.min, 0);
        assert_eq!(r.max, 20);
        assert!((r.mean - 7.5).abs() < 1e-9);
        assert_eq!(r.median, 10);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let f = Frame::default();
        let ts = TimeSeries::from_frames(&log_with(vec![f]), Counter::RouterBusy, 4);
        let csv = ts.to_csv();
        assert!(csv.starts_with("frame,start_cycle,mean"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn empty_log_yields_empty_series_and_zero_imbalance() {
        // frame_budget merging (or verbosity V0) can leave a very short —
        // or empty — FrameLog; every summary must stay well-defined
        let ts = TimeSeries::from_frames(&log_with(Vec::new()), Counter::PuBusy, 16);
        assert!(ts.rows.is_empty());
        assert_eq!(ts.tail_imbalance(), 0.0);
        assert_eq!(ts.to_csv().lines().count(), 1, "header only");
    }

    #[test]
    fn zero_tile_grid_is_all_zero_not_a_panic() {
        let f = Frame::default();
        let ts = TimeSeries::from_frames(&log_with(vec![f]), Counter::IqOccupancy, 0);
        let r = ts.rows[0];
        assert_eq!((r.min, r.max, r.q1, r.median, r.q3), (0, 0, 0, 0, 0));
        assert_eq!(r.mean, 0.0);
        assert!(r.stddev == 0.0, "no NaN on empty grids");
        assert_eq!(ts.tail_imbalance(), 0.0);
    }

    #[test]
    fn single_merged_frame_summarizes_cleanly() {
        // one surviving frame after aggressive budget merging
        let f = Frame {
            index: 0,
            start_cycle: 0,
            pu_busy: vec![(0, 3), (3, 9)],
            ..Default::default()
        };
        let ts = TimeSeries::from_frames(&log_with(vec![f]), Counter::PuBusy, 4);
        assert_eq!(ts.rows.len(), 1);
        assert_eq!(ts.rows[0].max, 9);
        assert!(ts.tail_imbalance().is_finite());
        assert!(ts.tail_imbalance() > 0.0);
    }

    #[test]
    fn all_zero_frames_report_zero_imbalance() {
        let f = Frame {
            index: 0,
            pu_busy: vec![(0, 0), (1, 0)],
            ..Default::default()
        };
        let ts = TimeSeries::from_frames(&log_with(vec![f]), Counter::PuBusy, 4);
        assert_eq!(ts.tail_imbalance(), 0.0);
    }

    #[test]
    fn tail_imbalance_detects_stragglers() {
        let balanced = Frame {
            index: 0,
            pu_busy: vec![(0, 10), (1, 10), (2, 10), (3, 10)],
            ..Default::default()
        };
        let skewed = Frame {
            index: 0,
            pu_busy: vec![(0, 100), (1, 2), (2, 2), (3, 2)],
            ..Default::default()
        };
        let b = TimeSeries::from_frames(&log_with(vec![balanced]), Counter::PuBusy, 4);
        let s = TimeSeries::from_frames(&log_with(vec![skewed]), Counter::PuBusy, 4);
        assert!(s.tail_imbalance() > b.tail_imbalance());
    }
}
