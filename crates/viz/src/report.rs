//! Multi-run comparison tables (the CLI plotting tool, paper §III-F):
//! metrics for combinations of DUT configurations, applications and
//! datasets, absolute or normalized to a baseline.

use muchisim_core::SimResult;
use muchisim_energy::Report;
use serde::{Deserialize, Serialize};

/// The metrics of one evaluation (one config + app + dataset run).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportRow {
    /// Configuration label (e.g., "32T/Ch 256KiB").
    pub config: String,
    /// Application label (e.g., "BFS").
    pub app: String,
    /// Dataset label (e.g., "RMAT-12").
    pub dataset: String,
    /// DUT runtime in seconds.
    pub runtime_secs: f64,
    /// FLOP/s.
    pub flops: f64,
    /// TEPS-style application throughput.
    pub app_throughput: f64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Average power in watts.
    pub power_w: f64,
    /// System cost in USD.
    pub cost_usd: f64,
    /// FLOP/s per watt.
    pub flops_per_watt: f64,
    /// FLOP/s per dollar.
    pub flops_per_dollar: f64,
    /// Total NoC traffic in message hops.
    pub msg_hops: u64,
    /// Cache hit rate.
    pub hit_rate: f64,
    /// Host (simulator) seconds.
    pub sim_secs: f64,
    /// Simulator throughput in simulated NoC cycles per host second.
    pub sim_cycles_per_sec: f64,
    /// Host simulation-state bytes per simulated tile.
    pub host_bytes_per_tile: f64,
    /// Host nanoseconds spent in the PU phase (built-in phase profiler).
    pub phase_pu_ns: u64,
    /// Host nanoseconds spent in the CQ→NoC inject phase.
    pub phase_inject_ns: u64,
    /// Host nanoseconds spent stepping the NoC.
    pub phase_net_ns: u64,
    /// Host nanoseconds spent on worklist bookkeeping.
    pub phase_worklist_ns: u64,
    /// Median NoC packet latency in cycles (from the log2 histogram).
    #[serde(default)]
    pub noc_p50: u64,
    /// 95th-percentile NoC packet latency in cycles.
    #[serde(default)]
    pub noc_p95: u64,
    /// 99th-percentile NoC packet latency in cycles.
    #[serde(default)]
    pub noc_p99: u64,
    /// How the run ended: `finished`, `ward:<name>`, or an error label.
    /// Empty in rows stored before the column existed; read through
    /// [`term_label`](ReportRow::term_label).
    #[serde(default)]
    pub termination: String,
}

impl ReportRow {
    /// Builds a row from a simulation result and its energy report.
    pub fn new(
        config: impl Into<String>,
        app: impl Into<String>,
        dataset: impl Into<String>,
        result: &SimResult,
        report: &Report,
    ) -> Self {
        ReportRow {
            config: config.into(),
            app: app.into(),
            dataset: dataset.into(),
            runtime_secs: result.runtime.as_secs(),
            flops: report.flops,
            app_throughput: report.app_throughput,
            energy_j: report.energy.total_pj() * 1e-12,
            power_w: report.average_power_w,
            cost_usd: report.cost.total_usd,
            flops_per_watt: report.flops_per_watt,
            flops_per_dollar: report.flops_per_dollar,
            msg_hops: result.counters.noc.msg_hops,
            hit_rate: result.counters.mem.hit_rate(),
            sim_secs: result.host_seconds,
            sim_cycles_per_sec: result.sim_cycles_per_sec(),
            host_bytes_per_tile: result.bytes_per_tile(),
            phase_pu_ns: result.host_phase_ns.pu,
            phase_inject_ns: result.host_phase_ns.inject,
            phase_net_ns: result.host_phase_ns.net,
            phase_worklist_ns: result.host_phase_ns.worklist,
            noc_p50: result.noc_latency.percentile(0.50),
            noc_p95: result.noc_latency.percentile(0.95),
            noc_p99: result.noc_latency.percentile(0.99),
            termination: result.termination_label().to_string(),
        }
    }

    /// The termination reason, mapping the pre-column empty string to
    /// `"finished"`.
    pub fn term_label(&self) -> &str {
        if self.termination.is_empty() {
            "finished"
        } else {
            &self.termination
        }
    }

    /// Worklist bookkeeping as a fraction of attributed host time (0 when
    /// no phases were recorded).
    pub fn worklist_share(&self) -> f64 {
        let total =
            self.phase_pu_ns + self.phase_inject_ns + self.phase_net_ns + self.phase_worklist_ns;
        if total == 0 {
            0.0
        } else {
            self.phase_worklist_ns as f64 / total as f64
        }
    }
}

/// A collection of evaluation rows with table / CSV / normalization
/// helpers.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ReportTable {
    /// The rows, in insertion order.
    pub rows: Vec<ReportRow>,
}

impl ReportTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ReportTable::default()
    }

    /// Appends a row.
    pub fn push(&mut self, row: ReportRow) {
        self.rows.push(row);
    }

    /// Serializes all rows as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "config,app,dataset,runtime_s,flops,app_throughput,energy_j,power_w,\
             cost_usd,flops_per_watt,flops_per_dollar,msg_hops,hit_rate,sim_s,\
             sim_cycles_per_s,host_bytes_per_tile,phase_pu_ns,phase_inject_ns,\
             phase_net_ns,phase_worklist_ns,noc_p50,noc_p95,noc_p99,term\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{:.6e},{:.4e},{:.4e},{:.4e},{:.3},{:.2},{:.4e},{:.4e},{},{:.4},{:.3},\
                 {:.4e},{:.1},{},{},{},{},{},{},{},{}\n",
                r.config,
                r.app,
                r.dataset,
                r.runtime_secs,
                r.flops,
                r.app_throughput,
                r.energy_j,
                r.power_w,
                r.cost_usd,
                r.flops_per_watt,
                r.flops_per_dollar,
                r.msg_hops,
                r.hit_rate,
                r.sim_secs,
                r.sim_cycles_per_sec,
                r.host_bytes_per_tile,
                r.phase_pu_ns,
                r.phase_inject_ns,
                r.phase_net_ns,
                r.phase_worklist_ns,
                r.noc_p50,
                r.noc_p95,
                r.noc_p99,
                r.term_label()
            ));
        }
        out
    }

    /// Improvement factors of a metric over a baseline configuration,
    /// per (app, dataset) pair — the paper's Fig. 5 presentation.
    ///
    /// Returns `(config, app, dataset, factor)` for every non-baseline
    /// row that has a matching baseline row.
    pub fn normalized_to(
        &self,
        baseline_config: &str,
        metric: impl Fn(&ReportRow) -> f64,
    ) -> Vec<(String, String, String, f64)> {
        let mut out = Vec::new();
        for row in &self.rows {
            if row.config == baseline_config {
                continue;
            }
            let base = self.rows.iter().find(|b| {
                b.config == baseline_config && b.app == row.app && b.dataset == row.dataset
            });
            if let Some(base) = base {
                let denom = metric(base);
                if denom != 0.0 {
                    out.push((
                        row.config.clone(),
                        row.app.clone(),
                        row.dataset.clone(),
                        metric(row) / denom,
                    ));
                }
            }
        }
        out
    }

    /// Geometric mean of `values` (the paper's "Geo" column).
    pub fn geomean(values: &[f64]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
    }

    /// A human-readable aligned table of the key metrics.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "{:<20} {:<8} {:<10} {:>12} {:>12} {:>10} {:>10} {:>10} {:>8} {:>7} {:>8} {:<14}\n",
            "config",
            "app",
            "dataset",
            "runtime_s",
            "flops",
            "power_w",
            "cost_usd",
            "simcyc/s",
            "B/tile",
            "wklst%",
            "noc_p95",
            "term"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<20} {:<8} {:<10} {:>12.3e} {:>12.3e} {:>10.2} {:>10.0} {:>10.3e} {:>8.0} {:>7.1} {:>8} {:<14}\n",
                r.config,
                r.app,
                r.dataset,
                r.runtime_secs,
                r.flops,
                r.power_w,
                r.cost_usd,
                r.sim_cycles_per_sec,
                r.host_bytes_per_tile,
                r.worklist_share() * 100.0,
                r.noc_p95,
                r.term_label()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(config: &str, app: &str, flops: f64) -> ReportRow {
        ReportRow {
            config: config.into(),
            app: app.into(),
            dataset: "rmat".into(),
            runtime_secs: 1.0,
            flops,
            app_throughput: flops,
            energy_j: 1.0,
            power_w: 10.0,
            cost_usd: 100.0,
            flops_per_watt: flops / 10.0,
            flops_per_dollar: flops / 100.0,
            msg_hops: 5,
            hit_rate: 0.9,
            sim_secs: 0.1,
            sim_cycles_per_sec: 1e6,
            host_bytes_per_tile: 640.0,
            phase_pu_ns: 3,
            phase_inject_ns: 2,
            phase_net_ns: 4,
            phase_worklist_ns: 1,
            noc_p50: 12,
            noc_p95: 48,
            noc_p99: 96,
            termination: "finished".into(),
        }
    }

    #[test]
    fn csv_and_text_render() {
        let mut t = ReportTable::new();
        t.push(row("base", "BFS", 100.0));
        let csv = t.to_csv();
        assert!(csv.lines().count() == 2);
        assert!(csv.contains("base,BFS,rmat"));
        assert!(csv.lines().next().unwrap().contains("sim_cycles_per_s"));
        assert!(csv.lines().next().unwrap().contains("host_bytes_per_tile"));
        assert!(csv.lines().next().unwrap().contains("phase_worklist_ns"));
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .ends_with("noc_p50,noc_p95,noc_p99,term"));
        assert!(csv.lines().nth(1).unwrap().ends_with("12,48,96,finished"));
        let text = t.to_text();
        assert!(text.contains("BFS"));
        assert!(text.contains("B/tile"));
        assert!(text.contains("wklst%"));
        assert!(text.contains("noc_p95"));
        assert!(text.contains("term"));
        assert!(text.contains("finished"));
    }

    #[test]
    fn termination_column_distinguishes_warded_rows() {
        let mut t = ReportTable::new();
        t.push(row("open", "BFS", 100.0));
        let mut warded = row("tight", "BFS", 10.0);
        warded.termination = "ward:stall".into();
        t.push(warded);
        // a pre-column row deserializes to the empty string
        let mut legacy = row("old", "BFS", 1.0);
        legacy.termination = String::new();
        assert_eq!(legacy.term_label(), "finished");
        t.push(legacy);
        let text = t.to_text();
        assert!(text.contains("ward:stall"));
        let csv = t.to_csv();
        assert!(csv.contains(",ward:stall\n"));
        assert!(!csv.contains(",,\n"), "legacy rows must render a label");
    }

    #[test]
    fn worklist_share_of_attributed_time() {
        let r = row("base", "BFS", 1.0);
        assert!((r.worklist_share() - 0.1).abs() < 1e-12);
        let mut z = r;
        z.phase_pu_ns = 0;
        z.phase_inject_ns = 0;
        z.phase_net_ns = 0;
        z.phase_worklist_ns = 0;
        assert_eq!(z.worklist_share(), 0.0);
    }

    #[test]
    fn normalization_pairs_by_app() {
        let mut t = ReportTable::new();
        t.push(row("base", "BFS", 100.0));
        t.push(row("base", "SSSP", 50.0));
        t.push(row("big", "BFS", 300.0));
        t.push(row("big", "SSSP", 100.0));
        let norm = t.normalized_to("base", |r| r.flops);
        assert_eq!(norm.len(), 2);
        assert_eq!(norm[0].3, 3.0);
        assert_eq!(norm[1].3, 2.0);
    }

    #[test]
    fn geomean_of_factors() {
        assert!((ReportTable::geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(ReportTable::geomean(&[]), 0.0);
    }
}
