//! The silicon area model (paper §III-D).
//!
//! PU and router area grow by 50 % of the relative increase in their peak
//! frequency (the paper's default, refinable by synthesizing RTL at
//! several frequencies and post-processing). The PHY area follows the
//! configured integration's areal density and the chiplet's edge
//! (beachfront) bandwidth demand.

use muchisim_config::{InterposerKind, MemoryConfig, SystemConfig};
use serde::{Deserialize, Serialize};

/// Per-component area results in mm².
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// One PU, after peak-frequency scaling.
    pub pu_mm2: f64,
    /// One tile's SRAM macro.
    pub sram_mm2: f64,
    /// One tile's router(s) across all physical NoCs.
    pub router_mm2: f64,
    /// One tile's TSU.
    pub tsu_mm2: f64,
    /// One full tile.
    pub tile_mm2: f64,
    /// Inter-chiplet PHY area per chiplet.
    pub phy_mm2: f64,
    /// One compute chiplet (tiles + PHY).
    pub chiplet_mm2: f64,
    /// All compute silicon in the system.
    pub total_compute_mm2: f64,
    /// Total HBM device footprint (package area, 3-D stacked).
    pub hbm_mm2: f64,
    /// Average power density headroom metric: W/mm² is computed by the
    /// report from the energy side; this stores total silicon for it.
    pub total_silicon_mm2: f64,
}

impl AreaBreakdown {
    /// Computes the full area breakdown for `cfg`.
    pub fn from_config(cfg: &SystemConfig) -> Self {
        let p = &cfg.params.pu;
        let growth = |peak_ghz: f64| 1.0 + p.area_growth_per_freq * (peak_ghz - 1.0).max(0.0);
        let pu = p.area_mm2 * growth(cfg.pu_clock.peak.as_ghz());
        let sram = cfg.sram_kib_per_tile as f64 / 1024.0 / cfg.params.sram.density_mb_per_mm2;
        let router_one = (p.router_base_area_mm2
            + p.router_area_mm2_per_bit * cfg.noc.width_bits as f64)
            * growth(cfg.noc_clock.peak.as_ghz());
        let router = router_one * cfg.noc.num_physical as f64;
        let tile = pu * cfg.pus_per_tile as f64 + sram + router + p.tsu_area_mm2;

        // PHY: edge tiles on each chiplet side need width_bits at the NoC
        // frequency, per physical NoC.
        let h = &cfg.hierarchy;
        let multi_chiplet = h.total_chiplets() > 1;
        let phy = if multi_chiplet {
            let edge_tiles = 2.0 * (h.chiplet.x + h.chiplet.y) as f64;
            let gbps_per_link = cfg.noc.width_bits as f64
                * cfg.noc_clock.operating.as_ghz()
                * cfg.noc.num_physical as f64;
            let demand_gbps = edge_tiles * gbps_per_link;
            let areal = match cfg.interposer {
                InterposerKind::OrganicSubstrate => cfg.params.phy.mcm_areal_gbps_per_mm2,
                InterposerKind::SiliconInterposer => cfg.params.phy.si_areal_gbps_per_mm2,
            };
            demand_gbps / areal
        } else {
            0.0
        };
        let chiplet = h.tiles_per_chiplet() as f64 * tile + phy;
        let total_compute = chiplet * h.total_chiplets() as f64;
        let hbm = match &cfg.memory {
            MemoryConfig::Scratchpad => 0.0,
            MemoryConfig::Dram(d) => {
                d.devices_per_chiplet as f64
                    * h.total_chiplets() as f64
                    * cfg.params.hbm.device_area_mm2
            }
        };
        AreaBreakdown {
            pu_mm2: pu,
            sram_mm2: sram,
            router_mm2: router,
            tsu_mm2: p.tsu_area_mm2,
            tile_mm2: tile,
            phy_mm2: phy,
            chiplet_mm2: chiplet,
            total_compute_mm2: total_compute,
            hbm_mm2: hbm,
            total_silicon_mm2: total_compute,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muchisim_config::{ClockDomain, DramConfig, Frequency};

    #[test]
    fn tile_area_composition() {
        let a = AreaBreakdown::from_config(&SystemConfig::default());
        let sum = a.pu_mm2 + a.sram_mm2 + a.router_mm2 + a.tsu_mm2;
        assert!((a.tile_mm2 - sum).abs() < 1e-12);
        assert_eq!(a.phy_mm2, 0.0, "monolithic chip has no PHY");
    }

    #[test]
    fn peak_frequency_grows_area() {
        let base = AreaBreakdown::from_config(&SystemConfig::default());
        let mut b = SystemConfig::builder();
        b.pu_clock(ClockDomain {
            peak: Frequency::ghz(2.0),
            operating: Frequency::ghz(1.0),
        });
        let fast = AreaBreakdown::from_config(&b.build().unwrap());
        // +100% peak -> +50% PU area
        assert!((fast.pu_mm2 / base.pu_mm2 - 1.5).abs() < 1e-9);
        assert_eq!(fast.sram_mm2, base.sram_mm2, "SRAM does not scale");
    }

    #[test]
    fn multi_chiplet_pays_phy() {
        let cfg = SystemConfig::builder()
            .chiplet_tiles(16, 16)
            .package_chiplets(2, 2)
            .build()
            .unwrap();
        let a = AreaBreakdown::from_config(&cfg);
        assert!(a.phy_mm2 > 0.0);
        assert_eq!(a.total_compute_mm2, a.chiplet_mm2 * 4.0);
    }

    #[test]
    fn silicon_interposer_denser_phy() {
        let mk = |kind| {
            let cfg = SystemConfig::builder()
                .chiplet_tiles(16, 16)
                .package_chiplets(2, 1)
                .interposer(kind)
                .build()
                .unwrap();
            AreaBreakdown::from_config(&cfg).phy_mm2
        };
        assert!(mk(InterposerKind::SiliconInterposer) < mk(InterposerKind::OrganicSubstrate));
    }

    #[test]
    fn hbm_footprint() {
        let cfg = SystemConfig::builder()
            .chiplet_tiles(32, 32)
            .dram(DramConfig::default())
            .build()
            .unwrap();
        let a = AreaBreakdown::from_config(&cfg);
        assert_eq!(a.hbm_mm2, 110.0);
    }

    #[test]
    fn wse_like_area_matches_validation_target() {
        // §IV-A: simulating the WSE (850k tiles, 40GB SRAM on 46,225mm^2,
        // 32-bit mesh, 7nm) should report an area ~8.8% above the real
        // wafer. 922x922 = 850,084 tiles with 48 KiB/tile ~ 40GB.
        let cfg = SystemConfig::builder()
            .chiplet_tiles(922, 922)
            .sram_kib_per_tile(48)
            .noc_width_bits(32)
            .build()
            .unwrap();
        let a = AreaBreakdown::from_config(&cfg);
        let target = 46_225.0 * 1.088;
        let err = (a.total_compute_mm2 - target).abs() / target;
        assert!(
            err < 0.05,
            "modeled {:.0} mm^2 vs validation target {:.0} mm^2 ({:.1}% off)",
            a.total_compute_mm2,
            target,
            err * 100.0
        );
    }
}
