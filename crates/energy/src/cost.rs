//! The fabrication cost model (paper §III-E).

use crate::area::AreaBreakdown;
use crate::yield_model::{dies_per_wafer, murphy_yield};
use muchisim_config::{InterposerKind, MemoryConfig, SystemConfig};
use serde::{Deserialize, Serialize};

/// Cost results in USD.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Cost of one good compute die.
    pub compute_die_usd: f64,
    /// Dies per wafer (gross).
    pub dies_per_wafer: u64,
    /// Die yield.
    pub die_yield: f64,
    /// All compute dies in the system.
    pub compute_usd: f64,
    /// Interposers / substrates / bonding.
    pub packaging_usd: f64,
    /// HBM devices.
    pub hbm_usd: f64,
    /// Total system cost.
    pub total_usd: f64,
}

impl CostBreakdown {
    /// Computes the cost of the configured system given its areas.
    pub fn from_config(cfg: &SystemConfig, area: &AreaBreakdown) -> Self {
        let p = &cfg.params.cost;
        let die_mm2 = area.chiplet_mm2;
        let gross = dies_per_wafer(p.wafer_diameter_mm, p.edge_loss_mm, p.scribe_mm, die_mm2);
        let yield_ = murphy_yield(die_mm2, p.defect_density_per_mm2);
        let good = (gross as f64 * yield_).max(1e-9);
        // wafer-scale parts: one die per wafer, yield folded into cost
        let compute_die_usd = if gross == 0 {
            p.wafer_cost_usd / yield_.max(1e-9)
        } else {
            p.wafer_cost_usd / good
        };
        let n_chiplets = cfg.hierarchy.total_chiplets() as f64;
        let compute_usd = compute_die_usd * n_chiplets;

        let has_dram = cfg.memory.has_dram();
        // silicon interposer per compute+DRAM pair (20% of die price);
        // otherwise the configured substrate: organic 10% + 5% bonding,
        // silicon interposer 20%.
        let per_chiplet_packaging = if has_dram {
            compute_die_usd * p.si_interposer_fraction
                + compute_die_usd * p.organic_substrate_fraction
                + compute_die_usd * p.bonding_overhead_fraction
        } else {
            match cfg.interposer {
                InterposerKind::SiliconInterposer => compute_die_usd * p.si_interposer_fraction,
                InterposerKind::OrganicSubstrate => {
                    compute_die_usd * (p.organic_substrate_fraction + p.bonding_overhead_fraction)
                }
            }
        };
        let packaging_usd = per_chiplet_packaging * n_chiplets;

        let hbm_usd = match &cfg.memory {
            MemoryConfig::Scratchpad => 0.0,
            MemoryConfig::Dram(d) => {
                d.devices_per_chiplet as f64
                    * n_chiplets
                    * cfg.params.hbm.device_capacity_gb
                    * p.hbm_usd_per_gb
            }
        };
        CostBreakdown {
            compute_die_usd,
            dies_per_wafer: gross,
            die_yield: yield_,
            compute_usd,
            packaging_usd,
            hbm_usd,
            total_usd: compute_usd + packaging_usd + hbm_usd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muchisim_config::DramConfig;

    fn cost_of(cfg: &SystemConfig) -> CostBreakdown {
        CostBreakdown::from_config(cfg, &AreaBreakdown::from_config(cfg))
    }

    #[test]
    fn monolithic_cost_positive_and_composed() {
        let c = cost_of(&SystemConfig::default());
        assert!(c.compute_die_usd > 0.0);
        assert!(c.die_yield > 0.0 && c.die_yield <= 1.0);
        assert!((c.total_usd - (c.compute_usd + c.packaging_usd + c.hbm_usd)).abs() < 1e-9);
        assert_eq!(c.hbm_usd, 0.0);
    }

    #[test]
    fn hbm_cost_follows_capacity() {
        let cfg = SystemConfig::builder()
            .chiplet_tiles(32, 32)
            .dram(DramConfig::default())
            .build()
            .unwrap();
        let c = cost_of(&cfg);
        // one 8GB device at $7.5/GB
        assert!((c.hbm_usd - 60.0).abs() < 1e-9);
    }

    #[test]
    fn smaller_chiplets_cheaper_silicon() {
        // same total tiles, split into 4 chiplets vs monolithic: yield
        // gains make the 4-chiplet silicon cheaper
        let mono = SystemConfig::builder()
            .chiplet_tiles(64, 64)
            .build()
            .unwrap();
        let quad = SystemConfig::builder()
            .chiplet_tiles(32, 32)
            .package_chiplets(2, 2)
            .build()
            .unwrap();
        let c_mono = cost_of(&mono);
        let c_quad = cost_of(&quad);
        assert!(
            c_quad.compute_usd < c_mono.compute_usd,
            "4x chiplets {:.0} should beat monolithic {:.0}",
            c_quad.compute_usd,
            c_mono.compute_usd
        );
    }

    #[test]
    fn four_times_hbm_devices_quadruple_dram_cost() {
        // Fig. 5's cost effect: 16x16-tile chiplets need 4x more HBM
        // devices than 32x32 for the same total tiles
        let big = SystemConfig::builder()
            .chiplet_tiles(32, 32)
            .dram(DramConfig::default())
            .build()
            .unwrap();
        let small = SystemConfig::builder()
            .chiplet_tiles(16, 16)
            .package_chiplets(2, 2)
            .dram(DramConfig::default())
            .build()
            .unwrap();
        assert!((cost_of(&small).hbm_usd / cost_of(&big).hbm_usd - 4.0).abs() < 1e-9);
    }

    #[test]
    fn dram_config_pays_si_interposer() {
        let dram = SystemConfig::builder()
            .chiplet_tiles(32, 32)
            .dram(DramConfig::default())
            .build()
            .unwrap();
        let spm = SystemConfig::builder()
            .chiplet_tiles(32, 32)
            .build()
            .unwrap();
        let a = cost_of(&dram);
        let b = cost_of(&spm);
        // same die, but dram packaging adds the interposer fraction
        assert!(a.packaging_usd > b.packaging_usd);
    }
}
