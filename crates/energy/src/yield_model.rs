//! Die yield (Murphy's model) and dies-per-wafer calculations, validated
//! against the industry die-yield calculators the paper cites.

/// Murphy's yield model: the fraction of good dies of area `area_mm2`
/// with `defect_density` defects per mm².
///
/// `Y = ((1 − e^(−A·D)) / (A·D))²`
pub fn murphy_yield(area_mm2: f64, defect_density: f64) -> f64 {
    let ad = area_mm2 * defect_density;
    if ad <= 0.0 {
        return 1.0;
    }
    let t = (1.0 - (-ad).exp()) / ad;
    t * t
}

/// Gross dies per wafer of diameter `wafer_mm`, with `edge_loss_mm`
/// unusable at the rim and `scribe_mm` scribe lines around each
/// `die_mm2` die.
///
/// Uses the standard estimate `π·r²/A − π·d/√(2A)` on the effective
/// (edge-trimmed) diameter.
pub fn dies_per_wafer(wafer_mm: f64, edge_loss_mm: f64, scribe_mm: f64, die_mm2: f64) -> u64 {
    let side = die_mm2.sqrt() + scribe_mm;
    let area = side * side;
    let d = (wafer_mm - 2.0 * edge_loss_mm).max(0.0);
    let gross = std::f64::consts::PI * (d / 2.0) * (d / 2.0) / area
        - std::f64::consts::PI * d / (2.0 * area).sqrt();
    gross.max(0.0).floor() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yield_bounds() {
        assert_eq!(murphy_yield(0.0, 0.07), 1.0);
        let y = murphy_yield(100.0, 0.07);
        assert!(y > 0.0 && y < 1.0);
    }

    #[test]
    fn yield_decreases_with_area() {
        let small = murphy_yield(50.0, 0.07);
        let large = murphy_yield(500.0, 0.07);
        assert!(small > large);
    }

    #[test]
    fn yield_matches_reference_point() {
        // A·D = 7 for 100mm^2 at 0.07/mm^2:
        // Y = ((1 - e^-7)/7)^2 ~ 0.02034
        let y = murphy_yield(100.0, 0.07);
        assert!((y - 0.02034).abs() < 1e-4, "{y}");
        // small dies yield far better: 10mm^2 -> ((1-e^-0.7)/0.7)^2 ~ 0.5172
        let y = murphy_yield(10.0, 0.07);
        assert!((y - 0.5172).abs() < 1e-3, "{y}");
    }

    #[test]
    fn dies_per_wafer_reasonable() {
        // ~100mm^2 dies on a 300mm wafer: ~600 gross dies is the
        // well-known ballpark
        let n = dies_per_wafer(300.0, 4.0, 0.2, 100.0);
        assert!((500..700).contains(&n), "{n}");
        // bigger dies, fewer of them
        assert!(dies_per_wafer(300.0, 4.0, 0.2, 400.0) < n / 3);
    }

    #[test]
    fn wafer_scale_die_fits_zero_or_one() {
        let n = dies_per_wafer(300.0, 4.0, 0.2, 46_225.0);
        assert!(n <= 1, "{n}");
    }
}
