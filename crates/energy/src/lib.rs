//! # muchisim-energy
//!
//! Energy, area, and fabrication-cost models (paper §III-D and §III-E).
//!
//! These models are deliberately *decoupled* from the runtime simulation:
//! they are pure functions of a [`SystemConfig`] and a
//! [`SimCounters`] value (the "counters file"), so a finished simulation
//! can be re-priced under different technology assumptions — new HBM $/GB,
//! different operating frequency, a refined area model — without
//! re-simulating (paper: "MuchiSim allows post-processing a given
//! simulation to re-calculate the energy and cost with different model
//! parameters").
//!
//! # Example
//!
//! ```
//! use muchisim_config::SystemConfig;
//! use muchisim_core::SimCounters;
//! use muchisim_energy::Report;
//!
//! let cfg = SystemConfig::default();
//! let mut counters = SimCounters::default();
//! counters.pu.fp_ops = 1_000_000;
//! counters.runtime_cycles = 100_000;
//! counters.runtime_secs = 1e-4;
//! let report = Report::from_counters(&cfg, &counters);
//! assert!(report.area.total_compute_mm2 > 0.0);
//! assert!(report.cost.total_usd > 0.0);
//! ```
//!
//! [`SystemConfig`]: muchisim_config::SystemConfig
//! [`SimCounters`]: muchisim_core::SimCounters

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod area;
mod cost;
mod energy;
mod report;
mod yield_model;

pub use area::AreaBreakdown;
pub use cost::CostBreakdown;
pub use energy::EnergyBreakdown;
pub use report::Report;
pub use yield_model::{dies_per_wafer, murphy_yield};
