//! The combined post-processing report: performance, energy, area, cost.

use crate::area::AreaBreakdown;
use crate::cost::CostBreakdown;
use crate::energy::EnergyBreakdown;
use muchisim_config::SystemConfig;
use muchisim_core::SimCounters;
use serde::{Deserialize, Serialize};

/// The full post-processed report for one simulation: the paper's
/// `calc_*` outputs. Pure function of `(config, counters)`, so energy and
/// cost can be re-calculated for different parameters after the fact
/// (paper §III-D/§III-E).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Runtime in seconds.
    pub runtime_secs: f64,
    /// FLOP/s achieved.
    pub flops: f64,
    /// Application throughput (TEPS or elements/s).
    pub app_throughput: f64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Average power in watts.
    pub average_power_w: f64,
    /// Power density in W/mm² over the compute silicon (for 3-D thermal
    /// feasibility, paper §III-D "DRAM integration").
    pub power_density_w_mm2: f64,
    /// Area breakdown.
    pub area: AreaBreakdown,
    /// Cost breakdown.
    pub cost: CostBreakdown,
    /// FLOP/s per watt.
    pub flops_per_watt: f64,
    /// FLOP/s per dollar.
    pub flops_per_dollar: f64,
    /// Application ops per joule.
    pub app_ops_per_joule: f64,
}

impl Report {
    /// Builds the report from a configuration and a counters file.
    pub fn from_counters(cfg: &SystemConfig, counters: &SimCounters) -> Self {
        let energy = EnergyBreakdown::from_counters(cfg, counters);
        let area = AreaBreakdown::from_config(cfg);
        let cost = CostBreakdown::from_config(cfg, &area);
        let power = energy.average_power_w(counters.runtime_secs);
        let flops = counters.flops();
        let joules = energy.total_pj() * 1e-12;
        Report {
            runtime_secs: counters.runtime_secs,
            flops,
            app_throughput: counters.app_throughput(),
            average_power_w: power,
            power_density_w_mm2: if area.total_silicon_mm2 > 0.0 {
                power / area.total_silicon_mm2
            } else {
                0.0
            },
            energy,
            area,
            cost,
            flops_per_watt: if power > 0.0 { flops / power } else { 0.0 },
            flops_per_dollar: if cost.total_usd > 0.0 {
                flops / cost.total_usd
            } else {
                0.0
            },
            app_ops_per_joule: if joules > 0.0 {
                counters.pu.app_ops as f64 / joules
            } else {
                0.0
            },
        }
    }

    /// Serializes to pretty JSON (the report file format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error message.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (SystemConfig, SimCounters) {
        let cfg = SystemConfig::default();
        let mut c = SimCounters::default();
        c.pu.fp_ops = 1_000_000;
        c.pu.app_ops = 2_000_000;
        c.runtime_cycles = 100_000;
        c.runtime_secs = 1e-4;
        c.mem.sram_read_bits = 1_000_000;
        c.noc.flit_hops_by_class = [10_000, 0, 0, 0];
        c.noc.onchip_flit_mm = 5_000.0;
        (cfg, c)
    }

    #[test]
    fn report_metrics_consistent() {
        let (cfg, c) = sample();
        let r = Report::from_counters(&cfg, &c);
        assert!((r.flops - 1e10).abs() < 1.0);
        assert!(r.average_power_w > 0.0);
        assert!((r.flops_per_watt - r.flops / r.average_power_w).abs() < 1e-3);
        assert!(r.flops_per_dollar > 0.0);
        assert!(r.power_density_w_mm2 > 0.0);
    }

    #[test]
    fn post_processing_reprices_without_resim() {
        let (mut cfg, c) = sample();
        let before = Report::from_counters(&cfg, &c);
        // HBM price halves; scratchpad config unaffected, wafer price
        // doubles: silicon cost doubles
        cfg.params.cost.wafer_cost_usd *= 2.0;
        let after = Report::from_counters(&cfg, &c);
        assert!((after.cost.compute_usd / before.cost.compute_usd - 2.0).abs() < 1e-9);
        assert_eq!(after.runtime_secs, before.runtime_secs);
        assert_eq!(after.energy, before.energy, "energy params unchanged");
    }

    #[test]
    fn json_round_trip() {
        let (cfg, c) = sample();
        let r = Report::from_counters(&cfg, &c);
        let back = Report::from_json(&r.to_json()).unwrap();
        // JSON decimal round-off can perturb the last ulp of f64 fields;
        // compare the metrics that drive decisions
        assert_eq!(back.runtime_secs, r.runtime_secs);
        assert!((back.flops - r.flops).abs() < 1.0);
        assert!((back.cost.total_usd - r.cost.total_usd).abs() < 1e-9);
        assert!((back.energy.total_pj() - r.energy.total_pj()).abs() < 1.0);
    }
}
