//! The energy model (paper §III-D): per-event energies from Table I
//! applied to the simulation counters, with voltage scaling of the
//! dynamic components and leakage over the runtime.

use muchisim_config::{LinkClass, MemoryConfig, SystemConfig};
use muchisim_core::SimCounters;
use serde::{Deserialize, Serialize};

/// Energy results in picojoules, by component.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// PU compute (int/fp/control ops + TSU dispatches).
    pub compute_pj: f64,
    /// SRAM accesses (data words, line fills, tags, queues).
    pub sram_pj: f64,
    /// DRAM line transfers.
    pub dram_pj: f64,
    /// DRAM refresh over the runtime.
    pub dram_refresh_pj: f64,
    /// On-chip NoC wires + routers.
    pub noc_pj: f64,
    /// Die-to-die PHY crossings.
    pub d2d_pj: f64,
    /// Off-package link crossings.
    pub off_package_pj: f64,
    /// Inter-node link crossings.
    pub inter_node_pj: f64,
    /// Static (leakage) energy over the runtime.
    pub leakage_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj
            + self.sram_pj
            + self.dram_pj
            + self.dram_refresh_pj
            + self.noc_pj
            + self.d2d_pj
            + self.off_package_pj
            + self.inter_node_pj
            + self.leakage_pj
    }

    /// Average power in watts over the run.
    pub fn average_power_w(&self, runtime_secs: f64) -> f64 {
        if runtime_secs == 0.0 {
            0.0
        } else {
            self.total_pj() * 1e-12 / runtime_secs
        }
    }

    /// Computes the breakdown from a configuration and counters file.
    pub fn from_counters(cfg: &SystemConfig, c: &SimCounters) -> Self {
        let p = &cfg.params;
        let node = cfg.technology_nm;
        // dynamic energy scales with V^2 relative to the 1 GHz
        // characterization point of the Table I parameters
        let pu_scale = p
            .voltage
            .energy_scale(cfg.pu_clock.operating.as_ghz(), 1.0, node);
        let noc_scale = p
            .voltage
            .energy_scale(cfg.noc_clock.operating.as_ghz(), 1.0, node);

        let compute_pj = (c.pu.int_ops as f64 * p.pu.int_op_energy_pj
            + c.pu.fp_ops as f64 * p.pu.fp_op_energy_pj
            + c.pu.ctrl_ops as f64 * p.pu.control_op_energy_pj
            + c.pu.tasks_executed as f64 * p.pu.task_dispatch_energy_pj)
            * pu_scale;

        let sram_pj = c.mem.sram_read_bits as f64 * p.sram.read_energy_pj_per_bit
            + c.mem.sram_write_bits as f64 * p.sram.write_energy_pj_per_bit
            + c.mem.tag_accesses as f64 * p.sram.tag_read_compare_energy_pj;

        let line_bits = p.hbm.cacheline_bits as f64;
        let dram_pj = c.mem.dram_lines() as f64 * line_bits * p.hbm.access_energy_pj_per_bit;

        // refresh: every capacity bit refreshed once per period
        let dram_refresh_pj = match &cfg.memory {
            MemoryConfig::Scratchpad => 0.0,
            MemoryConfig::Dram(d) => {
                let bits = d.devices_per_chiplet as f64
                    * cfg.hierarchy.total_chiplets() as f64
                    * p.hbm.device_capacity_gb
                    * 8e9;
                let refreshes = c.runtime_secs / (p.hbm.refresh_period_ms * 1e-3);
                bits * p.hbm.refresh_energy_pj_per_bit * refreshes
            }
        };

        let width = cfg.noc.width_bits as f64;
        let wire_pj = c.noc.onchip_flit_mm * width * p.link.noc_wire_energy_pj_per_bit_mm;
        let router_pj =
            c.noc.total_flit_hops() as f64 * width * p.link.noc_router_energy_pj_per_bit;
        let noc_pj = (wire_pj + router_pj) * noc_scale;

        let class_bits = |class: LinkClass| c.noc.flit_hops(class) as f64 * width;
        let d2d_pj = class_bits(LinkClass::DieToDie) * p.link.d2d_energy_pj_per_bit;
        let off_package_pj = class_bits(LinkClass::OffPackage)
            * (p.link.d2d_energy_pj_per_bit + p.link.off_package_energy_pj_per_bit);
        let inter_node_pj = class_bits(LinkClass::InterNode) * p.link.inter_node_energy_pj_per_bit;

        // leakage: PU leakage per PU plus SRAM leakage per active MB
        let tiles = cfg.total_tiles() as f64;
        let sram_mb = tiles * cfg.sram_kib_per_tile as f64 / 1024.0;
        let leak_w =
            tiles * cfg.pus_per_tile as f64 * p.pu.leakage_w + sram_mb * p.sram.leakage_w_per_mb;
        let leakage_pj = leak_w * c.runtime_secs * 1e12;

        EnergyBreakdown {
            compute_pj,
            sram_pj,
            dram_pj,
            dram_refresh_pj,
            noc_pj,
            d2d_pj,
            off_package_pj,
            inter_node_pj,
            leakage_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muchisim_config::{ClockDomain, DramConfig, Frequency};

    fn counters() -> SimCounters {
        let mut c = SimCounters::default();
        c.pu.int_ops = 1000;
        c.pu.fp_ops = 500;
        c.pu.tasks_executed = 10;
        c.mem.sram_read_bits = 32_000;
        c.mem.sram_write_bits = 16_000;
        c.mem.tag_accesses = 100;
        c.mem.dram_line_reads = 50;
        c.noc.flit_hops_by_class = [1000, 100, 10, 0];
        c.noc.onchip_flit_mm = 500.0;
        c.runtime_cycles = 10_000;
        c.runtime_secs = 1e-5;
        c
    }

    #[test]
    fn components_follow_table1() {
        let cfg = SystemConfig::default();
        let e = EnergyBreakdown::from_counters(&cfg, &counters());
        // compute: 1000*2.0 + 500*5.0 + 10*3.0 at 1GHz (scale = 1)
        assert!((e.compute_pj - (2000.0 + 2500.0 + 30.0)).abs() < 1e-9);
        // sram: 32000*0.18 + 16000*0.28 + 100*6.3
        assert!((e.sram_pj - (5760.0 + 4480.0 + 630.0)).abs() < 1e-9);
        // dram: 50 lines * 512 bits * 3.7
        assert!((e.dram_pj - 50.0 * 512.0 * 3.7).abs() < 1e-9);
        // d2d: 100 flits * 64 bits * 0.55
        assert!((e.d2d_pj - 100.0 * 64.0 * 0.55).abs() < 1e-9);
        assert!(e.total_pj() > 0.0);
    }

    #[test]
    fn lower_frequency_cuts_dynamic_energy() {
        let mut b = SystemConfig::builder();
        b.pu_clock(ClockDomain {
            peak: Frequency::ghz(1.0),
            operating: Frequency::ghz(0.5),
        });
        let slow = EnergyBreakdown::from_counters(&b.build().unwrap(), &counters());
        let base = EnergyBreakdown::from_counters(&SystemConfig::default(), &counters());
        assert!(slow.compute_pj < base.compute_pj);
        assert_eq!(slow.sram_pj, base.sram_pj, "SRAM not voltage-scaled");
    }

    #[test]
    fn refresh_scales_with_runtime() {
        let cfg = SystemConfig::builder()
            .chiplet_tiles(32, 32)
            .dram(DramConfig::default())
            .build()
            .unwrap();
        let mut c = counters();
        let e1 = EnergyBreakdown::from_counters(&cfg, &c);
        c.runtime_secs *= 2.0;
        let e2 = EnergyBreakdown::from_counters(&cfg, &c);
        assert!((e2.dram_refresh_pj / e1.dram_refresh_pj - 2.0).abs() < 1e-9);
    }

    #[test]
    fn scratchpad_has_no_dram_refresh() {
        let e = EnergyBreakdown::from_counters(&SystemConfig::default(), &counters());
        assert_eq!(e.dram_refresh_pj, 0.0);
    }

    #[test]
    fn average_power() {
        let e = EnergyBreakdown {
            compute_pj: 1e12, // 1 J
            ..Default::default()
        };
        assert!((e.average_power_w(2.0) - 0.5).abs() < 1e-12);
        assert_eq!(e.average_power_w(0.0), 0.0);
    }
}
