//! The bounded channel between the barrier leader and subscriber I/O.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::sample::MetricsSample;
use crate::subscribers::Subscriber;

/// Channel depth: enough to ride out a subscriber I/O hiccup lasting
/// hundreds of sample intervals before anything is dropped.
const CHANNEL_DEPTH: usize = 256;

/// Fans samples out to subscribers on a dedicated thread.
///
/// [`publish`](TelemetryHub::publish) is a `try_send`: the simulation
/// never blocks on telemetry I/O. When the channel is full the sample is
/// counted as dropped and the run continues — wards are evaluated
/// upstream of the hub, so a drop loses observation, never control.
#[derive(Debug)]
pub struct TelemetryHub {
    tx: Option<SyncSender<MetricsSample>>,
    dropped: Arc<AtomicU64>,
    worker: Option<JoinHandle<Result<(), String>>>,
}

impl TelemetryHub {
    /// Spawns the subscriber thread. An empty subscriber list is valid
    /// (the hub then just counts samples into the void).
    pub fn spawn(mut subscribers: Vec<Box<dyn Subscriber>>) -> Self {
        let (tx, rx) = sync_channel::<MetricsSample>(CHANNEL_DEPTH);
        let worker = std::thread::Builder::new()
            .name("telemetry".into())
            .spawn(move || {
                // a failed subscriber is muted (None) and its first error kept
                let mut errors: Vec<Option<String>> = vec![None; subscribers.len()];
                for sample in rx {
                    for (sub, err) in subscribers.iter_mut().zip(errors.iter_mut()) {
                        if err.is_none() {
                            *err = sub.on_sample(&sample).err();
                        }
                    }
                }
                for (sub, err) in subscribers.iter_mut().zip(errors.iter_mut()) {
                    if err.is_none() {
                        *err = sub.on_close().err();
                    }
                }
                match errors.into_iter().flatten().next() {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            })
            .expect("spawn telemetry thread");
        TelemetryHub {
            tx: Some(tx),
            dropped: Arc::new(AtomicU64::new(0)),
            worker: Some(worker),
        }
    }

    /// Offers a sample to the subscriber thread without blocking.
    pub fn publish(&self, sample: MetricsSample) {
        let Some(tx) = &self.tx else { return };
        match tx.try_send(sample) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Samples dropped because the channel was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drains the channel, closes every subscriber, and returns the
    /// first subscriber error (if any).
    ///
    /// # Errors
    ///
    /// Returns the first I/O error any subscriber hit while consuming
    /// or closing the stream.
    pub fn close(mut self) -> Result<(), String> {
        self.shutdown()
    }

    fn shutdown(&mut self) -> Result<(), String> {
        drop(self.tx.take()); // hang up: the worker drains and exits
        match self.worker.take() {
            Some(handle) => handle
                .join()
                .map_err(|_| "telemetry thread panicked".to_string())?,
            None => Ok(()),
        }
    }
}

impl Drop for TelemetryHub {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subscribers::MemorySubscriber;

    #[test]
    fn samples_flow_through_to_subscribers_in_order() {
        let mem = MemorySubscriber::new();
        let handle = mem.samples();
        let hub = TelemetryHub::spawn(vec![Box::new(mem)]);
        for seq in 0..10 {
            hub.publish(MetricsSample {
                seq,
                cycle: seq * 100,
                ..MetricsSample::default()
            });
        }
        hub.close().unwrap();
        let got = handle.lock().unwrap();
        assert_eq!(got.len(), 10);
        for (i, s) in got.iter().enumerate() {
            assert_eq!(s.seq, i as u64);
        }
    }

    #[test]
    fn empty_hub_closes_cleanly() {
        let hub = TelemetryHub::spawn(Vec::new());
        hub.publish(MetricsSample::default());
        assert!(hub.close().is_ok());
    }

    #[test]
    fn subscriber_errors_surface_on_close() {
        struct Failing;
        impl Subscriber for Failing {
            fn on_sample(&mut self, _: &MetricsSample) -> Result<(), String> {
                Err("disk full".into())
            }
        }
        let hub = TelemetryHub::spawn(vec![Box::new(Failing)]);
        hub.publish(MetricsSample::default());
        let err = hub.close().unwrap_err();
        assert!(err.contains("disk full"), "{err}");
    }
}
