//! Ward evaluation: declarative stop-conditions on the sample stream.

use muchisim_config::{WardMetric, WardParams};

use crate::sample::MetricsSample;

/// A tripped ward: which predicate fired, where, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct WardTrip {
    /// Ward name (`"stall"`, `"max_cycles"`, `"converged"`,
    /// `"diverged_queue"`, `"diverged_latency"`).
    pub ward: &'static str,
    /// Simulated cycle of the sample that tripped it.
    pub cycle: u64,
    /// Human-readable explanation with the numbers that crossed the
    /// threshold.
    pub detail: String,
}

/// Evaluates [`WardParams`] against consecutive [`MetricsSample`]s.
///
/// Stateful (stall ages, convergence windows, divergence baselines) and
/// strictly deterministic: it reads only simulation-derived sample
/// fields, so with identical configs it trips at the same cycle on every
/// host. Predicates are checked in a fixed order — `max_cycles`, stall,
/// queue divergence, latency divergence, convergence — and the first hit
/// wins.
#[derive(Debug)]
pub struct WardEngine {
    params: WardParams,
    /// Last sample cycle showing any task/packet/flit movement (starts
    /// at the run's first cycle so a slow warm-up gets the full span).
    last_progress_cycle: u64,
    /// Previous value of the convergence metric.
    prev_metric: Option<f64>,
    /// Consecutive settled samples seen so far.
    settled: u32,
    /// First-sample pending backlog (clamped ≥ 1), the queue-growth
    /// baseline.
    baseline_pending: Option<i64>,
    /// First nonzero interval latency mean, the latency-knee baseline.
    baseline_lat_mean: Option<f64>,
}

impl WardEngine {
    /// Creates an engine for a run starting (or resuming) at
    /// `start_cycle`.
    pub fn new(params: WardParams, start_cycle: u64) -> Self {
        WardEngine {
            params,
            last_progress_cycle: start_cycle,
            prev_metric: None,
            settled: 0,
            baseline_pending: None,
            baseline_lat_mean: None,
        }
    }

    /// True when at least one predicate is configured.
    pub fn is_armed(&self) -> bool {
        !self.params.is_empty()
    }

    /// Feeds one sample; returns the first tripped ward, if any.
    pub fn observe(&mut self, s: &MetricsSample) -> Option<WardTrip> {
        let trip = |ward, detail| {
            Some(WardTrip {
                ward,
                cycle: s.cycle,
                detail,
            })
        };

        if let Some(limit) = self.params.max_cycles {
            if s.cycle >= limit {
                return trip(
                    "max_cycles",
                    format!("cycle {} reached the {limit}-cycle ceiling", s.cycle),
                );
            }
        }

        let moved = s.tasks_delta > 0
            || s.injected_delta > 0
            || s.ejected_delta > 0
            || s.flit_hops_delta > 0;
        if moved {
            self.last_progress_cycle = s.cycle;
        } else if let Some(span) = self.params.stall_cycles {
            let idle = s.cycle.saturating_sub(self.last_progress_cycle);
            if idle >= span {
                return trip(
                    "stall",
                    format!(
                        "no task executed and no flit moved for {idle} cycles \
                         (watchdog span {span}; {} messages queued, {} packets pending)",
                        s.queued_msgs, s.pending
                    ),
                );
            }
        }

        if let Some(factor) = self.params.diverged_queue_factor {
            let base = *self.baseline_pending.get_or_insert(s.pending.max(1));
            if (s.pending as f64) >= factor * base as f64 {
                return trip(
                    "diverged_queue",
                    format!(
                        "pending work grew to {} from a baseline of {base} \
                         (threshold {factor}x)",
                        s.pending
                    ),
                );
            }
        }

        if let Some(factor) = self.params.diverged_latency_factor {
            if self.baseline_lat_mean.is_none() && s.lat_delta_mean > 0.0 {
                self.baseline_lat_mean = Some(s.lat_delta_mean);
            } else if let Some(base) = self.baseline_lat_mean {
                if s.lat_delta_mean >= factor * base {
                    return trip(
                        "diverged_latency",
                        format!(
                            "interval latency mean hit {:.1} cycles from a baseline \
                             of {base:.1} (threshold {factor}x)",
                            s.lat_delta_mean
                        ),
                    );
                }
            }
        }

        if let Some(conv) = &self.params.converged {
            let value = match conv.metric {
                WardMetric::Tasks => s.tasks_delta as f64,
                WardMetric::Injected => s.injected_delta as f64,
                WardMetric::Pending => s.pending as f64,
                WardMetric::LatencyMean => s.lat_delta_mean,
            };
            if let Some(prev) = self.prev_metric {
                if (value - prev).abs() <= conv.epsilon {
                    self.settled += 1;
                } else {
                    self.settled = 0;
                }
                if self.settled >= conv.window {
                    return trip(
                        "converged",
                        format!(
                            "{} delta stayed within {} for {} consecutive samples \
                             (latest value {value})",
                            conv.metric.label(),
                            conv.epsilon,
                            conv.window
                        ),
                    );
                }
            }
            self.prev_metric = Some(value);
        }

        None
    }
}

#[cfg(test)]
mod tests {
    use muchisim_config::ConvergedWard;

    use super::*;

    fn sample(cycle: u64, tasks_delta: u64) -> MetricsSample {
        MetricsSample {
            cycle,
            tasks_delta,
            ..MetricsSample::default()
        }
    }

    #[test]
    fn unarmed_engine_never_trips() {
        let mut e = WardEngine::new(WardParams::default(), 0);
        assert!(!e.is_armed());
        assert!(e.observe(&sample(1_000_000, 0)).is_none());
    }

    #[test]
    fn max_cycles_trips_at_the_ceiling() {
        let params = WardParams {
            max_cycles: Some(5_000),
            ..WardParams::default()
        };
        let mut e = WardEngine::new(params, 0);
        assert!(e.observe(&sample(4_999, 1)).is_none());
        let t = e.observe(&sample(5_000, 1)).expect("trip");
        assert_eq!(t.ward, "max_cycles");
        assert_eq!(t.cycle, 5_000);
    }

    #[test]
    fn stall_watchdog_needs_a_full_idle_span() {
        let params = WardParams {
            stall_cycles: Some(2_000),
            ..WardParams::default()
        };
        let mut e = WardEngine::new(params, 0);
        // progress at cycle 1000 resets the watchdog
        assert!(e.observe(&sample(1_000, 7)).is_none());
        // idle but not long enough
        assert!(e.observe(&sample(2_000, 0)).is_none());
        let t = e.observe(&sample(3_000, 0)).expect("trip");
        assert_eq!(t.ward, "stall");
        assert!(t.detail.contains("2000 cycles"), "{}", t.detail);
        // flit movement alone counts as progress
        let mut e = WardEngine::new(
            WardParams {
                stall_cycles: Some(2_000),
                ..WardParams::default()
            },
            0,
        );
        let moving = MetricsSample {
            cycle: 5_000,
            flit_hops_delta: 1,
            ..MetricsSample::default()
        };
        assert!(e.observe(&moving).is_none());
    }

    #[test]
    fn queue_divergence_measures_against_first_sample() {
        let params = WardParams {
            diverged_queue_factor: Some(4.0),
            ..WardParams::default()
        };
        let mut e = WardEngine::new(params, 0);
        let mut s = sample(100, 1);
        s.pending = 10;
        assert!(e.observe(&s).is_none());
        s.cycle = 200;
        s.pending = 39;
        assert!(e.observe(&s).is_none());
        s.cycle = 300;
        s.pending = 40;
        let t = e.observe(&s).expect("trip");
        assert_eq!(t.ward, "diverged_queue");
        assert!(t.detail.contains("baseline of 10"), "{}", t.detail);
    }

    #[test]
    fn latency_divergence_waits_for_a_nonzero_baseline() {
        let params = WardParams {
            diverged_latency_factor: Some(3.0),
            ..WardParams::default()
        };
        let mut e = WardEngine::new(params, 0);
        let mut s = sample(100, 1);
        s.lat_delta_mean = 0.0; // drain interval: no baseline yet
        assert!(e.observe(&s).is_none());
        s.cycle = 200;
        s.lat_delta_mean = 8.0; // baseline
        assert!(e.observe(&s).is_none());
        s.cycle = 300;
        s.lat_delta_mean = 23.9;
        assert!(e.observe(&s).is_none());
        s.cycle = 400;
        s.lat_delta_mean = 24.0;
        let t = e.observe(&s).expect("trip");
        assert_eq!(t.ward, "diverged_latency");
    }

    #[test]
    fn convergence_needs_the_full_window() {
        let params = WardParams {
            converged: Some(ConvergedWard {
                metric: WardMetric::Tasks,
                epsilon: 0.5,
                window: 2,
            }),
            ..WardParams::default()
        };
        let mut e = WardEngine::new(params, 0);
        assert!(e.observe(&sample(100, 50)).is_none()); // no prev yet
        assert!(e.observe(&sample(200, 50)).is_none()); // settled 1/2
        let t = e.observe(&sample(300, 50)).expect("trip"); // settled 2/2
        assert_eq!(t.ward, "converged");
        assert!(t.detail.contains("tasks"), "{}", t.detail);
        // a jump resets the window
        let params = WardParams {
            converged: Some(ConvergedWard {
                metric: WardMetric::Tasks,
                epsilon: 0.5,
                window: 2,
            }),
            ..WardParams::default()
        };
        let mut e = WardEngine::new(params, 0);
        assert!(e.observe(&sample(100, 50)).is_none());
        assert!(e.observe(&sample(200, 50)).is_none());
        assert!(e.observe(&sample(300, 90)).is_none()); // reset
        assert!(e.observe(&sample(400, 90)).is_none()); // settled 1/2
        assert!(e.observe(&sample(500, 90)).is_some());
    }
}
