//! Sample consumers: files, memory, and the stdout progress line.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::sample::MetricsSample;

/// A consumer of the telemetry stream.
///
/// Subscribers run on the hub's own thread, never on a simulation
/// worker: an I/O error is captured and reported when the stream closes
/// instead of interrupting the run.
pub trait Subscriber: Send {
    /// Consumes one sample.
    ///
    /// # Errors
    ///
    /// Returns a message describing an I/O failure; the hub stops
    /// feeding a failed subscriber and surfaces the first error on
    /// close.
    fn on_sample(&mut self, sample: &MetricsSample) -> Result<(), String>;

    /// Flushes and finalizes the stream.
    ///
    /// # Errors
    ///
    /// Returns a message describing an I/O failure during the flush.
    fn on_close(&mut self) -> Result<(), String> {
        Ok(())
    }
}

impl std::fmt::Debug for dyn Subscriber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Subscriber")
    }
}

/// Streams samples as one JSON object per line (the schema-versioned
/// wire format; field `v` is [`SCHEMA_VERSION`](crate::SCHEMA_VERSION)).
#[derive(Debug)]
pub struct JsonlSubscriber {
    out: BufWriter<File>,
}

impl JsonlSubscriber {
    /// Creates (truncates) the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Returns a message when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let file = File::create(path)
            .map_err(|e| format!("cannot create metrics stream {}: {e}", path.display()))?;
        Ok(JsonlSubscriber {
            out: BufWriter::new(file),
        })
    }
}

impl Subscriber for JsonlSubscriber {
    fn on_sample(&mut self, sample: &MetricsSample) -> Result<(), String> {
        let line = serde_json::to_string(sample).map_err(|e| e.to_string())?;
        writeln!(self.out, "{line}").map_err(|e| format!("metrics stream write failed: {e}"))
    }

    fn on_close(&mut self) -> Result<(), String> {
        self.out
            .flush()
            .map_err(|e| format!("metrics stream flush failed: {e}"))
    }
}

/// Streams samples as CSV (header + one row per sample), for
/// spreadsheet-shaped consumers.
#[derive(Debug)]
pub struct CsvSubscriber {
    out: BufWriter<File>,
    wrote_header: bool,
}

/// CSV column order (kept in sync with [`MetricsSample`]'s fields).
const CSV_HEADER: &str = "v,seq,cycle,tasks,tasks_delta,injected,injected_delta,\
ejected,ejected_delta,flit_hops,flit_hops_delta,pending,queued_msgs,active_tiles,\
total_tiles,active_routers,lat_count,lat_mean,lat_p50,lat_p95,lat_p99,\
lat_delta_count,lat_delta_mean,phase_pu_ns,phase_inject_ns,phase_net_ns,\
phase_worklist_ns,host_ns,cyc_per_s";

impl CsvSubscriber {
    /// Creates (truncates) the CSV file at `path`.
    ///
    /// # Errors
    ///
    /// Returns a message when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let file = File::create(path)
            .map_err(|e| format!("cannot create metrics CSV {}: {e}", path.display()))?;
        Ok(CsvSubscriber {
            out: BufWriter::new(file),
            wrote_header: false,
        })
    }
}

impl Subscriber for CsvSubscriber {
    fn on_sample(&mut self, s: &MetricsSample) -> Result<(), String> {
        let io = |e| format!("metrics CSV write failed: {e}");
        if !self.wrote_header {
            writeln!(self.out, "{CSV_HEADER}").map_err(io)?;
            self.wrote_header = true;
        }
        writeln!(
            self.out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.3},{},{},{},{},{:.3},{},{},{},{},{},{:.1}",
            s.v,
            s.seq,
            s.cycle,
            s.tasks,
            s.tasks_delta,
            s.injected,
            s.injected_delta,
            s.ejected,
            s.ejected_delta,
            s.flit_hops,
            s.flit_hops_delta,
            s.pending,
            s.queued_msgs,
            s.active_tiles,
            s.total_tiles,
            s.active_routers,
            s.lat_count,
            s.lat_mean,
            s.lat_p50,
            s.lat_p95,
            s.lat_p99,
            s.lat_delta_count,
            s.lat_delta_mean,
            s.phase_pu_ns,
            s.phase_inject_ns,
            s.phase_net_ns,
            s.phase_worklist_ns,
            s.host_ns,
            s.cyc_per_s,
        )
        .map_err(io)
    }

    fn on_close(&mut self) -> Result<(), String> {
        self.out
            .flush()
            .map_err(|e| format!("metrics CSV flush failed: {e}"))
    }
}

/// Collects samples into a shared vector — the test subscriber.
#[derive(Debug, Default)]
pub struct MemorySubscriber {
    samples: Arc<Mutex<Vec<MetricsSample>>>,
}

impl MemorySubscriber {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle to the collected samples (shared with the hub thread).
    pub fn samples(&self) -> Arc<Mutex<Vec<MetricsSample>>> {
        Arc::clone(&self.samples)
    }
}

impl Subscriber for MemorySubscriber {
    fn on_sample(&mut self, sample: &MetricsSample) -> Result<(), String> {
        self.samples
            .lock()
            .map_err(|_| "sample collector poisoned".to_string())?
            .push(sample.clone());
        Ok(())
    }
}

/// The naive stdout progress line:
/// `cycle 12000 | 1.5M cyc/s | active 3.2% | ETA 00:42`.
///
/// Rewrites one terminal line per sample (carriage return, no newline
/// until close). The ETA extrapolates the current rate to
/// `target_cycle`, when one is known (a cycle limit or a `max_cycles`
/// ward).
#[derive(Debug)]
pub struct ProgressSubscriber {
    target_cycle: Option<u64>,
    wrote: bool,
}

impl ProgressSubscriber {
    /// Creates a progress line aiming at `target_cycle` (for the ETA).
    pub fn new(target_cycle: Option<u64>) -> Self {
        ProgressSubscriber {
            target_cycle,
            wrote: false,
        }
    }

    fn line(&self, s: &MetricsSample) -> String {
        let rate = if s.cyc_per_s >= 1e6 {
            format!("{:.1}M cyc/s", s.cyc_per_s / 1e6)
        } else if s.cyc_per_s >= 1e3 {
            format!("{:.1}k cyc/s", s.cyc_per_s / 1e3)
        } else {
            format!("{:.0} cyc/s", s.cyc_per_s)
        };
        let eta = match self.target_cycle {
            Some(target) if target > s.cycle && s.cyc_per_s > 0.0 => {
                let secs = (target - s.cycle) as f64 / s.cyc_per_s;
                let secs = secs.min(99.0 * 3600.0) as u64;
                format!(
                    "ETA {:02}:{:02}:{:02}",
                    secs / 3600,
                    (secs % 3600) / 60,
                    secs % 60
                )
            }
            _ => "ETA --".to_string(),
        };
        format!(
            "cycle {} | {rate} | active {:.1}% | {eta}",
            s.cycle,
            100.0 * s.active_fraction()
        )
    }
}

impl Subscriber for ProgressSubscriber {
    fn on_sample(&mut self, sample: &MetricsSample) -> Result<(), String> {
        let mut out = std::io::stdout().lock();
        // ignore a broken stdout pipe: progress is best-effort cosmetics
        let _ = write!(out, "\r\x1b[2K{}", self.line(sample));
        let _ = out.flush();
        self.wrote = true;
        Ok(())
    }

    fn on_close(&mut self) -> Result<(), String> {
        if self.wrote {
            let mut out = std::io::stdout().lock();
            let _ = writeln!(out);
            let _ = out.flush();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64, cycle: u64) -> MetricsSample {
        MetricsSample {
            seq,
            cycle,
            tasks: 100 * seq,
            active_tiles: 8,
            total_tiles: 64,
            cyc_per_s: 2_500_000.0,
            ..MetricsSample::default()
        }
    }

    #[test]
    fn jsonl_writes_one_versioned_object_per_line() {
        let dir = std::env::temp_dir().join("muchisim-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.jsonl");
        let mut sub = JsonlSubscriber::create(&path).unwrap();
        sub.on_sample(&sample(0, 1_000)).unwrap();
        sub.on_sample(&sample(1, 2_000)).unwrap();
        sub.on_close().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let back: MetricsSample = serde_json::from_str(line).unwrap();
            assert_eq!(back.v, crate::SCHEMA_VERSION);
            assert_eq!(back.seq, i as u64);
        }
    }

    #[test]
    fn csv_has_header_and_matching_column_count() {
        let dir = std::env::temp_dir().join("muchisim-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.csv");
        let mut sub = CsvSubscriber::create(&path).unwrap();
        sub.on_sample(&sample(0, 1_000)).unwrap();
        sub.on_close().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let cols = lines[0].split(',').count();
        assert_eq!(lines[1].split(',').count(), cols);
        assert!(lines[0].starts_with("v,seq,cycle,"));
    }

    #[test]
    fn memory_subscriber_shares_its_buffer() {
        let mut sub = MemorySubscriber::new();
        let handle = sub.samples();
        sub.on_sample(&sample(0, 10)).unwrap();
        sub.on_sample(&sample(1, 20)).unwrap();
        assert_eq!(handle.lock().unwrap().len(), 2);
    }

    #[test]
    fn progress_line_formats_rate_active_and_eta() {
        let sub = ProgressSubscriber::new(Some(10_000_000));
        let line = sub.line(&sample(3, 5_000_000));
        assert!(line.contains("cycle 5000000"), "{line}");
        assert!(line.contains("2.5M cyc/s"), "{line}");
        assert!(line.contains("active 12.5%"), "{line}");
        assert!(line.contains("ETA 00:00:02"), "{line}");
        // no target → no ETA estimate
        let sub = ProgressSubscriber::new(None);
        assert!(sub.line(&sample(0, 1)).contains("ETA --"));
    }
}
