//! Sample types and the leader-side aggregator.

use std::time::Instant;

use muchisim_noc::LatencyStats;
use serde::{Deserialize, Serialize};

/// Version tag written as the first field of every serialized sample, so
/// stream consumers can detect schema drift.
pub const SCHEMA_VERSION: u32 = 1;

/// One worker's contribution to a sample: its own cumulative counters,
/// read at the sample boundary (never reset — the aggregator computes
/// interval deltas by differencing consecutive merged totals).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkerSample {
    /// Tasks executed since the start of the run (this worker's tiles).
    pub tasks: u64,
    /// Queued messages + in-flight packets still owed to this worker's
    /// tiles (the worker's quiescence ledger; may momentarily go
    /// negative per worker, sums to ≥ 0 across workers).
    pub pending: i64,
    /// Tiles currently on this worker's active list.
    pub active_tiles: u64,
    /// Tiles owned by this worker.
    pub tiles: u64,
    /// Routers currently active across this worker's NoC shards.
    pub active_routers: u64,
    /// Packets injected by this worker's shards (cumulative).
    pub injected: u64,
    /// Packets ejected by this worker's shards (cumulative).
    pub ejected: u64,
    /// Flit-hops traversed in this worker's shards (cumulative, all
    /// message classes).
    pub flit_hops: u64,
    /// Messages parked in this worker's router queues right now.
    pub queued_msgs: u64,
    /// Packet-latency histogram for this worker's shards (cumulative).
    pub latency: LatencyStats,
    /// Host nanoseconds this worker has attributed to the PU, inject,
    /// net, and worklist phases (cumulative).
    pub phase_ns: [u64; 4],
}

impl WorkerSample {
    /// Accumulates `other` into `self` (commutative).
    pub fn merge(&mut self, other: &WorkerSample) {
        self.tasks += other.tasks;
        self.pending += other.pending;
        self.active_tiles += other.active_tiles;
        self.tiles += other.tiles;
        self.active_routers += other.active_routers;
        self.injected += other.injected;
        self.ejected += other.ejected;
        self.flit_hops += other.flit_hops;
        self.queued_msgs += other.queued_msgs;
        self.latency.merge(&other.latency);
        for (a, b) in self.phase_ns.iter_mut().zip(&other.phase_ns) {
            *a += b;
        }
    }
}

/// One merged telemetry sample: the whole machine at one cycle boundary.
///
/// Cumulative fields count from the start of the run (or from the
/// resumed snapshot's restore point); `*_delta` fields cover the
/// interval since the previous sample. All fields except `host_ns` and
/// `cyc_per_s` are deterministic functions of simulated state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct MetricsSample {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub v: u32,
    /// Sample sequence number (0, 1, 2, ... within one run).
    pub seq: u64,
    /// Simulated NoC cycle the sample was taken at.
    pub cycle: u64,
    /// Tasks executed (cumulative).
    pub tasks: u64,
    /// Tasks executed this interval.
    pub tasks_delta: u64,
    /// Packets injected (cumulative).
    pub injected: u64,
    /// Packets injected this interval.
    pub injected_delta: u64,
    /// Packets ejected (cumulative).
    pub ejected: u64,
    /// Packets ejected this interval.
    pub ejected_delta: u64,
    /// Flit-hops traversed (cumulative).
    pub flit_hops: u64,
    /// Flit-hops traversed this interval.
    pub flit_hops_delta: u64,
    /// Outstanding work: queued messages + in-flight packets.
    pub pending: i64,
    /// Messages parked in router queues right now.
    pub queued_msgs: u64,
    /// Tiles on active worklists right now.
    pub active_tiles: u64,
    /// Total tiles simulated.
    pub total_tiles: u64,
    /// Routers on active worklists right now.
    pub active_routers: u64,
    /// Packet latencies recorded (cumulative).
    pub lat_count: u64,
    /// Mean packet latency in cycles (cumulative).
    pub lat_mean: f64,
    /// Median packet latency (cumulative, log₂-bucket resolution).
    pub lat_p50: u64,
    /// 95th-percentile packet latency (cumulative).
    pub lat_p95: u64,
    /// 99th-percentile packet latency (cumulative).
    pub lat_p99: u64,
    /// Packet latencies recorded this interval.
    pub lat_delta_count: u64,
    /// Mean packet latency over this interval's packets.
    pub lat_delta_mean: f64,
    /// Host ns attributed to the PU phase (cumulative).
    pub phase_pu_ns: u64,
    /// Host ns attributed to the inject phase (cumulative).
    pub phase_inject_ns: u64,
    /// Host ns attributed to the net phase (cumulative).
    pub phase_net_ns: u64,
    /// Host ns attributed to worklist bookkeeping (cumulative).
    pub phase_worklist_ns: u64,
    /// Host wall-clock ns since the run started (non-deterministic).
    pub host_ns: u64,
    /// Simulated cycles per host second over this interval
    /// (non-deterministic).
    pub cyc_per_s: f64,
}

impl Default for MetricsSample {
    fn default() -> Self {
        MetricsSample {
            v: SCHEMA_VERSION,
            seq: 0,
            cycle: 0,
            tasks: 0,
            tasks_delta: 0,
            injected: 0,
            injected_delta: 0,
            ejected: 0,
            ejected_delta: 0,
            flit_hops: 0,
            flit_hops_delta: 0,
            pending: 0,
            queued_msgs: 0,
            active_tiles: 0,
            total_tiles: 0,
            active_routers: 0,
            lat_count: 0,
            lat_mean: 0.0,
            lat_p50: 0,
            lat_p95: 0,
            lat_p99: 0,
            lat_delta_count: 0,
            lat_delta_mean: 0.0,
            phase_pu_ns: 0,
            phase_inject_ns: 0,
            phase_net_ns: 0,
            phase_worklist_ns: 0,
            host_ns: 0,
            cyc_per_s: 0.0,
        }
    }
}

impl MetricsSample {
    /// Fraction of tiles currently active, in `[0, 1]`.
    pub fn active_fraction(&self) -> f64 {
        if self.total_tiles == 0 {
            0.0
        } else {
            self.active_tiles as f64 / self.total_tiles as f64
        }
    }
}

/// Folds per-worker samples into [`MetricsSample`]s, differencing
/// consecutive totals into interval deltas and stamping host timing.
#[derive(Debug)]
pub struct SampleAggregator {
    seq: u64,
    start: Instant,
    last_instant: Instant,
    last_cycle: u64,
    prev: Option<Prev>,
}

#[derive(Debug)]
struct Prev {
    tasks: u64,
    injected: u64,
    ejected: u64,
    flit_hops: u64,
    lat_count: u64,
    lat_total_cycles: u64,
}

impl SampleAggregator {
    /// Creates an aggregator for a run starting (or resuming) at
    /// `start_cycle`.
    pub fn new(start_cycle: u64) -> Self {
        let now = Instant::now();
        SampleAggregator {
            seq: 0,
            start: now,
            last_instant: now,
            last_cycle: start_cycle,
            prev: None,
        }
    }

    /// Merges the workers' deposits into the next sample.
    pub fn merge(&mut self, cycle: u64, workers: &[WorkerSample]) -> MetricsSample {
        let mut total = WorkerSample::default();
        for w in workers {
            total.merge(w);
        }

        let prev = self.prev.take().unwrap_or(Prev {
            tasks: 0,
            injected: 0,
            ejected: 0,
            flit_hops: 0,
            lat_count: 0,
            lat_total_cycles: 0,
        });
        let lat_delta_count = total.latency.count - prev.lat_count;
        let lat_delta_total = total.latency.total_cycles - prev.lat_total_cycles;

        let now = Instant::now();
        let interval_s = now.duration_since(self.last_instant).as_secs_f64();
        let interval_cycles = cycle.saturating_sub(self.last_cycle);
        let cyc_per_s = if interval_s > 0.0 {
            interval_cycles as f64 / interval_s
        } else {
            0.0
        };

        let sample = MetricsSample {
            v: SCHEMA_VERSION,
            seq: self.seq,
            cycle,
            tasks: total.tasks,
            tasks_delta: total.tasks - prev.tasks,
            injected: total.injected,
            injected_delta: total.injected - prev.injected,
            ejected: total.ejected,
            ejected_delta: total.ejected - prev.ejected,
            flit_hops: total.flit_hops,
            flit_hops_delta: total.flit_hops - prev.flit_hops,
            pending: total.pending,
            queued_msgs: total.queued_msgs,
            active_tiles: total.active_tiles,
            total_tiles: total.tiles,
            active_routers: total.active_routers,
            lat_count: total.latency.count,
            lat_mean: total.latency.mean(),
            lat_p50: total.latency.percentile(0.50),
            lat_p95: total.latency.percentile(0.95),
            lat_p99: total.latency.percentile(0.99),
            lat_delta_count,
            lat_delta_mean: if lat_delta_count == 0 {
                0.0
            } else {
                lat_delta_total as f64 / lat_delta_count as f64
            },
            phase_pu_ns: total.phase_ns[0],
            phase_inject_ns: total.phase_ns[1],
            phase_net_ns: total.phase_ns[2],
            phase_worklist_ns: total.phase_ns[3],
            host_ns: now.duration_since(self.start).as_nanos() as u64,
            cyc_per_s,
        };

        self.seq += 1;
        self.last_instant = now;
        self.last_cycle = cycle;
        self.prev = Some(Prev {
            tasks: total.tasks,
            injected: total.injected,
            ejected: total.ejected,
            flit_hops: total.flit_hops,
            lat_count: total.latency.count,
            lat_total_cycles: total.latency.total_cycles,
        });
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(tasks: u64, injected: u64) -> WorkerSample {
        let mut latency = LatencyStats::default();
        for lat in [4u64, 8, 16] {
            latency.record(lat);
        }
        WorkerSample {
            tasks,
            pending: 3,
            active_tiles: 2,
            tiles: 8,
            active_routers: 1,
            injected,
            ejected: injected,
            flit_hops: injected * 4,
            queued_msgs: 1,
            latency,
            phase_ns: [10, 20, 30, 40],
        }
    }

    #[test]
    fn merge_sums_workers_and_differences_intervals() {
        let mut agg = SampleAggregator::new(0);
        let s0 = agg.merge(1_000, &[worker(5, 10), worker(7, 2)]);
        assert_eq!(s0.v, SCHEMA_VERSION);
        assert_eq!(s0.seq, 0);
        assert_eq!(s0.tasks, 12);
        assert_eq!(s0.tasks_delta, 12);
        assert_eq!(s0.injected, 12);
        assert_eq!(s0.pending, 6);
        assert_eq!(s0.active_tiles, 4);
        assert_eq!(s0.total_tiles, 16);
        assert_eq!(s0.lat_count, 6);
        assert_eq!(s0.phase_inject_ns, 40);

        // same cumulative totals next sample → all deltas zero
        let s1 = agg.merge(2_000, &[worker(5, 10), worker(7, 2)]);
        assert_eq!(s1.seq, 1);
        assert_eq!(s1.tasks_delta, 0);
        assert_eq!(s1.injected_delta, 0);
        assert_eq!(s1.lat_delta_count, 0);
        assert_eq!(s1.lat_delta_mean, 0.0);
        // cumulative values persist
        assert_eq!(s1.tasks, 12);
    }

    #[test]
    fn latency_percentiles_come_from_the_histogram() {
        let mut agg = SampleAggregator::new(0);
        let s = agg.merge(100, &[worker(1, 1)]);
        assert!(s.lat_mean > 0.0);
        assert!(s.lat_p50 <= s.lat_p95 && s.lat_p95 <= s.lat_p99);
    }

    #[test]
    fn active_fraction_handles_empty() {
        assert_eq!(MetricsSample::default().active_fraction(), 0.0);
        let s = MetricsSample {
            active_tiles: 32,
            total_tiles: 64,
            ..MetricsSample::default()
        };
        assert!((s.active_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let s = MetricsSample {
            seq: 9,
            cycle: 4_096,
            tasks: 77,
            lat_mean: 12.5,
            ..MetricsSample::default()
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSample = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        // the schema version is the first field on the wire
        assert!(json.starts_with("{\"v\":"));
    }
}
