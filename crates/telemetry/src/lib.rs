//! # muchisim-telemetry
//!
//! Live observability for the MuchiSim cycle driver: periodic
//! [`MetricsSample`]s merged by the worker-barrier leader, a bounded
//! [`TelemetryHub`] channel that decouples the hot loop from subscriber
//! I/O, pluggable [`Subscriber`]s (JSONL, CSV, in-memory, stdout
//! progress), and the [`WardEngine`] that evaluates declarative
//! stop-conditions ([`WardParams`](muchisim_config::WardParams)) on the
//! sample stream.
//!
//! The division of labor with `muchisim-core`:
//!
//! * each worker deposits a [`WorkerSample`] of its own cumulative
//!   counters at a sample boundary (cheap: a few dozen u64 reads);
//! * the barrier leader folds them through a [`SampleAggregator`] into
//!   one [`MetricsSample`] (cumulative values, interval deltas, latency
//!   percentiles, host throughput);
//! * the sample goes to the [`WardEngine`] (synchronously — ward trips
//!   must be deterministic) and to the [`TelemetryHub`] (`try_send`,
//!   never blocking — a slow subscriber drops samples rather than
//!   stalling the simulation).
//!
//! Determinism: every field a ward may read is derived from simulated
//! state and merged commutatively, so a ward trips at the same simulated
//! cycle regardless of host-thread count, time-leap, or active-list
//! mode. Host-side fields (`host_ns`, `cyc_per_s`) exist for humans and
//! are never consulted by wards.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod hub;
mod sample;
mod subscribers;
mod wards;

pub use hub::TelemetryHub;
pub use sample::{MetricsSample, SampleAggregator, WorkerSample, SCHEMA_VERSION};
pub use subscribers::{
    CsvSubscriber, JsonlSubscriber, MemorySubscriber, ProgressSubscriber, Subscriber,
};
pub use wards::{WardEngine, WardTrip};
