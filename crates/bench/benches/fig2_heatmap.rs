//! Fig. 2 — router/PU activity animation for BFS under three NoCs:
//! 2D mesh, 2D torus, and 2D torus with reduction trees.
//!
//! The paper shows frame counts of 50 / 28 / 16 (proportional to
//! execution time) at a fixed frame rate. This bench reruns
//! barrier-synchronized BFS on a scaled-down RMAT with the same fixed
//! frame interval, writes the PPM frame sequences (the "GIF") under
//! `target/fig2/`, prints an ASCII snapshot per NoC, and checks the
//! paper's ordering: mesh slower than torus, torus slower than
//! torus+reduction-trees.

use muchisim_apps::{high_degree_root, Bfs, SyncMode};
use muchisim_config::{NocTopology, ReductionTreeConfig, SystemConfig, Verbosity};
use muchisim_core::Simulation;
use muchisim_viz::Heatmap;

const SIDE: u32 = 16;
const RMAT_SCALE: u32 = 13;
const FRAME_CYCLES: u64 = 4000;

fn run(noc: &str) -> (usize, u64) {
    let mut b = SystemConfig::builder();
    // a narrow NoC with shallow buffers puts the run in the
    // network-congested regime the paper's Fig. 2 depicts
    b.chiplet_tiles(SIDE, SIDE)
        .noc_width_bits(32)
        .buffer_depth(2)
        .verbosity(Verbosity::V2)
        .frame_interval_cycles(FRAME_CYCLES);
    let reduction = match noc {
        "mesh" => {
            b.noc_topology(NocTopology::Mesh);
            false
        }
        "torus" => {
            b.noc_topology(NocTopology::FoldedTorus);
            false
        }
        _ => {
            b.noc_topology(NocTopology::FoldedTorus)
                .reduction_tree(ReductionTreeConfig::default());
            true
        }
    };
    let cfg = b.build().unwrap();
    let graph = muchisim_bench::bench_graph(RMAT_SCALE);
    let root = high_degree_root(&graph);
    let app = Bfs::new(graph, cfg.total_tiles() as u32, root, SyncMode::Barrier)
        .with_reduction(reduction);
    let result = Simulation::new(cfg, app).unwrap().run_parallel(8).unwrap();
    assert!(
        result.check_error.is_none(),
        "{noc}: {:?}",
        result.check_error
    );

    // write the router-activity frame sequence (the GIF equivalent)
    let hm = Heatmap::new(SIDE, SIDE);
    let frames: Vec<Vec<u32>> = result
        .frames
        .frames
        .iter()
        .map(|f| f.router_grid(SIDE * SIDE))
        .collect();
    let dir = std::path::Path::new("target").join("fig2").join(noc);
    hm.write_sequence(&dir, &frames, FRAME_CYCLES as u32)
        .unwrap();

    // print the busiest frame as ASCII (router activity)
    if let Some(busiest) = frames.iter().max_by_key(|g| g.iter().sum::<u32>()) {
        println!("[{noc}] busiest router-activity frame:");
        println!("{}", hm.ascii(busiest, FRAME_CYCLES as u32 / 4));
    }
    (result.frames.len(), result.runtime_cycles)
}

fn main() {
    muchisim_bench::rule("Fig. 2: BFS router/PU activity, frame counts per NoC");
    let (mesh_frames, mesh_cy) = run("mesh");
    let (torus_frames, torus_cy) = run("torus");
    let (tree_frames, tree_cy) = run("torus+tree");
    println!("{:<14} {:>8} {:>12}", "NoC", "frames", "cycles");
    println!(
        "{:<14} {:>8} {:>12}   (paper: 50)",
        "mesh", mesh_frames, mesh_cy
    );
    println!(
        "{:<14} {:>8} {:>12}   (paper: 28)",
        "torus", torus_frames, torus_cy
    );
    println!(
        "{:<14} {:>8} {:>12}   (paper: 16)",
        "torus+tree", tree_frames, tree_cy
    );
    assert!(
        mesh_cy > torus_cy,
        "mesh ({mesh_cy}) should be slower than torus ({torus_cy})"
    );
    assert!(
        torus_cy >= tree_cy,
        "torus ({torus_cy}) should not beat torus+reduction ({tree_cy})"
    );
    println!(
        "shape check: mesh/torus = {:.2}x (paper 1.79x), torus/tree = {:.2}x (paper 1.75x)",
        mesh_cy as f64 / torus_cy as f64,
        torus_cy as f64 / tree_cy as f64
    );
    println!("frame sequences written under target/fig2/");
}
