//! NoC latency-versus-offered-load characterization: the saturation
//! curves of the three topologies (mesh, folded torus, Ruche mesh) under
//! uniform-random synthetic traffic, plus the trace record→replay
//! round-trip check. Records `BENCH_traffic.json` at the workspace root.
//!
//! `cargo bench -p muchisim-bench --bench traffic` for the full sweep;
//! `-- --smoke` for the scaled-down CI pass (two rates, one topology,
//! no JSON).

use muchisim_apps::{run_benchmark, Benchmark};
use muchisim_config::{NocTopology, SystemConfig, TrafficPattern};
use muchisim_core::Simulation;
use muchisim_noc::read_trace_jsonl;
use muchisim_traffic::{saturation_sweep, SaturationCurve, TraceReplayApp};

/// Saturation criterion: mean latency above this multiple of the
/// zero-load mean.
const SATURATION_FACTOR: f64 = 3.0;
const WINDOW_CYCLES: u64 = 2_000;

fn config(side: u32, topo: &str) -> SystemConfig {
    let mut b = SystemConfig::builder();
    b.chiplet_tiles(side, side)
        // receive handlers must outpace the network so the knee we
        // measure is the fabric's, not the PUs'
        .pus_per_tile(4);
    match topo {
        "mesh" => b.noc_topology(NocTopology::Mesh),
        "torus" => b.noc_topology(NocTopology::FoldedTorus),
        "ruche" => b.noc_topology(NocTopology::Mesh).ruche_factor(2),
        other => panic!("unknown topology {other}"),
    };
    let mut cfg = b.build().expect("valid traffic config");
    cfg.traffic.cycles = WINDOW_CYCLES;
    cfg.traffic.seed = 0x7AFF;
    cfg
}

fn curve_json(topo: &str, curve: &SaturationCurve) -> String {
    let points: Vec<String> = curve
        .points
        .iter()
        .map(|p| {
            format!(
                "      {{\"offered\": {:.3}, \"achieved\": {:.4}, \"avg_latency\": {:.2}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}, \"injected\": {}, \
                 \"runtime_cycles\": {}}}",
                p.offered,
                p.achieved,
                p.avg_latency,
                p.p50_latency,
                p.p95_latency,
                p.p99_latency,
                p.max_latency,
                p.injected,
                p.runtime_cycles
            )
        })
        .collect();
    let sat = curve
        .saturation_point(SATURATION_FACTOR)
        .expect("saturation detected");
    format!(
        "    {{\"topology\": \"{topo}\", \"saturation_offered\": {:.3}, \
         \"saturation_accepted\": {:.4}, \"points\": [\n{}\n    ]}}",
        sat.offered,
        sat.achieved,
        points.join(",\n")
    )
}

/// Records a BFS trace, replays it on the identical config, and returns
/// `(packets, identical NoC counters)`.
fn trace_roundtrip() -> (u64, bool) {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/bench_traffic.trace.jsonl"
    );
    let mut cfg = SystemConfig::builder()
        .chiplet_tiles(4, 4)
        .queues(4096, 32) // eject headroom: precondition for bit-identity
        .noc_trace(path)
        .build()
        .unwrap();
    let graph = std::sync::Arc::new(muchisim_data::rmat::RmatConfig::scale(5).generate(0xBF5));
    let recorded = run_benchmark(Benchmark::Bfs, cfg.clone(), &graph, 1).expect("record run");
    assert!(recorded.check_error.is_none());
    assert_eq!(
        recorded.counters.noc.eject_stalls, 0,
        "headroom precondition"
    );
    let events = read_trace_jsonl(path).expect("trace parses");
    cfg.noc_trace = None;
    let app = TraceReplayApp::from_events(events, 16).expect("replay builds");
    let packets = app.total_packets();
    let replayed = Simulation::new(cfg, app)
        .unwrap()
        .run()
        .expect("replay run");
    let _ = std::fs::remove_file(path);
    (packets, replayed.counters.noc == recorded.counters.noc)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--test");
    let (side, topos, rates): (u32, &[&str], &[f64]) = if smoke {
        (6, &["mesh"], &[0.02, 0.35])
    } else {
        (
            8,
            &["mesh", "torus", "ruche"],
            &[0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.45, 0.65],
        )
    };

    muchisim_bench::rule("latency vs offered load (uniform random)");
    let mut curves = Vec::new();
    for &topo in topos {
        let cfg = config(side, topo);
        let curve = saturation_sweep(&cfg, TrafficPattern::UniformRandom, rates, 2)
            .expect("sweep completes");
        for p in &curve.points {
            println!(
                "{topo:<6} offered {:>5.3} | accepted {:>6.4} | avg {:>8.2} cy | \
                 p95 {:>5} | max {:>5} | {:>6} pkts",
                p.offered, p.achieved, p.avg_latency, p.p95_latency, p.max_latency, p.injected
            );
        }
        // the curve must actually be a saturation curve
        let base = curve.base_latency().expect("points");
        let last = curve.points.last().expect("points");
        assert!(
            last.avg_latency > SATURATION_FACTOR * base,
            "{topo}: top rate did not saturate ({base:.1} -> {:.1})",
            last.avg_latency
        );
        let sat = curve
            .saturation_point(SATURATION_FACTOR)
            .expect("saturation rate detected");
        println!(
            "{topo:<6} saturation: offered {:.3}, accepted {:.4} packets/tile/cycle",
            sat.offered, sat.achieved
        );
        curves.push((topo, curve));
    }

    if !smoke {
        // torus halves the uniform-traffic average distance, so it must
        // sustain a higher accepted rate at saturation than the mesh
        let accepted = |name: &str| {
            curves
                .iter()
                .find(|(t, _)| *t == name)
                .and_then(|(_, c)| c.saturation_rate(SATURATION_FACTOR))
                .expect("curve with saturation")
        };
        assert!(
            accepted("torus") > accepted("mesh"),
            "torus should out-sustain mesh: {:.4} vs {:.4}",
            accepted("torus"),
            accepted("mesh")
        );
    }

    muchisim_bench::rule("trace record -> replay round trip");
    let (packets, identical) = trace_roundtrip();
    println!("bfs 4x4: {packets} packets, identical NoC counters: {identical}");
    assert!(identical, "replay must reproduce the recorded NoC counters");

    if smoke {
        println!("\nsmoke mode: skipping BENCH_traffic.json");
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"traffic\",\n  \"pattern\": \"uniform\",\n  \
         \"grid\": \"{side}x{side}\",\n  \"pus_per_tile\": 4,\n  \
         \"window_cycles\": {WINDOW_CYCLES},\n  \
         \"saturation_factor\": {SATURATION_FACTOR},\n  \
         \"load_unit\": \"packets/tile/cycle\",\n  \"curves\": [\n{}\n  ],\n  \
         \"trace_roundtrip\": {{\"app\": \"bfs\", \"grid\": \"4x4\", \
         \"packets\": {packets}, \"identical_noc_counters\": {identical}}}\n}}\n",
        curves
            .iter()
            .map(|(t, c)| curve_json(t, c))
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_traffic.json");
    std::fs::write(path, json).expect("write BENCH_traffic.json");
    println!("\nrecorded {path}");
}
