//! Criterion micro-benchmarks on the simulator's hot paths: router
//! stepping, cache-model accesses, dataset generation, and the FFT
//! pencil kernel.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use muchisim_config::SystemConfig;
use muchisim_data::rmat::RmatConfig;
use muchisim_data::tensor::{fft_in_place, Complex};
use muchisim_mem::{AccessKind, ChannelState, TileMemory};
use muchisim_noc::{DrainSink, Network, NetworkParams, Packet, Payload};

fn bench_router_cycles(c: &mut Criterion) {
    let cfg = SystemConfig::builder()
        .chiplet_tiles(16, 16)
        .build()
        .unwrap();
    c.bench_function("noc_drain_256_packets_16x16", |b| {
        b.iter_batched(
            || {
                let mut net = Network::new(NetworkParams::from_system(&cfg), 1);
                for src in 0..256u32 {
                    let dst = (src * 37 + 11) % 256;
                    net.inject(
                        src,
                        Packet::unicast(src, dst, 0, Payload::from_slice(&[src]), 2),
                    )
                    .unwrap();
                }
                net
            },
            |mut net| {
                let mut sink = DrainSink::default();
                let mut cycle = 0;
                while !net.is_empty() {
                    net.step(cycle, &mut sink);
                    cycle += 1;
                }
                sink.drained.len()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cache_model(c: &mut Criterion) {
    let cfg = SystemConfig::builder()
        .sram_kib_per_tile(64)
        .dram(muchisim_config::DramConfig::default())
        .build()
        .unwrap();
    c.bench_function("cache_mixed_access_stream", |b| {
        b.iter_batched(
            || (TileMemory::from_system(&cfg), ChannelState::default()),
            |(mut mem, mut ch)| {
                let mut total = 0u64;
                for i in 0..1000u64 {
                    total += mem.access((i * 97) % 32768, AccessKind::Read, i, Some(&mut ch));
                }
                total
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_rmat(c: &mut Criterion) {
    c.bench_function("rmat_scale10_generate", |b| {
        b.iter(|| RmatConfig::scale(10).generate(criterion::black_box(7)))
    });
}

fn bench_fft_pencil(c: &mut Criterion) {
    c.bench_function("fft_pencil_1024", |b| {
        b.iter_batched(
            || {
                (0..1024)
                    .map(|i| Complex::new((i as f64).sin(), 0.0))
                    .collect::<Vec<_>>()
            },
            |mut pencil| fft_in_place(&mut pencil),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_router_cycles, bench_cache_model, bench_rmat, bench_fft_pencil
}
criterion_main!(benches);
