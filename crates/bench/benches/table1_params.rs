//! Table I — default energy, bandwidth, latency and area parameters of
//! the links and memory devices modeled in MuchiSim.
//!
//! Regenerates the table from the live defaults and asserts every value
//! the paper prints, so a drifting default breaks the bench.

use muchisim_config::ModelParams;

fn row(label: &str, value: String) {
    println!("{label:<44} {value}");
}

fn main() {
    let p = ModelParams::default();
    muchisim_bench::rule("Table I: memory model parameters");
    row(
        "SRAM Density",
        format!("{} MB/mm^2", p.sram.density_mb_per_mm2),
    );
    row(
        "SRAM R/W Latency & E.",
        format!(
            "{} ns & {} / {} pJ/bit",
            p.sram.access_latency_ns, p.sram.read_energy_pj_per_bit, p.sram.write_energy_pj_per_bit
        ),
    );
    row(
        "Cache Tag Read & cmp. E.",
        format!("{} pJ", p.sram.tag_read_compare_energy_pj),
    );
    row(
        "HBM2E 4-high Density",
        format!(
            "{}GB on {}mm^2 ({:.0} MB/mm^2)",
            p.hbm.device_capacity_gb,
            p.hbm.device_area_mm2,
            p.hbm.device_capacity_gb * 1024.0 / p.hbm.device_area_mm2
        ),
    );
    row(
        "Mem.Channels & Bandwidth",
        format!(
            "{} x {}GB/s",
            p.hbm.channels_per_device, p.hbm.channel_bandwidth_gbps
        ),
    );
    row(
        "Mem.Ctrl-to-HBM Latency & E.",
        format!(
            "{} ns & {} pJ/bit",
            p.hbm.ctrl_latency_ns, p.hbm.access_energy_pj_per_bit
        ),
    );
    row(
        "Bitline Refresh Period & E.",
        format!(
            "{} ms & {} pJ/bit",
            p.hbm.refresh_period_ms, p.hbm.refresh_energy_pj_per_bit
        ),
    );
    muchisim_bench::rule("Table I: wire & link model parameters");
    row(
        "MCM PHY Areal Density",
        format!("{} Gbits/mm^2", p.phy.mcm_areal_gbps_per_mm2),
    );
    row(
        "MCM PHY Beachfront Density",
        format!("{} Gbits/mm", p.phy.mcm_beachfront_gbps_per_mm),
    );
    row(
        "Si. Interposer PHY Areal Density",
        format!("{} Gbits/mm^2", p.phy.si_areal_gbps_per_mm2),
    );
    row(
        "Si. Interposer PHY Beachfront Density",
        format!("{} Gbits/mm", p.phy.si_beachfront_gbps_per_mm),
    );
    row(
        "Die-to-Die Link Latency & E.",
        format!(
            "{} ns & {} pJ/bit (<25 mm)",
            p.link.d2d_latency_ns, p.link.d2d_energy_pj_per_bit
        ),
    );
    row(
        "NoC Wire Latency & E.",
        format!(
            "{} ps/mm & {} pJ/bit/mm",
            p.link.noc_wire_latency_ps_per_mm, p.link.noc_wire_energy_pj_per_bit_mm
        ),
    );
    row(
        "NoC Router Latency & E.",
        format!(
            "{} ps & {} pJ/bit",
            p.link.noc_router_latency_ps, p.link.noc_router_energy_pj_per_bit
        ),
    );
    row(
        "I/O Die RX-TX Latency",
        format!("{} ns", p.link.io_die_latency_ns),
    );
    row(
        "Off-Package Link E.",
        format!(
            "{} pJ/bit (upto 80mm)",
            p.link.off_package_energy_pj_per_bit
        ),
    );

    // assert the paper's printed values
    assert_eq!(p.sram.density_mb_per_mm2, 3.5);
    assert_eq!(p.sram.access_latency_ns, 0.82);
    assert_eq!(
        (
            p.sram.read_energy_pj_per_bit,
            p.sram.write_energy_pj_per_bit
        ),
        (0.18, 0.28)
    );
    assert_eq!(p.sram.tag_read_compare_energy_pj, 6.3);
    assert_eq!(
        (p.hbm.device_capacity_gb, p.hbm.device_area_mm2),
        (8.0, 110.0)
    );
    assert_eq!(
        (p.hbm.channels_per_device, p.hbm.channel_bandwidth_gbps),
        (8, 64.0)
    );
    assert_eq!(
        (p.hbm.ctrl_latency_ns, p.hbm.access_energy_pj_per_bit),
        (50.0, 3.7)
    );
    assert_eq!(
        (p.hbm.refresh_period_ms, p.hbm.refresh_energy_pj_per_bit),
        (32.0, 0.22)
    );
    assert_eq!(p.phy.mcm_areal_gbps_per_mm2, 690.0);
    assert_eq!(p.phy.mcm_beachfront_gbps_per_mm, 880.0);
    assert_eq!(p.phy.si_areal_gbps_per_mm2, 1070.0);
    assert_eq!(p.phy.si_beachfront_gbps_per_mm, 1780.0);
    assert_eq!(
        (p.link.d2d_latency_ns, p.link.d2d_energy_pj_per_bit),
        (4.0, 0.55)
    );
    assert_eq!(
        (
            p.link.noc_wire_latency_ps_per_mm,
            p.link.noc_wire_energy_pj_per_bit_mm
        ),
        (50.0, 0.15)
    );
    assert_eq!(
        (
            p.link.noc_router_latency_ps,
            p.link.noc_router_energy_pj_per_bit
        ),
        (500.0, 0.1)
    );
    assert_eq!(p.link.io_die_latency_ns, 20.0);
    assert_eq!(p.link.off_package_energy_pj_per_bit, 1.17);
    println!("\ntable1: all defaults match the paper");
}
