//! Ablations over the design parameters DESIGN.md calls out, covering the
//! additional case studies the paper's repository ships: NoC width (1),
//! reduction trees (2), PUs per tile (3), scratchpad vs DRAM (4), and
//! queue sizes (5), plus the TSU scheduling policies of §III-A.

use muchisim_apps::{high_degree_root, run_benchmark, Benchmark, Bfs, Spmv, SyncMode};
use muchisim_config::{DramConfig, SchedulingPolicy, SystemConfig};
use muchisim_core::Simulation;

fn base() -> muchisim_config::SystemConfigBuilder {
    let mut b = SystemConfig::builder();
    b.chiplet_tiles(16, 16);
    b
}

fn main() {
    let graph = muchisim_bench::bench_graph(muchisim_bench::BENCH_RMAT_SCALE);
    let tiles = 256u32;

    muchisim_bench::rule("ablation 1: NoC width (BFS)");
    let mut widths = Vec::new();
    for bits in [32u32, 64, 128] {
        let cfg = base().noc_width_bits(bits).build().unwrap();
        let r = run_benchmark(Benchmark::Bfs, cfg, &graph, 8).unwrap();
        println!("width {bits:>4}b: {:>8} cycles", r.runtime_cycles);
        widths.push(r.runtime_cycles);
    }
    assert!(
        widths[2] <= widths[0],
        "a 4x wider NoC should not be slower"
    );

    muchisim_bench::rule("ablation 2: reduction trees (BFS message elimination)");
    let root = high_degree_root(&graph);
    for reduce in [false, true] {
        let app = Bfs::new(graph.clone(), tiles, root, SyncMode::Async).with_reduction(reduce);
        let r = Simulation::new(base().build().unwrap(), app)
            .unwrap()
            .run_parallel(8)
            .unwrap();
        println!(
            "reduction {:>5}: {:>8} cycles, {:>8} injected, {:>6} combined",
            reduce, r.runtime_cycles, r.counters.noc.injected, r.counters.noc.reduce_combines
        );
    }

    muchisim_bench::rule("ablation 3: PUs per tile (BFS)");
    let mut pus_cycles = Vec::new();
    for pus in [1u32, 2, 4] {
        let cfg = base().pus_per_tile(pus).build().unwrap();
        let r = run_benchmark(Benchmark::Bfs, cfg, &graph, 8).unwrap();
        println!("{pus} PU/tile: {:>8} cycles", r.runtime_cycles);
        pus_cycles.push(r.runtime_cycles);
    }
    assert!(pus_cycles[2] <= pus_cycles[0], "more PUs should not hurt");

    muchisim_bench::rule("ablation 4: scratchpad vs PLM-as-cache over DRAM (SPMV)");
    let spm = base().sram_kib_per_tile(64).build().unwrap();
    let r = run_benchmark(Benchmark::Spmv, spm, &graph, 8).unwrap();
    println!(
        "scratchpad  : {:>8} cycles (hit rate n/a)",
        r.runtime_cycles
    );
    let spm_cycles = r.runtime_cycles;
    for sram in [1u32, 4] {
        let cfg = base()
            .sram_kib_per_tile(sram)
            .dram(DramConfig::default())
            .build()
            .unwrap();
        let r = run_benchmark(Benchmark::Spmv, cfg, &graph, 8).unwrap();
        println!(
            "dram {sram:>2}KiB  : {:>8} cycles (hit rate {:.3})",
            r.runtime_cycles,
            r.counters.mem.hit_rate()
        );
        assert!(
            r.runtime_cycles >= spm_cycles,
            "cache mode cannot beat pure SRAM at equal traffic"
        );
    }

    muchisim_bench::rule("ablation 5: input-queue capacity (BFS)");
    for iq in [4u32, 16, 64] {
        let cfg = base().queues(iq, 32).build().unwrap();
        let r = run_benchmark(Benchmark::Bfs, cfg, &graph, 8).unwrap();
        println!(
            "IQ {iq:>3}: {:>8} cycles, {:>8} eject stalls",
            r.runtime_cycles, r.counters.noc.eject_stalls
        );
    }

    muchisim_bench::rule("ablation 6: TSU scheduling policy (SPMV, 2 task types)");
    for (name, policy) in [
        ("round-robin", SchedulingPolicy::RoundRobin),
        ("priority[1,0]", SchedulingPolicy::Priority(vec![1, 0])),
        ("occupancy", SchedulingPolicy::OccupancyBased),
    ] {
        let cfg = base().scheduling(policy).build().unwrap();
        let app = Spmv::new(graph.clone(), tiles);
        let r = Simulation::new(cfg, app).unwrap().run_parallel(8).unwrap();
        assert!(r.check_error.is_none(), "{name}: {:?}", r.check_error);
        println!(
            "{name:<14}: {:>8} cycles, {:>8} eject stalls",
            r.runtime_cycles, r.counters.noc.eject_stalls
        );
    }

    muchisim_bench::rule("ablation 7: sequential == parallel (determinism)");
    let r1 = run_benchmark(Benchmark::Bfs, base().build().unwrap(), &graph, 1).unwrap();
    let r8 = run_benchmark(Benchmark::Bfs, base().build().unwrap(), &graph, 8).unwrap();
    println!(
        "1 thread: {} cycles / 8 threads: {} cycles",
        r1.runtime_cycles, r8.runtime_cycles
    );
    assert_eq!(r1.runtime_cycles, r8.runtime_cycles);
    assert_eq!(r1.counters.noc.msg_hops, r8.counters.noc.msg_hops);
    println!("bit-identical across thread counts");
}
