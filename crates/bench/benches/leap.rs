//! Time-leap ablation: proves the leaping driver is bit-identical to the
//! lockstep driver across the whole 8-app suite and measures its
//! host-time win on compute- and memory-bound workloads, recording the
//! numbers in `BENCH_leap.json` at the workspace root.
//!
//! `cargo bench -p muchisim-bench --bench leap` for the full run;
//! `-- --smoke` for the scaled-down CI pass (no JSON written).

use muchisim_apps::{run_benchmark, Benchmark};
use muchisim_config::{DramConfig, SystemConfig, SystemConfigBuilder, Verbosity};
use muchisim_core::SimResult;
use std::sync::Arc;

fn base(side: u32) -> SystemConfigBuilder {
    let mut b = SystemConfig::builder();
    b.chiplet_tiles(side, side)
        .verbosity(Verbosity::V1)
        .frame_interval_cycles(1000);
    b
}

fn run(
    bench: Benchmark,
    mut builder: SystemConfigBuilder,
    graph: &Arc<muchisim_data::Csr>,
    threads: usize,
    leap: bool,
) -> SimResult {
    let cfg = builder.time_leap(leap).build().expect("valid config");
    let r = run_benchmark(bench, cfg, graph, threads).expect("benchmark runs");
    assert!(r.check_error.is_none(), "{bench}: {:?}", r.check_error);
    r
}

fn assert_identical(bench: Benchmark, threads: usize, on: &SimResult, off: &SimResult) {
    assert_eq!(
        on.runtime_cycles, off.runtime_cycles,
        "{bench} @{threads}t: runtime diverged"
    );
    assert_eq!(
        on.counters, off.counters,
        "{bench} @{threads}t: counters diverged"
    );
    assert_eq!(
        on.frames, off.frames,
        "{bench} @{threads}t: frame logs diverged"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--test");
    let (side, scale) = if smoke {
        (4u32, 6u32)
    } else {
        (16, muchisim_bench::BENCH_RMAT_SCALE)
    };
    let graph = muchisim_bench::bench_graph(scale);

    muchisim_bench::rule("identity: leap on == leap off (all 8 apps, 1 and 4 threads)");
    for bench in Benchmark::ALL {
        for threads in [1usize, 4] {
            let off = run(bench, base(side), &graph, threads, false);
            let on = run(bench, base(side), &graph, threads, true);
            assert_identical(bench, threads, &on, &off);
            println!(
                "{bench:<6} @{threads}t: {:>9} cycles | lockstep {:>7.3}s leap {:>7.3}s ({:>5.2}x)",
                on.runtime_cycles,
                off.host_seconds,
                on.host_seconds,
                off.host_seconds / on.host_seconds.max(1e-9),
            );
        }
    }
    println!("bit-identical across the suite");

    muchisim_bench::rule("host-time ablation (1 thread)");
    // A leap fires only when the *whole* grid is quiet, so the wins come
    // from latency-bound workloads, not bandwidth-bound ones:
    //  - BFS/SSSP on a path graph are the extreme sparse frontier (one
    //    active vertex): a single dependency chain of messages and, in
    //    DRAM mode, cache-miss round trips the driver can vault over;
    //  - SPMV over a saturated DRAM channel stays ~1x by design (the
    //    channel serializes to one event per cycle) and is recorded as
    //    the honest dense-workload baseline.
    let path = Arc::new(muchisim_data::synthetic::grid_2d(side * side * 16, 1));
    let mut dram = base(side);
    dram.sram_kib_per_tile(2).dram(DramConfig::default());
    let workloads: [(
        &str,
        Benchmark,
        SystemConfigBuilder,
        &Arc<muchisim_data::Csr>,
    ); 4] = [
        (
            "bfs-path-sparse-frontier",
            Benchmark::Bfs,
            base(side),
            &path,
        ),
        ("bfs-path-dram-2kib", Benchmark::Bfs, dram.clone(), &path),
        ("sssp-path-dram-2kib", Benchmark::Sssp, dram.clone(), &path),
        ("spmv-rmat-dram-2kib", Benchmark::Spmv, dram.clone(), &graph),
    ];
    let mut rows = Vec::new();
    let mut best = 0.0f64;
    for (name, bench, builder, data) in workloads {
        let off = run(bench, builder.clone(), data, 1, false);
        let on = run(bench, builder.clone(), data, 1, true);
        assert_identical(bench, 1, &on, &off);
        let speedup = off.host_seconds / on.host_seconds.max(1e-9);
        best = best.max(speedup);
        println!(
            "{name:<26}: {:>9} cycles | lockstep {:>7.3}s -> leap {:>7.3}s = {speedup:.2}x",
            on.runtime_cycles, off.host_seconds, on.host_seconds
        );
        rows.push(format!(
            "    {{\"workload\": \"{name}\", \"runtime_cycles\": {}, \
             \"lockstep_host_seconds\": {:.6}, \"leap_host_seconds\": {:.6}, \
             \"speedup\": {:.3}}}",
            on.runtime_cycles, off.host_seconds, on.host_seconds, speedup
        ));
    }

    if smoke {
        println!("\nsmoke mode: skipping BENCH_leap.json");
        return;
    }
    assert!(
        best >= 2.0,
        "expected >=2x host-time win on at least one workload, best was {best:.2}x"
    );
    let json = format!(
        "{{\n  \"bench\": \"leap_ablation\",\n  \"grid\": \"{side}x{side}\",\n  \
         \"graph\": \"rmat-{scale}\",\n  \"ablation_threads\": 1,\n  \
         \"identity\": \"8 apps x (1,4) threads bit-identical, leap on vs off\",\n  \
         \"workloads\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_leap.json");
    std::fs::write(path, json).expect("write BENCH_leap.json");
    println!("\nrecorded {path}");
}
