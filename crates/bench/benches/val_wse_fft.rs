//! §IV-A — validation against the Cerebras Wafer-Scale Engine running
//! wafer-scale FFT (ICS'23): FFTs of n³ tensors parallelized across n²
//! processors.
//!
//! The paper reports that the WSE's measured runtimes are 1.2× the
//! MuchiSim-simulated runtimes, *consistently* for n from 32 to 512, that
//! the simulator's area model lands 8.8 % above the real 46,225 mm²
//! wafer, and a tile-array power of ~1 KW for the 512×512 case at ~30 %
//! PU utilization.
//!
//! Offline substitution (DESIGN.md #3): the exact per-n WSE runtimes are
//! not in the paper text, so the "WSE-reported" stand-in is an analytic
//! performance model of the wafer-scale FFT (compute + transpose
//! serialization on a 32-bit mesh) scaled by the paper's 1.2× gap. The
//! reproduced claim is the *consistency* of the simulated-vs-reference
//! ratio across n, plus the area and power model checks, at scaled-down
//! n (8–32; the full 512 needs hours of host time).

use muchisim_apps::Fft3d;
use muchisim_config::SystemConfig;
use muchisim_core::Simulation;
use muchisim_energy::Report;

fn wse_config(n: u32) -> SystemConfig {
    SystemConfig::builder()
        .chiplet_tiles(n, n)
        .sram_kib_per_tile(48)
        .noc_width_bits(32)
        .scratchpad()
        .build()
        .unwrap()
}

/// Analytic stand-in for the WSE-reported runtime in cycles: three FFT
/// sweeps plus two column/row all-to-all transposes whose time scales
/// with the per-column bisection load (O(n²) message-flits over O(1)
/// middle links), all times the paper's observed 1.2×
/// circuit-switched-synchronization gap. The transpose constant
/// `c_transpose` is the model's one free parameter, calibrated at the
/// smallest n; the reproduced claim is that the simulated runtime then
/// *scales* like the model for larger n (the paper: "the accuracy is not
/// impacted by the size of the DUT").
fn wse_model_cycles(n: u64, c_transpose: f64) -> f64 {
    let fft = 10.0 * (n as f64 / 2.0) * (n as f64).log2();
    3.0 * fft + 2.0 * c_transpose * (n as f64) * (n as f64)
}

fn simulate(n: u32) -> muchisim_core::SimResult {
    let cfg = wse_config(n);
    let sim = Simulation::new(cfg, Fft3d::new(n as usize, 7))
        .unwrap()
        .run_parallel(8)
        .unwrap();
    assert!(sim.check_error.is_none(), "{:?}", sim.check_error);
    sim
}

fn main() {
    muchisim_bench::rule("WSE validation: FFT of n^3 across n^2 tiles");
    // calibrate the model's transpose constant at the smallest size
    let base = simulate(8);
    let fft_only = 3.0 * 10.0 * 4.0 * 3.0; // 3 sweeps of 10*(n/2)*log2(n)
    let c_transpose = (base.runtime_cycles as f64 - fft_only) / (2.0 * 64.0);
    println!(
        "calibrated transpose constant at n=8: {c_transpose:.2} cycles/n^2
"
    );
    println!(
        "{:<6} {:>12} {:>16} {:>16}",
        "n", "sim_cycles", "WSE_ref_cycles", "WSE_ref / sim"
    );
    let mut ratios = Vec::new();
    for n in [8u32, 16, 32] {
        let sim = if n == 8 { simulate(8) } else { simulate(n) };
        let reference = 1.2 * wse_model_cycles(n as u64, c_transpose);
        let ratio = reference / sim.runtime_cycles as f64;
        println!(
            "{:<6} {:>12} {:>16.0} {:>16.2}",
            n, sim.runtime_cycles, reference, ratio
        );
        ratios.push(ratio);

        if n == 32 {
            let cfg = wse_config(n);
            let report = Report::from_counters(&cfg, &sim.counters);
            println!(
                "  n=32 tile-array power: {:.2} W ({} tiles; paper: ~1 KW for 262,144 tiles)",
                report.average_power_w,
                cfg.total_tiles()
            );
            println!(
                "  extrapolated to 512x512: {:.0} W",
                report.average_power_w * (512.0f64 * 512.0) / (32.0 * 32.0)
            );
        }
    }
    let max = ratios.iter().copied().fold(f64::MIN, f64::max);
    let min = ratios.iter().copied().fold(f64::MAX, f64::min);
    println!(
        "WSE-reported/simulated ratio across n: {min:.2} .. {max:.2} (paper: 1.2 consistently)"
    );
    assert!(
        max / min < 1.4,
        "the ratio should stay consistent as the DUT scales ({min:.2}..{max:.2})"
    );

    // area validation at full WSE scale (model-only; no simulation needed)
    muchisim_bench::rule("WSE area validation");
    let wse_full = SystemConfig::builder()
        .chiplet_tiles(922, 922) // 850,084 tiles ~ the WSE's 850,000 cores
        .sram_kib_per_tile(48) // ~40 GB of on-wafer SRAM
        .noc_width_bits(32)
        .scratchpad()
        .build()
        .unwrap();
    let area = muchisim_energy::AreaBreakdown::from_config(&wse_full);
    let real = 46_225.0;
    let overshoot = area.total_compute_mm2 / real - 1.0;
    println!(
        "modeled {:.0} mm^2 vs real {:.0} mm^2: +{:.1}% (paper: +8.8%)",
        area.total_compute_mm2,
        real,
        overshoot * 100.0
    );
    assert!(
        (overshoot - 0.088).abs() < 0.05,
        "area model should land near the paper's +8.8% ({:.1}%)",
        overshoot * 100.0
    );
}
