//! Simulator-throughput scaling: the paper's core claim that MuchiSim
//! reaches *million-tile* DUTs because per-tile host state stays small
//! and simulation throughput stays high. Sweeps square grids from 64×64
//! to 1024×1024 over two complementary workloads and records
//! simulated-cycles/sec, packets/sec, and bytes/tile into
//! `BENCH_scale.json` at the workspace root:
//!
//! * `bfs/rmat-10` — a *fixed* RMAT graph spread ever thinner (strong
//!   scaling of the fabric): at 1024×1024 under 2 % of tiles own a
//!   vertex, so this measures what idle tiles cost.
//! * `spmv/grid2d` — a 2D-grid matrix sized to the DUT grid (weak
//!   scaling): every tile owns one matrix row and all traffic is
//!   near-neighbor, so this measures the active-tile footprint.
//!
//! From 256×256 up, each point also sweeps host threads 1/4/8/16 —
//! multi-thread strong scaling as a *measured* axis (the `threads`
//! column). Thread counts above the recording host's CPU count are
//! skipped rather than recorded: an oversubscribed spin-barrier prices
//! scheduler preemption, not the simulator, so such rows would be
//! artifacts. The recorded `host_cpus` and `host_threads` fields say
//! which sweep actually ran.
//!
//! `cargo bench -p muchisim-bench --bench scale` for the full sweep
//! (the 1024×1024 points run minutes each on a laptop-class host);
//! `-- --smoke` for the scaled-down CI pass (≤ 256×256, single-thread,
//! no JSON).

use muchisim_apps::{run_benchmark, Benchmark};
use muchisim_config::{SystemConfig, Verbosity};
use muchisim_core::SimResult;
use muchisim_data::synthetic::grid_2d;
use muchisim_data::Csr;
use std::sync::Arc;

/// RMAT scale of the fixed strong-scaling input.
const RMAT_SCALE: u32 = 10;

/// Host-thread counts swept at and above `THREAD_SWEEP_MIN_SIDE`.
const THREAD_SWEEP: [usize; 4] = [1, 4, 8, 16];
const THREAD_SWEEP_MIN_SIDE: u32 = 256;

struct Row {
    workload: &'static str,
    side: u32,
    threads: usize,
    result: SimResult,
}

impl Row {
    fn json(&self) -> String {
        let r = &self.result;
        format!(
            "    {{\"workload\": \"{}\", \"grid\": \"{side}x{side}\", \"tiles\": {}, \
             \"threads\": {}, \"runtime_cycles\": {}, \"host_seconds\": {:.3}, \
             \"sim_cycles_per_sec\": {:.1}, \"packets_per_sec\": {:.1}, \
             \"bytes_per_tile\": {:.1}, \"host_state_bytes\": {}, \
             \"phase_ns\": {{\"pu\": {}, \"inject\": {}, \"net\": {}, \
             \"worklist\": {}}}}}",
            self.workload,
            r.total_tiles,
            self.threads,
            r.runtime_cycles,
            r.host_seconds,
            r.sim_cycles_per_sec(),
            r.packets_per_sec(),
            r.bytes_per_tile(),
            r.host_state_bytes,
            r.host_phase_ns.pu,
            r.host_phase_ns.inject,
            r.host_phase_ns.net,
            r.host_phase_ns.worklist,
            side = self.side,
        )
    }
}

fn config(side: u32) -> SystemConfig {
    SystemConfig::builder()
        .chiplet_tiles(side, side)
        .verbosity(Verbosity::V1)
        .frame_interval_cycles(16_384)
        // bounded frame memory: at million-tile scale the telemetry must
        // not become the footprint it measures
        .frame_budget(64)
        .build()
        .expect("valid scale config")
}

fn run(
    workload: &'static str,
    bench: Benchmark,
    side: u32,
    threads: usize,
    graph: &Arc<Csr>,
) -> Row {
    let result = run_benchmark(bench, config(side), graph, threads).expect("scale run completes");
    assert!(
        result.check_error.is_none(),
        "{workload} {side}x{side}: {:?}",
        result.check_error
    );
    println!(
        "{workload:<12} {side:>4}x{side:<4} x{threads:<2} {:>10} tiles | {:>9} cycles | \
         {:>8.1}s host | {:>10.0} simcyc/s | {:>10.0} pkt/s | {:>6.0} B/tile",
        result.total_tiles,
        result.runtime_cycles,
        result.host_seconds,
        result.sim_cycles_per_sec(),
        result.packets_per_sec(),
        result.bytes_per_tile(),
    );
    Row {
        workload,
        side,
        threads,
        result,
    }
}

/// CI perf gate: one dense point (spmv 256×256, single thread), with the
/// phase profiler asserted populated and worklist bookkeeping bounded.
fn perf_smoke() {
    let side = 256;
    let grid = Arc::new(grid_2d(side, side));
    let row = run("spmv/grid2d", Benchmark::Spmv, side, 1, &grid);
    let p = &row.result.host_phase_ns;
    println!(
        "phase_ns: pu={} inject={} net={} worklist={} ({:.1}% of attributed time)",
        p.pu,
        p.inject,
        p.net,
        p.worklist,
        p.worklist_share() * 100.0
    );
    assert!(
        p.total() > 0 && p.pu > 0 && p.net > 0,
        "host_phase_ns must be populated: {p:?}"
    );
    assert!(
        p.worklist_share() < 0.25,
        "worklist bookkeeping at {:.1}% of cycle time (budget: 25%)",
        p.worklist_share() * 100.0
    );
}

/// CI perf gate: telemetry sampling at 1% cadence must cost < 5% host
/// time on the dense point (spmv 256×256, single thread). The sampled
/// run streams real JSONL through the subscriber thread — the full
/// pipeline, not just the sample capture.
fn telemetry_overhead() {
    let side = 256;
    let grid = Arc::new(grid_2d(side, side));
    // one warm-up run to size the cadence (and fault in the page cache)
    let warmup = run("spmv/grid2d", Benchmark::Spmv, side, 1, &grid).result;
    // 1% cadence of the reported runtime
    let every = (warmup.runtime_cycles / 100).max(1);
    let stream =
        std::env::temp_dir().join(format!("muchisim-overhead-{}.jsonl", std::process::id()));
    let sampled_cfg = || {
        let mut cfg = config(side);
        cfg.telemetry.sample_every = Some(every);
        cfg.telemetry.metrics_path = Some(stream.to_string_lossy().into_owned());
        cfg
    };
    // alternate baseline/sampled pairs and compare the minima: identical
    // runs jitter well past 5% on a busy single-CPU CI box, so the pairs
    // interleave (drift lands on both sides) and the min estimates the
    // true floor of each configuration. Minima only improve, so the loop
    // exits as soon as the budget clears; only a genuine regression (or
    // a hopelessly loaded host) burns all the pairs and fails.
    const MIN_PAIRS: usize = 3;
    const MAX_PAIRS: usize = 12;
    let mut baseline = warmup;
    let mut sampled: Option<SimResult> = None;
    for pair in 0..MAX_PAIRS {
        let b = run_benchmark(Benchmark::Spmv, config(side), &grid, 1).expect("baseline run");
        if b.host_seconds < baseline.host_seconds {
            baseline = b;
        }
        let s = run_benchmark(Benchmark::Spmv, sampled_cfg(), &grid, 1).expect("sampled run");
        assert!(s.check_error.is_none(), "{:?}", s.check_error);
        if sampled
            .as_ref()
            .is_none_or(|p| s.host_seconds < p.host_seconds)
        {
            sampled = Some(s);
        }
        let floor = sampled.as_ref().expect("just set").host_seconds;
        if pair + 1 >= MIN_PAIRS && floor / baseline.host_seconds < 1.05 {
            break;
        }
    }
    let sampled = sampled.expect("sampled runs");
    assert_eq!(
        sampled.runtime_cycles, baseline.runtime_cycles,
        "sampling is observation, never perturbation"
    );
    let text = std::fs::read_to_string(&stream).expect("metrics stream written");
    let _ = std::fs::remove_file(&stream);
    let lines = text.lines().count();
    // far fewer than 100 samples actually land: runtime_cycles counts
    // the termination-latency tail (2x the mesh diameter, ~1020 cycles
    // at 256x256) that the barrier loop never executes, so this wide,
    // shallow workload samples well above 1% of its *executed* cycles —
    // a stricter overhead measurement, not a weaker one
    assert!(lines >= 3, "expected a live stream, got {lines} samples");
    assert!(
        text.lines().all(|l| l.starts_with("{\"v\":")),
        "stream lines must be schema-stamped JSONL"
    );
    let overhead = sampled.host_seconds / baseline.host_seconds - 1.0;
    println!(
        "telemetry overhead: baseline {:.3}s, sampled {:.3}s ({} samples every {every} cycles) \
         -> {:+.1}%",
        baseline.host_seconds,
        sampled.host_seconds,
        lines,
        overhead * 100.0
    );
    assert!(
        overhead < 0.05,
        "sampling overhead {:.1}% blew the 5% budget",
        overhead * 100.0
    );
}

fn main() {
    if std::env::args().any(|a| a == "--perf-smoke") {
        perf_smoke();
        return;
    }
    if std::env::args().any(|a| a == "--telemetry-overhead") {
        telemetry_overhead();
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--test");
    let sides: &[u32] = if smoke {
        &[64, 128, 256]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    let rmat = muchisim_bench::bench_graph(RMAT_SCALE);
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    // oversubscribed thread counts measure the host scheduler, not the
    // simulator: record only what this host can actually run in parallel
    let swept: Vec<usize> = THREAD_SWEEP
        .into_iter()
        .filter(|&t| t <= host_cpus)
        .collect();

    muchisim_bench::rule("simulator throughput & footprint vs grid size and host threads");
    let mut rows = Vec::new();
    for &side in sides {
        let threads: &[usize] = if smoke || side < THREAD_SWEEP_MIN_SIDE {
            &[1]
        } else {
            &swept
        };
        let grid = Arc::new(grid_2d(side, side));
        for &t in threads {
            rows.push(run("bfs/rmat-10", Benchmark::Bfs, side, t, &rmat));
            rows.push(run("spmv/grid2d", Benchmark::Spmv, side, t, &grid));
        }
    }

    // The scalability claims, asserted rather than eyeballed (on the
    // single-thread rows; the threaded rows measure synchronization, not
    // footprint — state bytes are identical across thread counts anyway):
    // (1) sparse-workload bytes/tile *falls* with grid size (idle tiles
    //     are near-free thanks to lazy router/queue state) ...
    let bfs: Vec<&Row> = rows
        .iter()
        .filter(|r| r.workload.starts_with("bfs") && r.threads == 1)
        .collect();
    let first = bfs.first().expect("bfs rows");
    let last = bfs.last().expect("bfs rows");
    assert!(
        last.result.bytes_per_tile() < first.result.bytes_per_tile(),
        "idle-tile cost must shrink with scale: {:.0} B/tile at {} vs {:.0} B/tile at {}",
        first.result.bytes_per_tile(),
        first.side,
        last.result.bytes_per_tile(),
        last.side
    );
    // ... and stays within a small fixed budget even at the top size
    assert!(
        last.result.bytes_per_tile() < 2048.0,
        "sparse bytes/tile blew the budget: {:.0}",
        last.result.bytes_per_tile()
    );
    // (2) active-tile (weak-scaling) bytes/tile is flat: growing the DUT
    //     16x-256x in tiles must not grow the per-tile footprint
    let spmv: Vec<f64> = rows
        .iter()
        .filter(|r| r.workload.starts_with("spmv") && r.threads == 1)
        .map(|r| r.result.bytes_per_tile())
        .collect();
    let (min, max) = spmv
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    assert!(
        max / min < 1.5,
        "weak-scaling bytes/tile must stay flat, saw {min:.0}..{max:.0}"
    );

    if smoke {
        println!("\nsmoke mode: skipping BENCH_scale.json");
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"grids\": \"64x64..1024x1024\",\n  \
         \"workloads\": [\"bfs/rmat-{RMAT_SCALE} (fixed graph, strong scaling)\", \
         \"spmv/grid2d (matrix = DUT grid, weak scaling)\"],\n  \
         \"host_threads\": {swept:?},\n  \"host_cpus\": {host_cpus},\n  \
         \"frame_budget\": 64,\n  \"active_list\": true,\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.iter().map(Row::json).collect::<Vec<_>>().join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, json).expect("write BENCH_scale.json");
    println!("\nrecorded {path}");
}
