//! Fig. 5 — the memory-integration case study: performance, energy
//! efficiency, and performance-per-dollar of different SRAM sizes and
//! tiles-per-HBM-channel ratios, normalized to the smallest-SRAM /
//! most-shared-channel baseline.
//!
//! Paper setup: 1024 tiles on RMAT-25; a chiplet always carries one
//! 8-channel HBM device, so 32×32-tile chiplets give 128 tiles/channel
//! and 16×16 give 32 tiles/channel; SRAM 64–512 KiB against a 4–8 MiB
//! per-tile dataset footprint. Scaled here (same SRAM-to-footprint
//! ratios): 256 tiles, 16×16 chiplets = 32 T/Ch vs 8×8 chiplets = 8 T/Ch,
//! SRAM 1–8 KiB against a few-KiB per-tile footprint.
//!
//! Shapes to reproduce: strong performance gain with SRAM size (paper:
//! 3.5× geomean from the SRAM sweep, ~2× more from quartering the
//! tiles/channel), rising hit rate, and performance-per-dollar *lower*
//! for the few-tiles-per-channel configs on most apps because of the 4×
//! HBM device cost (SPMM, with its higher arithmetic intensity, is the
//! outlier).

use muchisim_apps::{run_benchmark, Benchmark};
use muchisim_config::{DramConfig, SystemConfig};
use muchisim_core::SimResult;
use muchisim_energy::Report;
use muchisim_viz::{ReportRow, ReportTable};

fn config(chiplet_side: u32, sram_kib: u32) -> SystemConfig {
    let per_side = 16 / chiplet_side;
    SystemConfig::builder()
        .chiplet_tiles(chiplet_side, chiplet_side)
        .package_chiplets(per_side, per_side)
        .sram_kib_per_tile(sram_kib)
        .dram(DramConfig::default())
        .build()
        .unwrap()
}

fn label(chiplet_side: u32, sram_kib: u32) -> String {
    let tiles_per_ch = (chiplet_side * chiplet_side) / 8;
    format!("{tiles_per_ch}T/Ch {sram_kib}KiB")
}

fn perf(result: &SimResult) -> f64 {
    // the paper plots FLOPS treating the dataset as FP32 arrays; the
    // throughput-per-second of application work units has the same shape
    // and covers the integer kernels
    result.counters.app_throughput()
}

fn main() {
    let graph = muchisim_bench::bench_graph(12);
    // (chiplet side, sram KiB): baseline first
    let sweep = [(16u32, 1u32), (16, 2), (16, 4), (8, 2), (8, 4), (8, 8)];
    let baseline = label(16, 1);
    let mut table = ReportTable::new();
    let mut results: Vec<(String, Benchmark, SimResult)> = Vec::new();
    for (chiplet, sram) in sweep {
        let cfg = config(chiplet, sram);
        for app in Benchmark::GRAPH_DRIVEN {
            let result = run_benchmark(app, cfg.clone(), &graph, 8).unwrap();
            assert!(
                result.check_error.is_none(),
                "{app}: {:?}",
                result.check_error
            );
            let report = Report::from_counters(&cfg, &result.counters);
            table.push(ReportRow::new(
                label(chiplet, sram),
                app.label(),
                "RMAT-12",
                &result,
                &report,
            ));
            results.push((label(chiplet, sram), app, result));
        }
    }

    muchisim_bench::rule("Fig. 5 (absolute metrics)");
    print!("{}", table.to_text());

    for (title, metric) in [
        ("perf improvement", 0usize),
        ("perf/Watt improvement", 1),
        ("perf/$ improvement", 2),
    ] {
        muchisim_bench::rule(&format!("Fig. 5: {title} over {baseline}"));
        let norm = table.normalized_to(&baseline, |r| match metric {
            0 => r.app_throughput,
            1 => r.app_throughput / r.power_w.max(1e-12),
            _ => r.app_throughput / r.cost_usd.max(1e-12),
        });
        // rows: configs; cols: apps + Geo
        let configs: Vec<String> = sweep[1..].iter().map(|&(c, s)| label(c, s)).collect();
        print!("{:<14}", "config");
        for app in Benchmark::GRAPH_DRIVEN {
            print!(" {:>7}", app.label());
        }
        println!(" {:>7}", "Geo");
        for cfg_label in &configs {
            print!("{cfg_label:<14}");
            let mut factors = Vec::new();
            for app in Benchmark::GRAPH_DRIVEN {
                let f = norm
                    .iter()
                    .find(|(c, a, _, _)| c == cfg_label && a == app.label())
                    .map_or(0.0, |(_, _, _, f)| *f);
                factors.push(f);
                print!(" {f:>7.2}");
            }
            println!(" {:>7.2}", muchisim_bench::geomean(&factors));
        }
    }

    // hit-rate trend (paper: 83% -> 95% geomean with the SRAM sweep)
    muchisim_bench::rule("cache hit rate by config (geomean over apps)");
    for (chiplet, sram) in sweep {
        let l = label(chiplet, sram);
        let rates: Vec<f64> = results
            .iter()
            .filter(|(c, _, _)| *c == l)
            .map(|(_, _, r)| r.counters.mem.hit_rate())
            .collect();
        println!("{l:<14} {:.3}", muchisim_bench::geomean(&rates));
    }

    // shape checks
    let perf_of = |cfg_label: &str, app: Benchmark| {
        results
            .iter()
            .find(|(c, a, _)| c == cfg_label && *a == app)
            .map(|(_, _, r)| perf(r))
            .unwrap()
    };
    let mut gains = Vec::new();
    for app in Benchmark::GRAPH_DRIVEN {
        gains.push(perf_of(&label(16, 4), app) / perf_of(&label(16, 1), app));
    }
    let geo_gain = muchisim_bench::geomean(&gains);
    println!(
        "\nSRAM sweep geomean gain (1KiB -> 4KiB): {geo_gain:.2}x \
         (paper: 3.5x for 64->256KiB; the scaled-down per-tile footprint \
         compresses the hit-rate range, see EXPERIMENTS.md)"
    );
    assert!(geo_gain > 1.05, "bigger SRAM should improve performance");
    // channel shape: quartering tiles/channel should give ~2x (paper)
    let mut ch_gains = Vec::new();
    for app in Benchmark::GRAPH_DRIVEN {
        ch_gains.push(perf_of(&label(8, 2), app) / perf_of(&label(16, 2), app));
    }
    let ch_geo = muchisim_bench::geomean(&ch_gains);
    println!("channel sweep geomean gain (32T/Ch -> 8T/Ch at 2KiB): {ch_geo:.2}x (paper: ~2x)");
    assert!(
        ch_geo > 1.3,
        "more DRAM channels per tile should improve performance"
    );
}
