//! Fig. 4 — simulation time and throughput for scaling DUT sizes.
//!
//! Paper setup: DUT sizes from 2^10 to 2^20 tiles processing RMAT-26,
//! reporting host simulation time, DUT operations per host second, and
//! NoC message flits routed per host second, for SSSP, PAGE, BFS, WCC,
//! SPMV and HISTO (FFT is weak-scaled separately). Scaled here to
//! 2^4 … 2^10 tiles on a smaller RMAT; the shape to reproduce is flits/s
//! in the millions–tens-of-millions and Ops/s well above flits/s, with
//! sim time growing with DUT size once the thread count saturates.

use muchisim_apps::{run_benchmark, Benchmark};
use muchisim_config::{NocTopology, SystemConfig};

const APPS: [Benchmark; 6] = [
    Benchmark::Sssp,
    Benchmark::PageRank,
    Benchmark::Bfs,
    Benchmark::Wcc,
    Benchmark::Spmv,
    Benchmark::Histogram,
];

fn main() {
    let host = std::thread::available_parallelism().map_or(4, |p| p.get());
    let graph = muchisim_bench::bench_graph(muchisim_bench::BENCH_RMAT_SCALE + 1);
    muchisim_bench::rule("Fig. 4: sim time / Ops per s / flits per s vs DUT size");
    println!(
        "{:<8} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "app", "tiles", "threads", "sim_s", "ops_per_s", "flits_per_s"
    );
    for app in APPS {
        let mut last_flits_rate = 0.0;
        for side in [4u32, 8, 16, 32] {
            let tiles = side * side;
            // the paper scales host threads with DUT size (16..128); we
            // cap at the columns and the host's parallelism
            let threads = (side as usize).min(host).min(16);
            let cfg = SystemConfig::builder()
                .chiplet_tiles(side, side)
                .noc_topology(NocTopology::FoldedTorus)
                .build()
                .unwrap();
            let result = run_benchmark(app, cfg, &graph, threads).unwrap();
            assert!(
                result.check_error.is_none(),
                "{app}: {:?}",
                result.check_error
            );
            let ops_rate = result.host_ops_per_sec();
            let flits_rate = result.host_flits_per_sec();
            println!(
                "{:<8} {:>8} {:>10} {:>12.3} {:>12.3e} {:>12.3e}",
                app.label(),
                tiles,
                threads,
                result.host_seconds,
                ops_rate,
                flits_rate
            );
            last_flits_rate = flits_rate;
        }
        assert!(last_flits_rate > 0.0, "{app} routed no flits");
    }
    println!("(paper: flits/s from a few million (PAGE) to 40M (SSSP); Ops/s up to a few billion)");
}
