//! Fig. 3 — ratio between simulator and DUT runtime for two DUT sizes
//! evaluated with an increasing number of host threads.
//!
//! Paper setup: 32×32 and 64×64-tile monolithic DUTs on a 64-bit 2D
//! torus, RMAT-22, 2–32 host threads; the ratio (DUT time = aggregated
//! runtime of all tiles) falls from a geomean of 614 to 43, with
//! near-linear speedup until each thread holds only a couple of tile
//! columns. Scaled here to 16×16 / 32×32 DUTs on a smaller RMAT.

use muchisim_apps::{run_benchmark, Benchmark};
use muchisim_config::{NocTopology, SystemConfig};

const APPS: [Benchmark; 7] = [
    Benchmark::Sssp,
    Benchmark::PageRank,
    Benchmark::Bfs,
    Benchmark::Spmv,
    Benchmark::Spmm,
    Benchmark::Histogram,
    Benchmark::Fft,
];

fn dut(side: u32) -> SystemConfig {
    SystemConfig::builder()
        .chiplet_tiles(side, side)
        .noc_topology(NocTopology::FoldedTorus)
        .noc_width_bits(64)
        .build()
        .unwrap()
}

fn main() {
    let threads_sweep: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= std::thread::available_parallelism().map_or(4, |p| p.get()))
        .collect();
    let graph = muchisim_bench::bench_graph(muchisim_bench::BENCH_RMAT_SCALE + 2);
    muchisim_bench::rule("Fig. 3: sim time / DUT time (aggregated over tiles)");
    println!(
        "{:<6} {:<8} {}",
        "DUT",
        "app",
        threads_sweep
            .iter()
            .map(|t| format!("{t:>10}T"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for side in [16u32, 32] {
        let tiles = (side * side) as f64;
        let mut per_thread_ratios: Vec<Vec<f64>> =
            threads_sweep.iter().map(|_| Vec::new()).collect();
        for app in APPS {
            let mut row = format!("{:<6} {:<8}", format!("{side}x{side}"), app.label());
            for (ti, &threads) in threads_sweep.iter().enumerate() {
                let result = run_benchmark(app, dut(side), &graph, threads).unwrap();
                assert!(
                    result.check_error.is_none(),
                    "{app}: {:?}",
                    result.check_error
                );
                let dut_time = result.runtime.as_secs() * tiles;
                let ratio = result.host_seconds / dut_time;
                per_thread_ratios[ti].push(ratio);
                row.push_str(&format!(" {ratio:>10.1}"));
            }
            println!("{row}");
        }
        let mut geo_row = format!("{:<6} {:<8}", format!("{side}x{side}"), "Geo");
        let mut geos = Vec::new();
        for ratios in &per_thread_ratios {
            let g = muchisim_bench::geomean(ratios);
            geos.push(g);
            geo_row.push_str(&format!(" {g:>10.1}"));
        }
        println!("{geo_row}");
        // shape check: more threads must not be slower overall (allowing
        // plateau once threads ~ columns / barrier overhead dominates)
        let first = geos.first().copied().unwrap_or(1.0);
        let best = geos.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "  {side}x{side}: geomean ratio {first:.1} (1T) -> best {best:.1} ({:.1}x speedup; paper: 614 -> 43, 12x)",
            first / best
        );
        assert!(
            best < first,
            "parallelization should speed up the {side}x{side} simulation"
        );
    }
}
