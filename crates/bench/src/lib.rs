//! Shared helpers for the figure-regeneration benches.
//!
//! Every table and figure of the paper's evaluation has a bench target in
//! `benches/`; the experiments run the full code paths at geometrically
//! scaled-down sizes (DESIGN.md substitution #1) and print the same rows
//! / series the paper reports. `EXPERIMENTS.md` records the
//! paper-vs-measured shapes.

use muchisim_config::SystemConfig;
use muchisim_data::rmat::RmatConfig;
use muchisim_data::Csr;
use std::sync::Arc;

/// Default RMAT scale for the figure benches (paper: RMAT-22/25/26;
/// scaled down per DESIGN.md).
pub const BENCH_RMAT_SCALE: u32 = 11;

/// The shared dataset seed.
pub const BENCH_SEED: u64 = 0x6D75_6368_6953_696D;

/// Generates the shared bench dataset at `scale`, behind an [`Arc`] so
/// every experiment in a bench shares one host copy.
pub fn bench_graph(scale: u32) -> Arc<Csr> {
    Arc::new(RmatConfig::scale(scale).generate(BENCH_SEED))
}

/// A square monolithic DUT of `side × side` tiles.
pub fn square_dut(side: u32) -> SystemConfig {
    SystemConfig::builder()
        .chiplet_tiles(side, side)
        .build()
        .expect("valid config")
}

/// Geometric mean.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Prints a rule line for the bench reports.
pub fn rule(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_work() {
        assert_eq!(bench_graph(6).num_vertices(), 64);
        assert_eq!(square_dut(8).total_tiles(), 64);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }
}
