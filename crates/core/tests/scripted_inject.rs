//! Scripted-injection behavior: applications that drive the NoC on a
//! fixed timetable ([`Application::scheduled_sends`]) instead of through
//! the PU/channel-queue path.

use muchisim_config::SystemConfig;
use muchisim_core::{
    Application, GridInfo, Payload, ScheduledSend, SimResult, Simulation, TaskCtx,
};

/// Every tile sends `per_tile` packets to the next tile (ring), one
/// every `gap` cycles starting at `start`.
struct RingSchedule {
    per_tile: u64,
    gap: u64,
    start: u64,
}

impl Application for RingSchedule {
    type Tile = u64; // messages received

    fn name(&self) -> &'static str {
        "ring-schedule"
    }

    fn task_types(&self) -> u8 {
        1
    }

    fn make_tile(&self, _tile: u32, _grid: &GridInfo) -> u64 {
        0
    }

    fn init(&self, _state: &mut u64, _ctx: &mut TaskCtx<'_>) {}

    fn handle(&self, state: &mut u64, _task: u8, msg: &[u32], ctx: &mut TaskCtx<'_>) {
        *state += 1;
        ctx.int_ops(1);
        assert_eq!(msg[1], 0xBEEF);
    }

    fn scheduled_sends(&self, tile: u32, grid: &GridInfo) -> Vec<ScheduledSend> {
        let dst = (tile + 1) % grid.total_tiles;
        (0..self.per_tile)
            .map(|i| ScheduledSend {
                cycle: self.start + i * self.gap,
                dst,
                task: 0,
                payload: Payload::from_slice(&[tile, 0xBEEF]),
                reduce: None,
            })
            .collect()
    }

    fn check(&self, tiles: &[u64]) -> Result<(), String> {
        let total: u64 = tiles.iter().sum();
        let want = self.per_tile * tiles.len() as u64;
        (total == want)
            .then_some(())
            .ok_or(format!("delivered {total}, scheduled {want}"))
    }
}

fn run(leap: bool, threads: usize) -> SimResult {
    let cfg = SystemConfig::builder()
        .chiplet_tiles(4, 4)
        .time_leap(leap)
        .build()
        .unwrap();
    let app = RingSchedule {
        per_tile: 8,
        gap: 50,
        start: 10,
    };
    Simulation::new(cfg, app)
        .unwrap()
        .run_parallel(threads)
        .unwrap()
}

#[test]
fn scheduled_sends_deliver_and_dispatch_handlers() {
    let r = run(true, 1);
    assert!(r.check_error.is_none(), "{:?}", r.check_error);
    assert_eq!(r.counters.noc.injected, 16 * 8);
    assert_eq!(r.counters.noc.ejected, 16 * 8);
    // every delivery dispatched a handler (plus one init task per tile)
    assert_eq!(r.counters.pu.tasks_executed, 16 * 8 + 16);
    // the run spans the whole timetable: last send at cycle 10 + 7*50
    assert!(r.runtime_cycles > 360, "runtime {}", r.runtime_cycles);
}

#[test]
fn latency_counts_every_scheduled_packet() {
    let r = run(true, 1);
    assert_eq!(r.noc_latency.count, 16 * 8);
    // ring neighbor: 1 hop (or the mesh wrap path), all short but nonzero
    assert!(r.noc_latency.mean() >= 1.0);
    assert!(r.noc_latency.max_cycles < 100);
    assert!(r.noc_latency.percentile(0.5) >= 1);
}

#[test]
fn scripted_runs_are_bit_identical_across_leap_and_threads() {
    let base = run(true, 1);
    for (leap, threads) in [(false, 1), (true, 4), (false, 4)] {
        let mut other = run(leap, threads);
        assert_eq!(
            base.runtime_cycles, other.runtime_cycles,
            "{leap}/{threads}"
        );
        assert_eq!(base.noc_latency, other.noc_latency, "{leap}/{threads}");
        // `onchip_flit_mm` is an f64 partial sum whose grouping follows
        // the shard split; it is equal to rounding across thread counts
        // and exactly equal at equal thread counts (like all counters)
        let (a, b) = (
            base.counters.noc.onchip_flit_mm,
            other.counters.noc.onchip_flit_mm,
        );
        assert!((a - b).abs() < 1e-9 * a.max(1.0), "{leap}/{threads}");
        other.counters.noc.onchip_flit_mm = a;
        assert_eq!(base.counters, other.counters, "{leap}/{threads}");
    }
}
