//! Behavioural tests of the simulation engine across whole apps.

use muchisim_config::{DramConfig, NocTopology, SystemConfig, Verbosity};
use muchisim_core::{Application, GridInfo, SimError, Simulation, TaskCtx};

/// Every tile sends one counter message to the next tile (ring), which
/// increments and forwards until hops are exhausted.
struct Relay {
    hops: u32,
}

impl Application for Relay {
    type Tile = u64; // messages handled
    fn name(&self) -> &'static str {
        "relay"
    }
    fn task_types(&self) -> u8 {
        1
    }
    fn make_tile(&self, _tile: u32, _grid: &GridInfo) -> u64 {
        0
    }
    fn init(&self, _state: &mut u64, ctx: &mut TaskCtx<'_>) {
        if ctx.tile == 0 {
            ctx.int_ops(1);
            ctx.send(0, 1 % ctx.grid().total_tiles, &[self.hops]);
        }
    }
    fn handle(&self, state: &mut u64, _task: u8, msg: &[u32], ctx: &mut TaskCtx<'_>) {
        *state += 1;
        ctx.int_ops(2);
        ctx.app_ops(1);
        let remaining = msg[0];
        if remaining > 1 {
            let next = (ctx.tile + 1) % ctx.grid().total_tiles;
            ctx.send(0, next, &[remaining - 1]);
        }
    }
    fn check(&self, tiles: &[u64]) -> Result<(), String> {
        let total: u64 = tiles.iter().sum();
        if total == self.hops as u64 {
            Ok(())
        } else {
            Err(format!(
                "expected {} handled messages, got {total}",
                self.hops
            ))
        }
    }
}

/// All-to-one flood: every tile sends `per_tile` messages to tile 0,
/// stressing endpoint contention and IQ backpressure.
struct Flood {
    per_tile: u32,
}

impl Application for Flood {
    type Tile = u64;
    fn name(&self) -> &'static str {
        "flood"
    }
    fn task_types(&self) -> u8 {
        1
    }
    fn make_tile(&self, _tile: u32, _grid: &GridInfo) -> u64 {
        0
    }
    fn init(&self, _state: &mut u64, ctx: &mut TaskCtx<'_>) {
        if ctx.tile != 0 {
            for i in 0..self.per_tile {
                ctx.int_ops(1);
                ctx.send(0, 0, &[ctx.tile, i]);
            }
        }
    }
    fn handle(&self, state: &mut u64, _task: u8, _msg: &[u32], ctx: &mut TaskCtx<'_>) {
        *state += 1;
        ctx.int_ops(1);
    }
    fn check(&self, tiles: &[u64]) -> Result<(), String> {
        let expected = (tiles.len() as u64 - 1) * self.per_tile as u64;
        if tiles[0] == expected {
            Ok(())
        } else {
            Err(format!("tile 0 received {} of {expected}", tiles[0]))
        }
    }
}

/// Pure do-all compute: each kernel's init task computes locally, no
/// messages at all; verifies kernel sequencing and runtime accounting.
struct DoAll;

impl Application for DoAll {
    type Tile = u32; // kernels seen
    fn name(&self) -> &'static str {
        "doall"
    }
    fn task_types(&self) -> u8 {
        1
    }
    fn kernels(&self) -> u32 {
        3
    }
    fn make_tile(&self, _tile: u32, _grid: &GridInfo) -> u32 {
        0
    }
    fn init(&self, state: &mut u32, ctx: &mut TaskCtx<'_>) {
        assert_eq!(*state, ctx.kernel);
        *state += 1;
        ctx.fp_ops(100);
        for i in 0..8 {
            ctx.load(ctx.local_addr(0, i, 4));
        }
    }
    fn handle(&self, _state: &mut u32, _task: u8, _msg: &[u32], _ctx: &mut TaskCtx<'_>) {
        unreachable!("do-all app never receives messages");
    }
    fn check(&self, tiles: &[u32]) -> Result<(), String> {
        tiles
            .iter()
            .all(|&k| k == 3)
            .then_some(())
            .ok_or_else(|| "not all kernels ran".into())
    }
}

fn small_cfg() -> SystemConfig {
    SystemConfig::builder()
        .chiplet_tiles(8, 8)
        .verbosity(Verbosity::V2)
        .frame_interval_cycles(64)
        .build()
        .unwrap()
}

#[test]
fn relay_crosses_the_grid() {
    let result = Simulation::new(small_cfg(), Relay { hops: 200 })
        .unwrap()
        .run()
        .unwrap();
    assert!(result.check_error.is_none(), "{:?}", result.check_error);
    assert_eq!(result.counters.pu.app_ops, 200);
    // 200 sequential hops, each at least a few cycles
    assert!(result.runtime_cycles > 400);
    assert!(result.counters.noc.injected >= 199);
}

#[test]
fn flood_delivers_everything_under_backpressure() {
    let cfg = SystemConfig::builder()
        .chiplet_tiles(8, 8)
        .queues(4, 2) // tiny queues to force backpressure
        .buffer_depth(2)
        .build()
        .unwrap();
    let result = Simulation::new(cfg, Flood { per_tile: 8 })
        .unwrap()
        .run()
        .unwrap();
    assert!(result.check_error.is_none(), "{:?}", result.check_error);
    let c = &result.counters;
    assert_eq!(c.noc.injected, 63 * 8);
    assert_eq!(c.noc.ejected, 63 * 8);
    assert!(
        c.noc.backpressure + c.noc.eject_stalls > 0,
        "expected contention"
    );
}

#[test]
fn doall_kernels_run_in_sequence() {
    let result = Simulation::new(small_cfg(), DoAll).unwrap().run().unwrap();
    assert!(result.check_error.is_none(), "{:?}", result.check_error);
    // 3 kernels x 64 tiles inits
    assert_eq!(result.counters.pu.tasks_executed, 3 * 64);
    assert_eq!(result.counters.pu.fp_ops, 3 * 64 * 100);
    assert_eq!(result.counters.mem.sram_reads, 3 * 64 * 8);
    assert!(result.counters.noc.injected == 0);
}

#[test]
fn parallel_is_bit_identical_to_sequential() {
    let mut reference: Option<(u64, u64, u64)> = None;
    for threads in [1usize, 2, 4, 8] {
        let result = Simulation::new(small_cfg(), Flood { per_tile: 6 })
            .unwrap()
            .run_parallel(threads)
            .unwrap();
        assert!(result.check_error.is_none());
        let key = (
            result.runtime_cycles,
            result.counters.noc.msg_hops,
            result.counters.pu.busy_cycles,
        );
        match &reference {
            None => reference = Some(key),
            Some(r) => assert_eq!(*r, key, "thread count {threads} diverged"),
        }
    }
}

#[test]
fn parallel_identical_with_dram_and_torus() {
    let cfg = SystemConfig::builder()
        .chiplet_tiles(16, 16)
        .noc_topology(NocTopology::FoldedTorus)
        .sram_kib_per_tile(64)
        .dram(DramConfig::default())
        .build()
        .unwrap();
    let mut reference: Option<(u64, u64, u64)> = None;
    for threads in [1usize, 4] {
        let result = Simulation::new(cfg.clone(), Relay { hops: 300 })
            .unwrap()
            .run_parallel(threads)
            .unwrap();
        assert!(result.check_error.is_none());
        let key = (
            result.runtime_cycles,
            result.counters.noc.msg_hops,
            result.counters.mem.cache_misses,
        );
        match &reference {
            None => reference = Some(key),
            Some(r) => assert_eq!(*r, key, "thread count {threads} diverged"),
        }
    }
}

#[test]
fn frames_recorded_at_v2() {
    let result = Simulation::new(small_cfg(), Relay { hops: 500 })
        .unwrap()
        .run()
        .unwrap();
    assert!(!result.frames.is_empty());
    let total_tasks: u64 = result.frames.frames.iter().map(|f| f.tasks_delta).sum();
    // 64 inits + 500 relay handlings
    assert_eq!(total_tasks, 64 + 500);
    // per-tile activity present in some frame
    assert!(result
        .frames
        .frames
        .iter()
        .any(|f| !f.router_busy.is_empty() && !f.pu_busy.is_empty()));
}

#[test]
fn verbosity_v0_suppresses_frames() {
    let cfg = SystemConfig::builder()
        .chiplet_tiles(8, 8)
        .verbosity(Verbosity::V0)
        .build()
        .unwrap();
    let result = Simulation::new(cfg, Relay { hops: 50 })
        .unwrap()
        .run()
        .unwrap();
    assert!(result.frames.is_empty());
}

#[test]
fn cycle_limit_errors_out() {
    let err = Simulation::new(small_cfg(), Relay { hops: 100_000 })
        .unwrap()
        .with_cycle_limit(100)
        .run()
        .unwrap_err();
    assert!(matches!(err, SimError::CycleLimitExceeded { limit: 100 }));
}

#[test]
fn cyclic_task_graph_rejected() {
    struct Cyclic;
    impl Application for Cyclic {
        type Tile = ();
        fn name(&self) -> &'static str {
            "cyclic"
        }
        fn task_types(&self) -> u8 {
            2
        }
        fn task_graph(&self) -> Vec<(u8, u8)> {
            vec![(0, 1), (1, 0)]
        }
        fn make_tile(&self, _t: u32, _g: &GridInfo) {}
        fn init(&self, _s: &mut (), _ctx: &mut TaskCtx<'_>) {}
        fn handle(&self, _s: &mut (), _t: u8, _m: &[u32], _ctx: &mut TaskCtx<'_>) {}
    }
    assert!(matches!(
        Simulation::new(small_cfg(), Cyclic),
        Err(SimError::CyclicTaskGraph)
    ));
}

#[test]
fn failed_check_is_reported() {
    struct AlwaysWrong;
    impl Application for AlwaysWrong {
        type Tile = ();
        fn name(&self) -> &'static str {
            "wrong"
        }
        fn task_types(&self) -> u8 {
            1
        }
        fn make_tile(&self, _t: u32, _g: &GridInfo) {}
        fn init(&self, _s: &mut (), ctx: &mut TaskCtx<'_>) {
            ctx.int_ops(1);
        }
        fn handle(&self, _s: &mut (), _t: u8, _m: &[u32], _ctx: &mut TaskCtx<'_>) {}
        fn check(&self, _tiles: &[()]) -> Result<(), String> {
            Err("deliberate".into())
        }
    }
    let result = Simulation::new(small_cfg(), AlwaysWrong)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(result.check_error.as_deref(), Some("deliberate"));
}

#[test]
fn runtime_includes_termination_detection() {
    // a single local task: runtime should still include 2x diameter
    struct Nothing;
    impl Application for Nothing {
        type Tile = ();
        fn name(&self) -> &'static str {
            "nothing"
        }
        fn task_types(&self) -> u8 {
            1
        }
        fn make_tile(&self, _t: u32, _g: &GridInfo) {}
        fn init(&self, _s: &mut (), ctx: &mut TaskCtx<'_>) {
            ctx.int_ops(1);
        }
        fn handle(&self, _s: &mut (), _t: u8, _m: &[u32], _ctx: &mut TaskCtx<'_>) {}
    }
    let cfg = small_cfg();
    let termination = cfg.termination_latency_cycles();
    let result = Simulation::new(cfg, Nothing).unwrap().run().unwrap();
    assert!(result.runtime_cycles >= termination);
}

#[test]
fn multi_plane_noc_partitions_traffic() {
    struct TwoTask;
    impl Application for TwoTask {
        type Tile = u32;
        fn name(&self) -> &'static str {
            "twotask"
        }
        fn task_types(&self) -> u8 {
            2
        }
        fn make_tile(&self, _t: u32, _g: &GridInfo) -> u32 {
            0
        }
        fn init(&self, _s: &mut u32, ctx: &mut TaskCtx<'_>) {
            if ctx.tile == 0 {
                ctx.send(0, 5, &[1]);
                ctx.send(1, 9, &[2]);
            }
        }
        fn handle(&self, s: &mut u32, task: u8, msg: &[u32], _ctx: &mut TaskCtx<'_>) {
            assert_eq!(msg[0] as u8, task + 1);
            *s += 1;
        }
        fn check(&self, tiles: &[u32]) -> Result<(), String> {
            (tiles[5] == 1 && tiles[9] == 1)
                .then_some(())
                .ok_or_else(|| "missing deliveries".into())
        }
    }
    let cfg = SystemConfig::builder()
        .chiplet_tiles(4, 4)
        .physical_nocs(2)
        .build()
        .unwrap();
    let result = Simulation::new(cfg, TwoTask).unwrap().run().unwrap();
    assert!(result.check_error.is_none(), "{:?}", result.check_error);
    assert_eq!(result.counters.noc.injected, 2);
}

/// Endpoint-heavy app with long task latencies: tile 1 floods tile 0
/// with independent 500-cycle tasks, so the NoC sits idle for long
/// stretches between dispatches — the time-leaping driver's best case.
#[derive(Clone)]
struct LongTasks;

impl Application for LongTasks {
    type Tile = u32;
    fn name(&self) -> &'static str {
        "longtasks"
    }
    fn task_types(&self) -> u8 {
        1
    }
    fn make_tile(&self, _t: u32, _g: &GridInfo) -> u32 {
        0
    }
    fn init(&self, _s: &mut u32, ctx: &mut TaskCtx<'_>) {
        if ctx.tile == 1 {
            for i in 0..24 {
                ctx.send(0, 0, &[i]);
            }
        }
    }
    fn handle(&self, s: &mut u32, _t: u8, _m: &[u32], ctx: &mut TaskCtx<'_>) {
        *s += 1;
        ctx.add_cycles(500);
        let next = (ctx.tile + 7) % ctx.grid().total_tiles;
        if s.is_multiple_of(4) {
            ctx.send(0, next, &[*s]);
        }
    }
}

/// Runs `app` at the given thread count with leaping on or off and
/// returns the full observable outcome.
fn leap_run<A: Application + Clone>(
    app: &A,
    leap: bool,
    threads: usize,
) -> muchisim_core::SimResult {
    let cfg = SystemConfig::builder()
        .chiplet_tiles(8, 8)
        .verbosity(Verbosity::V3)
        .frame_interval_cycles(64)
        .time_leap(leap)
        .build()
        .unwrap();
    Simulation::new(cfg, app.clone())
        .unwrap()
        .run_parallel(threads)
        .unwrap()
}

#[test]
fn time_leap_is_bit_identical_to_lockstep() {
    for threads in [1usize, 4] {
        let off = leap_run(&LongTasks, false, threads);
        let on = leap_run(&LongTasks, true, threads);
        assert_eq!(on.runtime_cycles, off.runtime_cycles, "{threads} threads");
        assert_eq!(on.counters, off.counters, "{threads} threads");
        assert_eq!(on.frames, off.frames, "{threads} threads");
    }
}

#[test]
fn time_leap_skips_host_work_on_idle_stretches() {
    // not a wall-clock assertion (too flaky for CI): leaping must leave
    // runtime_cycles far above the number of frames it actually stepped
    // through, proving jumps happened, while frames stay backfilled
    #[derive(Clone)]
    struct Sparse;
    impl Application for Sparse {
        type Tile = u32;
        fn name(&self) -> &'static str {
            "sparse"
        }
        fn task_types(&self) -> u8 {
            1
        }
        fn make_tile(&self, _t: u32, _g: &GridInfo) -> u32 {
            0
        }
        fn init(&self, _s: &mut u32, ctx: &mut TaskCtx<'_>) {
            if ctx.tile == 0 {
                ctx.add_cycles(50_000); // one huge task
                ctx.send(0, 1, &[1]);
            }
        }
        fn handle(&self, s: &mut u32, _t: u8, _m: &[u32], _ctx: &mut TaskCtx<'_>) {
            *s += 1;
        }
    }
    let on = leap_run(&Sparse, true, 1);
    let off = leap_run(&Sparse, false, 1);
    assert!(on.runtime_cycles > 50_000);
    assert_eq!(on.runtime_cycles, off.runtime_cycles);
    assert_eq!(on.frames, off.frames);
    // the 50k-cycle gap crosses hundreds of 64-cycle frame boundaries,
    // all of which must have been backfilled
    assert!(on.frames.len() > 500, "frames: {}", on.frames.len());
}

#[test]
fn kernel_end_frame_never_duplicated() {
    // sweeping the frame interval guarantees some interval lands the
    // kernel drain exactly on a frame boundary (the seed pushed an empty
    // duplicate frame with a repeated start_cycle there). Within this
    // sweep range every kernel spans several frame intervals, so frame
    // starts must be strictly increasing; at intervals longer than a
    // whole kernel the kernel-end flush intentionally emits one partial
    // frame per kernel (same window, that kernel's deltas) instead.
    for interval in 1..=24u64 {
        for leap in [false, true] {
            let cfg = SystemConfig::builder()
                .chiplet_tiles(4, 4)
                .verbosity(Verbosity::V1)
                .frame_interval_cycles(interval)
                .time_leap(leap)
                .build()
                .unwrap();
            let result = Simulation::new(cfg, Relay { hops: 40 })
                .unwrap()
                .run()
                .unwrap();
            let starts: Vec<u64> = result.frames.frames.iter().map(|f| f.start_cycle).collect();
            for w in starts.windows(2) {
                assert!(
                    w[0] < w[1],
                    "duplicate/unordered frame starts {starts:?} at interval {interval} leap {leap}"
                );
            }
        }
    }
    // multi-kernel: the boundary case must also hold across kernel barriers
    for interval in 1..=8u64 {
        let cfg = SystemConfig::builder()
            .chiplet_tiles(4, 4)
            .verbosity(Verbosity::V1)
            .frame_interval_cycles(interval)
            .build()
            .unwrap();
        let result = Simulation::new(cfg, DoAll).unwrap().run().unwrap();
        let starts: Vec<u64> = result.frames.frames.iter().map(|f| f.start_cycle).collect();
        for w in starts.windows(2) {
            assert!(
                w[0] < w[1],
                "kernel-boundary duplicate {starts:?} at {interval}"
            );
        }
    }
}

#[test]
fn multiple_pus_per_tile_increase_throughput() {
    // one tile receives many independent tasks; more PUs -> shorter runtime
    struct Busy;
    impl Application for Busy {
        type Tile = u32;
        fn name(&self) -> &'static str {
            "busy"
        }
        fn task_types(&self) -> u8 {
            1
        }
        fn make_tile(&self, _t: u32, _g: &GridInfo) -> u32 {
            0
        }
        fn init(&self, _s: &mut u32, ctx: &mut TaskCtx<'_>) {
            if ctx.tile == 1 {
                for i in 0..32 {
                    ctx.send(0, 0, &[i]);
                }
            }
        }
        fn handle(&self, s: &mut u32, _t: u8, _m: &[u32], ctx: &mut TaskCtx<'_>) {
            *s += 1;
            ctx.add_cycles(500); // long task
        }
    }
    let run = |pus: u32| {
        let cfg = SystemConfig::builder()
            .chiplet_tiles(4, 4)
            .pus_per_tile(pus)
            .build()
            .unwrap();
        Simulation::new(cfg, Busy)
            .unwrap()
            .run()
            .unwrap()
            .runtime_cycles
    };
    let one = run(1);
    let four = run(4);
    assert!(
        four * 2 < one,
        "4 PUs ({four} cycles) should be much faster than 1 PU ({one} cycles)"
    );
}
