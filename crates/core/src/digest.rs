//! Trace-checksum helpers shared by the verification suites.
//!
//! The golden-trace tests, the checkpoint-determinism matrix, and the
//! kill-switch tests all need the same notion of "everything the
//! simulation *means*", hashed into one comparable word. This module is
//! that single definition: FNV-1a over the runtime, the full counter
//! set (via its canonical JSON), and every statistics frame's scalar
//! deltas plus dense per-tile activity grids.
//!
//! Dense grids — not the raw sparse `(tile, value)` pairs — are hashed
//! deliberately: the order in which workers contribute sparse pairs is
//! a host-side artifact, while the dense grid is the simulated
//! quantity. Two runs with equal [`trace_checksum`] are bit-identical
//! in every counter, frame delta, and activity grid.

use crate::tile::SimResult;

/// FNV-1a, 64-bit. The exact hash behind the committed golden-trace
/// checksums — do not change the constants without re-blessing
/// `tests/golden/traces.json`.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Fnv {
    /// A fresh hasher at the FNV-1a offset basis.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the hash.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Folds a `u64` (little-endian byte order) into the hash.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Checksums everything the simulation *means*: runtime, every counter,
/// and per-frame scalar deltas plus the dense per-tile activity grids.
///
/// Host-side fields (`host_seconds`, `host_phase_ns`, `host_threads`,
/// `host_state_bytes`) are deliberately excluded — they vary run to run
/// without any simulated-behavior change.
pub fn trace_checksum(result: &SimResult, total_tiles: u32) -> u64 {
    let mut h = Fnv::new();
    h.u64(result.runtime_cycles);
    // counters via their canonical JSON (field order is declaration
    // order in the shim, floats are bit-exact across runs)
    h.bytes(
        serde_json::to_string(&result.counters)
            .expect("counters serialize")
            .as_bytes(),
    );
    h.u64(result.frames.interval_cycles);
    h.u64(result.frames.len() as u64);
    for frame in &result.frames.frames {
        h.u64(frame.index);
        h.u64(frame.start_cycle);
        h.u64(frame.tasks_delta);
        h.u64(frame.injected_delta);
        h.u64(frame.ejected_delta);
        for grid in [frame.router_grid(total_tiles), frame.pu_grid(total_tiles)] {
            for v in grid {
                h.u64(v as u64);
            }
        }
        let mut iq = vec![0u64; total_tiles as usize];
        for &(t, v) in &frame.iq_occupancy {
            iq[t as usize] += v as u64;
        }
        for v in iq {
            h.u64(v);
        }
    }
    h.finish()
}

/// Like [`trace_checksum`], but restricted to the *shard-split-invariant*
/// portion of the result: [`NocCounters::onchip_flit_mm`] is zeroed
/// before hashing, because that one accumulator is an `f64` summed in
/// worker order — the simulated schedule behind it is identical across
/// thread counts, but float addition is not associative, so its last
/// bits follow the shard split (see `tests/worklist_determinism.rs`).
///
/// Use this to compare runs under *different* host configurations
/// (thread counts, or a checkpoint written under one split and resumed
/// under another); use [`trace_checksum`] when the split is fixed.
///
/// [`NocCounters::onchip_flit_mm`]: muchisim_noc::NocCounters
pub fn schedule_checksum(result: &SimResult, total_tiles: u32) -> u64 {
    let mut normalized = result.clone();
    normalized.counters.noc.onchip_flit_mm = 0.0;
    trace_checksum(&normalized, total_tiles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // FNV-1a 64-bit reference values.
        let mut h = Fnv::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv::new();
        h.bytes(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn u64_hashes_little_endian_bytes() {
        let mut a = Fnv::new();
        a.u64(0x0102_0304_0506_0708);
        let mut b = Fnv::new();
        b.bytes(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.finish(), b.finish());
    }
}
