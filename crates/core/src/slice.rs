//! Column-slice bookkeeping shared by tiles, shards, and DRAM channels.

use std::ops::Range;

/// A contiguous range of grid columns owned by one worker, with local ↔
/// global tile-id conversion (the same layout the NoC shards use).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColSlice {
    /// Owned columns.
    pub cols: Range<u32>,
    /// Global grid width.
    pub width: u32,
    /// Global grid height.
    pub height: u32,
}

impl ColSlice {
    /// Creates a slice.
    pub fn new(cols: Range<u32>, width: u32, height: u32) -> Self {
        ColSlice {
            cols,
            width,
            height,
        }
    }

    /// Number of columns owned.
    pub fn ncols(&self) -> u32 {
        self.cols.end - self.cols.start
    }

    /// Number of tiles owned.
    pub fn num_tiles(&self) -> usize {
        (self.ncols() * self.height) as usize
    }

    /// Whether the slice owns `tile`.
    pub fn owns(&self, tile: u32) -> bool {
        self.cols.contains(&(tile % self.width))
    }

    /// Local index of a global tile id.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the tile is not owned.
    pub fn local(&self, tile: u32) -> usize {
        debug_assert!(self.owns(tile), "tile {tile} not in slice");
        let x = tile % self.width;
        let y = tile / self.width;
        (y * self.ncols() + (x - self.cols.start)) as usize
    }

    /// Global tile id of a local index.
    pub fn global(&self, local: usize) -> u32 {
        let ncols = self.ncols() as usize;
        let y = (local / ncols) as u32;
        let x = self.cols.start + (local % ncols) as u32;
        y * self.width + x
    }

    /// Iterates over all owned global tile ids in local order.
    pub fn iter_tiles(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.num_tiles()).map(move |l| self.global(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_global_round_trip() {
        let s = ColSlice::new(2..5, 8, 4);
        assert_eq!(s.num_tiles(), 12);
        for l in 0..s.num_tiles() {
            let g = s.global(l);
            assert!(s.owns(g));
            assert_eq!(s.local(g), l);
        }
    }

    #[test]
    fn ownership() {
        let s = ColSlice::new(2..5, 8, 4);
        assert!(!s.owns(0));
        assert!(s.owns(2));
        assert!(s.owns(8 + 4));
        assert!(!s.owns(8 + 5));
    }

    #[test]
    fn iter_covers_all() {
        let s = ColSlice::new(0..8, 8, 2);
        let tiles: Vec<u32> = s.iter_tiles().collect();
        assert_eq!(tiles.len(), 16);
        assert_eq!(tiles[0], 0);
        assert_eq!(*tiles.last().unwrap(), 15);
    }
}
