//! TSU scheduling policies (paper §III-A "Task Scheduling Unit").

use muchisim_config::SchedulingPolicy;
use std::collections::VecDeque;
use std::sync::Arc;

/// Which arbitration rule the scheduler applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PolicyKind {
    RoundRobin,
    Priority,
    OccupancyBased,
}

/// Scheduler state for one tile's TSU.
///
/// The per-tile mutable state is two bytes (the policy kind and the
/// round-robin pointer); the priority order is shared behind an [`Arc`],
/// so cloning a prototype scheduler across a million tiles shares one
/// order table instead of allocating a million copies.
#[derive(Debug, Clone)]
pub struct Scheduler {
    kind: PolicyKind,
    /// Round-robin pointer (last served task id).
    rr_last: u8,
    /// Priority order: task ids, highest priority first (priority policy).
    order: Arc<[u8]>,
}

impl Scheduler {
    /// Builds a scheduler for `task_types` task ids with `policy`.
    pub fn new(policy: SchedulingPolicy, task_types: u8) -> Self {
        let (kind, order): (PolicyKind, Vec<u8>) = match &policy {
            SchedulingPolicy::Priority(listed) => {
                let mut order = listed.clone();
                for t in 0..task_types {
                    if !order.contains(&t) {
                        order.push(t);
                    }
                }
                (PolicyKind::Priority, order)
            }
            SchedulingPolicy::RoundRobin => (PolicyKind::RoundRobin, Vec::new()),
            SchedulingPolicy::OccupancyBased => (PolicyKind::OccupancyBased, Vec::new()),
        };
        Scheduler {
            kind,
            rr_last: task_types.saturating_sub(1),
            order: order.into(),
        }
    }

    /// The round-robin pointer (last served task id), for checkpointing.
    pub(crate) fn rr_last(&self) -> u8 {
        self.rr_last
    }

    /// Restores the round-robin pointer from a checkpoint.
    pub(crate) fn set_rr_last(&mut self, v: u8) {
        self.rr_last = v;
    }

    /// Picks the next task-type queue to serve, or `None` if all are
    /// empty. `iqs[t]` is the input queue of task `t`; an empty slice
    /// (no queues materialized yet) always yields `None`.
    pub fn pick<T>(&mut self, iqs: &[VecDeque<T>]) -> Option<u8> {
        if iqs.is_empty() {
            return None;
        }
        match self.kind {
            PolicyKind::RoundRobin => {
                let n = iqs.len() as u8;
                for step in 1..=n {
                    let t = (self.rr_last + step) % n;
                    if !iqs[t as usize].is_empty() {
                        self.rr_last = t;
                        return Some(t);
                    }
                }
                None
            }
            PolicyKind::Priority => self
                .order
                .iter()
                .copied()
                .find(|&t| iqs.get(t as usize).is_some_and(|q| !q.is_empty())),
            PolicyKind::OccupancyBased => iqs
                .iter()
                .enumerate()
                .filter(|(_, q)| !q.is_empty())
                .max_by_key(|(i, q)| (q.len(), usize::MAX - i))
                .map(|(i, _)| i as u8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queues(lens: &[usize]) -> Vec<VecDeque<u32>> {
        lens.iter()
            .map(|&n| (0..n as u32).collect::<VecDeque<u32>>())
            .collect()
    }

    #[test]
    fn round_robin_rotates_fairly() {
        let mut s = Scheduler::new(SchedulingPolicy::RoundRobin, 3);
        let iqs = queues(&[2, 2, 2]);
        assert_eq!(s.pick(&iqs), Some(0));
        assert_eq!(s.pick(&iqs), Some(1));
        assert_eq!(s.pick(&iqs), Some(2));
        assert_eq!(s.pick(&iqs), Some(0));
    }

    #[test]
    fn round_robin_skips_empty() {
        let mut s = Scheduler::new(SchedulingPolicy::RoundRobin, 3);
        let iqs = queues(&[0, 2, 0]);
        assert_eq!(s.pick(&iqs), Some(1));
        assert_eq!(s.pick(&iqs), Some(1));
        assert_eq!(s.pick(&queues(&[0, 0, 0])), None);
    }

    #[test]
    fn priority_serves_listed_first() {
        let mut s = Scheduler::new(SchedulingPolicy::Priority(vec![2, 0]), 3);
        let iqs = queues(&[1, 5, 1]);
        assert_eq!(s.pick(&iqs), Some(2));
        let iqs = queues(&[1, 5, 0]);
        assert_eq!(s.pick(&iqs), Some(0));
        let iqs = queues(&[0, 5, 0]);
        assert_eq!(s.pick(&iqs), Some(1), "unlisted tasks come last");
    }

    #[test]
    fn occupancy_serves_fullest() {
        let mut s = Scheduler::new(SchedulingPolicy::OccupancyBased, 3);
        let iqs = queues(&[1, 5, 3]);
        assert_eq!(s.pick(&iqs), Some(1));
        // tie broken towards the lower task id
        let iqs = queues(&[4, 4, 1]);
        assert_eq!(s.pick(&iqs), Some(0));
    }

    #[test]
    fn empty_queue_slice_yields_none() {
        // lazily-allocated tiles hand an empty slice before any message
        // arrives; every policy must decline rather than divide by zero
        for policy in [
            SchedulingPolicy::RoundRobin,
            SchedulingPolicy::Priority(vec![1]),
            SchedulingPolicy::OccupancyBased,
        ] {
            let mut s = Scheduler::new(policy, 3);
            assert_eq!(s.pick::<u32>(&[]), None);
        }
    }

    #[test]
    fn clones_share_the_order_table() {
        let proto = Scheduler::new(SchedulingPolicy::Priority(vec![2, 0]), 3);
        let clone = proto.clone();
        assert!(Arc::ptr_eq(&proto.order, &clone.order));
    }
}
