//! TSU scheduling policies (paper §III-A "Task Scheduling Unit").

use muchisim_config::SchedulingPolicy;
use std::collections::VecDeque;

/// Scheduler state for one tile's TSU.
#[derive(Debug, Clone)]
pub struct Scheduler {
    policy: SchedulingPolicy,
    /// Round-robin pointer (last served task id).
    rr_last: u8,
    /// Priority order: task ids, highest priority first (priority policy).
    order: Vec<u8>,
}

impl Scheduler {
    /// Builds a scheduler for `task_types` task ids with `policy`.
    pub fn new(policy: SchedulingPolicy, task_types: u8) -> Self {
        let order = match &policy {
            SchedulingPolicy::Priority(listed) => {
                let mut order = listed.clone();
                for t in 0..task_types {
                    if !order.contains(&t) {
                        order.push(t);
                    }
                }
                order
            }
            _ => (0..task_types).collect(),
        };
        Scheduler {
            policy,
            rr_last: task_types.saturating_sub(1),
            order,
        }
    }

    /// Picks the next task-type queue to serve, or `None` if all are
    /// empty. `iqs[t]` is the input queue of task `t`.
    pub fn pick<T>(&mut self, iqs: &[VecDeque<T>]) -> Option<u8> {
        match &self.policy {
            SchedulingPolicy::RoundRobin => {
                let n = iqs.len() as u8;
                for step in 1..=n {
                    let t = (self.rr_last + step) % n;
                    if !iqs[t as usize].is_empty() {
                        self.rr_last = t;
                        return Some(t);
                    }
                }
                None
            }
            SchedulingPolicy::Priority(_) => self
                .order
                .iter()
                .copied()
                .find(|&t| iqs.get(t as usize).is_some_and(|q| !q.is_empty())),
            SchedulingPolicy::OccupancyBased => iqs
                .iter()
                .enumerate()
                .filter(|(_, q)| !q.is_empty())
                .max_by_key(|(i, q)| (q.len(), usize::MAX - i))
                .map(|(i, _)| i as u8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queues(lens: &[usize]) -> Vec<VecDeque<u32>> {
        lens.iter()
            .map(|&n| (0..n as u32).collect::<VecDeque<u32>>())
            .collect()
    }

    #[test]
    fn round_robin_rotates_fairly() {
        let mut s = Scheduler::new(SchedulingPolicy::RoundRobin, 3);
        let iqs = queues(&[2, 2, 2]);
        assert_eq!(s.pick(&iqs), Some(0));
        assert_eq!(s.pick(&iqs), Some(1));
        assert_eq!(s.pick(&iqs), Some(2));
        assert_eq!(s.pick(&iqs), Some(0));
    }

    #[test]
    fn round_robin_skips_empty() {
        let mut s = Scheduler::new(SchedulingPolicy::RoundRobin, 3);
        let iqs = queues(&[0, 2, 0]);
        assert_eq!(s.pick(&iqs), Some(1));
        assert_eq!(s.pick(&iqs), Some(1));
        assert_eq!(s.pick(&queues(&[0, 0, 0])), None);
    }

    #[test]
    fn priority_serves_listed_first() {
        let mut s = Scheduler::new(SchedulingPolicy::Priority(vec![2, 0]), 3);
        let iqs = queues(&[1, 5, 1]);
        assert_eq!(s.pick(&iqs), Some(2));
        let iqs = queues(&[1, 5, 0]);
        assert_eq!(s.pick(&iqs), Some(0));
        let iqs = queues(&[0, 5, 0]);
        assert_eq!(s.pick(&iqs), Some(1), "unlisted tasks come last");
    }

    #[test]
    fn occupancy_serves_fullest() {
        let mut s = Scheduler::new(SchedulingPolicy::OccupancyBased, 3);
        let iqs = queues(&[1, 5, 3]);
        assert_eq!(s.pick(&iqs), Some(1));
        // tie broken towards the lower task id
        let iqs = queues(&[4, 4, 1]);
        assert_eq!(s.pick(&iqs), Some(0));
    }
}
