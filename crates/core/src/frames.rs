//! Periodic statistics frames (paper §III-D / §III-F).
//!
//! The simulator logs performance counters in *frames* at a configurable
//! cycle interval. Frames drive the visualization tools: aggregate time
//! series at verbosity V1, plus per-tile router/PU activity heat maps at
//! V2 and queue occupancies at V3.

use serde::{Deserialize, Serialize};

/// One statistics frame.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Frame {
    /// Frame index.
    pub index: u64,
    /// First NoC cycle covered by this frame.
    pub start_cycle: u64,
    /// Tasks dispatched during the frame.
    pub tasks_delta: u64,
    /// Messages injected into the NoC during the frame.
    pub injected_delta: u64,
    /// Messages delivered during the frame.
    pub ejected_delta: u64,
    /// Per-tile router busy cycles, `(tile, busy)` sparse pairs
    /// (verbosity ≥ V2).
    pub router_busy: Vec<(u32, u32)>,
    /// Per-tile PU busy cycles, sparse pairs (verbosity ≥ V2).
    pub pu_busy: Vec<(u32, u32)>,
    /// Per-tile total input-queue occupancy, sparse pairs (verbosity V3).
    pub iq_occupancy: Vec<(u32, u32)>,
}

impl Frame {
    /// Merges a partial frame (from another worker) covering the same
    /// interval.
    pub fn merge(&mut self, other: &Frame) {
        debug_assert_eq!(self.index, other.index);
        self.tasks_delta += other.tasks_delta;
        self.injected_delta += other.injected_delta;
        self.ejected_delta += other.ejected_delta;
        self.router_busy.extend_from_slice(&other.router_busy);
        self.pu_busy.extend_from_slice(&other.pu_busy);
        self.iq_occupancy.extend_from_slice(&other.iq_occupancy);
    }

    /// Dense per-tile router-activity grid (`total_tiles` entries).
    pub fn router_grid(&self, total_tiles: u32) -> Vec<u32> {
        let mut grid = vec![0u32; total_tiles as usize];
        for &(t, v) in &self.router_busy {
            grid[t as usize] += v;
        }
        grid
    }

    /// Dense per-tile PU-activity grid.
    pub fn pu_grid(&self, total_tiles: u32) -> Vec<u32> {
        let mut grid = vec![0u32; total_tiles as usize];
        for &(t, v) in &self.pu_busy {
            grid[t as usize] += v;
        }
        grid
    }
}

/// The sequence of frames produced by one simulation.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FrameLog {
    /// Frame interval in NoC cycles.
    pub interval_cycles: u64,
    /// Frames in time order.
    pub frames: Vec<Frame>,
}

impl FrameLog {
    /// Creates an empty log with the given interval.
    pub fn new(interval_cycles: u64) -> Self {
        FrameLog {
            interval_cycles,
            frames: Vec::new(),
        }
    }

    /// Number of frames recorded.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no frames were recorded.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The `start_cycle`s of the frames a lockstep driver would have
    /// closed while stepping through the open interval
    /// `(after_cycle, next_cycle)`, in order.
    ///
    /// The cycle driver closes a frame at the end of every cycle `c` with
    /// `(c + 1) % interval == 0`; when the time-leaping driver jumps from
    /// `after_cycle` straight to `next_cycle` it must backfill exactly
    /// these captures so V1+ frame logs stay bit-identical. (The first
    /// backfilled frame flushes whatever deltas accumulated before the
    /// leap; the rest are idle frames, which the lockstep driver records
    /// too.)
    pub fn lockstep_capture_starts(
        &self,
        after_cycle: u64,
        next_cycle: u64,
    ) -> impl Iterator<Item = u64> {
        let interval = self.interval_cycles.max(1);
        // captures happen at cycles c = m*interval - 1 for m >= 1;
        // we need those with after_cycle < c < next_cycle
        let first = (after_cycle + 2).div_ceil(interval).max(1);
        let last = next_cycle / interval; // m*interval - 1 <= next_cycle - 1
        (first..=last).map(move |m| (m - 1) * interval)
    }

    /// Merges a per-worker partial log into this one (frame-by-frame).
    pub fn merge(&mut self, other: &FrameLog) {
        for (i, f) in other.frames.iter().enumerate() {
            if i < self.frames.len() {
                self.frames[i].merge(f);
            } else {
                self.frames.push(f.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_combines_sparse_grids() {
        let mut a = Frame {
            index: 0,
            tasks_delta: 2,
            router_busy: vec![(0, 5)],
            ..Default::default()
        };
        let b = Frame {
            index: 0,
            tasks_delta: 3,
            router_busy: vec![(1, 7)],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.tasks_delta, 5);
        assert_eq!(a.router_grid(2), vec![5, 7]);
    }

    #[test]
    fn log_merge_aligns_by_index() {
        let mut a = FrameLog::new(100);
        a.frames.push(Frame {
            index: 0,
            pu_busy: vec![(0, 1)],
            ..Default::default()
        });
        let mut b = FrameLog::new(100);
        b.frames.push(Frame {
            index: 0,
            pu_busy: vec![(1, 2)],
            ..Default::default()
        });
        b.frames.push(Frame {
            index: 1,
            pu_busy: vec![(1, 3)],
            ..Default::default()
        });
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.frames[0].pu_grid(2), vec![1, 2]);
        assert_eq!(a.frames[1].pu_grid(2), vec![0, 3]);
    }

    #[test]
    fn lockstep_capture_starts_match_per_cycle_stepping() {
        for interval in [1u64, 3, 64] {
            let log = FrameLog::new(interval);
            for after in 0..50u64 {
                for next in after + 1..after + 80 {
                    let got: Vec<u64> = log.lockstep_capture_starts(after, next).collect();
                    let want: Vec<u64> = (after + 1..next)
                        .filter(|c| (c + 1).is_multiple_of(interval))
                        .map(|c| c + 1 - interval)
                        .collect();
                    assert_eq!(got, want, "interval {interval} after {after} next {next}");
                }
            }
        }
    }

    #[test]
    fn empty_log() {
        let log = FrameLog::new(10);
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
    }
}
