//! Periodic statistics frames (paper §III-D / §III-F).
//!
//! The simulator logs performance counters in *frames* at a configurable
//! cycle interval. Frames drive the visualization tools: aggregate time
//! series at verbosity V1, plus per-tile router/PU activity heat maps at
//! V2 and queue occupancies at V3.
//!
//! Two collection modes exist:
//!
//! * [`FrameLog`] — the plain in-memory sequence (one frame per
//!   interval, unbounded). This is the default and what short runs use.
//! * [`FrameSink`] — the *streaming* collector for long or huge runs:
//!   in-memory frames are bounded by a budget (on overflow, adjacent
//!   frames merge pairwise, doubling the effective interval — classic
//!   telemetry downsampling), and every full-resolution frame can
//!   additionally be spilled to a JSONL file as it closes, so perfect
//!   fidelity lands on disk while host memory stays O(budget).
//!
//! Both modes capture at the *same* cycle boundaries, so the
//! time-leaping driver's backfill arithmetic
//! ([`FrameLog::lockstep_capture_starts`]) is shared and stays
//! bit-identical either way.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// One statistics frame.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Frame {
    /// Frame index.
    pub index: u64,
    /// First NoC cycle covered by this frame.
    pub start_cycle: u64,
    /// Tasks dispatched during the frame.
    pub tasks_delta: u64,
    /// Messages injected into the NoC during the frame.
    pub injected_delta: u64,
    /// Messages delivered during the frame.
    pub ejected_delta: u64,
    /// Per-tile router busy cycles, `(tile, busy)` sparse pairs
    /// (verbosity ≥ V2).
    pub router_busy: Vec<(u32, u32)>,
    /// Per-tile PU busy cycles, sparse pairs (verbosity ≥ V2).
    pub pu_busy: Vec<(u32, u32)>,
    /// Per-tile total input-queue occupancy, sparse pairs (verbosity V3).
    pub iq_occupancy: Vec<(u32, u32)>,
}

impl Frame {
    /// Merges a partial frame (from another worker) covering the same
    /// interval.
    pub fn merge(&mut self, other: &Frame) {
        debug_assert_eq!(self.index, other.index);
        self.absorb(other);
    }

    /// Accumulates `other`'s deltas and sparse grids into `self`,
    /// ignoring indices and start cycles (used both for same-interval
    /// merges across workers and for adjacent-interval downsampling).
    fn absorb(&mut self, other: &Frame) {
        self.tasks_delta += other.tasks_delta;
        self.injected_delta += other.injected_delta;
        self.ejected_delta += other.ejected_delta;
        self.router_busy.extend_from_slice(&other.router_busy);
        self.pu_busy.extend_from_slice(&other.pu_busy);
        self.iq_occupancy.extend_from_slice(&other.iq_occupancy);
    }

    /// Sums duplicate tile keys in the sparse grids (sorting each by
    /// tile id), so a frame holds at most one pair per active tile no
    /// matter how many partial frames were absorbed into it. The dense
    /// grids are unchanged; only pair order and multiplicity are
    /// normalized. Used by the streaming sink, whose memory bound
    /// depends on it.
    fn compact(&mut self) {
        fn compact_pairs(pairs: &mut Vec<(u32, u32)>) {
            if pairs.len() < 2 {
                return;
            }
            pairs.sort_unstable_by_key(|&(t, _)| t);
            let mut out = 0;
            for i in 1..pairs.len() {
                if pairs[i].0 == pairs[out].0 {
                    pairs[out].1 += pairs[i].1;
                } else {
                    out += 1;
                    pairs[out] = pairs[i];
                }
            }
            pairs.truncate(out + 1);
        }
        compact_pairs(&mut self.router_busy);
        compact_pairs(&mut self.pu_busy);
        compact_pairs(&mut self.iq_occupancy);
    }

    /// Host heap bytes owned by this frame's sparse grids.
    pub fn heap_bytes(&self) -> u64 {
        (self.router_busy.capacity() + self.pu_busy.capacity() + self.iq_occupancy.capacity())
            as u64
            * std::mem::size_of::<(u32, u32)>() as u64
    }

    /// Dense per-tile router-activity grid (`total_tiles` entries).
    pub fn router_grid(&self, total_tiles: u32) -> Vec<u32> {
        let mut grid = vec![0u32; total_tiles as usize];
        for &(t, v) in &self.router_busy {
            grid[t as usize] += v;
        }
        grid
    }

    /// Dense per-tile PU-activity grid.
    pub fn pu_grid(&self, total_tiles: u32) -> Vec<u32> {
        let mut grid = vec![0u32; total_tiles as usize];
        for &(t, v) in &self.pu_busy {
            grid[t as usize] += v;
        }
        grid
    }
}

/// The sequence of frames produced by one simulation.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FrameLog {
    /// Frame interval in NoC cycles. When the streaming sink downsampled,
    /// this is the *effective* (post-merge) interval.
    pub interval_cycles: u64,
    /// Frames in time order.
    pub frames: Vec<Frame>,
}

impl FrameLog {
    /// Creates an empty log with the given interval.
    pub fn new(interval_cycles: u64) -> Self {
        FrameLog {
            interval_cycles,
            frames: Vec::new(),
        }
    }

    /// Number of frames recorded.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no frames were recorded.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The `start_cycle`s of the frames a lockstep driver would have
    /// closed while stepping through the open interval
    /// `(after_cycle, next_cycle)`, in order.
    ///
    /// The cycle driver closes a frame at the end of every cycle `c` with
    /// `(c + 1) % interval == 0`; when the time-leaping driver jumps from
    /// `after_cycle` straight to `next_cycle` it must backfill exactly
    /// these captures so V1+ frame logs stay bit-identical. (The first
    /// backfilled frame flushes whatever deltas accumulated before the
    /// leap; the rest are idle frames, which the lockstep driver records
    /// too.)
    pub fn lockstep_capture_starts(
        &self,
        after_cycle: u64,
        next_cycle: u64,
    ) -> impl Iterator<Item = u64> {
        lockstep_capture_starts(self.interval_cycles, after_cycle, next_cycle)
    }

    /// Host heap bytes owned by the retained frames.
    pub fn heap_bytes(&self) -> u64 {
        self.frames.capacity() as u64 * std::mem::size_of::<Frame>() as u64
            + self.frames.iter().map(Frame::heap_bytes).sum::<u64>()
    }

    /// Merges a per-worker partial log into this one (frame-by-frame).
    ///
    /// Frames are paired by position; a longer `other` appends its tail.
    /// `self`'s interval is authoritative: merging logs with *unequal*
    /// intervals keeps `self.interval_cycles` untouched (the frames are
    /// still combined positionally — the caller is responsible for only
    /// merging logs captured on the same boundaries, which the engine
    /// guarantees by construction).
    pub fn merge(&mut self, other: &FrameLog) {
        for (i, f) in other.frames.iter().enumerate() {
            if i < self.frames.len() {
                self.frames[i].merge(f);
            } else {
                self.frames.push(f.clone());
            }
        }
    }
}

/// Capture boundaries shared by [`FrameLog`] and [`FrameSink`].
fn lockstep_capture_starts(
    interval_cycles: u64,
    after_cycle: u64,
    next_cycle: u64,
) -> impl Iterator<Item = u64> {
    let interval = interval_cycles.max(1);
    // captures happen at cycles c = m*interval - 1 for m >= 1;
    // we need those with after_cycle < c < next_cycle
    let first = (after_cycle + 2).div_ceil(interval).max(1);
    let last = next_cycle / interval; // m*interval - 1 <= next_cycle - 1
    (first..=last).map(move |m| (m - 1) * interval)
}

/// A shared, locked JSONL spill target (one per simulation, written by
/// every worker).
#[derive(Clone)]
pub struct FrameSpill {
    out: Arc<Mutex<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for FrameSpill {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameSpill").finish_non_exhaustive()
    }
}

impl FrameSpill {
    /// Creates a spill over an arbitrary writer, emitting the header
    /// record (`{"interval_cycles": ...}`).
    ///
    /// # Errors
    ///
    /// Propagates the header write failure as a string.
    pub fn new(mut out: Box<dyn Write + Send>, interval_cycles: u64) -> Result<Self, String> {
        writeln!(out, "{{\"interval_cycles\": {interval_cycles}}}")
            .map_err(|e| format!("writing frame-spill header: {e}"))?;
        Ok(FrameSpill {
            out: Arc::new(Mutex::new(out)),
        })
    }

    /// Creates a spill file at `path` (truncating).
    ///
    /// # Errors
    ///
    /// Returns a descriptive string if the file cannot be created.
    pub fn create(path: &str, interval_cycles: u64) -> Result<Self, String> {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("creating frame-spill file {path}: {e}"))?;
        FrameSpill::new(Box::new(std::io::BufWriter::new(file)), interval_cycles)
    }

    fn write(&self, worker: usize, frame: &Frame) {
        let json = serde_json::to_string(frame).expect("frame serializes");
        let mut out = self.out.lock().expect("spill lock");
        // best effort: a full disk must not kill the simulation
        let _ = writeln!(out, "{{\"worker\": {worker}, \"frame\": {json}}}");
    }

    /// Flushes buffered records.
    pub fn flush(&self) {
        let _ = self.out.lock().expect("spill lock").flush();
    }
}

/// Reconstructs the merged full-resolution [`FrameLog`] from spill JSONL
/// text (the inverse of what [`FrameSink`] writes: a header record plus
/// one record per worker per capture, in any order).
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn read_spill_jsonl(text: &str) -> Result<FrameLog, String> {
    use serde::Value;
    let mut log: Option<FrameLog> = None;
    let mut records = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value: Value =
            serde_json::from_str(line).map_err(|e| format!("spill line {}: {e}", lineno + 1))?;
        let obj = value
            .as_object()
            .ok_or_else(|| format!("spill line {}: not an object", lineno + 1))?;
        if let Some(interval) = obj.get("interval_cycles").and_then(Value::as_u64) {
            log = Some(FrameLog::new(interval));
            continue;
        }
        let log = log
            .as_mut()
            .ok_or_else(|| format!("spill line {}: record before header", lineno + 1))?;
        let frame_value = obj
            .get("frame")
            .ok_or_else(|| format!("spill line {}: missing frame", lineno + 1))?;
        let frame = Frame::from_value(frame_value)
            .map_err(|e| format!("spill line {}: {e}", lineno + 1))?;
        // every worker writes its captures in index order, so a valid
        // record's index can never exceed the records already read; a
        // huge index from a corrupt line must error, not allocate
        if frame.index > records {
            return Err(format!(
                "spill line {}: frame index {} exceeds the {records} records seen \
                 (corrupt spill?)",
                lineno + 1,
                frame.index,
            ));
        }
        records += 1;
        let idx = frame.index as usize;
        while log.frames.len() <= idx {
            let index = log.frames.len() as u64;
            log.frames.push(Frame {
                index,
                ..Default::default()
            });
        }
        let slot = &mut log.frames[idx];
        slot.start_cycle = frame.start_cycle;
        slot.absorb(&frame);
    }
    log.ok_or_else(|| "empty spill".into())
}

/// The streaming frame collector owned by one worker.
///
/// Pushes arrive at the lockstep capture boundaries (the same cadence as
/// a plain [`FrameLog`]). In-memory retention is bounded by `budget`:
/// when exceeded, adjacent frames merge pairwise and the effective
/// interval doubles, so memory stays O(budget) for arbitrarily long
/// runs. With no budget the sink *is* a `FrameLog` (bit-identical
/// retention). An optional [`FrameSpill`] receives every
/// full-resolution frame before downsampling.
#[derive(Debug)]
pub struct FrameSink {
    /// Capture cadence in NoC cycles (never changes; downsampling only
    /// affects retention).
    base_interval: u64,
    log: FrameLog,
    /// Max frames retained in memory (`>= 2`); `None` = unbounded.
    budget: Option<usize>,
    /// Captures merged into each retained frame (power of two).
    group: u64,
    /// Captures absorbed into the current tail frame so far.
    group_fill: u64,
    /// Total captures pushed (the full-resolution frame count).
    pushed: u64,
    spill: Option<(usize, FrameSpill)>,
}

impl FrameSink {
    /// A sink capturing every `interval_cycles`, keeping at most
    /// `budget` frames in memory (clamped to ≥ 2), spilling
    /// full-resolution frames to `spill` if given (tagged with
    /// `worker`).
    pub fn new(
        interval_cycles: u64,
        budget: Option<usize>,
        worker: usize,
        spill: Option<FrameSpill>,
    ) -> Self {
        let interval = interval_cycles.max(1);
        FrameSink {
            base_interval: interval,
            log: FrameLog::new(interval),
            budget: budget.map(|b| b.max(2)),
            group: 1,
            group_fill: 0,
            pushed: 0,
            spill: spill.map(|s| (worker, s)),
        }
    }

    /// The capture cadence (the configured frame interval).
    pub fn base_interval(&self) -> u64 {
        self.base_interval
    }

    /// Captures merged into each retained frame (1 = full resolution).
    pub fn downsample_factor(&self) -> u64 {
        self.group
    }

    /// Total full-resolution captures pushed so far.
    pub fn captures(&self) -> u64 {
        self.pushed
    }

    /// The retained (possibly downsampled) log.
    pub fn log(&self) -> &FrameLog {
        &self.log
    }

    /// Same boundaries as [`FrameLog::lockstep_capture_starts`], against
    /// the *base* interval — downsampling never changes when captures
    /// happen, only how they are retained.
    pub fn lockstep_capture_starts(
        &self,
        after_cycle: u64,
        next_cycle: u64,
    ) -> impl Iterator<Item = u64> {
        lockstep_capture_starts(self.base_interval, after_cycle, next_cycle)
    }

    /// Accepts the frame closed at a capture boundary. `frame.index` is
    /// assigned here (callers need not number frames).
    ///
    /// The retained log never holds more than `budget` frames, even
    /// mid-group: overflow is resolved *before* a new retained frame
    /// starts.
    pub fn push(&mut self, mut frame: Frame) {
        frame.index = self.pushed;
        self.pushed += 1;
        if let Some((worker, spill)) = &self.spill {
            spill.write(*worker, &frame);
        }
        if self.group_fill == 0 {
            if let Some(budget) = self.budget {
                if self.log.frames.len() >= budget {
                    self.downsample_by_2();
                }
            }
        }
        if self.group_fill == 0 {
            frame.index = self.log.frames.len() as u64;
            self.log.frames.push(frame);
        } else {
            let tail = self
                .log
                .frames
                .last_mut()
                .expect("partial group implies a tail frame");
            tail.absorb(&frame);
            // compacting per absorb keeps the tail at <= one pair per
            // active tile; without it the sparse grids would grow with
            // every capture and void the memory bound
            tail.compact();
        }
        self.group_fill += 1;
        if self.group_fill == self.group {
            self.group_fill = 0;
        }
    }

    /// Merges adjacent retained frames pairwise, doubling the group size
    /// and the effective interval.
    fn downsample_by_2(&mut self) {
        let old = std::mem::take(&mut self.log.frames);
        let odd_tail = old.len() % 2 == 1;
        let mut merged = Vec::with_capacity(old.len() / 2 + 1);
        let mut it = old.into_iter();
        while let Some(mut first) = it.next() {
            first.index = merged.len() as u64;
            if let Some(second) = it.next() {
                first.absorb(&second);
                first.compact();
            }
            merged.push(first);
        }
        self.log.frames = merged;
        // the tail frame of an odd-length log only holds half a group
        self.group_fill = if odd_tail { self.group } else { 0 };
        self.group *= 2;
        self.log.interval_cycles = self.base_interval * self.group;
    }

    /// Host heap bytes of the retained (bounded) log.
    pub fn heap_bytes(&self) -> u64 {
        self.log.heap_bytes()
    }

    /// Flushes the spill (end of run).
    pub fn finish(&self) {
        if let Some((_, spill)) = &self.spill {
            spill.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(index: u64, tasks: u64) -> Frame {
        Frame {
            index,
            start_cycle: index * 10,
            tasks_delta: tasks,
            ..Default::default()
        }
    }

    #[test]
    fn merge_combines_sparse_grids() {
        let mut a = Frame {
            index: 0,
            tasks_delta: 2,
            router_busy: vec![(0, 5)],
            ..Default::default()
        };
        let b = Frame {
            index: 0,
            tasks_delta: 3,
            router_busy: vec![(1, 7)],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.tasks_delta, 5);
        assert_eq!(a.router_grid(2), vec![5, 7]);
    }

    #[test]
    fn log_merge_aligns_by_index() {
        let mut a = FrameLog::new(100);
        a.frames.push(Frame {
            index: 0,
            pu_busy: vec![(0, 1)],
            ..Default::default()
        });
        let mut b = FrameLog::new(100);
        b.frames.push(Frame {
            index: 0,
            pu_busy: vec![(1, 2)],
            ..Default::default()
        });
        b.frames.push(Frame {
            index: 1,
            pu_busy: vec![(1, 3)],
            ..Default::default()
        });
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.frames[0].pu_grid(2), vec![1, 2]);
        assert_eq!(a.frames[1].pu_grid(2), vec![0, 3]);
    }

    #[test]
    fn lockstep_capture_starts_match_per_cycle_stepping() {
        for interval in [1u64, 3, 64] {
            let log = FrameLog::new(interval);
            for after in 0..50u64 {
                for next in after + 1..after + 80 {
                    let got: Vec<u64> = log.lockstep_capture_starts(after, next).collect();
                    let want: Vec<u64> = (after + 1..next)
                        .filter(|c| (c + 1).is_multiple_of(interval))
                        .map(|c| c + 1 - interval)
                        .collect();
                    assert_eq!(got, want, "interval {interval} after {after} next {next}");
                }
            }
        }
    }

    #[test]
    fn empty_log() {
        let log = FrameLog::new(10);
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
    }

    // --- edge cases the streaming aggregator must also satisfy ---

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut full = FrameLog::new(10);
        full.frames.push(frame(0, 5));
        let snapshot = full.clone();
        // empty other: no-op
        full.merge(&FrameLog::new(10));
        assert_eq!(full, snapshot);
        // empty self: adopts other's frames
        let mut empty = FrameLog::new(10);
        empty.merge(&snapshot);
        assert_eq!(empty.frames, snapshot.frames);
    }

    #[test]
    fn interval_boundary_at_cycle_zero() {
        // with interval 1 the first capture closes at cycle 0 and covers
        // start_cycle 0; a leap over (0, n) must backfill starts 1..n-1
        let log = FrameLog::new(1);
        let starts: Vec<u64> = log.lockstep_capture_starts(0, 4).collect();
        assert_eq!(starts, vec![1, 2, 3]);
        // no capture strictly inside an empty open interval
        assert_eq!(log.lockstep_capture_starts(0, 1).count(), 0);
        // interval > 1: the boundary-ending-at-cycle-0 case is m=0,
        // which never fires (captures need a full interval)
        let log = FrameLog::new(5);
        assert_eq!(log.lockstep_capture_starts(0, 5).next(), Some(0));
        assert_eq!(log.lockstep_capture_starts(0, 4).count(), 0);
    }

    #[test]
    fn merge_of_unequal_intervals_keeps_self_interval() {
        let mut a = FrameLog::new(10);
        a.frames.push(frame(0, 1));
        let mut b = FrameLog::new(40); // e.g. a downsampled peer
        b.frames.push(frame(0, 2));
        a.merge(&b);
        assert_eq!(a.interval_cycles, 10, "self's interval is authoritative");
        assert_eq!(a.frames[0].tasks_delta, 3);
    }

    // --- streaming sink ---

    #[test]
    fn sink_without_budget_matches_plain_log() {
        let mut sink = FrameSink::new(10, None, 0, None);
        let mut plain = FrameLog::new(10);
        for i in 0..100u64 {
            sink.push(frame(0, i));
            let mut f = frame(0, i);
            f.index = plain.frames.len() as u64;
            f.start_cycle = 0;
            plain.frames.push(f);
        }
        // identical retention, indices, interval
        assert_eq!(sink.log().interval_cycles, 10);
        assert_eq!(sink.downsample_factor(), 1);
        assert_eq!(sink.log().len(), 100);
        for (i, f) in sink.log().frames.iter().enumerate() {
            assert_eq!(f.index, i as u64);
            assert_eq!(f.tasks_delta, i as u64);
        }
    }

    #[test]
    fn sink_budget_bounds_memory_and_conserves_deltas() {
        let mut sink = FrameSink::new(10, Some(8), 0, None);
        let mut total = 0u64;
        for i in 0..1000u64 {
            total += i;
            let mut f = frame(0, i);
            f.start_cycle = i * 10;
            sink.push(f);
        }
        assert!(
            sink.log().len() <= 8,
            "retained {} frames over budget",
            sink.log().len()
        );
        assert_eq!(sink.captures(), 1000);
        let retained: u64 = sink.log().frames.iter().map(|f| f.tasks_delta).sum();
        assert_eq!(retained, total, "downsampling must conserve deltas");
        // 1000 captures fit the budget at a group of 128 (8 frames)
        assert_eq!(sink.downsample_factor(), 128);
        assert_eq!(sink.log().interval_cycles, 1280);
        // indices stay dense
        for (i, f) in sink.log().frames.iter().enumerate() {
            assert_eq!(f.index, i as u64);
        }
        // start cycles stay monotone (each retained frame keeps its
        // group's first start)
        for w in sink.log().frames.windows(2) {
            assert!(w[0].start_cycle < w[1].start_cycle);
        }
    }

    #[test]
    fn sink_capture_starts_ignore_downsampling() {
        let mut sink = FrameSink::new(3, Some(2), 0, None);
        for _ in 0..32 {
            sink.push(frame(0, 1));
        }
        assert!(sink.downsample_factor() > 1);
        let log = FrameLog::new(3);
        let a: Vec<u64> = sink.lockstep_capture_starts(4, 40).collect();
        let b: Vec<u64> = log.lockstep_capture_starts(4, 40).collect();
        assert_eq!(a, b, "capture cadence must stay at the base interval");
    }

    #[test]
    fn sink_edge_cases_mirror_the_plain_log() {
        // empty sink merges as an empty log
        let sink = FrameSink::new(10, Some(4), 0, None);
        let mut target = FrameLog::new(10);
        target.frames.push(frame(0, 7));
        let snapshot = target.clone();
        target.merge(sink.log());
        assert_eq!(target, snapshot, "merging an empty sink is a no-op");
        // boundary at cycle 0, through the sink's shared arithmetic
        let sink = FrameSink::new(1, Some(4), 0, None);
        let starts: Vec<u64> = sink.lockstep_capture_starts(0, 4).collect();
        assert_eq!(starts, vec![1, 2, 3]);
    }

    #[test]
    fn spill_round_trips_full_resolution() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));

        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let spill = FrameSpill::new(Box::new(Shared(Arc::clone(&buf))), 10).unwrap();
        // two workers, aggressively downsampled in memory
        let mut a = FrameSink::new(10, Some(2), 0, Some(spill.clone()));
        let mut b = FrameSink::new(10, Some(2), 1, Some(spill));
        for i in 0..16u64 {
            let mut f = frame(0, i);
            f.start_cycle = i * 10;
            f.pu_busy = vec![(0, i as u32 + 1)];
            a.push(f.clone());
            f.pu_busy = vec![(1, i as u32 + 1)];
            b.push(f);
        }
        a.finish();
        b.finish();
        assert!(a.log().len() <= 2, "memory stayed bounded");
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let restored = read_spill_jsonl(&text).expect("spill parses");
        // full resolution recovered: 16 frames, both workers merged
        assert_eq!(restored.interval_cycles, 10);
        assert_eq!(restored.len(), 16);
        for (i, f) in restored.frames.iter().enumerate() {
            assert_eq!(f.index, i as u64);
            assert_eq!(f.start_cycle, i as u64 * 10);
            assert_eq!(f.tasks_delta, 2 * i as u64, "both workers' deltas");
            assert_eq!(f.pu_grid(2), vec![i as u32 + 1, i as u32 + 1]);
        }
    }

    #[test]
    fn spill_reader_rejects_garbage() {
        assert!(read_spill_jsonl("").is_err());
        assert!(read_spill_jsonl("{\"worker\": 0}").is_err(), "no header");
        let ok = "{\"interval_cycles\": 5}\n";
        assert_eq!(read_spill_jsonl(ok).unwrap().interval_cycles, 5);
        assert!(read_spill_jsonl("not json").is_err());
    }

    #[test]
    fn spill_reader_rejects_absurd_indices_instead_of_allocating() {
        // a corrupt line with a huge index must be a clean error, not a
        // terabyte-scale placeholder allocation
        let text = "{\"interval_cycles\": 5}\n\
            {\"worker\": 0, \"frame\": {\"index\": 1099511627776, \"start_cycle\": 0, \
             \"tasks_delta\": 0, \"injected_delta\": 0, \"ejected_delta\": 0, \
             \"router_busy\": [], \"pu_busy\": [], \"iq_occupancy\": []}}\n";
        let err = read_spill_jsonl(text).unwrap_err();
        assert!(err.contains("exceeds"), "unexpected error: {err}");
    }

    #[test]
    fn downsampling_compacts_sparse_grids_to_one_pair_per_tile() {
        // the memory bound depends on merged frames not accumulating one
        // (tile, value) pair per absorbed capture
        let mut sink = FrameSink::new(10, Some(4), 0, None);
        let tiles = 8u32;
        let captures = 512u64;
        for i in 0..captures {
            let mut f = frame(0, 1);
            f.start_cycle = i * 10;
            f.pu_busy = (0..tiles).map(|t| (t, 1)).collect();
            f.router_busy = vec![(i as u32 % tiles, 2)];
            sink.push(f);
        }
        assert!(sink.log().len() <= 4);
        for f in &sink.log().frames {
            assert!(
                f.pu_busy.len() <= tiles as usize,
                "frame {} holds {} pu pairs for {} tiles",
                f.index,
                f.pu_busy.len(),
                tiles
            );
            assert!(f.router_busy.len() <= tiles as usize);
        }
        // and compaction conserved the dense totals
        let pu_total: u64 = sink
            .log()
            .frames
            .iter()
            .flat_map(|f| f.pu_grid(tiles))
            .map(u64::from)
            .sum();
        assert_eq!(pu_total, captures * tiles as u64);
        let router_total: u64 = sink
            .log()
            .frames
            .iter()
            .flat_map(|f| f.router_grid(tiles))
            .map(u64::from)
            .sum();
        assert_eq!(router_total, captures * 2);
    }
}
