//! The cycle-loop driver: one host thread per column slice, with spin
//! barriers between the two phases of each NoC cycle.
//!
//! Phase order per cycle (paper §III-C semantics):
//!
//! 1. **local phase** — each shard applies deferred buffer frees and
//!    deferred pushes and drains cross-shard mailboxes (all self-owned
//!    state); then the worker dispatches ready tasks on its tiles and
//!    injects ready channel-queue heads into its own shards.
//! 2. *(barrier)* **step phase** — every shard routes one cycle; ejected
//!    packets land in the worker's input queues; each worker publishes
//!    its activity count and (leap mode) its next-event horizon.
//! 3. *(barrier, last arriver decides)* **decision phase** — global
//!    quiescence (no queued messages anywhere + empty network),
//!    cycle-limit stop, or the next cycle to execute.
//!
//! In the default *time-leaping* mode ([`SystemConfig::time_leap`]) the
//! decision phase min-reduces the per-worker
//! [`EventHorizon`](crate::horizon::EventHorizon) values
//! (tile PU clocks, channel-queue heads, DRAM backlogs, NoC queue heads)
//! plus the cross-shard mailbox horizon, and when the earliest possible
//! event is more than one cycle away it jumps the clock straight there.
//! Skipped cycles are provably event-free, so the jump is exact: workers
//! backfill the statistics frames and batch the stall counters the
//! lockstep driver would have produced, and results stay bit-identical
//! (see `Worker::leap_to`).
//!
//! Because every inter-worker interaction is confined to barrier-separated
//! phases and single-producer queues, a run with N workers is
//! bit-identical to a run with one. The barriers are sense-reversing spin
//! barriers: at one microsecond-scale cycle cost, OS-level barriers would
//! dominate the simulation (the paper reaches linear speedup only because
//! its thread synchronization is similarly cheap).

use crate::app::Application;
use crate::engine::{finish, SimSetup, Worker};
use crate::error::SimError;
use crate::tile::SimResult;
use crate::ward::{TileDiag, WardReport};
use muchisim_config::SystemConfig;
use muchisim_noc::{Shard, SharedNet};
use muchisim_telemetry::{
    CsvSubscriber, JsonlSubscriber, ProgressSubscriber, SampleAggregator, Subscriber, TelemetryHub,
    WardEngine, WardTrip, WorkerSample,
};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Worst-backlogged tiles each worker contributes to a ward report (the
/// merged report is truncated to the same count).
const DIAG_TILES: usize = 8;

/// A sense-reversing centralized spin barrier.
///
/// The last thread to arrive may run a closure (the "leader action")
/// before releasing the others — used for the global stop decision.
struct SpinBarrier {
    count: AtomicUsize,
    sense: AtomicBool,
    n: usize,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        SpinBarrier {
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            n,
        }
    }

    fn wait(&self, local_sense: &mut bool) {
        self.wait_leader(local_sense, || {});
    }

    fn wait_leader<F: FnOnce()>(&self, local_sense: &mut bool, leader: F) {
        let target = !*local_sense;
        *local_sense = target;
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            leader();
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(target, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != target {
                spins += 1;
                if spins < 1 << 14 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Shared synchronization state for the worker threads.
struct SyncState {
    barrier: SpinBarrier,
    /// Kernel drained (set by the deciding thread).
    stop: AtomicBool,
    /// Cycle limit exceeded.
    limit_hit: AtomicBool,
    /// Per-worker pending-message counts, published each cycle.
    activity: Vec<AtomicI64>,
    /// Per-worker next-event horizons, published each cycle in leap mode.
    horizon: Vec<AtomicU64>,
    /// The next cycle to execute, decided by the leader (leap mode).
    next_cycle: AtomicU64,
    /// Per-worker max PU completion time in femtoseconds, published at
    /// kernel end.
    max_pu_fs: Vec<AtomicU64>,
    /// Cycle at which the current kernel drained.
    drained_cycle: AtomicU64,
}

impl SyncState {
    fn new(n: usize) -> Self {
        SyncState {
            barrier: SpinBarrier::new(n),
            stop: AtomicBool::new(false),
            limit_hit: AtomicBool::new(false),
            activity: (0..n).map(|_| AtomicI64::new(0)).collect(),
            horizon: (0..n).map(|_| AtomicU64::new(0)).collect(),
            next_cycle: AtomicU64::new(0),
            max_pu_fs: (0..n).map(|_| AtomicU64::new(0)).collect(),
            drained_cycle: AtomicU64::new(0),
        }
    }
}

/// Where a restored run re-enters the cycle loop: the snapshot's kernel,
/// the cycle it was taken at, and that kernel's base cycle.
#[derive(Clone, Copy)]
pub(crate) struct ResumeState {
    /// Kernel index the snapshot was taken in.
    pub kernel: u32,
    /// Cycle to re-enter the loop at (post-`begin_cycle` capture point).
    pub cycle: u64,
    /// The kernel's base cycle (restores the per-kernel cycle-limit
    /// accounting).
    pub base: u64,
}

/// Shared state for periodic snapshot writes: each worker deposits its
/// encoded chunk, then the barrier leader assembles and writes the file.
struct CheckpointState {
    /// Snapshot cadence in NoC cycles.
    every: u64,
    /// Snapshot file path (written atomically via a temp file).
    path: String,
    /// The pre-encoded identity header, identical for every snapshot of
    /// this run.
    header: Vec<u8>,
    /// One encoded chunk slot per worker.
    chunks: Vec<std::sync::Mutex<Vec<u8>>>,
    /// First error from any worker or the writer; surfaced after the run.
    error: std::sync::Mutex<Option<String>>,
}

impl CheckpointState {
    /// Records `why` unless an earlier error already claimed the slot.
    fn record_error(&self, why: String) {
        let mut slot = self.error.lock().expect("checkpoint error lock");
        if slot.is_none() {
            *slot = Some(why);
        }
    }
}

/// Shared state for the telemetry sample/ward pipeline.
///
/// Workers deposit [`WorkerSample`]s at sample cycles; the decision-phase
/// barrier leader merges them, evaluates the wards, and hands the merged
/// sample to the hub's subscriber thread without blocking. Everything the
/// wards read is deterministic simulated state, so a trip lands on the
/// same cycle for any host-thread count or leap/worklist mode.
struct TelemetryState {
    /// Sample cadence: cycle `c` is a sample cycle when
    /// `(c + 1) % every == 0` (the end of each `every`-cycle block).
    every: u64,
    /// One deposit slot per worker, written before the decision barrier.
    samples: Vec<Mutex<WorkerSample>>,
    /// Leader-only aggregation state, locked only at sample cycles.
    leader: Mutex<LeaderState>,
    /// Fan-out to the subscriber thread (never blocks the barrier).
    hub: TelemetryHub,
    /// The first tripped ward, set by the leader.
    trip: Mutex<Option<WardTrip>>,
    /// Cycle at (or after) which the post-mortem trip snapshot must be
    /// taken; `u64::MAX` while no trip snapshot is pending.
    snap_at: AtomicU64,
    /// A ward tripped and the run is terminating.
    tripped: AtomicBool,
    /// Write a snapshot to the checkpoint path before terminating on a
    /// trip.
    snapshot_on_trip: bool,
    /// Per-worker diagnostic slots, filled once `tripped` is set.
    diags: Vec<Mutex<Vec<TileDiag>>>,
}

/// Aggregator + ward engine, owned by whichever thread wins the barrier.
struct LeaderState {
    agg: SampleAggregator,
    wards: WardEngine,
    /// Scratch for the per-sample merge (reused, never reallocated).
    merged: Vec<WorkerSample>,
}

impl TelemetryState {
    fn is_sample_cycle(&self, cycle: u64) -> bool {
        (cycle + 1).is_multiple_of(self.every)
    }
}

/// Builds the telemetry pipeline when the configuration (or an attached
/// test subscriber) asks for one.
fn telemetry_state(
    cfg: &SystemConfig,
    resume: Option<ResumeState>,
    extra: Vec<Box<dyn Subscriber>>,
    nworkers: usize,
) -> Result<Option<TelemetryState>, SimError> {
    let t = &cfg.telemetry;
    let Some(every) = t.sample_every else {
        return Ok(None);
    };
    if !t.wants_sampling() && extra.is_empty() {
        return Ok(None);
    }
    let mut subs: Vec<Box<dyn Subscriber>> = Vec::new();
    if let Some(path) = &t.metrics_path {
        subs.push(Box::new(
            JsonlSubscriber::create(path).map_err(SimError::Telemetry)?,
        ));
    }
    if let Some(path) = &t.metrics_csv {
        subs.push(Box::new(
            CsvSubscriber::create(path).map_err(SimError::Telemetry)?,
        ));
    }
    if t.progress {
        subs.push(Box::new(ProgressSubscriber::new(t.wards.max_cycles)));
    }
    subs.extend(extra);
    let start_cycle = resume.map_or(0, |r| r.cycle);
    Ok(Some(TelemetryState {
        every: every.max(1),
        samples: (0..nworkers)
            .map(|_| Mutex::new(WorkerSample::default()))
            .collect(),
        leader: Mutex::new(LeaderState {
            agg: SampleAggregator::new(start_cycle),
            wards: WardEngine::new(t.wards.clone(), start_cycle),
            merged: Vec::with_capacity(nworkers),
        }),
        hub: TelemetryHub::spawn(subs),
        trip: Mutex::new(None),
        snap_at: AtomicU64::new(u64::MAX),
        tripped: AtomicBool::new(false),
        snapshot_on_trip: t.snapshot_on_trip,
        diags: (0..nworkers).map(|_| Mutex::new(Vec::new())).collect(),
    }))
}

/// Runs the whole simulation and assembles the result.
pub(crate) fn drive<A: Application>(
    cfg: &SystemConfig,
    app: &A,
    setup: SimSetup<A>,
    cycle_limit: u64,
    stop_at_limit: bool,
    resume: Option<ResumeState>,
    subscribers: Vec<Box<dyn Subscriber>>,
) -> Result<SimResult, SimError> {
    let started = Instant::now();
    let SimSetup {
        mut workers,
        mut networks,
    } = setup;
    let nworkers = workers.len();
    let sync = SyncState::new(nworkers);
    let termination = cfg.termination_latency_cycles();
    let kernels = app.kernels();
    let leap = cfg.time_leap;
    // a checkpoint slot is also needed without a periodic cadence when a
    // ward trip may want a post-mortem snapshot (cadence u64::MAX then:
    // no periodic boundary is ever crossed)
    let ckpt = match (&cfg.checkpoint_path, cfg.checkpoint_every) {
        (Some(path), every) if every.is_some() || cfg.telemetry.snapshot_on_trip => {
            Some(CheckpointState {
                every: every.map_or(u64::MAX, |e| e.max(1)),
                path: path.clone(),
                header: crate::snapshot::encode_header(
                    crate::snapshot::config_hash(cfg),
                    app.name(),
                    cfg.width(),
                    cfg.height(),
                    cfg.pus_per_tile,
                    cfg.noc.num_physical.max(1),
                    app.task_types(),
                    kernels,
                ),
                chunks: (0..nworkers)
                    .map(|_| std::sync::Mutex::new(Vec::new()))
                    .collect(),
                error: std::sync::Mutex::new(None),
            })
        }
        _ => None,
    };
    let telem = telemetry_state(cfg, resume, subscribers, nworkers)?;
    let runtime_cycles;
    {
        // hand each worker its shard of every NoC plane
        let mut shareds: Vec<&SharedNet> = Vec::with_capacity(networks.len());
        let mut per_worker: Vec<Vec<&mut Shard>> = (0..nworkers).map(|_| Vec::new()).collect();
        for net in networks.iter_mut() {
            let (shared, shards) = net.split();
            shareds.push(shared);
            debug_assert_eq!(shards.len(), nworkers);
            for (i, sh) in shards.iter_mut().enumerate() {
                per_worker[i].push(sh);
            }
        }
        let final_cycle = AtomicU64::new(0);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut rest = per_worker;
            let my_shards = rest.remove(0);
            let (first_worker, rest_workers) =
                workers.split_first_mut().expect("at least one worker");
            for (widx, (worker, shards)) in rest_workers.iter_mut().zip(rest).enumerate() {
                let shareds = shareds.clone();
                let sync = &sync;
                let final_cycle = &final_cycle;
                let ckpt = ckpt.as_ref();
                let telem = telem.as_ref();
                handles.push(scope.spawn(move || {
                    worker_loop(
                        worker,
                        shards,
                        &shareds,
                        app,
                        sync,
                        final_cycle,
                        kernels,
                        cycle_limit,
                        termination,
                        leap,
                        widx + 1,
                        nworkers,
                        resume,
                        ckpt,
                        telem,
                    );
                }));
            }
            worker_loop(
                first_worker,
                my_shards,
                &shareds,
                app,
                &sync,
                &final_cycle,
                kernels,
                cycle_limit,
                termination,
                leap,
                0,
                nworkers,
                resume,
                ckpt.as_ref(),
                telem.as_ref(),
            );
            for h in handles {
                h.join().expect("worker thread panicked");
            }
        });
        runtime_cycles = final_cycle.load(Ordering::Acquire);
    }
    // telemetry teardown: close the subscriber stream, then surface a
    // ward trip (which outranks stream and checkpoint errors — those are
    // folded into its report instead of masking it)
    let mut stream_error: Option<String> = None;
    let mut ward_trip: Option<(WardTrip, Vec<TileDiag>)> = None;
    if let Some(t) = telem {
        let TelemetryState {
            hub,
            trip,
            tripped,
            diags,
            ..
        } = t;
        stream_error = hub.close().err();
        if tripped.into_inner() {
            let trip = trip
                .into_inner()
                .expect("telemetry trip lock")
                .expect("tripped implies a recorded trip");
            let mut tiles: Vec<TileDiag> = diags
                .into_iter()
                .flat_map(|m| m.into_inner().expect("telemetry diag lock"))
                .collect();
            tiles.sort_by(|a, b| b.backlog().cmp(&a.backlog()).then(a.tile.cmp(&b.tile)));
            tiles.truncate(DIAG_TILES);
            ward_trip = Some((trip, tiles));
        }
    }
    if let Some((trip, tiles)) = ward_trip {
        let snapshot_error = ckpt
            .as_ref()
            .and_then(|c| c.error.lock().expect("checkpoint error lock").take());
        let snapshot_path = (cfg.telemetry.snapshot_on_trip && snapshot_error.is_none())
            .then(|| cfg.checkpoint_path.clone())
            .flatten();
        let mut partial = finish(
            cfg,
            app,
            workers,
            networks,
            runtime_cycles,
            started,
            nworkers,
        );
        partial.termination = format!("ward:{}", trip.ward);
        return Err(SimError::Ward(Box::new(WardReport {
            ward: trip.ward.to_string(),
            cycle: trip.cycle,
            detail: trip.detail,
            tiles,
            snapshot_path,
            snapshot_error,
            partial: Some(Box::new(partial)),
        })));
    }
    if let Some(why) = stream_error {
        return Err(SimError::Telemetry(why));
    }
    if let Some(c) = &ckpt {
        if let Some(why) = c.error.lock().expect("checkpoint error lock").take() {
            return Err(SimError::Snapshot(why));
        }
    }
    if sync.limit_hit.load(Ordering::Acquire) && !stop_at_limit {
        return Err(SimError::CycleLimitExceeded { limit: cycle_limit });
    }
    if let Some(path) = &cfg.noc_trace {
        // one merged, canonically sorted trace across planes and shards;
        // a tile's same-cycle packets keep their channel-queue order
        let mut events: Vec<muchisim_noc::TraceEvent> = Vec::new();
        for net in networks.iter_mut() {
            events.extend(net.take_trace());
        }
        muchisim_noc::write_trace_jsonl(path, &mut events).map_err(SimError::Trace)?;
    }
    Ok(finish(
        cfg,
        app,
        workers,
        networks,
        runtime_cycles,
        started,
        nworkers,
    ))
}

/// The per-thread kernel + cycle loop.
#[allow(clippy::too_many_arguments)]
fn worker_loop<A: Application>(
    worker: &mut Worker<A>,
    mut shards: Vec<&mut Shard>,
    shareds: &[&SharedNet],
    app: &A,
    sync: &SyncState,
    final_cycle: &AtomicU64,
    kernels: u32,
    cycle_limit: u64,
    termination: u64,
    leap: bool,
    widx: usize,
    nworkers: usize,
    resume: Option<ResumeState>,
    ckpt: Option<&CheckpointState>,
    telem: Option<&TelemetryState>,
) {
    let mut sense = false;
    // on resume the restored kernel's state is already in place, so the
    // loop re-enters at the snapshot cycle without a fresh start_kernel
    let (start_kernel, mut resume_cycle) = match resume {
        Some(r) => (r.kernel, Some(r.cycle)),
        None => (0, None),
    };
    let mut base = resume.map_or(0, |r| r.base);
    // the first checkpoint boundary strictly after the starting cycle;
    // derived from barrier-synchronized values only, so every worker
    // agrees on each snapshot cycle without communicating
    let mut next_snap = ckpt.map_or(u64::MAX, |c| {
        (resume.map_or(0, |r| r.cycle) / c.every + 1) * c.every
    });
    for kernel in start_kernel..kernels {
        let mut cycle = match resume_cycle.take() {
            Some(c) => c,
            None => {
                worker.start_kernel(kernel);
                base
            }
        };
        loop {
            // local phase: everything here touches only worker-owned state
            worker.begin_cycle(&mut shards, shareds);
            // the capture point is right after begin_cycle: deferred
            // frees, deferred pushes, and cross-shard mailboxes are all
            // drained, so every in-flight packet sits in a router queue.
            // Time leaping may skip the exact boundary; the first
            // executed cycle at or past it is the snapshot cycle. A
            // pending ward-trip snapshot (scheduled by the leader for
            // the cycle after the trip) uses the same capture point.
            let trip_snap = telem.map_or(u64::MAX, |t| t.snap_at.load(Ordering::Acquire));
            if cycle >= next_snap || cycle >= trip_snap {
                if let Some(c) = ckpt {
                    take_checkpoint(
                        worker, app, &shards, sync, c, kernel, cycle, base, &mut sense, widx,
                    );
                    next_snap = (cycle / c.every + 1) * c.every;
                }
            }
            worker.pu_phase(app, cycle);
            worker.inject_phase(&mut shards, shareds, cycle);
            sync.barrier.wait(&mut sense);
            // step phase
            worker.net_step(&mut shards, shareds, cycle);
            worker.frame_tick(&mut shards, cycle);
            sync.activity[widx].store(worker.msg_count, Ordering::Release);
            if leap {
                let h = worker.horizon(&shards, cycle);
                sync.horizon[widx].store(h, Ordering::Release);
            }
            // deposit this worker's telemetry share before the decision
            // barrier so the leader can merge a coherent sample
            if let Some(t) = telem {
                if t.is_sample_cycle(cycle) {
                    *t.samples[widx].lock().expect("telemetry sample lock") =
                        worker.telemetry_sample(&shards);
                }
            }
            // decision phase: the last thread to arrive decides
            sync.barrier.wait_leader(&mut sense, || {
                // a deferred trip snapshot was captured this cycle: the
                // run stops here, before any normal decision can race it
                if let Some(t) = telem {
                    if t.snap_at.load(Ordering::Acquire) <= cycle
                        && t.trip.lock().expect("telemetry trip lock").is_some()
                    {
                        t.tripped.store(true, Ordering::Release);
                        sync.drained_cycle.store(cycle, Ordering::Release);
                        sync.stop.store(true, Ordering::Release);
                        return;
                    }
                }
                let pending: i64 = (0..nworkers)
                    .map(|i| sync.activity[i].load(Ordering::Acquire))
                    .sum();
                let in_net: i64 = shareds.iter().map(|s| s.in_flight()).sum();
                if pending == 0 && in_net == 0 {
                    sync.drained_cycle.store(cycle, Ordering::Release);
                    sync.stop.store(true, Ordering::Release);
                } else if cycle - base >= cycle_limit {
                    sync.limit_hit.store(true, Ordering::Release);
                    sync.drained_cycle.store(cycle, Ordering::Release);
                    sync.stop.store(true, Ordering::Release);
                } else if leap {
                    // min-reduce the published horizons and jump if
                    // nothing can happen sooner; the cap keeps the
                    // cycle-limit check exact
                    let mut next = (0..nworkers)
                        .map(|i| sync.horizon[i].load(Ordering::Acquire))
                        .min()
                        .unwrap_or(u64::MAX);
                    if next == u64::MAX {
                        next = cycle + 1; // defensive: pending work implies a horizon
                    }
                    if next > cycle + 1 {
                        // cross-shard mailboxes (only readable after the
                        // step barrier) can only shorten a prospective
                        // leap — their horizons are >= cycle + 1, so the
                        // locking scan is skipped when no leap is on the
                        // table
                        for shared in shareds {
                            if let Some(c) = shared.mailbox_next_event_cycle(cycle) {
                                next = next.min(c);
                            }
                        }
                    }
                    if let Some(t) = telem {
                        // never leap over a sample boundary: clamp to the
                        // next sample cycle so the cadence stays exact
                        let r = (cycle + 1) % t.every;
                        let to_sample = if r == 0 { t.every } else { t.every - r };
                        next = next.min(cycle.saturating_add(to_sample));
                    }
                    next = next.min(base.saturating_add(cycle_limit));
                    sync.next_cycle.store(next, Ordering::Release);
                }
                // merge, stream, and ward-check the sample (after the
                // stop decision: a drained or limit-hit run still emits
                // its final sample, but wards no longer fire)
                if let Some(t) = telem {
                    if t.is_sample_cycle(cycle) {
                        let mut st = t.leader.lock().expect("telemetry leader lock");
                        let st = &mut *st;
                        st.merged.clear();
                        for slot in &t.samples {
                            st.merged
                                .push(slot.lock().expect("telemetry sample lock").clone());
                        }
                        let mut sample = st.agg.merge(cycle, &st.merged);
                        sample.pending += in_net;
                        if !sync.stop.load(Ordering::Relaxed) {
                            if let Some(trip) = st.wards.observe(&sample) {
                                if t.snapshot_on_trip && ckpt.is_some() {
                                    // defer the stop one cycle so every
                                    // worker reaches the next capture
                                    // point and writes the post-mortem
                                    // snapshot first
                                    *t.trip.lock().expect("telemetry trip lock") = Some(trip);
                                    t.snap_at.store(cycle + 1, Ordering::Release);
                                    if leap {
                                        sync.next_cycle.store(cycle + 1, Ordering::Release);
                                    }
                                } else {
                                    *t.trip.lock().expect("telemetry trip lock") = Some(trip);
                                    t.tripped.store(true, Ordering::Release);
                                    sync.drained_cycle.store(cycle, Ordering::Release);
                                    sync.stop.store(true, Ordering::Release);
                                }
                            }
                        }
                        t.hub.publish(sample);
                    }
                }
            });
            if sync.stop.load(Ordering::Acquire) {
                break;
            }
            let next = if leap {
                sync.next_cycle.load(Ordering::Acquire)
            } else {
                cycle + 1
            };
            if next > cycle + 1 {
                worker.leap_to(&mut shards, cycle, next);
            }
            cycle = next;
        }
        // close the kernel's last partial frame (skipping the re-capture
        // when the kernel drained exactly on a frame boundary)
        worker.close_kernel_frame(&mut shards, cycle);
        // publish this worker's PU tail and compute the kernel barrier
        sync.max_pu_fs[widx].store(worker.max_pu_fs, Ordering::Release);
        sync.barrier.wait(&mut sense);
        let drained = sync.drained_cycle.load(Ordering::Acquire);
        let max_pu_fs = (0..nworkers)
            .map(|i| sync.max_pu_fs[i].load(Ordering::Acquire))
            .max()
            .unwrap_or(0);
        let pu_tail_cycle = worker.clock.noc_cycle_for_fs(max_pu_fs);
        base = drained.max(pu_tail_cycle) + termination;
        sync.barrier.wait_leader(&mut sense, || {
            sync.stop.store(false, Ordering::Release);
            final_cycle.store(base, Ordering::Release);
        });
        // a tripped ward ends the run here: every worker contributes its
        // queue diagnostics (slow path, only after a trip) and bails out
        // of the kernel sequence together
        if let Some(t) = telem {
            if t.tripped.load(Ordering::Acquire) {
                *t.diags[widx].lock().expect("telemetry diag lock") =
                    worker.telemetry_diag(&shards, DIAG_TILES);
                return;
            }
        }
        if sync.limit_hit.load(Ordering::Acquire) {
            return;
        }
    }
}

/// One synchronized snapshot: every worker encodes its chunk, then the
/// barrier leader stitches the chunks into the snapshot file (written to
/// a temp file and renamed, so a crash mid-write never corrupts the
/// previous snapshot). All workers reach this at the same `cycle`, so the
/// extra barrier pairs up cleanly. Failures are recorded, not raised: the
/// run continues and the driver surfaces the first error at the end.
#[allow(clippy::too_many_arguments)]
fn take_checkpoint<A: Application>(
    worker: &Worker<A>,
    app: &A,
    shards: &[&mut Shard],
    sync: &SyncState,
    ckpt: &CheckpointState,
    kernel: u32,
    cycle: u64,
    base: u64,
    sense: &mut bool,
    widx: usize,
) {
    {
        let mut buf = ckpt.chunks[widx].lock().expect("checkpoint chunk lock");
        // clear() keeps the capacity: snapshot N+1 reuses snapshot N's
        // allocation instead of re-growing a multi-megabyte buffer
        buf.clear();
        if let Err(why) = worker.encode_chunk_into(app, shards, cycle, &mut buf) {
            ckpt.record_error(why);
        }
        #[cfg(debug_assertions)]
        if let Ok(chunk) = worker.snapshot_chunk(app, shards, cycle) {
            debug_assert_eq!(
                *buf,
                chunk.encode(),
                "streaming chunk encoder diverged from the reference encoder"
            );
        }
    }
    sync.barrier.wait_leader(sense, || {
        if ckpt.error.lock().expect("checkpoint error lock").is_some() {
            return;
        }
        // read the workers' buffers in place — no take, no reassembly;
        // the guards pin the buffers for the duration of the write
        let guards: Vec<_> = ckpt
            .chunks
            .iter()
            .map(|m| m.lock().expect("checkpoint chunk lock"))
            .collect();
        let chunks: Vec<&[u8]> = guards.iter().map(|g| g.as_slice()).collect();
        if let Err(why) = crate::snapshot::write_snapshot_file(
            &ckpt.path,
            &ckpt.header,
            kernel,
            cycle,
            base,
            &chunks,
        ) {
            ckpt.record_error(why);
        }
    });
}
