//! Aggregated simulation counters (the paper's separate "counters file"
//! consumed by the energy/cost post-processing executable, §III-D).

use muchisim_mem::MemCounters;
use muchisim_noc::NocCounters;
use serde::{Deserialize, Serialize};

/// Processing-unit and TSU event counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PuCounters {
    /// Integer ALU operations.
    pub int_ops: u64,
    /// Floating-point operations.
    pub fp_ops: u64,
    /// Control-flow instructions.
    pub ctrl_ops: u64,
    /// Loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
    /// Messages sent by tasks.
    pub msgs_sent: u64,
    /// Tasks dispatched by the TSU (including init tasks).
    pub tasks_executed: u64,
    /// Total busy PU cycles (sum of task durations over all PUs).
    pub busy_cycles: u64,
    /// Cycles a ready task could not be dispatched because a channel
    /// queue was over capacity (send-side backpressure).
    pub cq_stall_cycles: u64,
    /// Application-level work units (edges, non-zeros, elements).
    pub app_ops: u64,
}

impl PuCounters {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &PuCounters) {
        self.int_ops += other.int_ops;
        self.fp_ops += other.fp_ops;
        self.ctrl_ops += other.ctrl_ops;
        self.loads += other.loads;
        self.stores += other.stores;
        self.msgs_sent += other.msgs_sent;
        self.tasks_executed += other.tasks_executed;
        self.busy_cycles += other.busy_cycles;
        self.cq_stall_cycles += other.cq_stall_cycles;
        self.app_ops += other.app_ops;
    }

    /// Total instructions of all types.
    pub fn total_ops(&self) -> u64 {
        self.int_ops + self.fp_ops + self.ctrl_ops + self.loads + self.stores
    }
}

/// Everything the energy / cost post-processing needs, aggregated over the
/// whole run. Serializable as the counters file.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimCounters {
    /// PU/TSU events.
    pub pu: PuCounters,
    /// Memory events.
    pub mem: MemCounters,
    /// NoC events (merged over physical planes).
    pub noc: NocCounters,
    /// DUT runtime in NoC cycles.
    pub runtime_cycles: u64,
    /// DUT runtime in seconds.
    pub runtime_secs: f64,
}

impl SimCounters {
    /// Merges another counter set (e.g., per-worker partials).
    pub fn merge(&mut self, other: &SimCounters) {
        self.pu.merge(&other.pu);
        self.mem.merge(&other.mem);
        self.noc.merge(&other.noc);
        self.runtime_cycles = self.runtime_cycles.max(other.runtime_cycles);
        self.runtime_secs = self.runtime_secs.max(other.runtime_secs);
    }

    /// Application throughput in operations per second (TEPS for graph
    /// kernels, non-zeros/s for sparse algebra).
    pub fn app_throughput(&self) -> f64 {
        if self.runtime_secs == 0.0 {
            0.0
        } else {
            self.pu.app_ops as f64 / self.runtime_secs
        }
    }

    /// Floating-point throughput in FLOP/s.
    pub fn flops(&self) -> f64 {
        if self.runtime_secs == 0.0 {
            0.0
        } else {
            self.pu.fp_ops as f64 / self.runtime_secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = SimCounters {
            runtime_cycles: 10,
            runtime_secs: 1e-6,
            ..Default::default()
        };
        a.pu.fp_ops = 100;
        let mut b = SimCounters {
            runtime_cycles: 20,
            runtime_secs: 2e-6,
            ..Default::default()
        };
        b.pu.fp_ops = 50;
        a.merge(&b);
        assert_eq!(a.pu.fp_ops, 150);
        assert_eq!(a.runtime_cycles, 20);
        assert_eq!(a.runtime_secs, 2e-6);
    }

    #[test]
    fn throughput_guards_zero_time() {
        let c = SimCounters::default();
        assert_eq!(c.flops(), 0.0);
        assert_eq!(c.app_throughput(), 0.0);
    }

    #[test]
    fn flops_computation() {
        let mut c = SimCounters {
            runtime_secs: 0.5,
            ..Default::default()
        };
        c.pu.fp_ops = 100;
        assert_eq!(c.flops(), 200.0);
    }

    #[test]
    fn counters_serde_round_trip() {
        let mut c = SimCounters::default();
        c.pu.int_ops = 42;
        c.runtime_cycles = 7;
        let json = serde_json::to_string(&c).unwrap();
        let back: SimCounters = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
