//! The structured report a tripped ward terminates a run with.
//!
//! When a [`WardEngine`](muchisim_telemetry::WardEngine) predicate fires,
//! the driver does not just abort: every worker contributes a per-tile
//! backlog diagnostic, the leader folds them into a [`WardReport`], the
//! partially-completed [`SimResult`] is attached (its counters and frames
//! are valid up to the trip cycle), and — when
//! `telemetry.snapshot_on_trip` is set — a post-mortem snapshot is
//! written to the configured `checkpoint_path` for time-travel debugging
//! (`--resume` with the ward relaxed replays the run up to and past the
//! trip point).

use crate::tile::SimResult;

/// Queue backlog at one tile when a ward tripped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileDiag {
    /// Global tile id.
    pub tile: u32,
    /// Messages waiting in the tile's input queues.
    pub iq_msgs: u32,
    /// Messages waiting in the tile's channel (output) queues.
    pub cq_msgs: u32,
    /// Scripted sends not yet injected (synthetic traffic / replay).
    pub scripted: u32,
    /// Packets parked in the tile's router input queues, summed over
    /// NoC planes.
    pub parked_packets: u32,
}

impl TileDiag {
    /// Total backlog attributed to this tile (the ranking key).
    pub fn backlog(&self) -> u64 {
        self.iq_msgs as u64
            + self.cq_msgs as u64
            + self.scripted as u64
            + self.parked_packets as u64
    }
}

impl std::fmt::Display for TileDiag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tile {}: iq {}, cq {}, scripted {}, parked {}",
            self.tile, self.iq_msgs, self.cq_msgs, self.scripted, self.parked_packets
        )
    }
}

/// Why and where a ward terminated the run, with enough state to debug it.
#[derive(Debug, Clone, PartialEq)]
pub struct WardReport {
    /// Ward name (`"stall"`, `"max_cycles"`, `"converged"`,
    /// `"diverged_queue"`, `"diverged_latency"`).
    pub ward: String,
    /// Simulated cycle of the sample that tripped the ward.
    pub cycle: u64,
    /// The predicate's explanation, with the numbers that crossed the
    /// threshold.
    pub detail: String,
    /// Worst-backlogged tiles across the whole grid, sorted by backlog
    /// (descending, tile id ascending as tiebreak).
    pub tiles: Vec<TileDiag>,
    /// Path of the post-mortem snapshot, when one was written.
    pub snapshot_path: Option<String>,
    /// Error from the post-mortem snapshot write, when one failed
    /// (recorded here, never masking the ward itself).
    pub snapshot_error: Option<String>,
    /// The partial result: counters, frames, and latency statistics up
    /// to the trip, with `termination` set to `"ward:<name>"`.
    pub partial: Option<Box<SimResult>>,
}

impl std::fmt::Display for WardReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ward `{}` tripped at cycle {}: {}",
            self.ward, self.cycle, self.detail
        )?;
        for t in &self.tiles {
            write!(f, "\n  {t}")?;
        }
        if let Some(path) = &self.snapshot_path {
            write!(f, "\n  post-mortem snapshot: {path}")?;
        }
        if let Some(err) = &self.snapshot_error {
            write!(f, "\n  post-mortem snapshot failed: {err}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backlog_sums_every_queue_class() {
        let d = TileDiag {
            tile: 7,
            iq_msgs: 1,
            cq_msgs: 2,
            scripted: 3,
            parked_packets: 4,
        };
        assert_eq!(d.backlog(), 10);
        assert!(d.to_string().contains("tile 7"));
    }

    #[test]
    fn report_display_names_the_ward_and_tiles() {
        let r = WardReport {
            ward: "stall".into(),
            cycle: 42_000,
            detail: "no task executed for 10000 cycles".into(),
            tiles: vec![TileDiag {
                tile: 3,
                iq_msgs: 0,
                cq_msgs: 0,
                scripted: 0,
                parked_packets: 9,
            }],
            snapshot_path: Some("target/trip.snap".into()),
            snapshot_error: None,
            partial: None,
        };
        let text = r.to_string();
        assert!(
            text.contains("ward `stall` tripped at cycle 42000"),
            "{text}"
        );
        assert!(text.contains("tile 3"), "{text}");
        assert!(text.contains("target/trip.snap"), "{text}");
    }
}
