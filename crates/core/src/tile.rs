//! Per-tile engine state and the simulation result type.

use crate::app::OutMsg;
use crate::counters::{PuCounters, SimCounters};
use crate::frames::FrameLog;
use crate::queues::LazyQueues;
use crate::sched::Scheduler;
use muchisim_config::{SystemConfig, TimePs};
use muchisim_mem::TileMemory;
use muchisim_noc::Payload;
use std::sync::Arc;

/// The *cold* engine state of one tile: queue banks, TSU scheduler, the
/// memory model, and event counters.
///
/// The scalars the per-cycle sweeps actually read — PU clocks, IQ/CQ
/// message counts, the init-pending flag, the frame busy counter — live
/// in dense per-worker arrays indexed by local tile id (see
/// `Worker` in `engine.rs`), so the active-list drain walks contiguous
/// memory instead of striding through these structs. What remains here is
/// touched only when a task dispatches or a message actually moves.
///
/// The layout is deliberately lean — at the paper's million-tile scales
/// this struct *is* the host memory footprint. Queue banks allocate on
/// first use, the IQ capacity table and the scheduler's priority order
/// are shared across all tiles of a worker, and everything else is
/// inline.
#[derive(Debug)]
pub(crate) struct TileEngine {
    /// One input queue per task type (payloads only; the queue index is
    /// the task id). Allocated on first message.
    pub iqs: LazyQueues<Payload>,
    /// Per-task IQ capacity in messages (shared across tiles).
    pub iq_caps: Arc<[u32]>,
    /// One channel queue per task type, draining into the NoC.
    /// Allocated on first remote send.
    pub cqs: LazyQueues<OutMsg>,
    /// TSU scheduler.
    pub sched: Scheduler,
    /// The tile's memory model.
    pub mem: TileMemory,
    /// PU event counters for this tile.
    pub counters: PuCounters,
}

impl TileEngine {
    pub(crate) fn new(
        cfg: &SystemConfig,
        task_types: u8,
        iq_caps: Arc<[u32]>,
        sched: Scheduler,
    ) -> Self {
        TileEngine {
            iqs: LazyQueues::new(task_types),
            iq_caps,
            cqs: LazyQueues::new(task_types),
            sched,
            mem: TileMemory::from_system(cfg),
            counters: PuCounters::default(),
        }
    }

    /// Whether any channel queue exceeds `cap` (send-side backpressure:
    /// the TSU stalls new dispatches until the NoC drains the CQs). The
    /// caller gates this on its SoA `cq_msgs` count being non-zero.
    pub fn cq_over(&self, cap: u32) -> bool {
        self.cqs.as_slice().iter().any(|q| q.len() > cap as usize)
    }

    /// Host heap bytes owned by this tile (queue banks and the memory
    /// model; the capacity table and scheduler order are shared across
    /// tiles, and the SoA hot arrays are per-worker — both counted once
    /// by the worker).
    pub fn heap_bytes(&self) -> u64 {
        self.iqs.heap_bytes(muchisim_noc::Payload::heap_bytes)
            + self.cqs.heap_bytes(|m| m.payload.heap_bytes())
            + self.mem.heap_bytes()
    }
}

/// Host nanoseconds spent in each phase of the simulation driver,
/// aggregated over all workers and the whole run.
///
/// The timers wrap whole phases (coarse-grained monotonic reads, two per
/// phase per cycle per worker), so their cost is far below one packet
/// move; they are always on. `worklist` isolates the active-list
/// bookkeeping inside the swept phases (refresh + retention passes) so
/// the dense-regime overhead the kill switch recovers is attributed, not
/// guessed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HostPhaseNs {
    /// PU phase: TSU dispatch + task execution (`pu_phase`).
    pub pu: u64,
    /// Inject phase: CQ and scripted-send drains into the NoC.
    pub inject: u64,
    /// NoC phase: cycle-boundary bookkeeping + router stepping.
    pub net: u64,
    /// Active-list bookkeeping inside the phases above (already included
    /// in their totals): worklist refresh and retention passes.
    pub worklist: u64,
}

impl HostPhaseNs {
    /// Folds another worker's phase times into this one.
    pub fn merge(&mut self, other: &HostPhaseNs) {
        self.pu += other.pu;
        self.inject += other.inject;
        self.net += other.net;
        self.worklist += other.worklist;
    }

    /// Total attributed phase time (`worklist` is a sub-slice of the
    /// other three, not an addend).
    pub fn total(&self) -> u64 {
        self.pu + self.inject + self.net
    }

    /// Fraction of attributed time spent on worklist bookkeeping
    /// (0 when nothing was attributed).
    pub fn worklist_share(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.worklist as f64 / total as f64
        }
    }
}

/// The outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimResult {
    /// DUT runtime in NoC cycles (including the idleness-based
    /// termination-detection latency of 2 × network diameter).
    pub runtime_cycles: u64,
    /// DUT runtime as wall time.
    pub runtime: TimePs,
    /// All event counters (the counters file for post-processing).
    pub counters: SimCounters,
    /// Statistics frames.
    pub frames: FrameLog,
    /// Per-packet NoC latency statistics (injection→ejection; for
    /// scheduled synthetic traffic, generation→ejection — source
    /// queueing included, the latency-versus-load measurement).
    pub noc_latency: muchisim_noc::LatencyStats,
    /// Host wall-clock seconds spent simulating.
    pub host_seconds: f64,
    /// Host nanoseconds by driver phase, summed across workers (the
    /// built-in phase profiler; see [`HostPhaseNs`]).
    pub host_phase_ns: HostPhaseNs,
    /// Host threads used.
    pub host_threads: usize,
    /// Tiles simulated.
    pub total_tiles: u64,
    /// Host bytes of simulation state at the end of the run (tile
    /// engines, app tile states, NoC planes, frames) — capacity-based,
    /// so it reflects the high-water footprint of the steady state.
    pub host_state_bytes: u64,
    /// Result of the application's output check (`None` if it passed).
    pub check_error: Option<String>,
    /// Tasks executed per grid column (index = column). The measured
    /// activity profile behind activity-balanced shard splits: feed it to
    /// `Simulation::run_balanced` (usually from a short
    /// `Simulation::run_window` calibration) to place shard boundaries
    /// where the work is.
    pub column_activity: Vec<u64>,
    /// How the run ended: `"finished"` for a normal drain, `"ward:<name>"`
    /// when a telemetry ward terminated it (the partial result inside a
    /// `SimError::Ward` report). Empty in records stored before this
    /// field existed; read it through
    /// [`termination_label`](SimResult::termination_label).
    #[serde(default)]
    pub termination: String,
}

impl SimResult {
    /// The termination reason, mapping the pre-telemetry empty string to
    /// `"finished"`.
    pub fn termination_label(&self) -> &str {
        if self.termination.is_empty() {
            "finished"
        } else {
            &self.termination
        }
    }

    /// Ratio of simulator wall time to DUT time (the paper's Fig. 3
    /// metric, where DUT time is per-tile aggregated runtime).
    pub fn slowdown_vs_dut(&self) -> f64 {
        let dut = self.runtime.as_secs();
        if dut == 0.0 {
            0.0
        } else {
            self.host_seconds / dut
        }
    }

    /// DUT operation throughput in ops per host second (Fig. 4's Ops/s).
    pub fn host_ops_per_sec(&self) -> f64 {
        if self.host_seconds == 0.0 {
            0.0
        } else {
            self.counters.pu.total_ops() as f64 / self.host_seconds
        }
    }

    /// NoC flits routed per host second (Fig. 4's Msg/s).
    pub fn host_flits_per_sec(&self) -> f64 {
        if self.host_seconds == 0.0 {
            0.0
        } else {
            self.counters.noc.total_flit_hops() as f64 / self.host_seconds
        }
    }

    /// Simulated NoC cycles per host second — the simulator-throughput
    /// metric of the scalability table (time leaping included, so sparse
    /// phases push this far above the lockstep rate).
    pub fn sim_cycles_per_sec(&self) -> f64 {
        if self.host_seconds == 0.0 {
            0.0
        } else {
            self.runtime_cycles as f64 / self.host_seconds
        }
    }

    /// NoC packets injected per host second.
    pub fn packets_per_sec(&self) -> f64 {
        if self.host_seconds == 0.0 {
            0.0
        } else {
            self.counters.noc.injected as f64 / self.host_seconds
        }
    }

    /// Host simulation-state bytes per simulated tile (the paper's
    /// small-footprint scaling claim, measured).
    pub fn bytes_per_tile(&self) -> f64 {
        if self.total_tiles == 0 {
            0.0
        } else {
            self.host_state_bytes as f64 / self.total_tiles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muchisim_config::SchedulingPolicy;

    fn tile() -> TileEngine {
        TileEngine::new(
            &SystemConfig::default(),
            2,
            vec![8, 8].into(),
            Scheduler::new(SchedulingPolicy::RoundRobin, 2),
        )
    }

    #[test]
    fn fresh_tile_is_idle() {
        let t = tile();
        assert!(!t.cq_over(4));
        assert_eq!(t.iqs.as_slice().len(), 0, "queue banks allocate lazily");
    }

    #[test]
    fn phase_ns_merge_and_shares() {
        let mut a = HostPhaseNs {
            pu: 60,
            inject: 20,
            net: 20,
            worklist: 10,
        };
        let b = HostPhaseNs {
            pu: 40,
            inject: 30,
            net: 30,
            worklist: 40,
        };
        a.merge(&b);
        assert_eq!(a.total(), 200);
        assert!((a.worklist_share() - 0.25).abs() < 1e-12);
        assert_eq!(HostPhaseNs::default().total(), 0);
        assert_eq!(HostPhaseNs::default().worklist_share(), 0.0);
    }

    #[test]
    fn result_ratios() {
        let r = SimResult {
            runtime_cycles: 1000,
            runtime: TimePs::us(1.0),
            counters: SimCounters::default(),
            frames: FrameLog::new(100),
            noc_latency: muchisim_noc::LatencyStats::default(),
            host_seconds: 0.01,
            host_phase_ns: HostPhaseNs::default(),
            host_threads: 1,
            total_tiles: 16,
            host_state_bytes: 4096,
            check_error: None,
            column_activity: vec![0; 4],
            termination: String::new(),
        };
        assert_eq!(r.termination_label(), "finished");
        assert!((r.slowdown_vs_dut() - 10_000.0).abs() < 1e-6);
        assert!((r.sim_cycles_per_sec() - 100_000.0).abs() < 1e-6);
        assert_eq!(r.bytes_per_tile(), 256.0);
        assert_eq!(r.packets_per_sec(), 0.0);
    }
}
