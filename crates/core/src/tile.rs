//! Per-tile engine state and the simulation result type.

use crate::app::OutMsg;
use crate::counters::{PuCounters, SimCounters};
use crate::frames::FrameLog;
use crate::horizon::EventHorizon;
use crate::sched::Scheduler;
use muchisim_config::{SchedulingPolicy, SystemConfig, TimePs};
use muchisim_mem::TileMemory;
use muchisim_noc::Payload;
use std::collections::VecDeque;

/// The engine state of one tile: input queues, channel queues, PU clocks,
/// TSU scheduler, and the tile's memory model.
#[derive(Debug)]
pub(crate) struct TileEngine {
    /// One input queue per task type (payloads only; the queue index is
    /// the task id).
    pub iqs: Vec<VecDeque<Payload>>,
    /// Per-task IQ capacity in messages.
    pub iq_caps: Vec<u32>,
    /// One channel queue per task type, draining into the NoC.
    pub cqs: Vec<VecDeque<OutMsg>>,
    /// Per-PU clock in PU cycles.
    pub pu_clock: Vec<u64>,
    /// TSU scheduler.
    pub sched: Scheduler,
    /// Whether this kernel's init task has not yet run.
    pub init_pending: bool,
    /// The tile's memory model.
    pub mem: TileMemory,
    /// PU event counters for this tile.
    pub counters: PuCounters,
    /// Messages queued in IQs (cheap activity check).
    pub iq_msgs: u32,
    /// Messages queued in CQs.
    pub cq_msgs: u32,
    /// PU busy cycles accumulated in the current statistics frame.
    pub busy_frame: u32,
}

impl TileEngine {
    pub(crate) fn new(
        cfg: &SystemConfig,
        task_types: u8,
        iq_caps: Vec<u32>,
        policy: SchedulingPolicy,
    ) -> Self {
        TileEngine {
            iqs: (0..task_types).map(|_| VecDeque::new()).collect(),
            iq_caps,
            cqs: (0..task_types).map(|_| VecDeque::new()).collect(),
            pu_clock: vec![0; cfg.pus_per_tile as usize],
            sched: Scheduler::new(policy, task_types),
            init_pending: false,
            mem: TileMemory::from_system(cfg),
            counters: PuCounters::default(),
            iq_msgs: 0,
            cq_msgs: 0,
            busy_frame: 0,
        }
    }

    /// Whether the TSU has anything to dispatch.
    pub fn has_work(&self) -> bool {
        self.init_pending || self.iq_msgs > 0
    }

    /// Index of the PU with the earliest clock.
    pub fn earliest_pu(&self) -> usize {
        let mut best = 0;
        for (i, &c) in self.pu_clock.iter().enumerate() {
            if c < self.pu_clock[best] {
                best = i;
            }
        }
        best
    }

    /// Whether any channel queue exceeds `cap` (send-side backpressure:
    /// the TSU stalls new dispatches until the NoC drains the CQs).
    pub fn cq_over(&self, cap: u32) -> bool {
        self.cqs.iter().any(|q| q.len() > cap as usize)
    }
}

impl EventHorizon for TileEngine {
    /// PU-clock domain: the earlier of the next possible task dispatch
    /// (the earliest PU clock, while messages or an init task are
    /// queued) and the readiness instant of any channel-queue head
    /// awaiting NoC injection. A tile with empty queues and empty CQs
    /// has no horizon — it acts again only when a message arrives, and
    /// arrivals are covered by the network-layer horizons.
    ///
    /// This is the *specification* of the tile horizon; for speed the
    /// driver folds the same quantity incrementally into
    /// `Worker::tile_horizon` while its phase sweeps already walk the
    /// tiles (plus an inject-backpressure clamp the sweep observes
    /// directly). Keep the two in sync when dispatch eligibility
    /// changes.
    fn next_event_cycle(&self, now: u64) -> Option<u64> {
        let mut horizon: Option<u64> = None;
        if self.has_work() {
            horizon = Some(self.pu_clock[self.earliest_pu()].max(now));
        }
        if self.cq_msgs > 0 {
            for q in &self.cqs {
                if let Some(head) = q.front() {
                    let c = head.at_pu_cycle.max(now);
                    horizon = Some(horizon.map_or(c, |h| h.min(c)));
                }
            }
        }
        horizon
    }
}

/// The outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimResult {
    /// DUT runtime in NoC cycles (including the idleness-based
    /// termination-detection latency of 2 × network diameter).
    pub runtime_cycles: u64,
    /// DUT runtime as wall time.
    pub runtime: TimePs,
    /// All event counters (the counters file for post-processing).
    pub counters: SimCounters,
    /// Statistics frames.
    pub frames: FrameLog,
    /// Host wall-clock seconds spent simulating.
    pub host_seconds: f64,
    /// Host threads used.
    pub host_threads: usize,
    /// Result of the application's output check (`None` if it passed).
    pub check_error: Option<String>,
}

impl SimResult {
    /// Ratio of simulator wall time to DUT time (the paper's Fig. 3
    /// metric, where DUT time is per-tile aggregated runtime).
    pub fn slowdown_vs_dut(&self) -> f64 {
        let dut = self.runtime.as_secs();
        if dut == 0.0 {
            0.0
        } else {
            self.host_seconds / dut
        }
    }

    /// DUT operation throughput in ops per host second (Fig. 4's Ops/s).
    pub fn host_ops_per_sec(&self) -> f64 {
        if self.host_seconds == 0.0 {
            0.0
        } else {
            self.counters.pu.total_ops() as f64 / self.host_seconds
        }
    }

    /// NoC flits routed per host second (Fig. 4's Msg/s).
    pub fn host_flits_per_sec(&self) -> f64 {
        if self.host_seconds == 0.0 {
            0.0
        } else {
            self.counters.noc.total_flit_hops() as f64 / self.host_seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile() -> TileEngine {
        TileEngine::new(
            &SystemConfig::default(),
            2,
            vec![8, 8],
            SchedulingPolicy::RoundRobin,
        )
    }

    #[test]
    fn fresh_tile_is_idle() {
        let t = tile();
        assert!(!t.has_work());
        assert_eq!(t.earliest_pu(), 0);
        assert!(!t.cq_over(4));
    }

    #[test]
    fn earliest_pu_finds_minimum() {
        let mut t = TileEngine::new(
            &SystemConfig::builder().pus_per_tile(3).build().unwrap(),
            1,
            vec![8],
            SchedulingPolicy::RoundRobin,
        );
        t.pu_clock = vec![10, 3, 7];
        assert_eq!(t.earliest_pu(), 1);
    }

    #[test]
    fn tile_horizon_follows_pu_clock_and_cq_heads() {
        use muchisim_noc::Payload;

        let mut t = tile();
        assert_eq!(t.next_event_cycle(0), None, "idle tile has no horizon");
        // queued message with the PU busy until 40: horizon is the PU clock
        t.iqs[0].push_back(Payload::empty());
        t.iq_msgs = 1;
        t.pu_clock[0] = 40;
        assert_eq!(t.next_event_cycle(0), Some(40));
        // an already-dispatchable message clamps to `now`
        assert_eq!(t.next_event_cycle(50), Some(50));
        // a CQ head maturing at 25 comes earlier than the PU clock
        t.cqs[1].push_back(OutMsg {
            dst: 3,
            task: 1,
            payload: Payload::empty(),
            at_pu_cycle: 25,
            reduce: None,
        });
        t.cq_msgs = 1;
        assert_eq!(t.next_event_cycle(0), Some(25));
        // the init task is dispatchable work too
        let mut fresh = tile();
        fresh.init_pending = true;
        assert_eq!(fresh.next_event_cycle(7), Some(7));
    }

    #[test]
    fn result_ratios() {
        let r = SimResult {
            runtime_cycles: 1000,
            runtime: TimePs::us(1.0),
            counters: SimCounters::default(),
            frames: FrameLog::new(100),
            host_seconds: 0.01,
            host_threads: 1,
            check_error: None,
        };
        assert!((r.slowdown_vs_dut() - 10_000.0).abs() < 1e-6);
    }
}
