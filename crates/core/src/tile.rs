//! Per-tile engine state and the simulation result type.

use crate::app::OutMsg;
use crate::counters::{PuCounters, SimCounters};
use crate::frames::FrameLog;
use crate::horizon::EventHorizon;
use crate::queues::LazyQueues;
use crate::sched::Scheduler;
use muchisim_config::{SystemConfig, TimePs};
use muchisim_mem::TileMemory;
use muchisim_noc::Payload;
use std::sync::Arc;

/// The engine state of one tile: input queues, channel queues, PU clocks,
/// TSU scheduler, and the tile's memory model.
///
/// The layout is deliberately lean — at the paper's million-tile scales
/// this struct *is* the host memory footprint. Queue banks allocate on
/// first use, the IQ capacity table and the scheduler's priority order
/// are shared across all tiles of a worker, and everything else is
/// inline.
#[derive(Debug)]
pub(crate) struct TileEngine {
    /// One input queue per task type (payloads only; the queue index is
    /// the task id). Allocated on first message.
    pub iqs: LazyQueues<Payload>,
    /// Per-task IQ capacity in messages (shared across tiles).
    pub iq_caps: Arc<[u32]>,
    /// One channel queue per task type, draining into the NoC.
    /// Allocated on first remote send.
    pub cqs: LazyQueues<OutMsg>,
    /// Per-PU clock in PU cycles.
    pub pu_clock: Vec<u64>,
    /// TSU scheduler.
    pub sched: Scheduler,
    /// Whether this kernel's init task has not yet run.
    pub init_pending: bool,
    /// The tile's memory model.
    pub mem: TileMemory,
    /// PU event counters for this tile.
    pub counters: PuCounters,
    /// Messages queued in IQs (cheap activity check).
    pub iq_msgs: u32,
    /// Messages queued in CQs.
    pub cq_msgs: u32,
    /// PU busy cycles accumulated in the current statistics frame.
    pub busy_frame: u32,
}

impl TileEngine {
    pub(crate) fn new(
        cfg: &SystemConfig,
        task_types: u8,
        iq_caps: Arc<[u32]>,
        sched: Scheduler,
    ) -> Self {
        TileEngine {
            iqs: LazyQueues::new(task_types),
            iq_caps,
            cqs: LazyQueues::new(task_types),
            pu_clock: vec![0; cfg.pus_per_tile as usize],
            sched,
            init_pending: false,
            mem: TileMemory::from_system(cfg),
            counters: PuCounters::default(),
            iq_msgs: 0,
            cq_msgs: 0,
            busy_frame: 0,
        }
    }

    /// Whether the TSU has anything to dispatch.
    pub fn has_work(&self) -> bool {
        self.init_pending || self.iq_msgs > 0
    }

    /// Index of the PU with the earliest clock.
    pub fn earliest_pu(&self) -> usize {
        let mut best = 0;
        for (i, &c) in self.pu_clock.iter().enumerate() {
            if c < self.pu_clock[best] {
                best = i;
            }
        }
        best
    }

    /// Whether any channel queue exceeds `cap` (send-side backpressure:
    /// the TSU stalls new dispatches until the NoC drains the CQs).
    pub fn cq_over(&self, cap: u32) -> bool {
        self.cq_msgs > 0 && self.cqs.as_slice().iter().any(|q| q.len() > cap as usize)
    }

    /// Host heap bytes owned by this tile (queue banks, PU clocks, and
    /// the memory model; the capacity table and scheduler order are
    /// shared across tiles and counted once by the worker).
    pub fn heap_bytes(&self) -> u64 {
        self.iqs.heap_bytes(muchisim_noc::Payload::heap_bytes)
            + self.cqs.heap_bytes(|m| m.payload.heap_bytes())
            + self.pu_clock.capacity() as u64 * 8
            + self.mem.heap_bytes()
    }
}

impl EventHorizon for TileEngine {
    /// PU-clock domain: the earlier of the next possible task dispatch
    /// (the earliest PU clock, while messages or an init task are
    /// queued) and the readiness instant of any channel-queue head
    /// awaiting NoC injection. A tile with empty queues and empty CQs
    /// has no horizon — it acts again only when a message arrives, and
    /// arrivals are covered by the network-layer horizons.
    ///
    /// This is the *specification* of the tile horizon; for speed the
    /// driver folds the same quantity incrementally into
    /// `Worker::tile_horizon` while its phase sweeps already walk the
    /// tiles (plus an inject-backpressure clamp the sweep observes
    /// directly). Keep the two in sync when dispatch eligibility
    /// changes.
    fn next_event_cycle(&self, now: u64) -> Option<u64> {
        let mut horizon: Option<u64> = None;
        if self.has_work() {
            horizon = Some(self.pu_clock[self.earliest_pu()].max(now));
        }
        if self.cq_msgs > 0 {
            for q in self.cqs.as_slice() {
                if let Some(head) = q.front() {
                    let c = head.at_pu_cycle.max(now);
                    horizon = Some(horizon.map_or(c, |h| h.min(c)));
                }
            }
        }
        horizon
    }
}

/// The outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimResult {
    /// DUT runtime in NoC cycles (including the idleness-based
    /// termination-detection latency of 2 × network diameter).
    pub runtime_cycles: u64,
    /// DUT runtime as wall time.
    pub runtime: TimePs,
    /// All event counters (the counters file for post-processing).
    pub counters: SimCounters,
    /// Statistics frames.
    pub frames: FrameLog,
    /// Per-packet NoC latency statistics (injection→ejection; for
    /// scheduled synthetic traffic, generation→ejection — source
    /// queueing included, the latency-versus-load measurement).
    pub noc_latency: muchisim_noc::LatencyStats,
    /// Host wall-clock seconds spent simulating.
    pub host_seconds: f64,
    /// Host threads used.
    pub host_threads: usize,
    /// Tiles simulated.
    pub total_tiles: u64,
    /// Host bytes of simulation state at the end of the run (tile
    /// engines, app tile states, NoC planes, frames) — capacity-based,
    /// so it reflects the high-water footprint of the steady state.
    pub host_state_bytes: u64,
    /// Result of the application's output check (`None` if it passed).
    pub check_error: Option<String>,
    /// Tasks executed per grid column (index = column). The measured
    /// activity profile behind activity-balanced shard splits: feed it to
    /// `Simulation::run_balanced` (usually from a short
    /// `Simulation::run_window` calibration) to place shard boundaries
    /// where the work is.
    pub column_activity: Vec<u64>,
}

impl SimResult {
    /// Ratio of simulator wall time to DUT time (the paper's Fig. 3
    /// metric, where DUT time is per-tile aggregated runtime).
    pub fn slowdown_vs_dut(&self) -> f64 {
        let dut = self.runtime.as_secs();
        if dut == 0.0 {
            0.0
        } else {
            self.host_seconds / dut
        }
    }

    /// DUT operation throughput in ops per host second (Fig. 4's Ops/s).
    pub fn host_ops_per_sec(&self) -> f64 {
        if self.host_seconds == 0.0 {
            0.0
        } else {
            self.counters.pu.total_ops() as f64 / self.host_seconds
        }
    }

    /// NoC flits routed per host second (Fig. 4's Msg/s).
    pub fn host_flits_per_sec(&self) -> f64 {
        if self.host_seconds == 0.0 {
            0.0
        } else {
            self.counters.noc.total_flit_hops() as f64 / self.host_seconds
        }
    }

    /// Simulated NoC cycles per host second — the simulator-throughput
    /// metric of the scalability table (time leaping included, so sparse
    /// phases push this far above the lockstep rate).
    pub fn sim_cycles_per_sec(&self) -> f64 {
        if self.host_seconds == 0.0 {
            0.0
        } else {
            self.runtime_cycles as f64 / self.host_seconds
        }
    }

    /// NoC packets injected per host second.
    pub fn packets_per_sec(&self) -> f64 {
        if self.host_seconds == 0.0 {
            0.0
        } else {
            self.counters.noc.injected as f64 / self.host_seconds
        }
    }

    /// Host simulation-state bytes per simulated tile (the paper's
    /// small-footprint scaling claim, measured).
    pub fn bytes_per_tile(&self) -> f64 {
        if self.total_tiles == 0 {
            0.0
        } else {
            self.host_state_bytes as f64 / self.total_tiles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muchisim_config::SchedulingPolicy;

    fn tile() -> TileEngine {
        TileEngine::new(
            &SystemConfig::default(),
            2,
            vec![8, 8].into(),
            Scheduler::new(SchedulingPolicy::RoundRobin, 2),
        )
    }

    #[test]
    fn fresh_tile_is_idle() {
        let t = tile();
        assert!(!t.has_work());
        assert_eq!(t.earliest_pu(), 0);
        assert!(!t.cq_over(4));
    }

    #[test]
    fn earliest_pu_finds_minimum() {
        let mut t = TileEngine::new(
            &SystemConfig::builder().pus_per_tile(3).build().unwrap(),
            1,
            vec![8].into(),
            Scheduler::new(SchedulingPolicy::RoundRobin, 1),
        );
        t.pu_clock = vec![10, 3, 7];
        assert_eq!(t.earliest_pu(), 1);
    }

    #[test]
    fn tile_horizon_follows_pu_clock_and_cq_heads() {
        use muchisim_noc::Payload;

        let mut t = tile();
        assert_eq!(t.next_event_cycle(0), None, "idle tile has no horizon");
        // queued message with the PU busy until 40: horizon is the PU clock
        t.iqs.q_mut(0).push_back(Payload::empty());
        t.iq_msgs = 1;
        t.pu_clock[0] = 40;
        assert_eq!(t.next_event_cycle(0), Some(40));
        // an already-dispatchable message clamps to `now`
        assert_eq!(t.next_event_cycle(50), Some(50));
        // a CQ head maturing at 25 comes earlier than the PU clock
        t.cqs.q_mut(1).push_back(OutMsg {
            dst: 3,
            task: 1,
            payload: Payload::empty(),
            at_pu_cycle: 25,
            reduce: None,
        });
        t.cq_msgs = 1;
        assert_eq!(t.next_event_cycle(0), Some(25));
        // the init task is dispatchable work too
        let mut fresh = tile();
        fresh.init_pending = true;
        assert_eq!(fresh.next_event_cycle(7), Some(7));
    }

    #[test]
    fn result_ratios() {
        let r = SimResult {
            runtime_cycles: 1000,
            runtime: TimePs::us(1.0),
            counters: SimCounters::default(),
            frames: FrameLog::new(100),
            noc_latency: muchisim_noc::LatencyStats::default(),
            host_seconds: 0.01,
            host_threads: 1,
            total_tiles: 16,
            host_state_bytes: 4096,
            check_error: None,
            column_activity: vec![0; 4],
        };
        assert!((r.slowdown_vs_dut() - 10_000.0).abs() < 1e-6);
        assert!((r.sim_cycles_per_sec() - 100_000.0).abs() < 1e-6);
        assert_eq!(r.bytes_per_tile(), 256.0);
        assert_eq!(r.packets_per_sec(), 0.0);
    }
}
